"""Containers for the ``(u, s, k)``-indexed repair plans of Algorithm 1.

Algorithm 1 produces, for every unprotected group ``u`` and feature ``k``:

* an interpolated support ``Q_{u,k}`` (a uniform grid),
* interpolated marginal pmfs ``µ_{u,s,k}`` for both protected classes,
* the barycentric repair target ``ν_{u,k}`` on the same grid, and
* OT plans ``π*_{u,s,k}`` coupling each marginal to the target.

:class:`FeaturePlan` holds one such bundle; :class:`RepairPlan` is the full
collection plus the design configuration, and is everything Algorithm 2
needs to repair archival data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..density.grid import InterpolationGrid
from ..exceptions import ValidationError
from ..ot.coupling import (TransportPlan, conditional_cumulative,
                           sample_conditional_rows)

__all__ = ["FeaturePlan", "RepairPlan"]

#: Bound on the per-:class:`FeaturePlan` memo of *densified* sparse-plan
#: CDF tables.  Each entry is an ``O(n_Q²)`` float array — the whole
#: point of CSR transports is not holding those — so the memo keeps only
#: the handful of protected classes an inspection loop actually touches
#: and evicts least-recently-used beyond that.
_SPARSE_CDF_CACHE_SIZE = 4


@dataclass(frozen=True)
class FeaturePlan:
    """Repair machinery for one ``(u, k)`` cell.

    Attributes
    ----------
    grid:
        The interpolated support ``Q_{u,k}``.
    marginals:
        ``s -> pmf`` of the interpolated marginal ``µ_{u,s,k}`` on the grid.
    barycenter:
        The repair target ``ν_{u,k}`` on the grid.
    transports:
        ``s -> TransportPlan`` with ``π*_{u,s,k}`` from marginal to target;
        each plan is dense- or CSR-backed (see
        :class:`~repro.ot.coupling.TransportPlan`), and every operation
        here works on either storage.
    diagnostics:
        ``s -> OTResult.summary()`` record of the solve that produced each
        transport (solver name, convergence, residual, wall time, ...).
        Purely informational; empty for hand-built plans.
    """

    grid: InterpolationGrid
    marginals: dict
    barycenter: np.ndarray
    transports: dict
    diagnostics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n_states = self.grid.n_states
        bary = np.asarray(self.barycenter, dtype=float)
        if bary.shape != (n_states,):
            raise ValidationError(
                f"barycenter must have {n_states} states, got {bary.shape}")
        for s, pmf in self.marginals.items():
            pmf = np.asarray(pmf, dtype=float)
            if pmf.shape != (n_states,):
                raise ValidationError(
                    f"marginal for s={s} must have {n_states} states")
        for s, plan in self.transports.items():
            if not isinstance(plan, TransportPlan):
                raise ValidationError(
                    f"transports[{s}] must be a TransportPlan")
            if plan.shape != (n_states, n_states):
                raise ValidationError(
                    f"transport for s={s} has shape {plan.shape}, expected "
                    f"({n_states}, {n_states})")
        if not isinstance(self.diagnostics, dict):
            raise ValidationError("diagnostics must be a dict")
        object.__setattr__(self, "barycenter", bary)
        object.__setattr__(self, "_cdf_cache", {})
        # Deferred import: ``repro.serve`` imports this module for
        # RepairPlan, so a top-level import here would be circular.
        from ..serve.cache import LRUCache
        object.__setattr__(self, "_sparse_cdf_cache",
                           LRUCache(_SPARSE_CDF_CACHE_SIZE))

    @property
    def s_values(self) -> tuple:
        return tuple(sorted(self.transports))

    def conditional_cdfs(self, s: int) -> np.ndarray:
        """Row-wise CDFs of ``π*_{·,s}`` as a dense array.

        Row ``q`` is the cumulative distribution of the repaired state given
        source state ``q``.  For densely stored transports the array is
        computed once per ``s`` and cached (callers must treat it as
        read-only and copy before mutating) — it *is* the Algorithm-2
        sampling table.  For CSR-backed transports it is an
        inspection-only view: densified on demand and memoised in a
        small LRU (capacity ``_SPARSE_CDF_CACHE_SIZE``), so repeated
        inspection queries stop re-densifying while a large design's
        ``O(n_Q²)`` tables still cannot pile up in memory — the
        Algorithm-2 hot path goes through :meth:`sample_targets`,
        which samples on the sparse conditional structure directly.
        """
        if s not in self.transports:
            raise ValidationError(
                f"no transport plan for s={s}; have {self.s_values}")
        if self.transports[s].is_sparse:
            return self._sparse_cdf_cache.get_or_create(
                ("cdf", s),
                lambda: np.cumsum(
                    self.transports[s].conditional_matrix().toarray(),
                    axis=1))
        cache = getattr(self, "_cdf_cache")
        key = ("cdf", s)
        if key not in cache:
            conditionals = self.transports[s].conditional_matrix()
            cache[key] = np.cumsum(conditionals, axis=1)
        return cache[key]

    def sample_targets(self, s: int, rows, uniforms) -> np.ndarray:
        """Repaired grid state per ``(source row, uniform draw)`` pair —
        the vectorised sampler of Algorithm 2 Eq. 15.

        Dense transports sample through the cached row-CDF matrix; CSR
        transports sample directly on the sparse conditional structure
        (cached per ``s``) without ever materialising an
        ``(n_Q, n_Q)`` array.
        """
        if s not in self.transports:
            raise ValidationError(
                f"no transport plan for s={s}; have {self.s_values}")
        plan = self.transports[s]
        rows = np.asarray(rows)
        uniforms = np.asarray(uniforms, dtype=float)
        if plan.is_sparse:
            cache = getattr(self, "_cdf_cache")
            key = ("sparse-sampler", s)
            if key not in cache:
                conditionals = plan.conditional_matrix()
                cache[key] = (conditionals,
                              conditional_cumulative(conditionals))
            conditionals, cumulative = cache[key]
            return sample_conditional_rows(conditionals, rows, uniforms,
                                           cumulative=cumulative)
        cdfs = self.conditional_cdfs(s)
        # `cdfs` is the shared cache, so only mutate the np.take copy.
        row_cdfs = np.take(cdfs, rows, axis=0)
        row_cdfs[:, -1] = 1.0  # guard round-off (< 1.0 row sums)
        states = (row_cdfs < uniforms[:, None]).sum(axis=1)
        return np.minimum(states, self.grid.n_states - 1)

    def expected_targets(self, s: int) -> np.ndarray:
        """Conditional-mean repaired value per source state (deterministic
        alternative to sampling, used by the 'barycentric' output mode)."""
        if s not in self.transports:
            raise ValidationError(
                f"no transport plan for s={s}; have {self.s_values}")
        return self.transports[s].barycentric_projection().ravel()


@dataclass(frozen=True)
class RepairPlan:
    """The complete output of Algorithm 1.

    Attributes
    ----------
    feature_plans:
        Mapping ``(u, k) -> FeaturePlan``.
    n_features:
        Feature arity ``d`` of the designed repair.
    t:
        Geodesic position of the repair target (``0.5`` = fair barycentre).
    metadata:
        Free-form design record (solver, bandwidth method, sizes, ...).
    """

    feature_plans: dict
    n_features: int
    t: float = 0.5
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.feature_plans:
            raise ValidationError("feature_plans must be non-empty")
        for key, plan in self.feature_plans.items():
            if (not isinstance(key, tuple) or len(key) != 2):
                raise ValidationError(
                    f"feature_plans keys must be (u, k) pairs, got {key!r}")
            if not isinstance(plan, FeaturePlan):
                raise ValidationError(
                    f"feature_plans[{key}] must be a FeaturePlan")
        ks = {k for (_, k) in self.feature_plans}
        if ks != set(range(self.n_features)):
            raise ValidationError(
                f"feature plans cover features {sorted(ks)}, expected "
                f"0..{self.n_features - 1}")

    @property
    def u_values(self) -> tuple:
        """Unprotected groups covered by the design."""
        return tuple(sorted({u for (u, _) in self.feature_plans}))

    def feature_plan(self, u: int, k: int) -> FeaturePlan:
        """The :class:`FeaturePlan` for group ``u`` and feature ``k``."""
        try:
            return self.feature_plans[(u, k)]
        except KeyError:
            raise ValidationError(
                f"no plan designed for (u={u}, k={k}); available groups "
                f"{self.u_values}") from None

    def covers(self, u: int) -> bool:
        """True when group ``u`` has a designed plan for every feature."""
        return all((u, k) in self.feature_plans
                   for k in range(self.n_features))

    def total_states(self) -> int:
        """Sum of grid sizes across all cells (a size/cost diagnostic)."""
        return sum(plan.grid.n_states
                   for plan in self.feature_plans.values())

    def solver_diagnostics(self) -> dict:
        """``(u, k) -> {s -> OTResult summary}`` for every designed cell.

        Empty inner dicts for plans built without the unified
        :func:`repro.ot.solve` facade (e.g. loaded from a pre-diagnostics
        archive).
        """
        return {cell: dict(plan.diagnostics)
                for cell, plan in self.feature_plans.items()}
