"""Partial repair and the repair/damage trade-off (paper Section VI).

The paper flags the trade-off between *repair strength* (how much
conditional dependence is quenched) and *data damage* (how far the repaired
features move from the originals, eroding predictive value) as future work.
This module implements the two natural partial-repair mechanisms so that
the trade-off can be studied:

* **geodesic partial repair** — design the plan with target ``ν_t`` at
  ``t < 0.5`` (closer to one marginal), via the ``t`` parameter of
  Algorithm 1; and
* **convex damping** — repair fully but release only a ``λ``-fraction of
  the displacement, ``x' = (1 - λ) x + λ · repair(x)``, which needs no
  redesign and can be tuned per batch.

Damage metrics quantify what the repair cost in feature space.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_rng, check_probability
from ..data.dataset import FairnessDataset
from ..exceptions import ValidationError
from .repair import DistributionalRepairer

__all__ = ["dampen_repair", "repair_damage", "PartialRepairer"]


def dampen_repair(original: FairnessDataset, repaired: FairnessDataset,
                  amount: float) -> FairnessDataset:
    """Convex combination ``(1 - amount) · original + amount · repaired``.

    ``amount = 0`` returns the original features, ``amount = 1`` the full
    repair.  Labels are taken from ``original`` (repairs never change
    labels).
    """
    amount = check_probability(amount, name="amount")
    if original.features.shape != repaired.features.shape:
        raise ValidationError(
            "original and repaired datasets must have identical shape "
            f"({original.features.shape} != {repaired.features.shape})")
    blended = ((1.0 - amount) * original.features
               + amount * repaired.features)
    return original.with_features(blended)


def repair_damage(original: FairnessDataset,
                  repaired: FairnessDataset) -> dict:
    """Feature-space damage statistics of a repair.

    Returns a dict with:

    * ``mean_abs``: per-feature mean absolute displacement,
    * ``rms``: per-feature root-mean-square displacement,
    * ``max``: per-feature maximum absolute displacement,
    * ``total_rms``: scalar RMS over all cells — the headline damage
      number used by the trade-off benches.
    """
    if original.features.shape != repaired.features.shape:
        raise ValidationError(
            "original and repaired datasets must have identical shape "
            f"({original.features.shape} != {repaired.features.shape})")
    delta = repaired.features - original.features
    return {
        "mean_abs": np.abs(delta).mean(axis=0),
        "rms": np.sqrt((delta ** 2).mean(axis=0)),
        "max": np.abs(delta).max(axis=0),
        "total_rms": float(np.sqrt((delta ** 2).mean())),
    }


class PartialRepairer:
    """A :class:`DistributionalRepairer` with a strength dial.

    Parameters
    ----------
    amount:
        Fraction ``λ ∈ [0, 1]`` of the repair displacement to apply
        (convex damping).
    **repairer_kwargs:
        Forwarded to the underlying :class:`DistributionalRepairer`
        (including ``t`` for geodesic partiality — the two mechanisms
        compose).
    """

    def __init__(self, amount: float = 1.0, **repairer_kwargs) -> None:
        self.amount = check_probability(amount, name="amount")
        self._repairer = DistributionalRepairer(**repairer_kwargs)

    @property
    def repairer(self) -> DistributionalRepairer:
        return self._repairer

    def fit(self, research: FairnessDataset) -> "PartialRepairer":
        self._repairer.fit(research)
        return self

    def transform(self, dataset: FairnessDataset, *,
                  rng=None) -> FairnessDataset:
        """Repair, then blend back toward the original by ``1 - amount``."""
        full = self._repairer.transform(dataset, rng=rng)
        return dampen_repair(dataset, full, self.amount)

    def fit_transform(self, research: FairnessDataset, *,
                      rng=None) -> FairnessDataset:
        return self.fit(research).transform(research, rng=rng)

    def trade_off_curve(self, research: FairnessDataset,
                        dataset: FairnessDataset, amounts, *,
                        energy_fn, rng=None) -> list:
        """Evaluate (damage, residual dependence) along an ``amount`` sweep.

        Parameters
        ----------
        energy_fn:
            Callable ``FairnessDataset -> float`` measuring residual
            conditional dependence (e.g. the total ``E``).

        Returns
        -------
        list of dict
            One record per amount: ``{"amount", "energy", "damage"}``.
        """
        if not self._repairer.is_fitted:
            self._repairer.fit(research)
        generator = as_rng(rng)
        full = self._repairer.transform(dataset, rng=generator)
        records = []
        for amount in amounts:
            blended = dampen_repair(dataset, full,
                                    check_probability(amount, name="amount"))
            records.append({
                "amount": float(amount),
                "energy": float(energy_fn(blended)),
                "damage": repair_damage(dataset, blended)["total_rms"],
            })
        return records
