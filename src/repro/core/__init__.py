"""Core contribution: distributional OT repair (Algorithms 1 & 2) and
baselines."""

from .backend import (BACKEND_NAMES, ArrayBackend, ArrayAPIBackend,
                      CupyBackend, NumpyBackend, TorchBackend,
                      available_backends, get_backend,
                      register_array_backend)
from .design import SOLVERS, design_feature_plan, design_repair
from .diagnostics import CellDiagnostic, DriftMonitor, DriftReport
from .executor import (EXECUTOR_NAMES, Executor, ProcessExecutor,
                       SerialExecutor, ThreadExecutor, resolve_executor)
from .geometric import (GeometricRepairer, geometric_repair_1d,
                        geometric_repair_multivariate)
from .joint import (JointDistributionalRepairer, JointFeaturePlan,
                    JointRepairPlan, design_joint_repair)
from .serialize import PLAN_DTYPES, load_plan, save_plan
from .labels import GaussianClassConditional, SubgroupLabelModel, em_refine
from .monge import MongeFeatureMap, MongeRepairer
from .partial import PartialRepairer, dampen_repair, repair_damage
from .pipeline import RepairPipeline, RepairReport
from .plan import FeaturePlan, RepairPlan
from .repair import (DistributionalRepairer, repair_dataset,
                     repair_feature_values)

__all__ = [
    "BACKEND_NAMES",
    "EXECUTOR_NAMES",
    "PLAN_DTYPES",
    "SOLVERS",
    "ArrayAPIBackend",
    "ArrayBackend",
    "CellDiagnostic",
    "CupyBackend",
    "DistributionalRepairer",
    "DriftMonitor",
    "DriftReport",
    "Executor",
    "FeaturePlan",
    "GaussianClassConditional",
    "GeometricRepairer",
    "JointDistributionalRepairer",
    "JointFeaturePlan",
    "JointRepairPlan",
    "MongeFeatureMap",
    "MongeRepairer",
    "NumpyBackend",
    "PartialRepairer",
    "ProcessExecutor",
    "RepairPipeline",
    "RepairPlan",
    "RepairReport",
    "SerialExecutor",
    "SubgroupLabelModel",
    "ThreadExecutor",
    "TorchBackend",
    "available_backends",
    "dampen_repair",
    "design_feature_plan",
    "design_joint_repair",
    "design_repair",
    "em_refine",
    "geometric_repair_1d",
    "geometric_repair_multivariate",
    "get_backend",
    "load_plan",
    "register_array_backend",
    "repair_damage",
    "resolve_executor",
    "save_plan",
    "repair_dataset",
    "repair_feature_values",
]
