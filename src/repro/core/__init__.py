"""Core contribution: distributional OT repair (Algorithms 1 & 2) and
baselines."""

from .design import SOLVERS, design_feature_plan, design_repair
from .diagnostics import CellDiagnostic, DriftMonitor, DriftReport
from .executor import (EXECUTOR_NAMES, Executor, ProcessExecutor,
                       SerialExecutor, ThreadExecutor, resolve_executor)
from .geometric import (GeometricRepairer, geometric_repair_1d,
                        geometric_repair_multivariate)
from .joint import (JointDistributionalRepairer, JointFeaturePlan,
                    JointRepairPlan, design_joint_repair)
from .serialize import load_plan, save_plan
from .labels import GaussianClassConditional, SubgroupLabelModel, em_refine
from .monge import MongeFeatureMap, MongeRepairer
from .partial import PartialRepairer, dampen_repair, repair_damage
from .pipeline import RepairPipeline, RepairReport
from .plan import FeaturePlan, RepairPlan
from .repair import (DistributionalRepairer, repair_dataset,
                     repair_feature_values)

__all__ = [
    "EXECUTOR_NAMES",
    "SOLVERS",
    "CellDiagnostic",
    "DistributionalRepairer",
    "DriftMonitor",
    "DriftReport",
    "Executor",
    "FeaturePlan",
    "GaussianClassConditional",
    "GeometricRepairer",
    "JointDistributionalRepairer",
    "JointFeaturePlan",
    "JointRepairPlan",
    "MongeFeatureMap",
    "MongeRepairer",
    "PartialRepairer",
    "ProcessExecutor",
    "RepairPipeline",
    "RepairPlan",
    "RepairReport",
    "SerialExecutor",
    "SubgroupLabelModel",
    "ThreadExecutor",
    "dampen_repair",
    "design_feature_plan",
    "design_joint_repair",
    "design_repair",
    "em_refine",
    "geometric_repair_1d",
    "geometric_repair_multivariate",
    "load_plan",
    "repair_damage",
    "resolve_executor",
    "save_plan",
    "repair_dataset",
    "repair_feature_values",
]
