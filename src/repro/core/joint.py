"""Joint (multivariate) distributional repair — beyond the paper.

The paper repairs each feature independently (Algorithm 1 is
``(u, s, k)``-stratified) to escape the curse of dimensionality, and
Section VI concedes the cost: intra-feature correlation structure is
neglected, so dependence living in the *joint* distribution survives the
repair.  This module implements the natural extension for small feature
counts: the same design — interpolate, barycentre, transport — executed
on a **product grid** over all features at once.

* Supports are product grids ``Q_1 × ... × Q_d`` (``n_Q^d`` states, so
  intended for ``d ≤ 3``).
* Marginals are multivariate product-kernel KDE interpolations.
* The barycentre and the plans are entropic (Sinkhorn / iterative
  Bregman): the product-grid problems are no longer 1-D, so the monotone
  shortcut is unavailable.
* Repair generalises Algorithm 2: per-dimension Bernoulli rounding picks
  a product cell, then a multinomial draw over the plan row returns a
  full repaired feature *vector*.

The correlation ablation bench contrasts this with the per-feature repair
on data whose unfairness hides in the correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from .._validation import as_rng, check_positive_int, check_probability
from ..data.dataset import FairnessDataset
from ..density.bandwidth import select_bandwidth
from ..density.grid import InterpolationGrid
from ..density.kde import gaussian_kernel
from ..exceptions import NotFittedError, ValidationError
from ..ot.barycenter import sinkhorn_barycenter
from ..ot.cost import squared_euclidean_cost
from ..ot.coupling import conditional_cumulative, sample_conditional_rows
from ..ot.problem import OTBatch, OTProblem
from ..ot.registry import filter_opts, resolve_solver
from ..ot.solve import solve_many
from .backend import get_backend
from .executor import resolve_executor

__all__ = ["JointFeaturePlan", "JointRepairPlan", "design_joint_repair",
           "JointDistributionalRepairer"]

#: Hard cap on product-grid states; beyond this the entropic solves stop
#: being interactive and the per-feature method is the right tool anyway.
_MAX_STATES = 20_000


@dataclass(frozen=True)
class JointFeaturePlan:
    """Joint-repair machinery for one ``u`` group.

    Attributes
    ----------
    grids:
        One :class:`InterpolationGrid` per feature dimension.
    nodes:
        ``(N, d)`` product-grid points, ``N = Π n_Q``.
    marginals:
        ``s -> flat pmf`` over the product grid.
    barycenter:
        Repair-target pmf over the product grid.
    conditionals:
        ``s -> (N, N) row-normalised conditional matrix`` of the plan —
        dense, or a CSR sparse array when the plan solver kept the
        coupling sparse.
    """

    grids: tuple
    nodes: np.ndarray
    marginals: dict
    barycenter: np.ndarray
    conditionals: dict

    def __post_init__(self) -> None:
        object.__setattr__(self, "_sampler_cache", {})

    @property
    def shape(self) -> tuple:
        return tuple(grid.n_states for grid in self.grids)

    @property
    def n_states(self) -> int:
        return int(np.prod(self.shape))

    def sample_states(self, s: int, flat_rows, uniforms) -> np.ndarray:
        """Inverse-CDF draw over ``conditionals[s]`` rows; for CSR
        conditionals the running cumulative sum is cached per ``s`` (it is
        recomputed otherwise on every repair batch)."""
        conditionals = self.conditionals[s]
        cumulative = None
        if sparse.issparse(conditionals):
            cache = getattr(self, "_sampler_cache")
            if s not in cache:
                cache[s] = conditional_cumulative(conditionals)
            cumulative = cache[s]
        return sample_conditional_rows(conditionals, flat_rows, uniforms,
                                       cumulative=cumulative)


@dataclass(frozen=True)
class JointRepairPlan:
    """Mapping ``u -> JointFeaturePlan`` plus design metadata."""

    group_plans: dict
    n_features: int
    t: float
    metadata: dict

    def group_plan(self, u: int) -> JointFeaturePlan:
        try:
            return self.group_plans[u]
        except KeyError:
            raise ValidationError(
                f"no joint plan designed for group u={u}") from None


def _product_nodes(grids) -> np.ndarray:
    axes = [grid.nodes for grid in grids]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.column_stack([m.ravel() for m in mesh])


def _joint_kde_pmf(samples: np.ndarray, grids,
                   bandwidth_method: str) -> np.ndarray:
    """Product-Gaussian-kernel pmf of ``samples`` on the product grid."""
    per_dim = []
    for k, grid in enumerate(grids):
        h = select_bandwidth(samples[:, k], bandwidth_method)
        # (n_states_k, n_samples) kernel evaluations for dimension k.
        per_dim.append(gaussian_kernel(
            grid.nodes[:, None] - samples[None, :, k], h))
    # pmf[q1,...,qd] = sum_i prod_k per_dim[k][q_k, i]
    acc = per_dim[0]
    for block in per_dim[1:]:
        acc = np.einsum("...i,qi->...qi", acc, block)
    pmf = acc.sum(axis=-1).ravel()
    total = pmf.sum()
    if total <= 0.0 or not np.isfinite(total):
        raise ValidationError(
            "joint KDE interpolation produced a degenerate pmf")
    return pmf / total


def design_joint_repair(research: FairnessDataset, n_states: int = 15, *,
                        t: float = 0.5, epsilon: float = 5e-3,
                        bandwidth_method: str = "silverman",
                        padding: float = 0.0,
                        max_iter: int = 20_000,
                        solver="sinkhorn",
                        n_jobs: int | None = None,
                        executor=None,
                        backend=None) -> JointRepairPlan:
    """Design the joint repair on a product grid, per ``u`` group.

    ``solver`` is any registry-resolvable spec for the plan solves; the
    barycentre itself is always entropic.  The product-grid problems are
    multi-dimensional, so the 1-D ``"exact"`` solver is not applicable —
    ``"sinkhorn"`` (default) and ``"screened"`` are the practical
    choices.

    Like the per-feature design, the plan solves are batched: each
    group's ``(u, s)`` problem pair goes through one
    :func:`repro.ot.solve.solve_many` call, with ``executor=`` /
    ``n_jobs`` fanning the (non-batchable, entropic) solves over the
    execution engine — worthwhile because each product-grid solve is
    dense ``O(N²)`` work (see :mod:`repro.core.executor`).  Batching is
    per group, not across groups: the product-grid cost matrices are
    ``O(N²)`` apiece, so each group's cost and plans are released
    before the next group is designed.
    """
    resolved = resolve_solver(solver)
    resolved_backend = get_backend(backend)  # typos fail before designing
    n_states = check_positive_int(n_states, name="n_states", minimum=2)
    t = check_probability(t, name="t")
    if n_jobs is not None:
        n_jobs = check_positive_int(n_jobs, name="n_jobs")
    engine = resolve_executor(executor, n_jobs=n_jobs, solver=resolved)
    d = research.n_features
    if n_states ** d > _MAX_STATES:
        raise ValidationError(
            f"product grid would have {n_states ** d} states "
            f"(> {_MAX_STATES}); reduce n_states or the feature count, "
            "or use the per-feature DistributionalRepairer")

    # Options are signature-filtered once for every group's batch:
    # sinkhorn takes epsilon/max_iter/tol, screened maps the iteration
    # budget to its screening phase, exact solvers receive none.
    opts = filter_opts(resolved, {"epsilon": epsilon,
                                  "max_iter": max_iter,
                                  "screen_max_iter": max_iter,
                                  "tol": 1e-9})
    group_plans = {}
    ot_diagnostics: dict = {}
    for u in research.u_values:
        group = research.group(int(u))
        if not ((group.s == 0).any() and (group.s == 1).any()):
            raise ValidationError(
                f"group u={int(u)} lacks research data for both "
                "protected classes")
        grids = tuple(
            InterpolationGrid.from_samples(group.features[:, k], n_states,
                                           padding=padding)
            for k in range(d))
        nodes = _product_nodes(grids)
        marginals = {
            s: _joint_kde_pmf(group.features[group.s == s], grids,
                              bandwidth_method)
            for s in (0, 1)
        }
        cost = squared_euclidean_cost(nodes, nodes)
        target = sinkhorn_barycenter(cost, [marginals[0], marginals[1]],
                                     weights=[1.0 - t, t],
                                     epsilon=epsilon, max_iter=max_iter,
                                     tol=1e-9)
        # One solve_many over the group's (s = 0, 1) pair — the two
        # problems share the group's cost matrix and fan over the
        # engine; the cost and plans are dropped before the next group.
        results = solve_many(
            OTBatch(tuple(OTProblem.from_cost(cost, marginals[s], target)
                          for s in (0, 1))),
            method=resolved, executor=engine, backend=backend, **opts)
        conditionals = {}
        for s in (0, 1):
            result = results[s]
            ot_diagnostics.setdefault(int(u), {})[s] = result.summary()
            # Row-normalise through TransportPlan: vectorised, zero rows
            # fall back to a nearest-target point mass, and CSR plans
            # (e.g. from the "screened" solver) stay sparse.
            conditionals[s] = result.plan.conditional_matrix()
        group_plans[int(u)] = JointFeaturePlan(
            grids=grids, nodes=nodes, marginals=marginals,
            barycenter=target, conditionals=conditionals)

    metadata = {"epsilon": epsilon, "n_states": n_states,
                "bandwidth_method": bandwidth_method,
                "n_research": len(research),
                "solver": resolved.name,
                "executor": getattr(engine, "name", type(engine).__name__),
                # Honest provenance: solvers that are not backend-aware
                # drop the knob and run on numpy/scipy regardless.
                "backend": (resolved_backend.name
                            if filter_opts(resolved, {"backend": None})
                            else "numpy"),
                "ot": ot_diagnostics}
    return JointRepairPlan(group_plans=group_plans, n_features=d, t=t,
                           metadata=metadata)


class JointDistributionalRepairer:
    """fit/transform wrapper around the joint product-grid repair.

    Parameters mirror :class:`~repro.core.repair.DistributionalRepairer`
    where applicable; ``solver`` takes any registry-resolvable spec
    suitable for multi-dimensional problems (``"sinkhorn"`` default,
    ``"screened"`` for an exact-on-sparse-support alternative), and
    ``executor`` / ``n_jobs`` fan the batched ``(u, s)`` plan solves
    over the execution engine, and ``backend`` selects the compute
    backend of the (backend-aware) entropic solves (see
    :func:`design_joint_repair`).
    """

    def __init__(self, n_states: int = 15, *, t: float = 0.5,
                 epsilon: float = 5e-3,
                 bandwidth_method: str = "silverman",
                 padding: float = 0.0, solver="sinkhorn",
                 n_jobs: int | None = None, executor=None,
                 backend=None, rng=None) -> None:
        resolve_solver(solver)  # fail fast on typos
        get_backend(backend)  # likewise for the compute backend
        self.n_states = n_states
        self.t = t
        self.epsilon = epsilon
        self.bandwidth_method = bandwidth_method
        self.padding = padding
        self.solver = solver
        self.n_jobs = n_jobs
        self.executor = executor
        self.backend = backend
        self._rng = as_rng(rng)
        self._plan: JointRepairPlan | None = None

    @property
    def plan(self) -> JointRepairPlan:
        if self._plan is None:
            raise NotFittedError(
                "JointDistributionalRepairer.fit must run first")
        return self._plan

    @property
    def is_fitted(self) -> bool:
        return self._plan is not None

    def fit(self, research: FairnessDataset) -> "JointDistributionalRepairer":
        self._plan = design_joint_repair(
            research, self.n_states, t=self.t, epsilon=self.epsilon,
            bandwidth_method=self.bandwidth_method, padding=self.padding,
            solver=self.solver, n_jobs=self.n_jobs,
            executor=self.executor, backend=self.backend)
        return self

    def transform(self, dataset: FairnessDataset, *,
                  rng=None) -> FairnessDataset:
        """Repair full feature vectors via the joint plans."""
        plan = self.plan
        if dataset.n_features != plan.n_features:
            raise ValidationError(
                f"dataset has {dataset.n_features} features, joint plan "
                f"expects {plan.n_features}")
        generator = self._rng if rng is None else as_rng(rng)
        repaired = dataset.features.copy()
        for u in dataset.u_values:
            group_plan = plan.group_plan(int(u))
            for s in (0, 1):
                mask = dataset.group_mask(int(u), s)
                if not mask.any():
                    continue
                repaired[mask] = self._repair_block(
                    dataset.features[mask], group_plan, s, generator)
        return dataset.with_features(repaired)

    def fit_transform(self, research: FairnessDataset, *,
                      rng=None) -> FairnessDataset:
        return self.fit(research).transform(research, rng=rng)

    @staticmethod
    def _repair_block(values: np.ndarray, group_plan: JointFeaturePlan,
                      s: int, generator: np.random.Generator) -> np.ndarray:
        shape = group_plan.shape
        # Per-dimension Bernoulli rounding (Algorithm 2 lines 5-8, once
        # per coordinate) selects the product cell.
        per_dim_rows = []
        for k, grid in enumerate(group_plan.grids):
            idx, tau = grid.locate(values[:, k])
            advance = (generator.random(values.shape[0]) < tau).astype(int)
            per_dim_rows.append(np.minimum(idx + advance,
                                           grid.n_states - 1))
        flat_rows = np.ravel_multi_index(tuple(per_dim_rows), shape)

        draws = generator.random(values.shape[0])
        states = group_plan.sample_states(s, flat_rows, draws)
        return group_plan.nodes[states]
