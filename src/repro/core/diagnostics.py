"""Stationarity diagnostics for deployed repair plans.

The method's "main active assumption" (Section IV-A1) is that the
research data are a representative sample of the stationary composite
population.  When archives drift — new cohorts, seasonality, upstream
schema changes — two symptoms appear:

* archival values fall outside the interpolated supports ``Q`` (they get
  clipped to the boundary cells), and
* the archival marginal on ``Q`` diverges from the research-designed
  marginal ``µ_{u,s,k}``.

:class:`DriftMonitor` watches both, per ``(u, s, k)`` cell, so an operator
can tell *when the plans need re-designing* — exactly the question the
paper defers to deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_in_range
from ..data.dataset import FairnessDataset
from ..exceptions import ValidationError
from ..ot.barycenter import project_onto_grid
from ..ot.onedim import wasserstein_1d
from ..metrics.divergence import total_variation
from .plan import RepairPlan

__all__ = ["CellDiagnostic", "DriftReport", "DriftMonitor"]


@dataclass(frozen=True)
class CellDiagnostic:
    """Drift evidence for one ``(u, s, k)`` cell.

    Attributes
    ----------
    coverage:
        Fraction of archival values inside the cell's grid range; low
        coverage means boundary clipping is distorting repairs.
    w1_shift:
        ``W1`` distance between the designed marginal and the archival
        marginal, normalised by the grid span (0 = identical, 1 = moved
        across the whole support).
    tv_shift:
        Total-variation distance between the two marginals on ``Q``.
    n_points:
        Archival points that contributed.
    """

    u: int
    s: int
    k: int
    coverage: float
    w1_shift: float
    tv_shift: float
    n_points: int

    def is_drifted(self, *, min_coverage: float = 0.98,
                   max_w1_shift: float = 0.1) -> bool:
        """Conservative per-cell drift verdict."""
        return (self.coverage < min_coverage
                or self.w1_shift > max_w1_shift)


@dataclass(frozen=True)
class DriftReport:
    """All cell diagnostics for one archival batch."""

    cells: tuple
    min_coverage: float = 0.98
    max_w1_shift: float = 0.1

    @property
    def drifted_cells(self) -> tuple:
        return tuple(c for c in self.cells
                     if c.is_drifted(min_coverage=self.min_coverage,
                                     max_w1_shift=self.max_w1_shift))

    @property
    def any_drift(self) -> bool:
        return bool(self.drifted_cells)

    @property
    def worst_coverage(self) -> float:
        return min((c.coverage for c in self.cells), default=1.0)

    @property
    def worst_w1_shift(self) -> float:
        return max((c.w1_shift for c in self.cells), default=0.0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flagged = len(self.drifted_cells)
        return (f"DriftReport({len(self.cells)} cells, {flagged} drifted, "
                f"worst coverage {self.worst_coverage:.3f}, worst W1 "
                f"shift {self.worst_w1_shift:.3f})")


class DriftMonitor:
    """Checks archival batches against a fitted repair plan.

    Parameters
    ----------
    plan:
        The deployed :class:`~repro.core.plan.RepairPlan`.
    min_coverage, max_w1_shift:
        Thresholds used for the per-cell drift verdicts.
    """

    def __init__(self, plan: RepairPlan, *, min_coverage: float = 0.98,
                 max_w1_shift: float = 0.1) -> None:
        if not isinstance(plan, RepairPlan):
            raise ValidationError(
                f"DriftMonitor expects a RepairPlan, got "
                f"{type(plan).__name__}")
        self._plan = plan
        self.min_coverage = check_in_range(
            min_coverage, name="min_coverage", low=0.0, high=1.0)
        self.max_w1_shift = float(max_w1_shift)
        if self.max_w1_shift < 0.0:
            raise ValidationError("max_w1_shift must be >= 0")

    def check(self, batch: FairnessDataset) -> DriftReport:
        """Diagnose one labelled archival batch against the plan."""
        if batch.n_features != self._plan.n_features:
            raise ValidationError(
                f"batch has {batch.n_features} features, plan expects "
                f"{self._plan.n_features}")
        cells = []
        for u in batch.u_values:
            if not self._plan.covers(int(u)):
                raise ValidationError(
                    f"plan has no design for group u={int(u)}")
            for s in (0, 1):
                mask = batch.group_mask(int(u), s)
                if not mask.any():
                    continue
                for k in range(batch.n_features):
                    cells.append(self._diagnose_cell(
                        batch.features[mask, k], int(u), s, k))
        return DriftReport(cells=tuple(cells),
                           min_coverage=self.min_coverage,
                           max_w1_shift=self.max_w1_shift)

    def _diagnose_cell(self, values: np.ndarray, u: int, s: int,
                       k: int) -> CellDiagnostic:
        feature_plan = self._plan.feature_plan(u, k)
        grid = feature_plan.grid
        coverage = grid.coverage(values)
        uniform = np.full(values.size, 1.0 / values.size)
        archival_pmf = project_onto_grid(values, uniform, grid.nodes)
        designed_pmf = feature_plan.marginals[s]
        span = max(grid.high - grid.low, 1e-300)
        w1 = wasserstein_1d(grid.nodes, designed_pmf, grid.nodes,
                            archival_pmf, p=1) / span
        tv = total_variation(designed_pmf, archival_pmf)
        return CellDiagnostic(u=u, s=s, k=k, coverage=coverage,
                              w1_shift=float(w1), tv_shift=float(tv),
                              n_points=int(values.size))
