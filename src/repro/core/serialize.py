"""Persistence for repair plans.

The whole point of the paper's method is *design once, apply forever*:
the plans ``π*_{u,s,k}`` are computed on the research data and then used
to repair unbounded archival torrents. In a real deployment the design
and application happen in different processes (or machines, or months),
so the plan must survive a round-trip to disk.

:func:`save_plan` / :func:`load_plan` serialise a
:class:`~repro.core.plan.RepairPlan` to a single ``.npz`` archive: every
array under a structured key plus a JSON header carrying the design
metadata. The format is versioned and validated on load.

On-disk layout (format version 2)
---------------------------------

* ``__header__`` — UTF-8 JSON with ``format_version``, ``n_features``,
  ``t``, ``metadata``, the ``cells`` list of ``[u, k]`` pairs, each
  cell's actual protected-class labels under ``s_values``
  (``"u_k" -> [s, ...]``), and optional per-cell solver ``diagnostics``.
* per cell ``(u, k)``: ``cell_{u}_{k}_nodes`` and
  ``cell_{u}_{k}_barycenter``; per protected class ``s``:
  ``cell_{u}_{k}_marginal_{s}``, ``cell_{u}_{k}_cost_{s}``, and the plan
  ``π*_{u,s,k}`` stored **either** densely under ``cell_{u}_{k}_plan_{s}``
  **or** as the CSR triplet ``cell_{u}_{k}_plan_{s}_data`` /
  ``..._indices`` / ``..._indptr`` when the in-memory
  :class:`~repro.ot.coupling.TransportPlan` is CSR-backed.  Sparse
  storage is what makes large-``n_Q`` screened designs archive at
  ``O(n_Q)`` instead of ``O(n_Q²)`` bytes.
* the header's optional ``plan_dtype`` field records the storage
  precision of the plan arrays: ``save_plan(..., dtype="float32")``
  quantises the plan mass (CSR ``data`` / dense matrices) to ~1e-7
  relative for another ~2x of plan bytes on disk; everything else stays
  float64 and loaders up-convert on read.
* v2 archives are written as plain (uncompressed) ``.npz`` by default:
  with sparse plan storage there is almost nothing left for deflate to
  win (measured ≤ 1.4x on screened designs) while compression slows the
  save/load hot path of a long-lived repair service.  Pass
  ``compress=True`` to restore deflate — worthwhile for archives that
  keep fully dense entropic plans.

Compatibility policy
--------------------

``load_plan`` reads both version 2 and the original version 1 layout
(always-dense plans, no ``s_values`` header field).  For v1 archives the
protected-class labels are recovered from the array keys themselves, so
v1 plans designed with labels other than ``{0, 1}`` — which the original
loader wrongly rejected as corrupt — now load too.  ``save_plan`` always
writes the current version; there is no downgrade path.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..density.grid import InterpolationGrid
from ..exceptions import DataError, ValidationError
from ..ot.coupling import TransportPlan
from .plan import FeaturePlan, RepairPlan

__all__ = ["save_plan", "load_plan", "FORMAT_VERSION", "PLAN_DTYPES"]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2

#: Oldest archive version :func:`load_plan` still reads.
_OLDEST_READABLE_VERSION = 1


#: Transport-plan storage dtypes :func:`save_plan` accepts.
PLAN_DTYPES = ("float64", "float32")


def save_plan(plan: RepairPlan, path, *, compress: bool = False,
              dtype=None) -> Path:
    """Serialise ``plan`` to ``path`` (a ``.npz`` archive).

    CSR-backed transports are stored as ``(data, indices, indptr)``
    triplets, dense ones as full matrices.  ``compress`` opts into
    deflate (see the module docstring for the trade-off).  ``dtype``
    selects the storage precision of the transport-plan arrays only
    (CSR ``data`` / dense matrices): the default ``"float64"`` is
    exact, ``"float32"`` quantises the plan mass to ~1e-7 relative for
    half the plan bytes on disk — grids, marginals, barycentres and
    cost values always stay float64, and loaders up-convert, so a
    quantised archive round-trips into ordinary float64
    :class:`~repro.ot.coupling.TransportPlan` objects.  The choice is
    recorded in the header (``plan_dtype``, a format-v2 field; archives
    written before the field existed read as float64).  Returns the
    resolved path actually written (numpy appends ``.npz`` when
    missing).
    """
    if not isinstance(plan, RepairPlan):
        raise ValidationError(
            f"save_plan expects a RepairPlan, got {type(plan).__name__}")
    plan_dtype = np.dtype("float64" if dtype is None else dtype)
    if plan_dtype.name not in PLAN_DTYPES:
        raise ValidationError(
            f"unsupported plan dtype {dtype!r}; expected one of "
            f"{PLAN_DTYPES}")
    file_path = Path(path)

    header = {
        "format_version": FORMAT_VERSION,
        "n_features": plan.n_features,
        "t": plan.t,
        # Storage precision of the plan arrays (marginals/supports/cost
        # values stay float64); absent in archives written before the
        # field existed, which are float64 by construction.
        "plan_dtype": plan_dtype.name,
        "metadata": _jsonable(plan.metadata),
        "cells": [[int(u), int(k)] for (u, k) in sorted(plan.feature_plans)],
        # Each cell's actual protected-class labels; round-tripping them
        # (instead of assuming {0, 1}) is what keeps "design once, apply
        # forever" true for any label encoding.
        "s_values": {
            f"{int(u)}_{int(k)}": [_int_label(s)
                                   for s in feature_plan.s_values]
            for (u, k), feature_plan in plan.feature_plans.items()
        },
        # Per-cell OTResult summaries; optional (absent in old archives).
        "diagnostics": {
            f"{int(u)}_{int(k)}": {
                str(_int_label(s)): _jsonable(record)
                if isinstance(record, dict) else _scalar(record)
                for s, record in feature_plan.diagnostics.items()
            }
            for (u, k), feature_plan in plan.feature_plans.items()
            if feature_plan.diagnostics
        },
    }
    arrays = {"__header__": np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)}
    for (u, k), feature_plan in plan.feature_plans.items():
        prefix = f"cell_{u}_{k}"
        arrays[f"{prefix}_nodes"] = feature_plan.grid.nodes
        arrays[f"{prefix}_barycenter"] = feature_plan.barycenter
        for s in feature_plan.s_values:
            # Array keys must use the canonical int label the header's
            # s_values advertise, or bool-likes would save under keys
            # (e.g. "..._marginal_True") the loader never looks up.
            label = _int_label(s)
            transport = feature_plan.transports[s]
            arrays[f"{prefix}_marginal_{label}"] = feature_plan.marginals[s]
            arrays[f"{prefix}_cost_{label}"] = np.array(transport.cost)
            if transport.is_sparse:
                matrix = transport.matrix
                arrays[f"{prefix}_plan_{label}_data"] = \
                    matrix.data.astype(plan_dtype, copy=False)
                arrays[f"{prefix}_plan_{label}_indices"] = \
                    matrix.indices.astype(np.int64)
                arrays[f"{prefix}_plan_{label}_indptr"] = \
                    matrix.indptr.astype(np.int64)
            else:
                arrays[f"{prefix}_plan_{label}"] = \
                    transport.matrix.astype(plan_dtype, copy=False)

    writer = np.savez_compressed if compress else np.savez
    writer(file_path, **arrays)
    if file_path.suffix != ".npz":
        file_path = file_path.with_name(file_path.name + ".npz")
    return file_path


def load_plan(path) -> RepairPlan:
    """Load a :class:`RepairPlan` previously written by :func:`save_plan`.

    Reads the current sparse-aware version 2 layout and the original
    version 1 layout (see the module docstring's compatibility policy).

    Raises
    ------
    DataError
        When the file is missing, not a plan archive, or from an
        incompatible format version.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"plan file not found: {file_path}")
    try:
        with np.load(file_path) as archive:
            if "__header__" not in archive:
                raise DataError(
                    f"{file_path} is not a repro plan archive "
                    "(missing header)")
            header = json.loads(bytes(archive["__header__"]).decode("utf-8"))
            _check_version(header, file_path)
            all_s_values = header.get("s_values", {})
            all_diagnostics = header.get("diagnostics", {})
            feature_plans = {}
            for u, k in header["cells"]:
                prefix = f"cell_{u}_{k}"
                nodes = archive[f"{prefix}_nodes"]
                grid = InterpolationGrid(nodes)
                s_values = all_s_values.get(f"{u}_{k}")
                if s_values is None:
                    # v1 archives carried no label list; recover the
                    # labels from the keys instead of assuming {0, 1}.
                    s_values = _infer_s_values(archive.files, prefix)
                marginals = {}
                transports = {}
                for s in s_values:
                    s = int(s)
                    marginals[s] = archive[f"{prefix}_marginal_{s}"]
                    transports[s] = _load_transport(archive, prefix, s,
                                                    nodes)
                diagnostics = {
                    int(s): record
                    for s, record in all_diagnostics.get(f"{u}_{k}",
                                                         {}).items()
                }
                feature_plans[(u, k)] = FeaturePlan(
                    grid=grid, marginals=marginals,
                    barycenter=archive[f"{prefix}_barycenter"],
                    transports=transports, diagnostics=diagnostics)
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise DataError(
            f"{file_path} is corrupt or not a repro plan archive: "
            f"{exc}") from exc
    return RepairPlan(feature_plans=feature_plans,
                      n_features=int(header["n_features"]),
                      t=float(header["t"]),
                      metadata=dict(header.get("metadata", {})))


def _load_transport(archive, prefix: str, s: int,
                    nodes: np.ndarray) -> TransportPlan:
    """One plan from either its dense key or its CSR triplet keys.

    Plan arrays are up-converted to float64 on load (quantised
    ``dtype="float32"`` archives round-trip into ordinary float64
    plans).
    """
    cost = float(archive[f"{prefix}_cost_{s}"])
    dense_key = f"{prefix}_plan_{s}"
    if dense_key in archive:
        matrix = np.asarray(archive[dense_key], dtype=np.float64)
        return TransportPlan(matrix, nodes, nodes, cost)
    n = nodes.size
    return TransportPlan.from_sparse(
        (np.asarray(archive[f"{dense_key}_data"], dtype=np.float64),
         archive[f"{dense_key}_indices"],
         archive[f"{dense_key}_indptr"]),
        nodes, nodes, cost, shape=(n, n))


def _infer_s_values(keys, prefix: str) -> list:
    """Protected-class labels present for ``prefix``, from the key names."""
    marker = f"{prefix}_marginal_"
    s_values = sorted(int(key[len(marker):]) for key in keys
                      if key.startswith(marker))
    if not s_values:
        raise KeyError(f"no marginals stored for cell {prefix!r}")
    return s_values


def _check_version(header: dict, file_path: Path) -> None:
    version = header.get("format_version")
    if (not isinstance(version, int)
            or not (_OLDEST_READABLE_VERSION <= version <= FORMAT_VERSION)):
        raise DataError(
            f"{file_path} uses plan-format version {version}; this "
            f"library reads versions {_OLDEST_READABLE_VERSION}.."
            f"{FORMAT_VERSION}")


def _int_label(s) -> int:
    """Protected-class labels are persisted as ints; reject anything else
    early so the archive cannot be written unreadably."""
    if isinstance(s, (bool, np.bool_)):
        return int(s)
    if isinstance(s, (int, np.integer)):
        return int(s)
    raise ValidationError(
        f"plan archives require integer protected-class labels, got "
        f"{s!r} ({type(s).__name__})")


def _jsonable(metadata: dict) -> dict:
    """Best-effort conversion of metadata values to JSON-safe types."""
    out = {}
    for key, value in metadata.items():
        if isinstance(value, dict):
            out[str(key)] = {str(k): _scalar(v) for k, v in value.items()}
        else:
            out[str(key)] = _scalar(value)
    return out


def _scalar(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
