"""Persistence for repair plans.

The whole point of the paper's method is *design once, apply forever*:
the plans ``π*_{u,s,k}`` are computed on the research data and then used
to repair unbounded archival torrents. In a real deployment the design
and application happen in different processes (or machines, or months),
so the plan must survive a round-trip to disk.

:func:`save_plan` / :func:`load_plan` serialise a
:class:`~repro.core.plan.RepairPlan` to a single ``.npz`` archive: every
array under a structured key plus a JSON header carrying the design
metadata. The format is versioned and validated on load.

On-disk layout (format version 2)
---------------------------------

* ``__header__`` — UTF-8 JSON with ``format_version``, ``n_features``,
  ``t``, ``metadata``, the ``cells`` list of ``[u, k]`` pairs, each
  cell's actual protected-class labels under ``s_values``
  (``"u_k" -> [s, ...]``), and optional per-cell solver ``diagnostics``.
* per cell ``(u, k)``: ``cell_{u}_{k}_nodes`` and
  ``cell_{u}_{k}_barycenter``; per protected class ``s``:
  ``cell_{u}_{k}_marginal_{s}``, ``cell_{u}_{k}_cost_{s}``, and the plan
  ``π*_{u,s,k}`` stored **either** densely under ``cell_{u}_{k}_plan_{s}``
  **or** as the CSR triplet ``cell_{u}_{k}_plan_{s}_data`` /
  ``..._indices`` / ``..._indptr`` when the in-memory
  :class:`~repro.ot.coupling.TransportPlan` is CSR-backed.  Sparse
  storage is what makes large-``n_Q`` screened designs archive at
  ``O(n_Q)`` instead of ``O(n_Q²)`` bytes.
* CSR index arrays (``indices`` / ``indptr``) are written as ``int32``
  whenever the plan shape and non-zero count fit (they always do below
  ``n_Q ~ 2·10⁹``), halving the index bytes that dominate sparse
  archives; pass ``index_dtype="int64"`` to force the old layout.
  Loaders accept either width transparently.
* the header's optional ``plan_dtype`` field records the storage
  precision of the plan arrays: ``save_plan(..., dtype="float32")``
  quantises the plan mass (CSR ``data`` / dense matrices) to ~1e-7
  relative for another ~2x of plan bytes on disk; everything else stays
  float64 and loaders up-convert on read.
* v2 archives are written as plain (uncompressed) ``.npz`` by default:
  with sparse plan storage there is almost nothing left for deflate to
  win (measured ≤ 1.4x on screened designs) while compression slows the
  save/load hot path of a long-lived repair service.  Pass
  ``compress=True`` to restore deflate — worthwhile for archives that
  keep fully dense entropic plans.  Uncompressed archives are also what
  :func:`load_plan`'s ``mmap=True`` mode (below) maps zero-copy.

Memory-mapped loading
---------------------

``load_plan(path, mmap=True)`` exposes every stored array as a read-only
view over one shared ``mmap`` of the archive file instead of reading the
bytes eagerly: worker start-up touches only the JSON header and the zip
directory, plan bytes fault in lazily on first use, and — because the
mapping is backed by the page cache — N serving workers mapping the same
archive share one physical copy of the plan.  Members that are deflated
(``compress=True`` archives) silently fall back to an eager read.  The
mapping lives exactly as long as arrays viewing it do.

Sharded archives
----------------

``save_plan(..., shard_by=...)`` splits one design across several
archives so a fleet of serving workers can each map only the cells they
serve: ``shard_by="u"`` groups cells per unprotected group,
``shard_by="cell"`` writes one archive per ``(u, k)`` cell, and an
integer ``n`` chunks the sorted cell list into ``n`` near-equal shards.
The returned path is a JSON *manifest* (``<stem>.manifest.json``)
naming each shard file and the cells it carries; every shard is itself
a valid v2 ``.npz`` restricted to its cells.  ``load_plan`` reads a
manifest transparently (merging all shards back into one
:class:`RepairPlan`); :class:`ShardedPlanArchive` is the lazy,
cell-addressable view the serving tier uses to map shards on demand.

Compatibility policy
--------------------

``load_plan`` reads both version 2 and the original version 1 layout
(always-dense plans, no ``s_values`` header field).  For v1 archives the
protected-class labels are recovered from the array keys themselves, so
v1 plans designed with labels other than ``{0, 1}`` — which the original
loader wrongly rejected as corrupt — now load too.  ``save_plan`` always
writes the current version; there is no downgrade path.
"""

from __future__ import annotations

import ast
import json
import mmap as _mmap_module
import struct
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..density.grid import InterpolationGrid
from ..exceptions import DataError, ValidationError
from ..ot.coupling import TransportPlan
from .plan import FeaturePlan, RepairPlan

__all__ = ["save_plan", "load_plan", "ShardedPlanArchive",
           "FORMAT_VERSION", "PLAN_DTYPES", "INDEX_DTYPES", "SHARD_MODES"]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2

#: Oldest archive version :func:`load_plan` still reads.
_OLDEST_READABLE_VERSION = 1


#: Transport-plan storage dtypes :func:`save_plan` accepts.
PLAN_DTYPES = ("float64", "float32")

#: CSR index storage dtypes :func:`save_plan` accepts (``None`` = auto).
INDEX_DTYPES = ("int32", "int64")

#: Named sharding policies of ``save_plan(..., shard_by=...)`` (an
#: integer shard count is also accepted).
SHARD_MODES = ("u", "cell")

#: Manifest files announce themselves with this marker field.
_MANIFEST_FORMAT = "repro-plan-manifest"


def save_plan(plan: RepairPlan, path, *, compress: bool = False,
              dtype=None, index_dtype=None, shard_by=None) -> Path:
    """Serialise ``plan`` to ``path`` (a ``.npz`` archive).

    CSR-backed transports are stored as ``(data, indices, indptr)``
    triplets, dense ones as full matrices.  ``compress`` opts into
    deflate (see the module docstring for the trade-off).  ``dtype``
    selects the storage precision of the transport-plan arrays only
    (CSR ``data`` / dense matrices): the default ``"float64"`` is
    exact, ``"float32"`` quantises the plan mass to ~1e-7 relative for
    half the plan bytes on disk — grids, marginals, barycentres and
    cost values always stay float64, and loaders up-convert, so a
    quantised archive round-trips into ordinary float64
    :class:`~repro.ot.coupling.TransportPlan` objects.  The choice is
    recorded in the header (``plan_dtype``, a format-v2 field; archives
    written before the field existed read as float64).

    ``index_dtype`` controls the width of the CSR index arrays: the
    default ``None`` picks ``int32`` whenever the plan shape and
    non-zero count fit (halving the index bytes that dominate sparse
    archives) and ``int64`` otherwise; pass ``"int32"`` / ``"int64"``
    to force a width (forcing ``int32`` on an overflowing plan raises).

    ``shard_by`` splits the design across several archives plus a JSON
    manifest — ``"u"`` (one shard per unprotected group), ``"cell"``
    (one per ``(u, k)`` cell) or an integer shard count; see the module
    docstring.  Returns the resolved path actually written — the
    ``.npz`` archive (numpy appends the suffix when missing), or the
    manifest path when sharding.
    """
    if not isinstance(plan, RepairPlan):
        raise ValidationError(
            f"save_plan expects a RepairPlan, got {type(plan).__name__}")
    plan_dtype = np.dtype("float64" if dtype is None else dtype)
    if plan_dtype.name not in PLAN_DTYPES:
        raise ValidationError(
            f"unsupported plan dtype {dtype!r}; expected one of "
            f"{PLAN_DTYPES}")
    if index_dtype is not None and str(index_dtype) not in INDEX_DTYPES:
        raise ValidationError(
            f"unsupported index dtype {index_dtype!r}; expected one of "
            f"{INDEX_DTYPES} or None (auto)")
    file_path = Path(path)
    if shard_by is not None:
        return _save_sharded(plan, file_path, shard_by, compress,
                             plan_dtype, index_dtype)
    return _write_archive(plan, sorted(plan.feature_plans), file_path,
                          compress, plan_dtype, index_dtype)


def _write_archive(plan: RepairPlan, cells, file_path: Path,
                   compress: bool, plan_dtype: np.dtype,
                   index_dtype) -> Path:
    """Write one ``.npz`` archive holding the given cell subset."""
    header = {
        "format_version": FORMAT_VERSION,
        "n_features": plan.n_features,
        "t": plan.t,
        # Storage precision of the plan arrays (marginals/supports/cost
        # values stay float64); absent in archives written before the
        # field existed, which are float64 by construction.
        "plan_dtype": plan_dtype.name,
        "metadata": _jsonable(plan.metadata),
        "cells": [[int(u), int(k)] for (u, k) in sorted(cells)],
        # Each cell's actual protected-class labels; round-tripping them
        # (instead of assuming {0, 1}) is what keeps "design once, apply
        # forever" true for any label encoding.
        "s_values": {
            f"{int(u)}_{int(k)}": [_int_label(s)
                                   for s in plan.feature_plans[(u, k)]
                                   .s_values]
            for (u, k) in cells
        },
        # Per-cell OTResult summaries; optional (absent in old archives).
        "diagnostics": {
            f"{int(u)}_{int(k)}": {
                str(_int_label(s)): _jsonable(record)
                if isinstance(record, dict) else _scalar(record)
                for s, record in plan.feature_plans[(u, k)]
                .diagnostics.items()
            }
            for (u, k) in cells
            if plan.feature_plans[(u, k)].diagnostics
        },
    }
    arrays = {"__header__": np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)}
    for (u, k) in cells:
        feature_plan = plan.feature_plans[(u, k)]
        prefix = f"cell_{u}_{k}"
        arrays[f"{prefix}_nodes"] = feature_plan.grid.nodes
        arrays[f"{prefix}_barycenter"] = feature_plan.barycenter
        for s in feature_plan.s_values:
            # Array keys must use the canonical int label the header's
            # s_values advertise, or bool-likes would save under keys
            # (e.g. "..._marginal_True") the loader never looks up.
            label = _int_label(s)
            transport = feature_plan.transports[s]
            arrays[f"{prefix}_marginal_{label}"] = feature_plan.marginals[s]
            arrays[f"{prefix}_cost_{label}"] = np.array(transport.cost)
            if transport.is_sparse:
                matrix = transport.matrix
                idx_dtype = _csr_index_dtype(matrix, index_dtype)
                arrays[f"{prefix}_plan_{label}_data"] = \
                    matrix.data.astype(plan_dtype, copy=False)
                arrays[f"{prefix}_plan_{label}_indices"] = \
                    matrix.indices.astype(idx_dtype, copy=False)
                arrays[f"{prefix}_plan_{label}_indptr"] = \
                    matrix.indptr.astype(idx_dtype, copy=False)
            else:
                arrays[f"{prefix}_plan_{label}"] = \
                    transport.matrix.astype(plan_dtype, copy=False)

    writer = np.savez_compressed if compress else np.savez
    writer(file_path, **arrays)
    if file_path.suffix != ".npz":
        file_path = file_path.with_name(file_path.name + ".npz")
    return file_path


def _csr_index_dtype(matrix, index_dtype) -> np.dtype:
    """Storage dtype of a CSR plan's ``indices`` / ``indptr`` arrays.

    ``int32`` fits when both the column count (bounds ``indices``) and
    the non-zero count (bounds ``indptr``) stay below ``2³¹``; auto mode
    (``index_dtype=None``) takes it whenever it fits.
    """
    limit = np.iinfo(np.int32).max
    fits = matrix.shape[1] <= limit and matrix.nnz <= limit
    if index_dtype is None:
        return np.dtype(np.int32 if fits else np.int64)
    requested = np.dtype(str(index_dtype))
    if requested == np.int32 and not fits:
        raise ValidationError(
            f"plan with shape {matrix.shape} and nnz {matrix.nnz} "
            "overflows int32 indices; use index_dtype='int64' (or None)")
    return requested


def load_plan(path, *, mmap: bool = False) -> RepairPlan:
    """Load a :class:`RepairPlan` previously written by :func:`save_plan`.

    Reads the current sparse-aware version 2 layout, the original
    version 1 layout, and shard manifests (every shard is loaded and
    merged — see the module docstring's sharding section; use
    :class:`ShardedPlanArchive` for lazy per-cell access).

    With ``mmap=True`` every stored array of an *uncompressed* archive
    becomes a read-only zero-copy view over one shared memory map of
    the file: nothing is read eagerly, plan bytes fault in on first
    use, and concurrent processes mapping the same archive share one
    physical copy.  Deflated members fall back to an eager read.

    Raises
    ------
    DataError
        When the file is missing, not a plan archive, or from an
        incompatible format version.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"plan file not found: {file_path}")
    if _is_manifest(file_path):
        return ShardedPlanArchive(file_path, mmap=mmap).load_all()
    header, feature_plans = _read_archive(file_path, mmap=mmap)
    return RepairPlan(feature_plans=feature_plans,
                      n_features=int(header["n_features"]),
                      t=float(header["t"]),
                      metadata=dict(header.get("metadata", {})))


def _read_archive(file_path: Path, *, mmap: bool = False,
                  cells=None) -> tuple:
    """Header + ``{(u, k): FeaturePlan}`` of one archive file.

    ``cells`` restricts loading to a subset of the archive's cells
    (``None`` loads all).
    """
    try:
        with (_MappedNpz(file_path) if mmap
              else np.load(file_path)) as archive:
            if "__header__" not in archive:
                raise DataError(
                    f"{file_path} is not a repro plan archive "
                    "(missing header)")
            header = json.loads(bytes(archive["__header__"]).decode("utf-8"))
            _check_version(header, file_path)
            all_s_values = header.get("s_values", {})
            all_diagnostics = header.get("diagnostics", {})
            wanted = None if cells is None else {
                (int(u), int(k)) for (u, k) in cells}
            feature_plans = {}
            for u, k in header["cells"]:
                if wanted is not None and (int(u), int(k)) not in wanted:
                    continue
                prefix = f"cell_{u}_{k}"
                nodes = archive[f"{prefix}_nodes"]
                grid = InterpolationGrid(nodes)
                s_values = all_s_values.get(f"{u}_{k}")
                if s_values is None:
                    # v1 archives carried no label list; recover the
                    # labels from the keys instead of assuming {0, 1}.
                    s_values = _infer_s_values(archive.files, prefix)
                marginals = {}
                transports = {}
                for s in s_values:
                    s = int(s)
                    marginals[s] = archive[f"{prefix}_marginal_{s}"]
                    transports[s] = _load_transport(archive, prefix, s,
                                                    nodes)
                diagnostics = {
                    int(s): record
                    for s, record in all_diagnostics.get(f"{u}_{k}",
                                                         {}).items()
                }
                feature_plans[(u, k)] = FeaturePlan(
                    grid=grid, marginals=marginals,
                    barycenter=archive[f"{prefix}_barycenter"],
                    transports=transports, diagnostics=diagnostics)
    except (KeyError, ValueError, json.JSONDecodeError,
            zipfile.BadZipFile) as exc:
        raise DataError(
            f"{file_path} is corrupt or not a repro plan archive: "
            f"{exc}") from exc
    return header, feature_plans


class _MappedNpz:
    """Read an *uncompressed* ``.npz`` as zero-copy views over one mmap.

    ``np.load(mmap_mode=...)`` does not support ``.npz`` archives, so
    this parses the zip directory itself: each stored (deflate-free)
    member's ``.npy`` payload is located inside the file and exposed as
    an ``np.frombuffer`` view over a single shared read-only memory
    map.  The views keep the mapping alive; closing this object only
    releases the zip handle.  Compressed members (``compress=True``
    archives) fall back to an eager in-memory read.
    """

    def __init__(self, path) -> None:
        self._zip = zipfile.ZipFile(path)
        self._mmap = _mmap_module.mmap(self._zip.fp.fileno(), 0,
                                       access=_mmap_module.ACCESS_READ)
        self._members = {info.filename[:-4]: info
                         for info in self._zip.infolist()
                         if info.filename.endswith(".npy")}

    @property
    def files(self) -> list:
        return list(self._members)

    def __contains__(self, key: str) -> bool:
        return key in self._members

    def __getitem__(self, key: str) -> np.ndarray:
        try:
            info = self._members[key]
        except KeyError:
            raise KeyError(f"{key} is not a file in the archive") from None
        if info.compress_type != zipfile.ZIP_STORED:
            with self._zip.open(info.filename) as handle:
                return np.lib.format.read_array(handle,
                                                allow_pickle=False)
        return self._view(info)

    def _view(self, info: zipfile.ZipInfo) -> np.ndarray:
        # The local file header's name/extra lengths can differ from
        # the central directory's, so read them from the local header.
        offset = info.header_offset
        local = self._mmap[offset:offset + 30]
        if len(local) < 30 or local[:4] != b"PK\x03\x04":
            raise DataError(
                f"corrupt zip member {info.filename!r} (bad local header)")
        name_len, extra_len = struct.unpack("<HH", local[26:30])
        return _npy_view(self._mmap, offset + 30 + name_len + extra_len)

    def close(self) -> None:
        self._zip.close()
        try:
            self._mmap.close()
        except BufferError:
            # Live array views still reference the map; it is released
            # when the last of them is garbage-collected.
            pass

    def __enter__(self) -> "_MappedNpz":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _npy_view(buffer, offset: int) -> np.ndarray:
    """A zero-copy ndarray over the ``.npy`` payload at ``offset``."""
    if bytes(buffer[offset:offset + 6]) != b"\x93NUMPY":
        raise DataError("zip member is not a .npy array")
    major = buffer[offset + 6]
    if major == 1:
        (header_len,) = struct.unpack("<H", buffer[offset + 8:offset + 10])
        header_start = offset + 10
    else:
        (header_len,) = struct.unpack("<I", buffer[offset + 8:offset + 12])
        header_start = offset + 12
    header = ast.literal_eval(
        bytes(buffer[header_start:header_start + header_len])
        .decode("latin1"))
    dtype = np.dtype(header["descr"])
    shape = tuple(header["shape"])
    count = int(np.prod(shape)) if shape else 1
    array = np.frombuffer(buffer, dtype=dtype, count=count,
                          offset=header_start + header_len)
    order = "F" if header.get("fortran_order") else "C"
    return array.reshape(shape, order=order)


# -- sharded archives ------------------------------------------------------


def _save_sharded(plan: RepairPlan, file_path: Path, shard_by,
                  compress: bool, plan_dtype: np.dtype,
                  index_dtype) -> Path:
    """Write per-cell-group shard archives plus their JSON manifest."""
    groups = _shard_groups(plan, shard_by)
    stem = file_path.name
    for suffix in (".json", ".npz"):
        if stem.endswith(suffix):
            stem = stem[:-len(suffix)]
    if stem.endswith(".manifest"):
        stem = stem[:-len(".manifest")]
    directory = file_path.parent
    shards = []
    for label, cells in groups:
        shard_name = f"{stem}.shard-{label}.npz"
        _write_archive(plan, cells, directory / shard_name, compress,
                       plan_dtype, index_dtype)
        shards.append({"file": shard_name,
                       "cells": [[int(u), int(k)] for (u, k) in cells]})
    manifest = {
        "format": _MANIFEST_FORMAT,
        "format_version": FORMAT_VERSION,
        "n_features": plan.n_features,
        "t": plan.t,
        "metadata": _jsonable(plan.metadata),
        "shard_by": str(shard_by),
        "shards": shards,
    }
    manifest_path = directory / f"{stem}.manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


def _shard_groups(plan: RepairPlan, shard_by) -> list:
    """``[(label, [cells...]), ...]`` partition of the plan's cells."""
    cells = sorted(plan.feature_plans)
    if shard_by == "u":
        groups: dict = {}
        for (u, k) in cells:
            groups.setdefault(u, []).append((u, k))
        return [(f"u{u}", groups[u]) for u in sorted(groups)]
    if shard_by == "cell":
        return [(f"u{u}-k{k}", [(u, k)]) for (u, k) in cells]
    if isinstance(shard_by, (int, np.integer)) and not isinstance(
            shard_by, bool):
        n_shards = int(shard_by)
        if not 1 <= n_shards <= len(cells):
            raise ValidationError(
                f"shard_by={n_shards} must be in 1..{len(cells)} "
                f"(the cell count)")
        bounds = np.linspace(0, len(cells), n_shards + 1).astype(int)
        return [(str(i), cells[bounds[i]:bounds[i + 1]])
                for i in range(n_shards)]
    raise ValidationError(
        f"unknown shard_by {shard_by!r}; expected one of {SHARD_MODES} "
        "or a shard count")


def _is_manifest(file_path: Path) -> bool:
    """Manifest files are JSON; archives are zip (``PK`` magic)."""
    if file_path.suffix == ".json":
        return True
    with open(file_path, "rb") as handle:
        head = handle.read(2)
    return head not in (b"PK",) and head[:1] in (b"{", b" ", b"\n")


class ShardedPlanArchive:
    """Lazy, cell-addressable view of a sharded plan archive.

    Reads only the manifest up front; each shard archive is opened (and,
    with ``mmap=True``, memory-mapped) the first time one of its cells
    is requested through :meth:`feature_plan`.  This is what lets a
    serving worker map only the cells it actually serves.  ``max_shards``
    bounds how many shards stay resident (least-recently-used eviction);
    ``None`` keeps every touched shard.

    The object quacks enough like a :class:`RepairPlan` for Algorithm-2
    consumers: ``n_features``, ``t``, ``metadata``, ``u_values``,
    ``covers`` and ``feature_plan``.  :meth:`load_all` materialises the
    full plan (what ``load_plan`` does for manifests).
    """

    def __init__(self, manifest_path, *, mmap: bool = False,
                 max_shards: int | None = None) -> None:
        path = Path(manifest_path)
        if not path.exists():
            raise DataError(f"plan manifest not found: {path}")
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise DataError(
                f"{path} is not a plan manifest: {exc}") from exc
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise DataError(
                f"{path} is not a plan manifest (format field "
                f"{manifest.get('format')!r})")
        _check_version(manifest, path)
        if max_shards is not None and max_shards < 1:
            raise ValidationError(
                f"max_shards must be >= 1 or None, got {max_shards}")
        self._path = path
        self._mmap = mmap
        self._max_shards = max_shards
        self.n_features = int(manifest["n_features"])
        self.t = float(manifest["t"])
        self.metadata = dict(manifest.get("metadata", {}))
        self._shards = manifest["shards"]
        self._cell_to_shard = {}
        for index, shard in enumerate(self._shards):
            for (u, k) in shard["cells"]:
                self._cell_to_shard[(int(u), int(k))] = index
        if not self._cell_to_shard:
            raise DataError(f"{path} names no cells")
        #: shard index -> {(u, k): FeaturePlan}, LRU-ordered.
        self._resident: OrderedDict = OrderedDict()
        self.shard_loads = 0
        self.shard_evictions = 0

    @property
    def cells(self) -> tuple:
        return tuple(sorted(self._cell_to_shard))

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def u_values(self) -> tuple:
        return tuple(sorted({u for (u, _) in self._cell_to_shard}))

    def covers(self, u: int) -> bool:
        return all((u, k) in self._cell_to_shard
                   for k in range(self.n_features))

    def shard_path(self, index: int) -> Path:
        return self._path.parent / self._shards[index]["file"]

    def feature_plan(self, u: int, k: int) -> FeaturePlan:
        """The cell's :class:`FeaturePlan`, mapping its shard on demand."""
        try:
            index = self._cell_to_shard[(int(u), int(k))]
        except KeyError:
            raise ValidationError(
                f"no plan designed for (u={u}, k={k}); available groups "
                f"{self.u_values}") from None
        cells = self._shard_cells(index)
        return cells[(int(u), int(k))]

    def _shard_cells(self, index: int) -> dict:
        if index in self._resident:
            self._resident.move_to_end(index)
            return self._resident[index]
        cells = self._load_shard(index)
        self._resident[index] = cells
        self.shard_loads += 1
        if (self._max_shards is not None
                and len(self._resident) > self._max_shards):
            self._resident.popitem(last=False)
            self.shard_evictions += 1
        return cells

    def _load_shard(self, index: int) -> dict:
        shard_file = self.shard_path(index)
        if not shard_file.exists():
            raise DataError(
                f"shard {shard_file} named by {self._path} is missing")
        _, feature_plans = _read_archive(shard_file, mmap=self._mmap)
        return feature_plans

    def load_all(self) -> RepairPlan:
        """Materialise every shard into one :class:`RepairPlan`."""
        feature_plans = {}
        for index in range(len(self._shards)):
            feature_plans.update(self._load_shard(index))
        return RepairPlan(feature_plans=feature_plans,
                          n_features=self.n_features, t=self.t,
                          metadata=dict(self.metadata))

    def stats(self) -> dict:
        """Residency counters for the serving tier's ``/stats``."""
        return {"n_shards": self.n_shards,
                "resident": len(self._resident),
                "loads": self.shard_loads,
                "evictions": self.shard_evictions}


def _load_transport(archive, prefix: str, s: int,
                    nodes: np.ndarray) -> TransportPlan:
    """One plan from either its dense key or its CSR triplet keys.

    Plan arrays are up-converted to float64 on load (quantised
    ``dtype="float32"`` archives round-trip into ordinary float64
    plans); CSR index arrays are accepted at either stored width
    (int32 / int64).
    """
    cost = float(archive[f"{prefix}_cost_{s}"])
    dense_key = f"{prefix}_plan_{s}"
    if dense_key in archive:
        matrix = np.asarray(archive[dense_key], dtype=np.float64)
        return TransportPlan(matrix, nodes, nodes, cost)
    n = nodes.size
    return TransportPlan.from_sparse(
        (np.asarray(archive[f"{dense_key}_data"], dtype=np.float64),
         archive[f"{dense_key}_indices"],
         archive[f"{dense_key}_indptr"]),
        nodes, nodes, cost, shape=(n, n))


def _infer_s_values(keys, prefix: str) -> list:
    """Protected-class labels present for ``prefix``, from the key names."""
    marker = f"{prefix}_marginal_"
    s_values = sorted(int(key[len(marker):]) for key in keys
                      if key.startswith(marker))
    if not s_values:
        raise KeyError(f"no marginals stored for cell {prefix!r}")
    return s_values


def _check_version(header: dict, file_path: Path) -> None:
    version = header.get("format_version")
    if (not isinstance(version, int)
            or not (_OLDEST_READABLE_VERSION <= version <= FORMAT_VERSION)):
        raise DataError(
            f"{file_path} uses plan-format version {version}; this "
            f"library reads versions {_OLDEST_READABLE_VERSION}.."
            f"{FORMAT_VERSION}")


def _int_label(s) -> int:
    """Protected-class labels are persisted as ints; reject anything else
    early so the archive cannot be written unreadably."""
    if isinstance(s, (bool, np.bool_)):
        return int(s)
    if isinstance(s, (int, np.integer)):
        return int(s)
    raise ValidationError(
        f"plan archives require integer protected-class labels, got "
        f"{s!r} ({type(s).__name__})")


def _jsonable(metadata: dict) -> dict:
    """Best-effort conversion of metadata values to JSON-safe types."""
    out = {}
    for key, value in metadata.items():
        if isinstance(value, dict):
            out[str(key)] = {str(k): _scalar(v) for k, v in value.items()}
        else:
            out[str(key)] = _scalar(value)
    return out


def _scalar(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
