"""Persistence for repair plans.

The whole point of the paper's method is *design once, apply forever*:
the plans ``π*_{u,s,k}`` are computed on the research data and then used
to repair unbounded archival torrents. In a real deployment the design
and application happen in different processes (or machines, or months),
so the plan must survive a round-trip to disk.

:func:`save_plan` / :func:`load_plan` serialise a
:class:`~repro.core.plan.RepairPlan` to a single ``.npz`` archive: every
array under a structured key plus a JSON header carrying the design
metadata. The format is versioned and validated on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..density.grid import InterpolationGrid
from ..exceptions import DataError, ValidationError
from ..ot.coupling import TransportPlan
from .plan import FeaturePlan, RepairPlan

__all__ = ["save_plan", "load_plan", "FORMAT_VERSION"]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def save_plan(plan: RepairPlan, path) -> Path:
    """Serialise ``plan`` to ``path`` (a ``.npz`` archive).

    Returns the resolved path actually written (numpy appends ``.npz``
    when missing).
    """
    if not isinstance(plan, RepairPlan):
        raise ValidationError(
            f"save_plan expects a RepairPlan, got {type(plan).__name__}")
    file_path = Path(path)

    header = {
        "format_version": FORMAT_VERSION,
        "n_features": plan.n_features,
        "t": plan.t,
        "metadata": _jsonable(plan.metadata),
        "cells": [[int(u), int(k)] for (u, k) in sorted(plan.feature_plans)],
        # Per-cell OTResult summaries; optional (absent in old archives).
        "diagnostics": {
            f"{int(u)}_{int(k)}": {
                str(s): _jsonable(record) if isinstance(record, dict)
                else _scalar(record)
                for s, record in feature_plan.diagnostics.items()
            }
            for (u, k), feature_plan in plan.feature_plans.items()
            if feature_plan.diagnostics
        },
    }
    arrays = {"__header__": np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)}
    for (u, k), feature_plan in plan.feature_plans.items():
        prefix = f"cell_{u}_{k}"
        arrays[f"{prefix}_nodes"] = feature_plan.grid.nodes
        arrays[f"{prefix}_barycenter"] = feature_plan.barycenter
        for s in feature_plan.s_values:
            arrays[f"{prefix}_marginal_{s}"] = feature_plan.marginals[s]
            arrays[f"{prefix}_plan_{s}"] = feature_plan.transports[s].matrix
            arrays[f"{prefix}_cost_{s}"] = np.array(
                feature_plan.transports[s].cost)

    np.savez_compressed(file_path, **arrays)
    if file_path.suffix != ".npz":
        file_path = file_path.with_name(file_path.name + ".npz")
    return file_path


def load_plan(path) -> RepairPlan:
    """Load a :class:`RepairPlan` previously written by :func:`save_plan`.

    Raises
    ------
    DataError
        When the file is missing, not a plan archive, or from an
        incompatible format version.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"plan file not found: {file_path}")
    try:
        with np.load(file_path) as archive:
            if "__header__" not in archive:
                raise DataError(
                    f"{file_path} is not a repro plan archive "
                    "(missing header)")
            header = json.loads(bytes(archive["__header__"]).decode("utf-8"))
            _check_version(header, file_path)
            all_diagnostics = header.get("diagnostics", {})
            feature_plans = {}
            for u, k in header["cells"]:
                prefix = f"cell_{u}_{k}"
                nodes = archive[f"{prefix}_nodes"]
                grid = InterpolationGrid(nodes)
                marginals = {}
                transports = {}
                for s in (0, 1):
                    marginals[s] = archive[f"{prefix}_marginal_{s}"]
                    transports[s] = TransportPlan(
                        archive[f"{prefix}_plan_{s}"], nodes, nodes,
                        float(archive[f"{prefix}_cost_{s}"]))
                diagnostics = {
                    int(s): record
                    for s, record in all_diagnostics.get(f"{u}_{k}",
                                                         {}).items()
                }
                feature_plans[(u, k)] = FeaturePlan(
                    grid=grid, marginals=marginals,
                    barycenter=archive[f"{prefix}_barycenter"],
                    transports=transports, diagnostics=diagnostics)
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise DataError(
            f"{file_path} is corrupt or not a repro plan archive: "
            f"{exc}") from exc
    return RepairPlan(feature_plans=feature_plans,
                      n_features=int(header["n_features"]),
                      t=float(header["t"]),
                      metadata=dict(header.get("metadata", {})))


def _check_version(header: dict, file_path: Path) -> None:
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise DataError(
            f"{file_path} uses plan-format version {version}; this "
            f"library reads version {FORMAT_VERSION}")


def _jsonable(metadata: dict) -> dict:
    """Best-effort conversion of metadata values to JSON-safe types."""
    out = {}
    for key, value in metadata.items():
        if isinstance(value, dict):
            out[str(key)] = {str(k): _scalar(v) for k, v in value.items()}
        else:
            out[str(key)] = _scalar(value)
    return out


def _scalar(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
