"""Algorithm 2 — off-sample (archival) repair, plus the estimator API.

Given the plans from Algorithm 1, each ``(u, s)``-labelled archival point
``x`` is repaired per feature by:

1. locating its grid cell ``q`` and within-cell offset ``τ`` (Eq. 14),
2. a Bernoulli trial ``a ~ B(τ)`` selecting row ``q + a`` of ``π*`` —
   the first source of randomness,
3. a multinomial draw from the normalised selected row (Eq. 15) — the
   second source of randomness — yielding the repaired grid state.

The procedure preserves the cardinality of the archive, is ``O(log n_Q)``
per point after an ``O(n_Q²)`` per-plan precomputation, and never touches
the research data again — hence "torrent-ready".

:class:`DistributionalRepairer` wraps Algorithms 1 + 2 in a familiar
``fit`` / ``transform`` estimator interface with streaming support.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_rng
from ..data.dataset import FairnessDataset
from ..data.streaming import ArchiveStream
from ..exceptions import NotFittedError, ValidationError
from ..ot.coupling import conditional_cumulative, sample_conditional_rows
from ..ot.registry import resolve_solver
from .backend import get_backend
from .design import design_repair
from .plan import FeaturePlan, RepairPlan

__all__ = ["repair_feature_values", "repair_dataset",
           "prepare_feature_repair", "PreparedFeatureRepair",
           "DistributionalRepairer"]

#: Supported rounding modes for the grid-cell selection step.
ROUNDING_MODES = ("stochastic", "nearest")
#: Supported output modes for the repaired value.
OUTPUT_MODES = ("sample", "barycentric", "interpolated")


def repair_feature_values(values, feature_plan: FeaturePlan, s: int, *,
                          rng=None, rounding: str = "stochastic",
                          output: str = "sample") -> np.ndarray:
    """Repair a vector of one feature's values for one ``(u, s)`` subgroup.

    Parameters
    ----------
    values:
        Archival observations of a single feature within one subgroup.
    feature_plan:
        The ``(u, k)`` bundle from Algorithm 1.
    s:
        Protected label of these observations (selects ``π*_{·,s}``).
    rounding:
        ``"stochastic"`` is the paper's Bernoulli trial on ``τ``;
        ``"nearest"`` deterministically picks the closer grid node
        (ablation).
    output:
        ``"sample"`` draws from the conditional row (the paper's Eq. 15);
        ``"barycentric"`` returns the conditional mean (deterministic
        ablation; loses the mass-split randomisation);
        ``"interpolated"`` draws the grid state as ``"sample"`` does and
        then adds uniform within-cell jitter — an extension producing
        *continuous* repaired values whose grid projection matches the
        sampled pmf, so the repaired support is not quantised to ``Q``.
    """
    if rounding not in ROUNDING_MODES:
        raise ValidationError(
            f"unknown rounding {rounding!r}; expected {ROUNDING_MODES}")
    if output not in OUTPUT_MODES:
        raise ValidationError(
            f"unknown output {output!r}; expected {OUTPUT_MODES}")
    xs = np.atleast_1d(np.asarray(values, dtype=float))
    if xs.size == 0:
        return xs.copy()

    grid = feature_plan.grid
    idx, tau = grid.locate(xs)
    if rounding == "stochastic":
        generator = as_rng(rng)
        advance = (generator.random(xs.size) < tau).astype(int)
    else:
        advance = (tau >= 0.5).astype(int)
    rows = np.minimum(idx + advance, grid.n_states - 1)

    if output == "barycentric":
        return feature_plan.expected_targets(s)[rows]

    generator = as_rng(rng)
    draws = generator.random(xs.size)
    # Vectorised inverse-CDF sampling, storage-agnostic: dense plans go
    # through the cached row-CDF matrix, CSR plans sample on the sparse
    # conditional structure without densifying (see
    # FeaturePlan.sample_targets).
    states = feature_plan.sample_targets(s, rows, draws)
    repaired = grid.nodes[states]
    if output == "interpolated":
        jitter = generator.uniform(-0.5, 0.5, size=xs.size) * grid.spacing
        repaired = np.clip(repaired + jitter, grid.low, grid.high)
    return repaired


class PreparedFeatureRepair:
    """Validation-free Algorithm-2 kernel for one ``(u, s, k)`` cell.

    :func:`repair_feature_values` re-validates its inputs on every call
    (mode strings, array coercion, finiteness, transport lookup) —
    negligible for one batch repair, but pure overhead in a serving
    loop that dispatches the same cell thousands of times per second on
    already-validated rows.  Preparing a cell hoists all of that out of
    the hot path **and owns its sampling state** (the dense row-CDF
    table or the sparse conditional sampler), so a bounded cache of
    prepared cells really bounds the memory the tables occupy —
    :class:`FeaturePlan`'s internal caches are bypassed entirely.

    The kernel is **bit-identical** to :func:`repair_feature_values`:
    same operations, same random-stream consumption (asserted by
    ``tests/core/test_repair.py``).  Randomness is split out so a
    micro-batcher can draw each request's variates from its own
    generator (in the exact order the one-request path would) and still
    apply the deterministic part to many requests' values in one
    vectorised dispatch:

    * :meth:`draw` consumes from a generator exactly what
      :func:`repair_feature_values` would for ``n`` values;
    * :meth:`apply` maps ``(values, variates) -> repaired`` with no
      randomness and no validation — concatenation-safe, because every
      operation is element-wise over the batch;
    * calling the object does both, for the one-request case.

    Callers must pre-validate: ``values`` is a finite float64 1-D array
    (non-finite entries produce garbage here instead of the facade's
    :class:`ValidationError`).
    """

    __slots__ = ("rounding", "output", "n_states", "_nodes", "_low",
                 "_high", "_spacing", "_expected", "_cdfs", "_sparse")

    def __init__(self, feature_plan: FeaturePlan, s: int, *,
                 rounding: str = "stochastic",
                 output: str = "sample") -> None:
        if rounding not in ROUNDING_MODES:
            raise ValidationError(
                f"unknown rounding {rounding!r}; expected {ROUNDING_MODES}")
        if output not in OUTPUT_MODES:
            raise ValidationError(
                f"unknown output {output!r}; expected {OUTPUT_MODES}")
        if s not in feature_plan.transports:
            raise ValidationError(
                f"no transport plan for s={s}; have "
                f"{feature_plan.s_values}")
        grid = feature_plan.grid
        self.rounding = rounding
        self.output = output
        self.n_states = grid.n_states
        self._nodes = grid.nodes
        self._low = grid.low
        self._high = grid.high
        self._spacing = grid.spacing
        self._expected = None
        self._cdfs = None
        self._sparse = None
        transport = feature_plan.transports[s]
        if output == "barycentric":
            self._expected = feature_plan.expected_targets(s)
        elif transport.is_sparse:
            conditionals = transport.conditional_matrix()
            self._sparse = (conditionals,
                            conditional_cumulative(conditionals))
        else:
            self._cdfs = np.cumsum(transport.conditional_matrix(), axis=1)

    @property
    def nbytes(self) -> int:
        """Approximate bytes of owned sampling state (cache accounting)."""
        total = 0
        if self._expected is not None:
            total += self._expected.nbytes
        if self._cdfs is not None:
            total += self._cdfs.nbytes
        if self._sparse is not None:
            conditionals, cumulative = self._sparse
            total += (conditionals.data.nbytes
                      + conditionals.indices.nbytes
                      + conditionals.indptr.nbytes + cumulative.nbytes)
        return total

    def draw(self, rng: np.random.Generator, n: int) -> tuple:
        """The ``(advance, draws, jitter)`` uniform variates ``n`` values
        need, consumed from ``rng`` in exactly the order (and only the
        amounts) :func:`repair_feature_values` consumes them."""
        advance = rng.random(n) if self.rounding == "stochastic" else None
        draws = jitter = None
        if self.output != "barycentric":
            draws = rng.random(n)
            if self.output == "interpolated":
                jitter = rng.uniform(-0.5, 0.5, size=n)
        return advance, draws, jitter

    def apply(self, values: np.ndarray, variates: tuple) -> np.ndarray:
        """Deterministic repair of pre-validated ``values`` under the
        pre-drawn ``variates``.  Element-wise, hence concatenation-safe
        across requests."""
        advance_u, draws, jitter = variates
        nodes = self._nodes
        clipped = np.clip(values, self._low, self._high)
        idx = np.searchsorted(nodes, clipped, side="right") - 1
        idx = np.clip(idx, 0, self.n_states - 2)
        gaps = nodes[idx + 1] - nodes[idx]
        tau = np.clip((clipped - nodes[idx]) / gaps, 0.0, 1.0)
        if self.rounding == "stochastic":
            advance = (advance_u < tau).astype(int)
        else:
            advance = (tau >= 0.5).astype(int)
        rows = np.minimum(idx + advance, self.n_states - 1)
        if self.output == "barycentric":
            return self._expected[rows]
        if self._sparse is not None:
            conditionals, cumulative = self._sparse
            states = sample_conditional_rows(conditionals, rows, draws,
                                             cumulative=cumulative)
        else:
            # `_cdfs` is shared state; only mutate the np.take copy.
            row_cdfs = np.take(self._cdfs, rows, axis=0)
            row_cdfs[:, -1] = 1.0  # guard round-off (< 1.0 row sums)
            states = (row_cdfs < draws[:, None]).sum(axis=1)
            states = np.minimum(states, self.n_states - 1)
        repaired = nodes[states]
        if self.output == "interpolated":
            repaired = np.clip(repaired + jitter * self._spacing,
                               self._low, self._high)
        return repaired

    def __call__(self, values: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        return self.apply(values, self.draw(rng, values.size))


def prepare_feature_repair(feature_plan: FeaturePlan, s: int, *,
                           rounding: str = "stochastic",
                           output: str = "sample") -> PreparedFeatureRepair:
    """Hoist one cell's validation and sampling-state construction out
    of the Algorithm-2 hot path (see :class:`PreparedFeatureRepair`)."""
    return PreparedFeatureRepair(feature_plan, s, rounding=rounding,
                                 output=output)


def repair_dataset(dataset: FairnessDataset, plan: RepairPlan, *,
                   rng=None, rounding: str = "stochastic",
                   output: str = "sample") -> FairnessDataset:
    """Apply Algorithm 2 to every row of a labelled data set.

    Rows whose ``u`` group has no designed plan raise, because silently
    passing them through would corrupt downstream fairness measurements.
    """
    if dataset.n_features != plan.n_features:
        raise ValidationError(
            f"dataset has {dataset.n_features} features, plan was designed "
            f"for {plan.n_features}")
    missing = [int(u) for u in dataset.u_values if not plan.covers(int(u))]
    if missing:
        raise ValidationError(
            f"plan has no design for groups u={missing}; re-run Algorithm 1 "
            "on research data covering them")

    generator = as_rng(rng)
    repaired = dataset.features.copy()
    for u in dataset.u_values:
        for s in (0, 1):
            mask = dataset.group_mask(int(u), s)
            if not mask.any():
                continue
            for k in range(dataset.n_features):
                repaired[mask, k] = repair_feature_values(
                    dataset.features[mask, k],
                    plan.feature_plan(int(u), k), s, rng=generator,
                    rounding=rounding, output=output)
    return dataset.with_features(repaired)


class DistributionalRepairer:
    """Estimator-style interface for the paper's full method.

    ``fit`` runs Algorithm 1 on the research data; ``transform`` runs
    Algorithm 2 on any labelled data set (on-sample or archival);
    ``transform_stream`` repairs an unbounded archive batch-by-batch.

    Parameters
    ----------
    n_states:
        Grid resolution ``n_Q`` (int, or ``(u, k) -> int`` mapping).
    t:
        Repair-target position on the W2 geodesic; ``0.5`` = full fair
        repair, smaller values move the target toward ``µ_0``.
    solver:
        Plan solver — any spec the OT registry resolves: a registered
        name (``"exact"`` default, ``"simplex"``, ``"lp"``,
        ``"sinkhorn"``, ``"sinkhorn_log"``, ``"screened"``, ``"auto"``),
        a callable ``fn(problem, **opts)``, or a
        :class:`~repro.ot.registry.Solver` instance.  Typos fail at
        construction time with the list of available solvers.
    solver_opts:
        Extra solver keyword options (e.g. ``{"coarsen": 4}`` for
        ``"multiscale"``, ``{"k": 32}`` for ``"screened"``), offered to
        the plan solver with signature filtering (see
        :func:`~repro.core.design.design_repair`).
    rounding, output:
        Algorithm-2 randomisation controls (see
        :func:`repair_feature_values`).
    n_jobs:
        Worker budget of the Algorithm-1 execution engine (see
        :func:`~repro.core.design.design_repair`); ``None``/1 designs
        serially.
    executor:
        Execution strategy for the design's non-vectorised work:
        ``"serial"``, ``"thread"``, ``"process"``, ``"auto"``/``None``,
        or any object with ``map(fn, iterable)`` — see
        :mod:`repro.core.executor`.  Batch-kernel solvers (the default
        ``"exact"``) solve all same-grid cells in one vectorised
        dispatch regardless of the strategy; every strategy is
        bit-identical to the serial design.
    backend:
        Compute backend for the Algorithm-1 plan solves
        (:func:`repro.core.backend.get_backend`): ``None``/``"auto"``
        for the bit-identical numpy reference, ``"torch"``/``"cupy"``
        for device execution.  Unknown or unavailable backends fail at
        construction time; the resolved name is recorded in the plan
        metadata next to the executor strategy.
    sparse_plans:
        Plan-storage policy: ``False`` (keep whatever the solver
        produced), ``True`` (force CSR), or ``"auto"`` (CSR when the plan
        density is below the threshold).
    rng:
        Seed or generator for the repair randomness; ``transform`` also
        accepts a per-call override.
    """

    def __init__(self, n_states=50, *, t: float = 0.5,
                 solver="exact",
                 marginal_estimator: str = "kde",
                 bandwidth_method: str = "silverman",
                 padding: float = 0.0, epsilon: float = 5e-3,
                 solver_opts: dict | None = None,
                 rounding: str = "stochastic", output: str = "sample",
                 n_jobs: int | None = None, executor=None,
                 backend=None, sparse_plans=False, rng=None) -> None:
        if rounding not in ROUNDING_MODES:
            raise ValidationError(
                f"unknown rounding {rounding!r}; expected {ROUNDING_MODES}")
        if output not in OUTPUT_MODES:
            raise ValidationError(
                f"unknown output {output!r}; expected {OUTPUT_MODES}")
        resolve_solver(solver)  # fail fast on typos, before any fitting
        get_backend(backend)  # likewise for the compute backend
        self.n_states = n_states
        self.t = t
        self.solver = solver
        self.marginal_estimator = marginal_estimator
        self.bandwidth_method = bandwidth_method
        self.padding = padding
        self.epsilon = epsilon
        self.solver_opts = dict(solver_opts or {})
        self.rounding = rounding
        self.output = output
        self.n_jobs = n_jobs
        self.executor = executor
        self.backend = backend
        self.sparse_plans = sparse_plans
        self._rng = as_rng(rng)
        self._plan: RepairPlan | None = None

    @property
    def plan(self) -> RepairPlan:
        """The fitted :class:`RepairPlan` (raises before ``fit``)."""
        if self._plan is None:
            raise NotFittedError(
                "DistributionalRepairer.fit must be called before the plan "
                "is available")
        return self._plan

    @property
    def is_fitted(self) -> bool:
        return self._plan is not None

    def fit(self, research: FairnessDataset) -> "DistributionalRepairer":
        """Design the repair plans on the research data (Algorithm 1)."""
        self._plan = design_repair(
            research, self.n_states, t=self.t, solver=self.solver,
            marginal_estimator=self.marginal_estimator,
            bandwidth_method=self.bandwidth_method, padding=self.padding,
            epsilon=self.epsilon, solver_opts=self.solver_opts,
            n_jobs=self.n_jobs, executor=self.executor,
            backend=self.backend, sparse_plans=self.sparse_plans)
        return self

    def transform(self, dataset: FairnessDataset, *,
                  rng=None) -> FairnessDataset:
        """Repair a labelled data set (Algorithm 2)."""
        generator = self._rng if rng is None else as_rng(rng)
        return repair_dataset(dataset, self.plan, rng=generator,
                              rounding=self.rounding, output=self.output)

    def fit_transform(self, research: FairnessDataset, *,
                      rng=None) -> FairnessDataset:
        """Fit on the research data and repair it (on-sample repair)."""
        return self.fit(research).transform(research, rng=rng)

    def transform_stream(self, stream, *, rng=None):
        """Repair an archival stream batch-by-batch (lazily).

        Parameters
        ----------
        stream:
            An :class:`~repro.data.streaming.ArchiveStream` or any iterable
            of :class:`FairnessDataset` batches.

        Yields
        ------
        FairnessDataset
            Each repaired batch, in arrival order.
        """
        generator = self._rng if rng is None else as_rng(rng)
        if not self.is_fitted:
            raise NotFittedError(
                "DistributionalRepairer.fit must be called before "
                "transform_stream")
        if not isinstance(stream, ArchiveStream):
            stream = iter(stream)
        for batch in stream:
            yield self.transform(batch, rng=generator)
