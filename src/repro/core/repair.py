"""Algorithm 2 — off-sample (archival) repair, plus the estimator API.

Given the plans from Algorithm 1, each ``(u, s)``-labelled archival point
``x`` is repaired per feature by:

1. locating its grid cell ``q`` and within-cell offset ``τ`` (Eq. 14),
2. a Bernoulli trial ``a ~ B(τ)`` selecting row ``q + a`` of ``π*`` —
   the first source of randomness,
3. a multinomial draw from the normalised selected row (Eq. 15) — the
   second source of randomness — yielding the repaired grid state.

The procedure preserves the cardinality of the archive, is ``O(log n_Q)``
per point after an ``O(n_Q²)`` per-plan precomputation, and never touches
the research data again — hence "torrent-ready".

:class:`DistributionalRepairer` wraps Algorithms 1 + 2 in a familiar
``fit`` / ``transform`` estimator interface with streaming support.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_rng
from ..data.dataset import FairnessDataset
from ..data.streaming import ArchiveStream
from ..exceptions import NotFittedError, ValidationError
from ..ot.registry import resolve_solver
from .backend import get_backend
from .design import design_repair
from .plan import FeaturePlan, RepairPlan

__all__ = ["repair_feature_values", "repair_dataset",
           "DistributionalRepairer"]

#: Supported rounding modes for the grid-cell selection step.
ROUNDING_MODES = ("stochastic", "nearest")
#: Supported output modes for the repaired value.
OUTPUT_MODES = ("sample", "barycentric", "interpolated")


def repair_feature_values(values, feature_plan: FeaturePlan, s: int, *,
                          rng=None, rounding: str = "stochastic",
                          output: str = "sample") -> np.ndarray:
    """Repair a vector of one feature's values for one ``(u, s)`` subgroup.

    Parameters
    ----------
    values:
        Archival observations of a single feature within one subgroup.
    feature_plan:
        The ``(u, k)`` bundle from Algorithm 1.
    s:
        Protected label of these observations (selects ``π*_{·,s}``).
    rounding:
        ``"stochastic"`` is the paper's Bernoulli trial on ``τ``;
        ``"nearest"`` deterministically picks the closer grid node
        (ablation).
    output:
        ``"sample"`` draws from the conditional row (the paper's Eq. 15);
        ``"barycentric"`` returns the conditional mean (deterministic
        ablation; loses the mass-split randomisation);
        ``"interpolated"`` draws the grid state as ``"sample"`` does and
        then adds uniform within-cell jitter — an extension producing
        *continuous* repaired values whose grid projection matches the
        sampled pmf, so the repaired support is not quantised to ``Q``.
    """
    if rounding not in ROUNDING_MODES:
        raise ValidationError(
            f"unknown rounding {rounding!r}; expected {ROUNDING_MODES}")
    if output not in OUTPUT_MODES:
        raise ValidationError(
            f"unknown output {output!r}; expected {OUTPUT_MODES}")
    xs = np.atleast_1d(np.asarray(values, dtype=float))
    if xs.size == 0:
        return xs.copy()

    grid = feature_plan.grid
    idx, tau = grid.locate(xs)
    if rounding == "stochastic":
        generator = as_rng(rng)
        advance = (generator.random(xs.size) < tau).astype(int)
    else:
        advance = (tau >= 0.5).astype(int)
    rows = np.minimum(idx + advance, grid.n_states - 1)

    if output == "barycentric":
        return feature_plan.expected_targets(s)[rows]

    generator = as_rng(rng)
    draws = generator.random(xs.size)
    # Vectorised inverse-CDF sampling, storage-agnostic: dense plans go
    # through the cached row-CDF matrix, CSR plans sample on the sparse
    # conditional structure without densifying (see
    # FeaturePlan.sample_targets).
    states = feature_plan.sample_targets(s, rows, draws)
    repaired = grid.nodes[states]
    if output == "interpolated":
        jitter = generator.uniform(-0.5, 0.5, size=xs.size) * grid.spacing
        repaired = np.clip(repaired + jitter, grid.low, grid.high)
    return repaired


def repair_dataset(dataset: FairnessDataset, plan: RepairPlan, *,
                   rng=None, rounding: str = "stochastic",
                   output: str = "sample") -> FairnessDataset:
    """Apply Algorithm 2 to every row of a labelled data set.

    Rows whose ``u`` group has no designed plan raise, because silently
    passing them through would corrupt downstream fairness measurements.
    """
    if dataset.n_features != plan.n_features:
        raise ValidationError(
            f"dataset has {dataset.n_features} features, plan was designed "
            f"for {plan.n_features}")
    missing = [int(u) for u in dataset.u_values if not plan.covers(int(u))]
    if missing:
        raise ValidationError(
            f"plan has no design for groups u={missing}; re-run Algorithm 1 "
            "on research data covering them")

    generator = as_rng(rng)
    repaired = dataset.features.copy()
    for u in dataset.u_values:
        for s in (0, 1):
            mask = dataset.group_mask(int(u), s)
            if not mask.any():
                continue
            for k in range(dataset.n_features):
                repaired[mask, k] = repair_feature_values(
                    dataset.features[mask, k],
                    plan.feature_plan(int(u), k), s, rng=generator,
                    rounding=rounding, output=output)
    return dataset.with_features(repaired)


class DistributionalRepairer:
    """Estimator-style interface for the paper's full method.

    ``fit`` runs Algorithm 1 on the research data; ``transform`` runs
    Algorithm 2 on any labelled data set (on-sample or archival);
    ``transform_stream`` repairs an unbounded archive batch-by-batch.

    Parameters
    ----------
    n_states:
        Grid resolution ``n_Q`` (int, or ``(u, k) -> int`` mapping).
    t:
        Repair-target position on the W2 geodesic; ``0.5`` = full fair
        repair, smaller values move the target toward ``µ_0``.
    solver:
        Plan solver — any spec the OT registry resolves: a registered
        name (``"exact"`` default, ``"simplex"``, ``"lp"``,
        ``"sinkhorn"``, ``"sinkhorn_log"``, ``"screened"``, ``"auto"``),
        a callable ``fn(problem, **opts)``, or a
        :class:`~repro.ot.registry.Solver` instance.  Typos fail at
        construction time with the list of available solvers.
    solver_opts:
        Extra solver keyword options (e.g. ``{"coarsen": 4}`` for
        ``"multiscale"``, ``{"k": 32}`` for ``"screened"``), offered to
        the plan solver with signature filtering (see
        :func:`~repro.core.design.design_repair`).
    rounding, output:
        Algorithm-2 randomisation controls (see
        :func:`repair_feature_values`).
    n_jobs:
        Worker budget of the Algorithm-1 execution engine (see
        :func:`~repro.core.design.design_repair`); ``None``/1 designs
        serially.
    executor:
        Execution strategy for the design's non-vectorised work:
        ``"serial"``, ``"thread"``, ``"process"``, ``"auto"``/``None``,
        or any object with ``map(fn, iterable)`` — see
        :mod:`repro.core.executor`.  Batch-kernel solvers (the default
        ``"exact"``) solve all same-grid cells in one vectorised
        dispatch regardless of the strategy; every strategy is
        bit-identical to the serial design.
    backend:
        Compute backend for the Algorithm-1 plan solves
        (:func:`repro.core.backend.get_backend`): ``None``/``"auto"``
        for the bit-identical numpy reference, ``"torch"``/``"cupy"``
        for device execution.  Unknown or unavailable backends fail at
        construction time; the resolved name is recorded in the plan
        metadata next to the executor strategy.
    sparse_plans:
        Plan-storage policy: ``False`` (keep whatever the solver
        produced), ``True`` (force CSR), or ``"auto"`` (CSR when the plan
        density is below the threshold).
    rng:
        Seed or generator for the repair randomness; ``transform`` also
        accepts a per-call override.
    """

    def __init__(self, n_states=50, *, t: float = 0.5,
                 solver="exact",
                 marginal_estimator: str = "kde",
                 bandwidth_method: str = "silverman",
                 padding: float = 0.0, epsilon: float = 5e-3,
                 solver_opts: dict | None = None,
                 rounding: str = "stochastic", output: str = "sample",
                 n_jobs: int | None = None, executor=None,
                 backend=None, sparse_plans=False, rng=None) -> None:
        if rounding not in ROUNDING_MODES:
            raise ValidationError(
                f"unknown rounding {rounding!r}; expected {ROUNDING_MODES}")
        if output not in OUTPUT_MODES:
            raise ValidationError(
                f"unknown output {output!r}; expected {OUTPUT_MODES}")
        resolve_solver(solver)  # fail fast on typos, before any fitting
        get_backend(backend)  # likewise for the compute backend
        self.n_states = n_states
        self.t = t
        self.solver = solver
        self.marginal_estimator = marginal_estimator
        self.bandwidth_method = bandwidth_method
        self.padding = padding
        self.epsilon = epsilon
        self.solver_opts = dict(solver_opts or {})
        self.rounding = rounding
        self.output = output
        self.n_jobs = n_jobs
        self.executor = executor
        self.backend = backend
        self.sparse_plans = sparse_plans
        self._rng = as_rng(rng)
        self._plan: RepairPlan | None = None

    @property
    def plan(self) -> RepairPlan:
        """The fitted :class:`RepairPlan` (raises before ``fit``)."""
        if self._plan is None:
            raise NotFittedError(
                "DistributionalRepairer.fit must be called before the plan "
                "is available")
        return self._plan

    @property
    def is_fitted(self) -> bool:
        return self._plan is not None

    def fit(self, research: FairnessDataset) -> "DistributionalRepairer":
        """Design the repair plans on the research data (Algorithm 1)."""
        self._plan = design_repair(
            research, self.n_states, t=self.t, solver=self.solver,
            marginal_estimator=self.marginal_estimator,
            bandwidth_method=self.bandwidth_method, padding=self.padding,
            epsilon=self.epsilon, solver_opts=self.solver_opts,
            n_jobs=self.n_jobs, executor=self.executor,
            backend=self.backend, sparse_plans=self.sparse_plans)
        return self

    def transform(self, dataset: FairnessDataset, *,
                  rng=None) -> FairnessDataset:
        """Repair a labelled data set (Algorithm 2)."""
        generator = self._rng if rng is None else as_rng(rng)
        return repair_dataset(dataset, self.plan, rng=generator,
                              rounding=self.rounding, output=self.output)

    def fit_transform(self, research: FairnessDataset, *,
                      rng=None) -> FairnessDataset:
        """Fit on the research data and repair it (on-sample repair)."""
        return self.fit(research).transform(research, rng=rng)

    def transform_stream(self, stream, *, rng=None):
        """Repair an archival stream batch-by-batch (lazily).

        Parameters
        ----------
        stream:
            An :class:`~repro.data.streaming.ArchiveStream` or any iterable
            of :class:`FairnessDataset` batches.

        Yields
        ------
        FairnessDataset
            Each repaired batch, in arrival order.
        """
        generator = self._rng if rng is None else as_rng(rng)
        if not self.is_fitted:
            raise NotFittedError(
                "DistributionalRepairer.fit must be called before "
                "transform_stream")
        if not isinstance(stream, ArchiveStream):
            stream = iter(stream)
        for batch in stream:
            yield self.transform(batch, rng=generator)
