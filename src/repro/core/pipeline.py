"""End-to-end repair pipeline.

Glues together the pieces a practitioner needs: label estimation for
archives whose ``s`` was never recorded (Section IV requirement 5), the
Algorithm-1 design on the research data, batched Algorithm-2 repair of the
archive, and a before/after fairness evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_rng
from ..data.dataset import FairnessDataset
from ..data.streaming import ArchiveStream, stream_batches
from ..exceptions import NotFittedError, ValidationError
from ..metrics.fairness import EnergyReport, conditional_dependence_energy
from .labels import SubgroupLabelModel
from .repair import DistributionalRepairer

__all__ = ["RepairReport", "RepairPipeline"]


@dataclass(frozen=True)
class RepairReport:
    """Before/after fairness summary for one repaired data set."""

    before: EnergyReport
    after: EnergyReport
    n_rows: int
    label_accuracy: float | None = None

    @property
    def reduction_factor(self) -> float:
        """``E_before / E_after`` (``inf`` for a perfect repair)."""
        if self.after.total <= 0.0:
            return float("inf")
        return self.before.total / self.after.total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"E: {self.before.total:.4g} -> {self.after.total:.4g} "
                 f"({self.reduction_factor:.2f}x reduction, "
                 f"n={self.n_rows})"]
        if self.label_accuracy is not None:
            parts.append(f"label accuracy {self.label_accuracy:.3f}")
        return "; ".join(parts)


class RepairPipeline:
    """Research-to-archive repair with optional ``ŝ|u`` estimation.

    Parameters
    ----------
    estimate_labels:
        When true, a :class:`SubgroupLabelModel` is fitted on the research
        data and archival ``s`` labels are *replaced* by MAP estimates
        before repair — the realistic deployment where archives are
        ``s``-unlabelled.  When false (default), archival labels are
        trusted as given (the paper's experimental assumption).
    n_grid:
        Evaluation-grid resolution of the ``E`` estimator used in reports.
    **repairer_kwargs:
        Forwarded to :class:`DistributionalRepairer` (``n_states``, ``t``,
        ``solver``, ...).  ``solver`` accepts any OT-registry-resolvable
        spec — a registered name, a callable, or a
        :class:`~repro.ot.registry.Solver` — so the whole pipeline runs
        on a pluggable OT backend.  The Algorithm-1 design runs on the
        batched execution engine: batch-kernel solvers (the default
        ``"exact"``) solve all same-grid cells in one vectorised
        dispatch, and ``executor=`` (``"serial"`` / ``"thread"`` /
        ``"process"`` / ``"auto"``) with ``n_jobs`` fans the remaining
        per-cell work — these plus ``backend=`` (the compute backend of
        the vectorised kernels, ``"numpy"``/``"torch"``/``"cupy"`` via
        :func:`repro.core.backend.get_backend`) and ``sparse_plans``
        (CSR plan storage) are the scale knobs for many-feature,
        large-``n_Q`` deployments.
    """

    def __init__(self, *, estimate_labels: bool = False, n_grid: int = 100,
                 rng=None, **repairer_kwargs) -> None:
        self.estimate_labels = estimate_labels
        self.n_grid = n_grid
        self._rng = as_rng(rng)
        self._repairer = DistributionalRepairer(rng=self._rng,
                                                **repairer_kwargs)
        self._label_model: SubgroupLabelModel | None = None

    @property
    def repairer(self) -> DistributionalRepairer:
        return self._repairer

    def design_diagnostics(self) -> dict:
        """Per-cell OT solver diagnostics of the fitted design.

        ``(u, k) -> {s -> OTResult summary}``; raises before ``fit``.
        """
        return self._repairer.plan.solver_diagnostics()

    @property
    def label_model(self) -> SubgroupLabelModel:
        if self._label_model is None:
            raise NotFittedError(
                "label model unavailable: pipeline not fitted or "
                "estimate_labels=False")
        return self._label_model

    def fit(self, research: FairnessDataset) -> "RepairPipeline":
        """Design the repair (and, optionally, the label model)."""
        self._repairer.fit(research)
        if self.estimate_labels:
            self._label_model = SubgroupLabelModel().fit(research)
        return self

    def repair(self, dataset: FairnessDataset, *,
               rng=None) -> FairnessDataset:
        """Repair one labelled (or label-estimated) data set."""
        prepared, _ = self._prepare(dataset)
        return self._repairer.transform(prepared, rng=rng)

    def repair_and_report(self, dataset: FairnessDataset, *,
                          rng=None) -> tuple[FairnessDataset, RepairReport]:
        """Repair and measure ``E`` before and after.

        The fairness measure is always evaluated against the labels used
        for the repair (estimated ones when ``estimate_labels``), which is
        what the repair can actually be held accountable for.
        """
        prepared, accuracy = self._prepare(dataset)
        before = conditional_dependence_energy(
            prepared.features, prepared.s, prepared.u, n_grid=self.n_grid)
        repaired = self._repairer.transform(prepared, rng=rng)
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u, n_grid=self.n_grid)
        report = RepairReport(before=before, after=after,
                              n_rows=len(dataset),
                              label_accuracy=accuracy)
        return repaired, report

    def repair_stream(self, stream, *, rng=None):
        """Lazily repair an archival stream batch-by-batch."""
        generator = self._rng if rng is None else as_rng(rng)
        if isinstance(stream, FairnessDataset):
            raise ValidationError(
                "pass an ArchiveStream or iterable of batches; for a "
                "materialised dataset use repair()")
        iterator = stream if isinstance(stream, ArchiveStream) else iter(stream)
        for batch in iterator:
            prepared, _ = self._prepare(batch)
            yield self._repairer.transform(prepared, rng=generator)

    def _prepare(self, dataset: FairnessDataset
                 ) -> tuple[FairnessDataset, float | None]:
        if not self._repairer.is_fitted:
            raise NotFittedError("RepairPipeline.fit must be called first")
        if not self.estimate_labels:
            return dataset, None
        model = self.label_model
        accuracy = model.accuracy(dataset)
        return model.label_archive(dataset), accuracy
