"""Pluggable execution engine for the batched OT paths.

:func:`repro.ot.solve.solve_many` vectorises whole same-shape batches
through a solver's batch kernel; everything that cannot be vectorised —
non-batchable solvers, mixed-shape leftovers, and Algorithm 1's per-cell
marginal interpolation — is fanned over an *executor*.  An executor is
anything exposing ``map(fn, iterable) -> results`` (order-preserving);
this module provides the three named strategies and the resolution rule
the design/CLI layers use:

``serial``
    In-line ``map`` in the calling thread — the default, zero overhead.
``thread``
    A ``ThreadPoolExecutor`` fan-out.  The right choice for solvers that
    release the GIL in BLAS/scipy code (the HiGHS LP, the screened and
    multiscale restricted LPs, Sinkhorn's dense linear algebra): no
    pickling, shared memory, cheap start-up.
``process``
    A ``ProcessPoolExecutor`` fan-out — today's ``n_jobs`` semantics for
    pure-Python-bound work.  Payloads and results must pickle.

Every strategy runs the same deterministic per-task computation, so the
three produce **bit-identical** results; only wall time differs.  Pools
are created per ``map`` call and sized ``min(n_jobs, len(tasks))``,
matching the historical ``design_repair(n_jobs=N)`` behaviour.

``resolve_executor`` turns a spec — ``None``, a strategy name,
``"auto"``, or a ready-made executor object (including raw
``concurrent.futures`` pools) — into an executor.  ``"auto"`` picks
``serial`` for ``n_jobs`` ≤ 1, ``thread`` when the solver is known to be
BLAS/LP-bound, and ``process`` otherwise.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "resolve_executor", "EXECUTOR_NAMES"]

#: The named strategies ``resolve_executor`` accepts (besides ``"auto"``).
EXECUTOR_NAMES = ("serial", "thread", "process")

#: Registered solvers whose hot loop releases the GIL (scipy/HiGHS LP or
#: dense BLAS), making the thread strategy the better ``"auto"`` pick.
_THREAD_BOUND_SOLVERS = frozenset(
    {"lp", "screened", "multiscale", "sinkhorn", "sinkhorn_log"})


class Executor:
    """Protocol of the execution engine: ``map`` + a diagnostic ``name``.

    Structural, not nominal — ``solve_many`` accepts any object with an
    order-preserving ``map(fn, iterable)``, so ``concurrent.futures``
    pools qualify as-is.  Subclasses here exist to carry the strategy
    name into plan metadata and to size their pools lazily per call.
    """

    name = "executor"

    def map(self, fn, iterable) -> list:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-line map in the calling thread."""

    name = "serial"
    n_jobs = 1

    def map(self, fn, iterable) -> list:
        return [fn(item) for item in iterable]


class _PoolExecutor(Executor):
    """Shared base for the pool-backed strategies: a fresh pool per
    ``map`` call, sized ``min(n_jobs, len(tasks))``, with a serial
    short-circuit when a pool cannot help."""

    _pool_cls: type

    def __init__(self, n_jobs: int | None = None) -> None:
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        self.n_jobs = check_positive_int(n_jobs, name="n_jobs")

    def map(self, fn, iterable) -> list:
        tasks = list(iterable)
        if self.n_jobs == 1 or len(tasks) <= 1:
            return [fn(item) for item in tasks]
        workers = min(self.n_jobs, len(tasks))
        with self._pool_cls(max_workers=workers) as pool:
            return list(pool.map(fn, tasks))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


class ThreadExecutor(_PoolExecutor):
    """Thread-pool fan-out for GIL-releasing (BLAS/scipy-LP) workloads."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool fan-out — the historical ``n_jobs`` semantics.

    Tasks and results must pickle; the deterministic per-task
    computation makes the fan-out bit-identical to the serial loop.
    """

    name = "process"
    _pool_cls = ProcessPoolExecutor


def resolve_executor(spec=None, *, n_jobs: int | None = None,
                     solver=None) -> Executor:
    """Resolve an executor *spec* into an executor object.

    Parameters
    ----------
    spec:
        ``None`` / ``"auto"`` (strategy chosen below), one of
        :data:`EXECUTOR_NAMES`, or a ready-made object exposing
        ``map(fn, iterable)`` (returned as-is).
    n_jobs:
        Worker budget for the pool strategies, and the ``"auto"``
        trigger: ``None`` or ``1`` stays serial.
    solver:
        Optional solver name (or :class:`~repro.ot.registry.Solver`)
        steering ``"auto"``: BLAS/LP-bound solvers get threads, the
        rest processes.

    >>> resolve_executor().name
    'serial'
    >>> resolve_executor("auto", n_jobs=4, solver="screened").name
    'thread'
    >>> resolve_executor("auto", n_jobs=4, solver="exact").name
    'process'
    >>> resolve_executor("thread", n_jobs=2).n_jobs
    2
    """
    if spec is None:
        spec = "auto"
    if not isinstance(spec, str):
        if callable(getattr(spec, "map", None)):
            return spec
        raise ValidationError(
            f"cannot resolve executor spec of type {type(spec).__name__}; "
            f"pass one of {EXECUTOR_NAMES + ('auto',)} or an object with "
            "map(fn, iterable)")
    if spec == "auto":
        if n_jobs is None or n_jobs <= 1:
            return SerialExecutor()
        solver_name = getattr(solver, "name", solver)
        if solver_name in _THREAD_BOUND_SOLVERS:
            return ThreadExecutor(n_jobs)
        return ProcessExecutor(n_jobs)
    if spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(n_jobs)
    if spec == "process":
        return ProcessExecutor(n_jobs)
    raise ValidationError(
        f"unknown executor {spec!r}; expected one of "
        f"{EXECUTOR_NAMES + ('auto',)} or an object with map(fn, iterable)")
