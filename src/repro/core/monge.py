"""Monge-map repair — the deterministic limit the paper anticipates.

Section VI (final paragraph): as ``n_Q → ∞`` the Kantorovich plans of
Algorithm 1 converge, by Brenier's theorem, to *Monge maps* — functions
rather than stochastic kernels — and the authors suggest this "could
improve the individual fairness of the approach", because feature-similar
points are repaired similarly (no mass splitting, no sampling noise).

In one dimension that limit is available in closed form and needs no grid
at all: the optimal Monge map from a continuous source ``µ_s`` to the
target ``ν`` under convex cost is the increasing rearrangement

    T_s(x) = F_ν⁻¹( F_{µ_s}(x) ),

with ``F`` the CDFs.  This module implements exactly that, per
``(u, s, k)``:

* ``F_{µ_s}`` is the Gaussian-KDE CDF of the research subgroup (smooth,
  strictly increasing — Brenier's hypotheses hold);
* ``ν`` is the ``t``-barycentre, whose quantile function is the convex
  combination ``F_ν⁻¹ = (1 - t') F_{µ_0}⁻¹ + t' F_{µ_1}⁻¹`` with
  ``t' = t`` for the ``s = 0`` map and the complementary convention kept
  consistent for both groups;
* the composition is tabulated on a fine lattice once at fit time, and
  applied to archival points by monotone interpolation — ``O(log m)`` per
  point, fully deterministic, off-sample by construction.

Properties (tested): the map is monotone (individual fairness: order is
preserved within a subgroup), both repaired subgroups converge to the same
distribution, and repairs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_probability
from ..data.dataset import FairnessDataset
from ..density.kde import GaussianKDE
from ..exceptions import NotFittedError, ValidationError

__all__ = ["MongeFeatureMap", "MongeRepairer"]


@dataclass(frozen=True)
class MongeFeatureMap:
    """Tabulated monotone map ``T_s`` for one ``(u, s, k)`` cell.

    Attributes
    ----------
    knots:
        Source-value lattice where the map was evaluated.
    images:
        ``T(knots)`` — non-decreasing by construction.
    """

    knots: np.ndarray
    images: np.ndarray

    def __post_init__(self) -> None:
        knots = np.asarray(self.knots, dtype=float)
        images = np.asarray(self.images, dtype=float)
        if knots.ndim != 1 or knots.shape != images.shape:
            raise ValidationError("knots/images must be matching 1-D "
                                  "arrays")
        if np.any(np.diff(knots) <= 0):
            raise ValidationError("knots must be strictly increasing")
        # Monotone non-decreasing images (round-off tolerant).
        fixed = np.maximum.accumulate(images)
        object.__setattr__(self, "knots", knots)
        object.__setattr__(self, "images", fixed)

    def __call__(self, values) -> np.ndarray:
        """Apply the map by monotone linear interpolation.

        Values outside the tabulated range are mapped by the boundary
        images (the same saturation behaviour as Algorithm 2's grids).
        """
        xs = np.atleast_1d(np.asarray(values, dtype=float))
        return np.interp(xs, self.knots, self.images)


class MongeRepairer:
    """Deterministic 1-D Monge-map repair, stratified per ``(u, s, k)``.

    Parameters
    ----------
    t:
        Barycentre position on the W2 geodesic (``0.5`` = fair midpoint).
    n_knots:
        Lattice resolution for tabulating the maps; the analogue of
        ``n_Q`` but purely an interpolation accuracy knob (the maps are
        grid-free in principle).
    n_levels:
        Quantile resolution used to invert ``F_ν``.
    bandwidth_method:
        KDE bandwidth rule for the source CDFs.
    """

    def __init__(self, *, t: float = 0.5, n_knots: int = 512,
                 n_levels: int = 2048,
                 bandwidth_method: str = "silverman") -> None:
        self.t = check_probability(t, name="t")
        self.n_knots = check_positive_int(n_knots, name="n_knots",
                                          minimum=8)
        self.n_levels = check_positive_int(n_levels, name="n_levels",
                                           minimum=16)
        self.bandwidth_method = bandwidth_method
        self._maps: dict | None = None
        self._n_features: int | None = None

    @property
    def is_fitted(self) -> bool:
        return self._maps is not None

    def feature_map(self, u: int, s: int, k: int) -> MongeFeatureMap:
        """The fitted map for one cell."""
        if self._maps is None:
            raise NotFittedError("MongeRepairer.fit must run first")
        try:
            return self._maps[(u, s, k)]
        except KeyError:
            raise ValidationError(
                f"no Monge map fitted for (u={u}, s={s}, k={k})") from None

    def fit(self, research: FairnessDataset) -> "MongeRepairer":
        """Build ``T_{u,s,k}`` from the research data."""
        maps: dict = {}
        for u in research.u_values:
            group = research.group(int(u))
            sizes = {s: int(np.sum(group.s == s)) for s in (0, 1)}
            if min(sizes.values()) < 2:
                raise ValidationError(
                    f"group u={int(u)} needs >= 2 research rows per "
                    f"protected class (sizes {sizes})")
            for k in range(research.n_features):
                kdes = {
                    s: GaussianKDE(group.features[group.s == s, k],
                                   bandwidth_method=self.bandwidth_method)
                    for s in (0, 1)
                }
                quantiles = self._barycenter_quantiles(kdes)
                for s in (0, 1):
                    maps[(int(u), s, k)] = self._tabulate_map(
                        kdes[s], quantiles)
        self._maps = maps
        self._n_features = research.n_features
        return self

    def transform(self, dataset: FairnessDataset) -> FairnessDataset:
        """Repair every row deterministically via the fitted maps."""
        if self._maps is None:
            raise NotFittedError("MongeRepairer.fit must run first")
        if dataset.n_features != self._n_features:
            raise ValidationError(
                f"dataset has {dataset.n_features} features, maps were "
                f"fitted for {self._n_features}")
        repaired = dataset.features.copy()
        for u in dataset.u_values:
            for s in (0, 1):
                mask = dataset.group_mask(int(u), s)
                if not mask.any():
                    continue
                for k in range(dataset.n_features):
                    mapping = self.feature_map(int(u), s, k)
                    repaired[mask, k] = mapping(dataset.features[mask, k])
        return dataset.with_features(repaired)

    def fit_transform(self, research: FairnessDataset) -> FairnessDataset:
        return self.fit(research).transform(research)

    # -- internals -----------------------------------------------------------

    def _barycenter_quantiles(self, kdes: dict) -> np.ndarray:
        """``F_ν⁻¹`` on a uniform level lattice, via quantile averaging."""
        levels = (np.arange(self.n_levels) + 0.5) / self.n_levels
        inverse = {s: self._kde_quantiles(kdes[s], levels)
                   for s in (0, 1)}
        return (1.0 - self.t) * inverse[0] + self.t * inverse[1]

    def _kde_quantiles(self, kde: GaussianKDE,
                       levels: np.ndarray) -> np.ndarray:
        """Invert a KDE CDF by monotone interpolation on a fine lattice."""
        samples = np.asarray(kde.samples, dtype=float)
        pad = 6.0 * kde.bandwidth + 1e-12
        lattice = np.linspace(samples.min() - pad, samples.max() + pad,
                              4 * self.n_knots)
        cdf = kde.cdf(lattice)
        # Strictify for interpolation stability.
        cdf = np.maximum.accumulate(cdf)
        cdf = np.clip(cdf, 0.0, 1.0)
        return np.interp(levels, cdf, lattice)

    def _tabulate_map(self, kde: GaussianKDE,
                      barycenter_quantiles: np.ndarray) -> MongeFeatureMap:
        """Compose ``F_ν⁻¹ ∘ F_{µ_s}`` on the knot lattice."""
        samples = np.asarray(kde.samples, dtype=float)
        pad = 3.0 * kde.bandwidth + 1e-12
        knots = np.linspace(samples.min() - pad, samples.max() + pad,
                            self.n_knots)
        source_cdf = np.clip(kde.cdf(knots), 0.0, 1.0)
        levels = (np.arange(barycenter_quantiles.size) + 0.5) \
            / barycenter_quantiles.size
        images = np.interp(source_cdf, levels, barycenter_quantiles)
        return MongeFeatureMap(knots=knots, images=images)
