"""Algorithm 1 — on-sample design of the distributional repair plan.

For every ``(u, s, k)``:

1. build the uniform interpolation support ``Q_{u,k}`` over the combined
   (both ``s``) research range of feature ``k`` in group ``u`` (line 4),
2. interpolate the empirical marginals onto ``Q`` with Gaussian KDE and
   Silverman bandwidth (Eq. 11),
3. compute the ``t``-barycentre ``ν_{u,k}`` of the two marginals on ``Q``
   (Eq. 7, ``t = 0.5`` by default), and
4. solve the Kantorovich problem ``π*_{u,s,k}`` from each marginal to the
   target with squared-Euclidean cost (Eq. 13).

Every plan solve goes through the unified :func:`repro.ot.solve` facade,
so ``solver`` accepts anything the registry resolves: a registered name
(``"exact"``, ``"simplex"``, ``"lp"``, ``"sinkhorn"``, ``"sinkhorn_log"``,
``"screened"``, ``"auto"``), a bare callable, or a
:class:`~repro.ot.registry.Solver` instance.  Because each problem is
one-dimensional with a shared, sorted support, the default ``"exact"``
monotone coupling is optimal in ``O(n_Q)``; the other solvers exist for
ablations, verification, and (``"screened"``) fast large-grid designs.
The per-``(u, s, k)`` :class:`~repro.ot.problem.OTResult` diagnostics
(convergence, residuals, wall time) are recorded on each
:class:`~repro.core.plan.FeaturePlan`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .._validation import check_positive_int, check_probability
from ..data.dataset import FairnessDataset
from ..density.grid import InterpolationGrid
from ..density.kde import interpolate_pmf
from ..exceptions import ValidationError
from ..ot.barycenter import barycenter_1d, project_onto_grid
from ..ot.coupling import SPARSE_DENSITY_THRESHOLD, TransportPlan
from ..ot.problem import OTProblem, OTResult
from ..ot.registry import Solver, filter_opts, resolve_solver
from ..ot.solve import solve
from .plan import FeaturePlan, RepairPlan

__all__ = ["design_repair", "design_feature_plan", "SOLVERS"]

#: Valid ``sparse_plans`` storage policies.
SPARSE_PLAN_MODES = (False, True, "auto")

#: The paper's original plan-solver trio; kept for backwards compatibility.
#: Any solver registered with :func:`repro.ot.register_solver` is accepted.
SOLVERS = ("exact", "simplex", "sinkhorn")

#: Minimum research observations per (u, s) subgroup.  A single point is
#: permitted — its KDE degenerates to (nearly) a point mass, which is the
#: honest small-sample behaviour the paper's Figure 3 sweep exercises at
#: its smallest research sizes.
_MIN_GROUP_SIZE = 1


def design_feature_plan(samples_by_s: dict, n_states: int, *, t: float = 0.5,
                        solver="exact",
                        marginal_estimator: str = "kde",
                        bandwidth_method: str = "silverman",
                        padding: float = 0.0,
                        epsilon: float = 5e-3,
                        solver_opts: dict | None = None,
                        sparse_plans=False) -> FeaturePlan:
    """Design the repair machinery for a single ``(u, k)`` cell.

    Parameters
    ----------
    samples_by_s:
        ``s -> 1-D research sample`` of feature ``k`` within group ``u``;
        must contain both protected classes.
    n_states:
        Grid resolution ``n_Q`` (paper Section V-A2b studies this knob).
    t:
        Position of the repair target on the W2 geodesic; ``0.5`` is the
        fair barycentre, other values yield partial repairs.
    solver:
        Any spec the OT solver registry resolves: a registered name
        (``"exact"`` — the monotone default, ``"simplex"``, ``"lp"``,
        ``"sinkhorn"``, ``"screened"``, ...), a callable
        ``fn(problem, **opts)``, or a
        :class:`~repro.ot.registry.Solver` instance.
    marginal_estimator:
        ``"kde"`` — the paper's Eq. 11 Gaussian-kernel interpolation
        (default); ``"linear"`` — linear mass-splitting of the empirical
        measure onto the grid.  The linear estimator matches exactly the
        Bernoulli-split row selection of Algorithm 2, which makes the
        repair markedly more accurate on features with atoms (e.g. the
        40-hour spike in Adult) at the cost of a rougher marginal.
    padding:
        Relative widening of the grid beyond the research range; non-zero
        values reduce boundary clipping of drifting archives.
    epsilon:
        Entropic regularisation passed to the ``"sinkhorn"`` /
        ``"sinkhorn_log"`` / ``"screened"`` solvers; ignored otherwise.
    solver_opts:
        Extra keyword options offered to the plan solver alongside
        ``epsilon`` (e.g. ``{"coarsen": 4, "radius": 2}`` for
        ``"multiscale"``, ``{"k": 32}`` for ``"screened"``).  Options
        the resolved solver's signature does not accept are dropped —
        the same signature filtering that lets ``"auto"`` dispatch carry
        entropic knobs safely (see
        :func:`~repro.ot.registry.filter_opts`).
    sparse_plans:
        Plan-storage policy: ``False`` (default — keep whatever storage
        the solver produced; the screened hybrid already returns CSR),
        ``True`` (convert every plan to CSR), or ``"auto"`` (convert
        plans whose density is at most
        :data:`~repro.ot.coupling.SPARSE_DENSITY_THRESHOLD` — which
        includes the ``O(n_Q)``-support monotone plans of the default
        ``"exact"`` solver).
    """
    sparse_plans = _check_sparse_mode(sparse_plans)
    if set(samples_by_s) != {0, 1}:
        raise ValidationError(
            f"samples_by_s must contain both s=0 and s=1, got "
            f"{sorted(samples_by_s)}")
    resolved = resolve_solver(solver)
    t = check_probability(t, name="t")
    n_states = check_positive_int(n_states, name="n_states", minimum=2)

    samples = {s: np.asarray(values, dtype=float).ravel()
               for s, values in samples_by_s.items()}
    for s, values in samples.items():
        if values.size < _MIN_GROUP_SIZE:
            raise ValidationError(
                f"subgroup s={s} has no research points; a repair cannot "
                "be designed for it")

    if marginal_estimator not in ("kde", "linear"):
        raise ValidationError(
            f"unknown marginal_estimator {marginal_estimator!r}; expected "
            "'kde' or 'linear'")
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, n_states,
                                          padding=padding)
    if marginal_estimator == "kde":
        marginals = {
            s: interpolate_pmf(values, grid.nodes,
                               bandwidth_method=bandwidth_method)
            for s, values in samples.items()
        }
    else:
        uniform = {s: np.full(values.size, 1.0 / values.size)
                   for s, values in samples.items()}
        marginals = {
            s: project_onto_grid(values, uniform[s], grid.nodes)
            for s, values in samples.items()
        }
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=t)
    results = {
        s: _solve_plan(grid.nodes, marginals[s], target, resolved, epsilon,
                       solver_opts)
        for s in (0, 1)
    }
    transports = {s: _select_storage(r.plan, sparse_plans)
                  for s, r in results.items()}
    return FeaturePlan(grid=grid, marginals=marginals, barycenter=target,
                       transports=transports,
                       diagnostics={s: r.summary()
                                    for s, r in results.items()})


def design_repair(research: FairnessDataset, n_states=50, *, t: float = 0.5,
                  solver="exact",
                  marginal_estimator: str = "kde",
                  bandwidth_method: str = "silverman",
                  padding: float = 0.0, epsilon: float = 5e-3,
                  solver_opts: dict | None = None,
                  n_jobs: int | None = None,
                  sparse_plans=False) -> RepairPlan:
    """Algorithm 1 over every ``(u, k)`` cell of the research data.

    Parameters
    ----------
    research:
        The fully ``(s, u)``-labelled research data set ``X_R``.
    n_states:
        Either a single ``n_Q`` used everywhere (the paper's choice), or a
        mapping ``(u, k) -> n_Q`` for per-cell resolutions.
    solver:
        Any registry-resolvable solver spec (see
        :func:`design_feature_plan`).
    solver_opts:
        Extra solver keyword options, signature-filtered per solver (see
        :func:`design_feature_plan`); must be picklable when combined
        with ``n_jobs``.
    n_jobs:
        ``None`` or ``1`` designs the cells serially (default).  ``>= 2``
        fans the ``(u, k)`` cells across a process pool of that many
        workers — the cells are independent per the paper's
        stratification, and the per-cell computation is deterministic, so
        the parallel result is identical to the serial one (plans bitwise,
        diagnostics up to wall time).  Requires a picklable ``solver``
        spec (any registered name qualifies).
    sparse_plans:
        Plan-storage policy forwarded to :func:`design_feature_plan`:
        ``False`` / ``True`` / ``"auto"``.

    Returns
    -------
    RepairPlan
        Every ``π*_{u,s,k}`` plus supports, design metadata, and the
        per-cell :class:`~repro.ot.problem.OTResult` diagnostics.
    """
    resolved = resolve_solver(solver)
    sparse_plans = _check_sparse_mode(sparse_plans)
    if n_jobs is not None:
        n_jobs = check_positive_int(n_jobs, name="n_jobs")
    cell_kwargs = {"t": t, "solver": resolved,
                   "marginal_estimator": marginal_estimator,
                   "bandwidth_method": bandwidth_method,
                   "padding": padding, "epsilon": epsilon,
                   "solver_opts": dict(solver_opts or {}),
                   "sparse_plans": sparse_plans}
    jobs = []
    for u in research.u_values:
        group = research.group(int(u))
        sizes = {s: int(np.sum(group.s == s)) for s in (0, 1)}
        if min(sizes.values()) < _MIN_GROUP_SIZE:
            raise ValidationError(
                f"group u={int(u)} lacks research data for both protected "
                f"classes (sizes {sizes}); cannot design its repair")
        for k in range(research.n_features):
            cell_states = _resolve_states(n_states, int(u), k)
            samples_by_s = {
                s: group.features[group.s == s, k] for s in (0, 1)
            }
            jobs.append(((int(u), k), samples_by_s, cell_states))

    if n_jobs is None or n_jobs == 1:
        feature_plans = {
            key: design_feature_plan(samples_by_s, cell_states,
                                     **cell_kwargs)
            for key, samples_by_s, cell_states in jobs
        }
    else:
        payloads = [(key, samples_by_s, cell_states, cell_kwargs)
                    for key, samples_by_s, cell_states in jobs]
        with ProcessPoolExecutor(max_workers=min(n_jobs,
                                                 len(payloads))) as pool:
            feature_plans = dict(pool.map(_design_cell_worker, payloads))

    ot_wall_time = 0.0
    n_unconverged = 0
    epsilon_used = False
    for plan in feature_plans.values():
        for record in plan.diagnostics.values():
            ot_wall_time += float(record.get("wall_time", 0.0))
            n_unconverged += int(not record.get("converged", True))
            # Entropic solvers surface their epsilon in the per-cell
            # diagnostics; its presence means the knob actually ran
            # (e.g. "auto" dispatching to "exact" never uses it).
            epsilon_used = epsilon_used or "epsilon" in record
    metadata = {
        "solver": resolved.name,
        "solver_opts": dict(solver_opts or {}),
        "marginal_estimator": marginal_estimator,
        "bandwidth_method": bandwidth_method,
        "padding": padding,
        "n_research": len(research),
        "group_sizes": research.group_sizes(),
        "ot_wall_time": ot_wall_time,
        "n_unconverged": n_unconverged,
        "n_jobs": 1 if n_jobs is None else int(n_jobs),
        "sparse_plans": sparse_plans,
        "n_sparse_transports": sum(
            int(plan.is_sparse) for feature_plan in feature_plans.values()
            for plan in feature_plan.transports.values()),
    }
    if epsilon_used:
        metadata["epsilon"] = epsilon
    return RepairPlan(feature_plans=feature_plans,
                      n_features=research.n_features, t=t,
                      metadata=metadata)


def _design_cell_worker(payload):
    """Design one ``(u, k)`` cell in a pool worker process.

    Module-level (not a closure) so it pickles; the deterministic per-cell
    computation makes the fan-out result identical to the serial loop.
    """
    key, samples_by_s, cell_states, cell_kwargs = payload
    return key, design_feature_plan(samples_by_s, cell_states,
                                    **cell_kwargs)


def _check_sparse_mode(sparse_plans):
    """Validate a ``sparse_plans`` spec and return its canonical form
    (``False`` / ``True`` / ``"auto"``), so bool-likes such as ``1`` or
    ``numpy.True_`` behave as the caller intends rather than silently
    falling through the storage dispatch."""
    if isinstance(sparse_plans, str):
        if sparse_plans == "auto":
            return "auto"
    elif sparse_plans in (False, True):
        return bool(sparse_plans)
    raise ValidationError(
        f"unknown sparse_plans mode {sparse_plans!r}; expected one of "
        f"{SPARSE_PLAN_MODES}")


def _select_storage(plan: TransportPlan, sparse_plans) -> TransportPlan:
    """Apply the (canonicalised) ``sparse_plans`` policy to one plan."""
    if sparse_plans is True:
        return plan.to_sparse()
    if sparse_plans == "auto" and not plan.is_sparse \
            and plan.density <= SPARSE_DENSITY_THRESHOLD:
        return plan.to_sparse()
    return plan


def _resolve_states(n_states, u: int, k: int) -> int:
    if isinstance(n_states, dict):
        try:
            return check_positive_int(n_states[(u, k)],
                                      name=f"n_states[({u}, {k})]",
                                      minimum=2)
        except KeyError:
            raise ValidationError(
                f"n_states mapping is missing cell (u={u}, k={k})") from None
    return check_positive_int(n_states, name="n_states", minimum=2)


def _solve_plan(nodes: np.ndarray, marginal: np.ndarray,
                target: np.ndarray, solver: Solver,
                epsilon: float, solver_opts: dict | None = None) -> OTResult:
    """Solve ``π*`` from an interpolated marginal to the barycentric target
    through the unified facade."""
    problem = OTProblem(source_weights=marginal, target_weights=target,
                        source_support=nodes, target_support=nodes, p=2)
    # Offer the design's tuning knobs to whichever solver runs —
    # signature filtering delivers epsilon/tol only to solvers (built-in
    # or user-registered) that declare them or take **kwargs.  Explicit
    # solver_opts are offered last so they win over the defaults.
    candidates = {"epsilon": epsilon, "tol": 1e-10, **(solver_opts or {})}
    opts = filter_opts(solver, candidates)
    return solve(problem, method=solver, **opts)
