"""Algorithm 1 — on-sample design of the distributional repair plan.

For every ``(u, s, k)``:

1. build the uniform interpolation support ``Q_{u,k}`` over the combined
   (both ``s``) research range of feature ``k`` in group ``u`` (line 4),
2. interpolate the empirical marginals onto ``Q`` with Gaussian KDE and
   Silverman bandwidth (Eq. 11),
3. compute the ``t``-barycentre ``ν_{u,k}`` of the two marginals on ``Q``
   (Eq. 7, ``t = 0.5`` by default), and
4. solve the Kantorovich problem ``π*_{u,s,k}`` from each marginal to the
   target with squared-Euclidean cost (Eq. 13).

Because each problem is one-dimensional with a shared, sorted support, the
exact plan is the monotone coupling (``solver="exact"``, the default,
``O(n_Q)``).  The cubic transportation simplex and quadratic Sinkhorn
solvers are available for ablations and verification.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_probability
from ..data.dataset import FairnessDataset
from ..density.grid import InterpolationGrid
from ..density.kde import interpolate_pmf
from ..exceptions import ValidationError
from ..ot.barycenter import barycenter_1d, project_onto_grid
from ..ot.cost import squared_euclidean_cost
from ..ot.network_simplex import transport_simplex
from ..ot.onedim import solve_1d
from ..ot.coupling import TransportPlan
from ..ot.sinkhorn import sinkhorn
from .plan import FeaturePlan, RepairPlan

__all__ = ["design_repair", "design_feature_plan", "SOLVERS"]

#: Plan solvers selectable in :func:`design_repair`.
SOLVERS = ("exact", "simplex", "sinkhorn")

#: Minimum research observations per (u, s) subgroup.  A single point is
#: permitted — its KDE degenerates to (nearly) a point mass, which is the
#: honest small-sample behaviour the paper's Figure 3 sweep exercises at
#: its smallest research sizes.
_MIN_GROUP_SIZE = 1


def design_feature_plan(samples_by_s: dict, n_states: int, *, t: float = 0.5,
                        solver: str = "exact",
                        marginal_estimator: str = "kde",
                        bandwidth_method: str = "silverman",
                        padding: float = 0.0,
                        epsilon: float = 5e-3) -> FeaturePlan:
    """Design the repair machinery for a single ``(u, k)`` cell.

    Parameters
    ----------
    samples_by_s:
        ``s -> 1-D research sample`` of feature ``k`` within group ``u``;
        must contain both protected classes.
    n_states:
        Grid resolution ``n_Q`` (paper Section V-A2b studies this knob).
    t:
        Position of the repair target on the W2 geodesic; ``0.5`` is the
        fair barycentre, other values yield partial repairs.
    solver:
        ``"exact"`` (monotone coupling), ``"simplex"`` (transportation
        simplex) or ``"sinkhorn"`` (entropic, with regularisation
        ``epsilon``).
    marginal_estimator:
        ``"kde"`` — the paper's Eq. 11 Gaussian-kernel interpolation
        (default); ``"linear"`` — linear mass-splitting of the empirical
        measure onto the grid.  The linear estimator matches exactly the
        Bernoulli-split row selection of Algorithm 2, which makes the
        repair markedly more accurate on features with atoms (e.g. the
        40-hour spike in Adult) at the cost of a rougher marginal.
    padding:
        Relative widening of the grid beyond the research range; non-zero
        values reduce boundary clipping of drifting archives.
    """
    if set(samples_by_s) != {0, 1}:
        raise ValidationError(
            f"samples_by_s must contain both s=0 and s=1, got "
            f"{sorted(samples_by_s)}")
    if solver not in SOLVERS:
        raise ValidationError(
            f"unknown solver {solver!r}; expected one of {SOLVERS}")
    t = check_probability(t, name="t")
    n_states = check_positive_int(n_states, name="n_states", minimum=2)

    samples = {s: np.asarray(values, dtype=float).ravel()
               for s, values in samples_by_s.items()}
    for s, values in samples.items():
        if values.size < _MIN_GROUP_SIZE:
            raise ValidationError(
                f"subgroup s={s} has no research points; a repair cannot "
                "be designed for it")

    if marginal_estimator not in ("kde", "linear"):
        raise ValidationError(
            f"unknown marginal_estimator {marginal_estimator!r}; expected "
            "'kde' or 'linear'")
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, n_states,
                                          padding=padding)
    if marginal_estimator == "kde":
        marginals = {
            s: interpolate_pmf(values, grid.nodes,
                               bandwidth_method=bandwidth_method)
            for s, values in samples.items()
        }
    else:
        uniform = {s: np.full(values.size, 1.0 / values.size)
                   for s, values in samples.items()}
        marginals = {
            s: project_onto_grid(values, uniform[s], grid.nodes)
            for s, values in samples.items()
        }
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=t)
    transports = {
        s: _solve_plan(grid.nodes, marginals[s], target, solver, epsilon)
        for s in (0, 1)
    }
    return FeaturePlan(grid=grid, marginals=marginals, barycenter=target,
                       transports=transports)


def design_repair(research: FairnessDataset, n_states=50, *, t: float = 0.5,
                  solver: str = "exact",
                  marginal_estimator: str = "kde",
                  bandwidth_method: str = "silverman",
                  padding: float = 0.0, epsilon: float = 5e-3) -> RepairPlan:
    """Algorithm 1 over every ``(u, k)`` cell of the research data.

    Parameters
    ----------
    research:
        The fully ``(s, u)``-labelled research data set ``X_R``.
    n_states:
        Either a single ``n_Q`` used everywhere (the paper's choice), or a
        mapping ``(u, k) -> n_Q`` for per-cell resolutions.

    Returns
    -------
    RepairPlan
        Every ``π*_{u,s,k}`` plus supports and design metadata.
    """
    feature_plans: dict = {}
    for u in research.u_values:
        group = research.group(int(u))
        sizes = {s: int(np.sum(group.s == s)) for s in (0, 1)}
        if min(sizes.values()) < _MIN_GROUP_SIZE:
            raise ValidationError(
                f"group u={int(u)} lacks research data for both protected "
                f"classes (sizes {sizes}); cannot design its repair")
        for k in range(research.n_features):
            cell_states = _resolve_states(n_states, int(u), k)
            samples_by_s = {
                s: group.features[group.s == s, k] for s in (0, 1)
            }
            feature_plans[(int(u), k)] = design_feature_plan(
                samples_by_s, cell_states, t=t, solver=solver,
                marginal_estimator=marginal_estimator,
                bandwidth_method=bandwidth_method, padding=padding,
                epsilon=epsilon)

    metadata = {
        "solver": solver,
        "marginal_estimator": marginal_estimator,
        "bandwidth_method": bandwidth_method,
        "padding": padding,
        "n_research": len(research),
        "group_sizes": research.group_sizes(),
    }
    if solver == "sinkhorn":
        metadata["epsilon"] = epsilon
    return RepairPlan(feature_plans=feature_plans,
                      n_features=research.n_features, t=t,
                      metadata=metadata)


def _resolve_states(n_states, u: int, k: int) -> int:
    if isinstance(n_states, dict):
        try:
            return check_positive_int(n_states[(u, k)],
                                      name=f"n_states[({u}, {k})]",
                                      minimum=2)
        except KeyError:
            raise ValidationError(
                f"n_states mapping is missing cell (u={u}, k={k})") from None
    return check_positive_int(n_states, name="n_states", minimum=2)


def _solve_plan(nodes: np.ndarray, marginal: np.ndarray,
                target: np.ndarray, solver: str,
                epsilon: float) -> TransportPlan:
    """Solve ``π*`` from an interpolated marginal to the barycentric target."""
    if solver == "exact":
        return solve_1d(nodes, marginal, nodes, target, p=2)
    cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                  nodes.reshape(-1, 1))
    if solver == "simplex":
        matrix = transport_simplex(cost, marginal, target)
    else:
        matrix = sinkhorn(cost, marginal, target, epsilon=epsilon,
                          tol=1e-10, raise_on_failure=False).plan
    value = float(np.sum(cost * matrix))
    return TransportPlan(matrix, nodes, nodes, value)
