"""Algorithm 1 — on-sample design of the distributional repair plan.

For every ``(u, s, k)``:

1. build the uniform interpolation support ``Q_{u,k}`` over the combined
   (both ``s``) research range of feature ``k`` in group ``u`` (line 4),
2. interpolate the empirical marginals onto ``Q`` with Gaussian KDE and
   Silverman bandwidth (Eq. 11),
3. compute the ``t``-barycentre ``ν_{u,k}`` of the two marginals on ``Q``
   (Eq. 7, ``t = 0.5`` by default), and
4. solve the Kantorovich problem ``π*_{u,s,k}`` from each marginal to the
   target with squared-Euclidean cost (Eq. 13).

The design is **batched**: every ``(u, s, k)`` cell is an independent 1-D
OT problem, so the whole design is one
:class:`~repro.ot.problem.OTBatch` handed to
:func:`repro.ot.solve.solve_many` — solvers with a vectorised batch
kernel (the default ``"exact"`` monotone coupling) solve all same-grid
cells in a single NumPy dispatch, and everything else is fanned over the
pluggable execution engine (:mod:`repro.core.executor`): ``executor=``
takes ``"serial"``, ``"thread"`` (BLAS/LP-bound solvers), ``"process"``
(the historical ``n_jobs`` semantics) or ``"auto"``.  Every strategy is
bit-identical to the serial loop; only wall time changes.

``solver`` accepts anything the registry resolves: a registered name
(``"exact"``, ``"simplex"``, ``"lp"``, ``"sinkhorn"``, ``"sinkhorn_log"``,
``"screened"``, ``"multiscale"``, ``"auto"``), a bare callable, or a
:class:`~repro.ot.registry.Solver` instance.  Because each problem is
one-dimensional with a shared, sorted support, the default ``"exact"``
monotone coupling is optimal in ``O(n_Q)``; the other solvers exist for
ablations, verification, and fast large-grid designs.  The per-cell
:class:`~repro.ot.problem.OTResult` diagnostics (convergence, residuals,
wall time, batching) are recorded on each
:class:`~repro.core.plan.FeaturePlan`.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_probability
from ..data.dataset import FairnessDataset
from ..density.grid import InterpolationGrid
from ..density.kde import interpolate_pmf
from ..exceptions import ValidationError
from ..ot.barycenter import barycenter_1d, project_onto_grid
from ..ot.coupling import SPARSE_DENSITY_THRESHOLD, TransportPlan
from ..ot.problem import OTBatch, OTProblem
from ..ot.registry import Solver, filter_opts, resolve_solver
from ..ot.solve import solve_many
from .backend import get_backend
from .executor import resolve_executor
from .plan import FeaturePlan, RepairPlan

__all__ = ["design_repair", "design_feature_plan", "SOLVERS"]

#: Valid ``sparse_plans`` storage policies.
SPARSE_PLAN_MODES = (False, True, "auto")

#: The paper's original plan-solver trio; kept for backwards compatibility.
#: Any solver registered with :func:`repro.ot.register_solver` is accepted.
SOLVERS = ("exact", "simplex", "sinkhorn")

#: Minimum research observations per (u, s) subgroup.  A single point is
#: permitted — its KDE degenerates to (nearly) a point mass, which is the
#: honest small-sample behaviour the paper's Figure 3 sweep exercises at
#: its smallest research sizes.
_MIN_GROUP_SIZE = 1


def design_feature_plan(samples_by_s: dict, n_states: int, *, t: float = 0.5,
                        solver="exact",
                        marginal_estimator: str = "kde",
                        bandwidth_method: str = "silverman",
                        padding: float = 0.0,
                        epsilon: float = 5e-3,
                        solver_opts: dict | None = None,
                        backend=None,
                        sparse_plans=False) -> FeaturePlan:
    """Design the repair machinery for a single ``(u, k)`` cell.

    Parameters
    ----------
    samples_by_s:
        ``s -> 1-D research sample`` of feature ``k`` within group ``u``;
        must contain both protected classes.
    n_states:
        Grid resolution ``n_Q`` (paper Section V-A2b studies this knob).
    t:
        Position of the repair target on the W2 geodesic; ``0.5`` is the
        fair barycentre, other values yield partial repairs.
    solver:
        Any spec the OT solver registry resolves: a registered name
        (``"exact"`` — the monotone default, ``"simplex"``, ``"lp"``,
        ``"sinkhorn"``, ``"screened"``, ...), a callable
        ``fn(problem, **opts)``, or a
        :class:`~repro.ot.registry.Solver` instance.
    marginal_estimator:
        ``"kde"`` — the paper's Eq. 11 Gaussian-kernel interpolation
        (default); ``"linear"`` — linear mass-splitting of the empirical
        measure onto the grid.  The linear estimator matches exactly the
        Bernoulli-split row selection of Algorithm 2, which makes the
        repair markedly more accurate on features with atoms (e.g. the
        40-hour spike in Adult) at the cost of a rougher marginal.
    padding:
        Relative widening of the grid beyond the research range; non-zero
        values reduce boundary clipping of drifting archives.
    epsilon:
        Entropic regularisation passed to the ``"sinkhorn"`` /
        ``"sinkhorn_log"`` / ``"screened"`` solvers; ignored otherwise.
    solver_opts:
        Extra keyword options offered to the plan solver alongside
        ``epsilon`` (e.g. ``{"coarsen": 4, "radius": 2}`` for
        ``"multiscale"``, ``{"k": 32}`` for ``"screened"``).  Options
        the resolved solver's signature does not accept are dropped —
        computed **once per cell batch** via
        :func:`~repro.ot.registry.filter_opts`, never per solve.
    backend:
        Compute backend for the plan solves
        (:func:`repro.core.backend.get_backend`): ``None``/``"auto"``
        for the bit-identical numpy reference, ``"torch"``/``"cupy"``
        for device execution.  Offered with signature filtering like
        every other knob — backend-aware solvers (the default
        ``"exact"`` monotone kernel, the entropic pair) receive it, the
        scipy-bound ones ignore it.
    sparse_plans:
        Plan-storage policy: ``False`` (default — keep whatever storage
        the solver produced; the screened hybrid already returns CSR),
        ``True`` (convert every plan to CSR), or ``"auto"`` (convert
        plans whose density is at most
        :data:`~repro.ot.coupling.SPARSE_DENSITY_THRESHOLD` — which
        includes the ``O(n_Q)``-support monotone plans of the default
        ``"exact"`` solver).
    """
    sparse_plans = _check_sparse_mode(sparse_plans)
    resolved = resolve_solver(solver)
    t = check_probability(t, name="t")
    n_states = check_positive_int(n_states, name="n_states", minimum=2)
    grid, marginals, target = _prepare_cell(
        samples_by_s, n_states, t=t,
        marginal_estimator=marginal_estimator,
        bandwidth_method=bandwidth_method, padding=padding)
    opts = _cell_solver_opts(resolved, epsilon, solver_opts)
    results = solve_many(_cell_problems(grid, marginals, target),
                         method=resolved, backend=backend, **opts)
    return _assemble_feature_plan(grid, marginals, target,
                                  {s: results[s] for s in (0, 1)},
                                  sparse_plans)


def design_repair(research: FairnessDataset, n_states=50, *, t: float = 0.5,
                  solver="exact",
                  marginal_estimator: str = "kde",
                  bandwidth_method: str = "silverman",
                  padding: float = 0.0, epsilon: float = 5e-3,
                  solver_opts: dict | None = None,
                  n_jobs: int | None = None,
                  executor=None,
                  backend=None,
                  sparse_plans=False) -> RepairPlan:
    """Algorithm 1 over every ``(u, k)`` cell of the research data.

    The whole design is *batched*: per-cell marginal interpolation is
    fanned over the execution engine, then every ``(u, s, k)`` plan
    problem goes through one :func:`repro.ot.solve.solve_many` call —
    batch-kernel solvers (the default ``"exact"``) solve all same-grid
    cells in a single vectorised dispatch, the rest fan over the same
    engine.

    Parameters
    ----------
    research:
        The fully ``(s, u)``-labelled research data set ``X_R``.
    n_states:
        Either a single ``n_Q`` used everywhere (the paper's choice), or a
        mapping ``(u, k) -> n_Q`` for per-cell resolutions.
    solver:
        Any registry-resolvable solver spec (see
        :func:`design_feature_plan`).
    solver_opts:
        Extra solver keyword options, signature-filtered once per batch
        (see :func:`design_feature_plan`); must be picklable when
        combined with the process executor.
    n_jobs:
        Worker budget of the execution engine.  Under the default
        ``executor`` (``None``/``"auto"``), ``None`` or ``1`` keeps
        everything serial and ``>= 2`` parallelises the independent
        cells; an explicitly named pool strategy without ``n_jobs``
        defaults to the machine's CPU count (the budget actually used
        is recorded in ``metadata["n_jobs"]``).  The per-cell
        computation is deterministic, so every strategy is identical to
        the serial design (plans bitwise, diagnostics up to wall time).
    executor:
        Execution strategy for the non-vectorised work: ``"serial"``,
        ``"thread"`` (BLAS/scipy-LP-bound solvers), ``"process"`` (the
        historical ``n_jobs`` fan-out; requires picklable solver specs),
        ``"auto"``/``None`` (serial for ``n_jobs`` ≤ 1, else thread or
        process depending on the solver), or any ready-made object with
        ``map(fn, iterable)`` — see :mod:`repro.core.executor`.
    backend:
        Compute backend for the batched plan solves (see
        :func:`design_feature_plan`); the resolved backend name is
        recorded in ``metadata["backend"]`` next to the executor
        strategy.  The numpy default is bit-identical to previous
        releases.
    sparse_plans:
        Plan-storage policy forwarded to :func:`design_feature_plan`:
        ``False`` / ``True`` / ``"auto"``.

    Returns
    -------
    RepairPlan
        Every ``π*_{u,s,k}`` plus supports, design metadata (including
        the executor strategy, the compute backend and batched-solve
        tally), and the per-cell :class:`~repro.ot.problem.OTResult`
        diagnostics.
    """
    resolved = resolve_solver(solver)
    sparse_plans = _check_sparse_mode(sparse_plans)
    t = check_probability(t, name="t")
    # Resolve eagerly: a backend typo (or an unavailable device library)
    # must fail before any cell work starts.
    resolved_backend = get_backend(backend)
    if n_jobs is not None:
        n_jobs = check_positive_int(n_jobs, name="n_jobs")
    engine = resolve_executor(executor, n_jobs=n_jobs, solver=resolved)

    jobs = []
    for u in research.u_values:
        group = research.group(int(u))
        sizes = {s: int(np.sum(group.s == s)) for s in (0, 1)}
        if min(sizes.values()) < _MIN_GROUP_SIZE:
            raise ValidationError(
                f"group u={int(u)} lacks research data for both protected "
                f"classes (sizes {sizes}); cannot design its repair")
        for k in range(research.n_features):
            cell_states = _resolve_states(n_states, int(u), k)
            samples_by_s = {
                s: group.features[group.s == s, k] for s in (0, 1)
            }
            jobs.append(((int(u), k), samples_by_s, cell_states))

    # Phase 1 — marginal interpolation per cell (grid, KDE, barycentre),
    # fanned over the engine: deterministic and independent, so any
    # strategy reproduces the serial result exactly.
    prep_kwargs = {"t": t, "marginal_estimator": marginal_estimator,
                   "bandwidth_method": bandwidth_method, "padding": padding}
    preparations = engine.map(
        _prepare_cell_worker,
        [(samples_by_s, cell_states, prep_kwargs)
         for _, samples_by_s, cell_states in jobs])

    # Phase 2 — one OT batch over every (u, s, k) problem.  Solver
    # options are signature-filtered here, once for the whole batch.
    problems = []
    for grid, marginals, target in preparations:
        problems.extend(_cell_problems(grid, marginals, target))
    opts = _cell_solver_opts(resolved, epsilon, solver_opts)
    results = solve_many(OTBatch(tuple(problems)), method=resolved,
                         executor=engine, backend=backend, **opts)

    # Phase 3 — assemble the per-cell plans and the design record.
    feature_plans = {}
    for index, ((key, _, _), (grid, marginals, target)) \
            in enumerate(zip(jobs, preparations)):
        cell_results = {s: results[2 * index + s] for s in (0, 1)}
        feature_plans[key] = _assemble_feature_plan(
            grid, marginals, target, cell_results, sparse_plans)

    ot_wall_time = 0.0
    n_unconverged = 0
    epsilon_used = False
    for plan in feature_plans.values():
        for record in plan.diagnostics.values():
            ot_wall_time += float(record.get("wall_time", 0.0))
            n_unconverged += int(not record.get("converged", True))
            # Entropic solvers surface their epsilon in the per-cell
            # diagnostics; its presence means the knob actually ran
            # (e.g. "auto" dispatching to "exact" never uses it).
            epsilon_used = epsilon_used or "epsilon" in record
    metadata = {
        "solver": resolved.name,
        "solver_opts": dict(solver_opts or {}),
        "marginal_estimator": marginal_estimator,
        "bandwidth_method": bandwidth_method,
        "padding": padding,
        "n_research": len(research),
        "group_sizes": research.group_sizes(),
        "ot_wall_time": ot_wall_time,
        "n_unconverged": n_unconverged,
        # The engine's actual worker budget: an explicit pool strategy
        # without n_jobs defaults to the machine's CPU count, and the
        # provenance record must say what really ran.
        "n_jobs": int(getattr(engine, "n_jobs",
                              1 if n_jobs is None else n_jobs)),
        "executor": getattr(engine, "name", type(engine).__name__),
        # The compute backend the plan solves actually ran on: the
        # resolved name ("auto"/None record as "numpy") — unless the
        # solver is not backend-aware, in which case the knob was
        # dropped and the scipy/numpy path ran regardless of what the
        # caller asked for.
        "backend": (resolved_backend.name
                    if filter_opts(resolved, {"backend": None})
                    else "numpy"),
        "n_batched_solves": sum(
            1 for result in results if result.extras.get("batched")),
        "sparse_plans": sparse_plans,
        "n_sparse_transports": sum(
            int(plan.is_sparse) for feature_plan in feature_plans.values()
            for plan in feature_plan.transports.values()),
    }
    if epsilon_used:
        metadata["epsilon"] = epsilon
    return RepairPlan(feature_plans=feature_plans,
                      n_features=research.n_features, t=t,
                      metadata=metadata)


# -- the per-cell pipeline stages ---------------------------------------------


def _prepare_cell(samples_by_s: dict, n_states: int, *, t: float,
                  marginal_estimator: str, bandwidth_method: str,
                  padding: float):
    """Interpolation stage of one cell: ``(grid, marginals, target)``."""
    if set(samples_by_s) != {0, 1}:
        raise ValidationError(
            f"samples_by_s must contain both s=0 and s=1, got "
            f"{sorted(samples_by_s)}")
    samples = {s: np.asarray(values, dtype=float).ravel()
               for s, values in samples_by_s.items()}
    for s, values in samples.items():
        if values.size < _MIN_GROUP_SIZE:
            raise ValidationError(
                f"subgroup s={s} has no research points; a repair cannot "
                "be designed for it")
    if marginal_estimator not in ("kde", "linear"):
        raise ValidationError(
            f"unknown marginal_estimator {marginal_estimator!r}; expected "
            "'kde' or 'linear'")
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, n_states,
                                          padding=padding)
    if marginal_estimator == "kde":
        marginals = {
            s: interpolate_pmf(values, grid.nodes,
                               bandwidth_method=bandwidth_method)
            for s, values in samples.items()
        }
    else:
        uniform = {s: np.full(values.size, 1.0 / values.size)
                   for s, values in samples.items()}
        marginals = {
            s: project_onto_grid(values, uniform[s], grid.nodes)
            for s, values in samples.items()
        }
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=t)
    return grid, marginals, target


def _prepare_cell_worker(payload):
    """Run :func:`_prepare_cell` from an executor ``map`` (module-level
    so process pools can pickle it)."""
    samples_by_s, n_states, prep_kwargs = payload
    return _prepare_cell(samples_by_s, n_states, **prep_kwargs)


def _cell_problems(grid: InterpolationGrid, marginals: dict,
                   target: np.ndarray) -> list:
    """The cell's two Kantorovich problems (s = 0, 1), Eq. 13."""
    return [OTProblem(source_weights=marginals[s], target_weights=target,
                      source_support=grid.nodes, target_support=grid.nodes,
                      p=2)
            for s in (0, 1)]


def _cell_solver_opts(solver: Solver, epsilon: float,
                      solver_opts: dict | None) -> dict:
    """The design's tuning knobs, signature-filtered once per batch.

    Offered to whichever solver runs — entropic solvers pick up
    ``epsilon``/``tol``, exact solvers see neither.  Explicit
    ``solver_opts`` are offered last so they win over the defaults.
    ``"auto"`` takes every candidate here and re-filters per dispatch
    group inside :func:`~repro.ot.solve.solve_many`.
    """
    candidates = {"epsilon": epsilon, "tol": 1e-10, **(solver_opts or {})}
    return filter_opts(solver, candidates)


def _assemble_feature_plan(grid, marginals, target, results: dict,
                           sparse_plans) -> FeaturePlan:
    """Wrap one cell's solved problems into a :class:`FeaturePlan`."""
    transports = {s: _select_storage(result.plan, sparse_plans)
                  for s, result in results.items()}
    return FeaturePlan(grid=grid, marginals=marginals, barycenter=target,
                       transports=transports,
                       diagnostics={s: result.summary()
                                    for s, result in results.items()})


def _check_sparse_mode(sparse_plans):
    """Validate a ``sparse_plans`` spec and return its canonical form
    (``False`` / ``True`` / ``"auto"``), so bool-likes such as ``1`` or
    ``numpy.True_`` behave as the caller intends rather than silently
    falling through the storage dispatch."""
    if isinstance(sparse_plans, str):
        if sparse_plans == "auto":
            return "auto"
    elif sparse_plans in (False, True):
        return bool(sparse_plans)
    raise ValidationError(
        f"unknown sparse_plans mode {sparse_plans!r}; expected one of "
        f"{SPARSE_PLAN_MODES}")


def _select_storage(plan: TransportPlan, sparse_plans) -> TransportPlan:
    """Apply the (canonicalised) ``sparse_plans`` policy to one plan."""
    if sparse_plans is True:
        return plan.to_sparse()
    if sparse_plans == "auto" and not plan.is_sparse \
            and plan.density <= SPARSE_DENSITY_THRESHOLD:
        return plan.to_sparse()
    return plan


def _resolve_states(n_states, u: int, k: int) -> int:
    if isinstance(n_states, dict):
        try:
            return check_positive_int(n_states[(u, k)],
                                      name=f"n_states[({u}, {k})]",
                                      minimum=2)
        except KeyError:
            raise ValidationError(
                f"n_states mapping is missing cell (u={u}, k={k})") from None
    return check_positive_int(n_states, name="n_states", minimum=2)
