"""Estimation of missing protected labels ``ŝ|u`` (paper Section IV/VI).

Archival data typically lack the protected attribute.  The paper assumes
``s|u`` labels "are known or can be estimated with low error" via standard
mixture identification (its reference [27]) and defers the mechanics.  We
implement the standard machinery so the library is usable end-to-end on
unlabelled archives:

* :class:`SubgroupLabelModel` — a supervised Bayes classifier: fit Gaussian
  class-conditionals ``f(x | s, u)`` and priors ``Pr[s | u]`` on the
  labelled research data, then assign archival labels by posterior.
* :func:`em_refine` — an optional unsupervised EM pass that refines the
  per-``u`` two-component Gaussian mixture on the (unlabelled) archive
  itself, initialised from the research fit — useful under mild drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_2d_array, check_positive_int
from ..data.dataset import FairnessDataset
from ..exceptions import NotFittedError, ValidationError

__all__ = ["GaussianClassConditional", "SubgroupLabelModel", "em_refine"]

_COV_RIDGE = 1e-6


@dataclass
class GaussianClassConditional:
    """A fitted multivariate Gaussian ``N(mean, cov)`` with log-density."""

    mean: np.ndarray
    cov: np.ndarray

    def __post_init__(self) -> None:
        mean = np.atleast_1d(np.asarray(self.mean, dtype=float))
        cov = np.atleast_2d(np.asarray(self.cov, dtype=float))
        d = mean.size
        if cov.shape != (d, d):
            raise ValidationError(
                f"covariance shape {cov.shape} incompatible with mean "
                f"dimension {d}")
        # Ridge for numerical stability of the Cholesky factorisation.
        cov = cov + _COV_RIDGE * np.eye(d)
        self.mean = mean
        self.cov = cov
        self._chol = np.linalg.cholesky(cov)
        self._log_det = 2.0 * np.sum(np.log(np.diag(self._chol)))

    @classmethod
    def fit(cls, samples) -> "GaussianClassConditional":
        xs = as_2d_array(samples, name="samples")
        mean = xs.mean(axis=0)
        if xs.shape[0] > 1:
            cov = np.cov(xs, rowvar=False, ddof=1)
            cov = np.atleast_2d(cov)
        else:
            cov = np.eye(xs.shape[1])
        return cls(mean, cov)

    def log_pdf(self, x) -> np.ndarray:
        xs = as_2d_array(x, name="x")
        d = self.mean.size
        centered = xs - self.mean
        solved = np.linalg.solve(self._chol, centered.T)
        quad = np.sum(solved ** 2, axis=0)
        return -0.5 * (quad + self._log_det + d * np.log(2.0 * np.pi))


class SubgroupLabelModel:
    """Bayes-rule estimator of ``ŝ | u`` from labelled research data.

    For each ``u`` group, fits ``f(x | s, u)`` as Gaussians and the prior
    ``Pr[s | u]`` from research frequencies; ``predict`` assigns the MAP
    label, ``predict_proba`` returns ``Pr[s = 1 | x, u]``.
    """

    def __init__(self) -> None:
        self._conditionals: dict = {}
        self._priors: dict = {}

    @property
    def is_fitted(self) -> bool:
        return bool(self._conditionals)

    def fit(self, research: FairnessDataset) -> "SubgroupLabelModel":
        """Estimate the per-``(u, s)`` mixture components."""
        self._conditionals.clear()
        self._priors.clear()
        for u in research.u_values:
            group = research.group(int(u))
            sizes = {s: int(np.sum(group.s == s)) for s in (0, 1)}
            if min(sizes.values()) < 2:
                raise ValidationError(
                    f"group u={int(u)} needs >= 2 research rows per "
                    f"protected class to fit the mixture (sizes {sizes})")
            for s in (0, 1):
                self._conditionals[(int(u), s)] = GaussianClassConditional.fit(
                    group.features[group.s == s])
            self._priors[int(u)] = float(np.mean(group.s == 1))
        return self

    def predict_proba(self, features, u_labels) -> np.ndarray:
        """``Pr[s = 1 | x, u]`` for each row."""
        if not self.is_fitted:
            raise NotFittedError("SubgroupLabelModel.fit must be called "
                                 "before predict_proba")
        x = as_2d_array(features, name="features")
        u = np.asarray(u_labels).astype(int).ravel()
        if u.size != x.shape[0]:
            raise ValidationError("features/u_labels length mismatch")
        posterior = np.zeros(x.shape[0])
        for group in np.unique(u):
            if (int(group), 0) not in self._conditionals:
                raise ValidationError(
                    f"model was not fitted for group u={int(group)}")
            mask = u == group
            prior1 = self._priors[int(group)]
            log0 = (self._conditionals[(int(group), 0)].log_pdf(x[mask])
                    + np.log(max(1.0 - prior1, 1e-12)))
            log1 = (self._conditionals[(int(group), 1)].log_pdf(x[mask])
                    + np.log(max(prior1, 1e-12)))
            top = np.maximum(log0, log1)
            posterior[mask] = (np.exp(log1 - top)
                               / (np.exp(log0 - top) + np.exp(log1 - top)))
        return posterior

    def predict(self, features, u_labels) -> np.ndarray:
        """MAP estimate ``ŝ`` for each row."""
        return (self.predict_proba(features, u_labels) >= 0.5).astype(int)

    def label_archive(self, archive: FairnessDataset) -> FairnessDataset:
        """Return the archive with ``s`` replaced by the MAP estimates.

        This is the plug that makes the end-to-end pipeline work when the
        archive's protected attribute was never recorded.
        """
        estimated = self.predict(archive.features, archive.u)
        return FairnessDataset(archive.features, estimated, archive.u,
                               archive.y, archive.schema)

    def accuracy(self, dataset: FairnessDataset) -> float:
        """Label accuracy against a data set whose true ``s`` is known."""
        predicted = self.predict(dataset.features, dataset.u)
        return float(np.mean(predicted == dataset.s))


def em_refine(model: SubgroupLabelModel, archive: FairnessDataset, *,
              n_iter: int = 20, tol: float = 1e-6) -> SubgroupLabelModel:
    """Refine the mixture on unlabelled archive data by per-``u`` EM.

    Starts from the research-fitted components (good initialisation
    matters: the mixture is identifiable only up to label swap, and the
    warm start pins the labelling).  Returns a *new* fitted model.
    """
    if not model.is_fitted:
        raise NotFittedError("refine requires a fitted SubgroupLabelModel")
    n_iter = check_positive_int(n_iter, name="n_iter")
    refined = SubgroupLabelModel()
    refined._conditionals = dict(model._conditionals)
    refined._priors = dict(model._priors)

    for u in archive.u_values:
        mask = archive.u == int(u)
        xs = archive.features[mask]
        if xs.shape[0] < 4 or (int(u), 0) not in refined._conditionals:
            continue
        prior1 = refined._priors[int(u)]
        comp0 = refined._conditionals[(int(u), 0)]
        comp1 = refined._conditionals[(int(u), 1)]
        previous = -np.inf
        for _ in range(n_iter):
            log0 = comp0.log_pdf(xs) + np.log(max(1.0 - prior1, 1e-12))
            log1 = comp1.log_pdf(xs) + np.log(max(prior1, 1e-12))
            top = np.maximum(log0, log1)
            log_norm = top + np.log(np.exp(log0 - top) + np.exp(log1 - top))
            resp1 = np.exp(log1 - log_norm)
            likelihood = float(np.sum(log_norm))
            if abs(likelihood - previous) < tol * max(1.0, abs(previous)):
                break
            previous = likelihood
            weight1 = float(np.sum(resp1))
            weight0 = xs.shape[0] - weight1
            if weight1 < 1e-6 or weight0 < 1e-6:
                break  # a component collapsed; keep the previous fit
            prior1 = weight1 / xs.shape[0]
            mean1 = (resp1[:, None] * xs).sum(axis=0) / weight1
            mean0 = ((1.0 - resp1)[:, None] * xs).sum(axis=0) / weight0
            centred1 = xs - mean1
            centred0 = xs - mean0
            cov1 = (resp1[:, None] * centred1).T @ centred1 / weight1
            cov0 = ((1.0 - resp1)[:, None] * centred0).T @ centred0 / weight0
            comp1 = GaussianClassConditional(mean1, cov1)
            comp0 = GaussianClassConditional(mean0, cov0)
        refined._conditionals[(int(u), 0)] = comp0
        refined._conditionals[(int(u), 1)] = comp1
        refined._priors[int(u)] = prior1
    return refined
