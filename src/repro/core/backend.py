"""Pluggable array-API compute backends for the vectorised OT kernels.

The batched kernels of the OT layer (the monotone staircase of
:func:`repro.ot.onedim.batched_north_west_corner`, the stacked Sinkhorn
iterations of :mod:`repro.ot.sinkhorn`) are long chains of array
operations with no data-dependent Python control flow — exactly the
shape a device array library can take over unchanged.  This module is
the seam: an :class:`ArrayBackend` exposes the namespace-style
operations those kernels need (``asarray``, ``cumsum``, ``argsort``,
``take_along_axis``, ``searchsorted``, ``einsum``, ``logsumexp``,
``to_numpy``, ...), and the kernels are written against it instead of
against :mod:`numpy` directly.

Backends
--------

``numpy`` (always available, the default)
    Delegates 1:1 to numpy/scipy.  The delegation is chosen so that a
    kernel running on this backend performs **exactly** the operations
    the pre-backend code performed — results are bit-identical.
``array_api_strict`` (optional; the CI conformance backend)
    Wraps the ``array_api_strict`` namespace, which implements the
    Python array-API standard and nothing else.  Running the kernel
    tests on it proves the kernels stay inside the standard — i.e. that
    any conforming device library can slot in.
``torch`` / ``cupy`` (optional, detected at runtime)
    GPU-capable backends; registered only when the library imports.

Lookup is entry-point-free: :func:`get_backend` resolves a spec —
``None`` / ``"auto"`` (numpy today; device backends are explicit
opt-ins so default results never change), a registered name, or a
ready-made :class:`ArrayBackend` instance.  Third-party backends plug
in with :func:`register_array_backend`.

>>> nx = get_backend()
>>> nx.name
'numpy'
>>> import numpy as np
>>> bool(np.array_equal(nx.to_numpy(nx.cumsum(nx.asarray([1., 2.]), 0)),
...                     [1., 3.]))
True
>>> sorted(set(available_backends()) & {"numpy"})
['numpy']
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp as _scipy_logsumexp

from ..exceptions import ValidationError

__all__ = ["ArrayBackend", "NumpyBackend", "ArrayAPIBackend",
           "TorchBackend", "CupyBackend", "get_backend",
           "available_backends", "register_array_backend",
           "BACKEND_NAMES"]


class ArrayBackend:
    """Protocol of a compute backend: the array namespace the kernels use.

    Structural, not nominal — any object exposing these operations (with
    numpy semantics) works; the subclasses here exist to adapt concrete
    libraries.  ``to_numpy`` is the single boundary back to the host:
    kernels call it exactly once, when handing results to the
    numpy/CSR-backed :class:`~repro.ot.coupling.TransportPlan` layer.
    """

    name = "abstract"

    #: dtype handles (backend-native objects accepted by ``asarray``).
    float64: object = None
    int64: object = None
    bool: object = None

    # -- construction / conversion ----------------------------------------
    def asarray(self, x, dtype=None):  # pragma: no cover - interface
        raise NotImplementedError

    def astype(self, x, dtype):  # pragma: no cover - interface
        raise NotImplementedError

    def to_numpy(self, x) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def scalar(self, x) -> float:
        """One device scalar to a host float (a single sync point)."""
        return float(self.to_numpy(x))

    # -- creation ----------------------------------------------------------
    def zeros(self, shape, dtype=None):  # pragma: no cover - interface
        raise NotImplementedError

    def ones(self, shape, dtype=None):  # pragma: no cover - interface
        raise NotImplementedError

    def arange(self, start, stop=None, dtype=None):  # pragma: no cover
        raise NotImplementedError

    # -- structure ---------------------------------------------------------
    def reshape(self, x, shape):  # pragma: no cover - interface
        raise NotImplementedError

    def stack(self, arrays, axis=0):  # pragma: no cover - interface
        raise NotImplementedError

    def concat(self, arrays, axis=0):  # pragma: no cover - interface
        raise NotImplementedError

    def take(self, x, indices, axis):  # pragma: no cover - interface
        raise NotImplementedError

    def take_along_axis(self, x, indices, axis):  # pragma: no cover
        raise NotImplementedError

    # -- algorithmic kernels ----------------------------------------------
    def cumsum(self, x, axis):  # pragma: no cover - interface
        raise NotImplementedError

    def argsort(self, x, axis=-1):
        """Stable argsort (ties keep input order) along ``axis``."""
        raise NotImplementedError  # pragma: no cover - interface

    def searchsorted(self, sorted_sequence, values, side="left"):
        raise NotImplementedError  # pragma: no cover - interface

    def einsum(self, subscripts, *operands):  # pragma: no cover
        raise NotImplementedError

    def matmul(self, a, b):  # pragma: no cover - interface
        raise NotImplementedError

    def transpose(self, x):
        """Matrix transpose (swap the last two axes)."""
        raise NotImplementedError  # pragma: no cover - interface

    def logsumexp(self, x, axis=None):  # pragma: no cover - interface
        raise NotImplementedError

    # -- elementwise -------------------------------------------------------
    def exp(self, x):  # pragma: no cover - interface
        raise NotImplementedError

    def log(self, x):  # pragma: no cover - interface
        raise NotImplementedError

    def abs(self, x):  # pragma: no cover - interface
        raise NotImplementedError

    def power(self, a, b):  # pragma: no cover - interface
        raise NotImplementedError

    def where(self, condition, a, b):  # pragma: no cover - interface
        raise NotImplementedError

    def maximum(self, a, b):  # pragma: no cover - interface
        raise NotImplementedError

    def minimum(self, a, b):  # pragma: no cover - interface
        raise NotImplementedError

    def logical_or(self, a, b):  # pragma: no cover - interface
        raise NotImplementedError

    def isfinite(self, x):  # pragma: no cover - interface
        raise NotImplementedError

    # -- reductions --------------------------------------------------------
    def sum(self, x, axis=None, keepdims=False):  # pragma: no cover
        raise NotImplementedError

    def max(self, x, axis=None, keepdims=False):  # pragma: no cover
        raise NotImplementedError

    def min(self, x, axis=None, keepdims=False):  # pragma: no cover
        raise NotImplementedError

    def any(self, x, axis=None):  # pragma: no cover - interface
        raise NotImplementedError

    def all(self, x, axis=None):  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NumpyBackend(ArrayBackend):
    """The numpy/scipy reference backend.

    Every operation delegates to the exact numpy/scipy call the
    pre-backend kernels made (``matmul`` is ``numpy.matmul``,
    ``logsumexp`` is :func:`scipy.special.logsumexp`, ...), so kernels
    running here are **bit-identical** to the historical implementation.
    """

    name = "numpy"
    float64 = np.float64
    int64 = np.int64
    bool = np.bool_

    def asarray(self, x, dtype=None):
        return np.asarray(x, dtype=dtype)

    def astype(self, x, dtype):
        return x.astype(dtype)

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape, dtype=None):
        return np.ones(shape, dtype=dtype)

    def arange(self, start, stop=None, dtype=None):
        return np.arange(start, stop, dtype=dtype)

    def reshape(self, x, shape):
        return np.reshape(x, shape)

    def stack(self, arrays, axis=0):
        return np.stack(arrays, axis=axis)

    def concat(self, arrays, axis=0):
        return np.concatenate(arrays, axis=axis)

    def take(self, x, indices, axis):
        return np.take(x, indices, axis=axis)

    def take_along_axis(self, x, indices, axis):
        return np.take_along_axis(x, indices, axis=axis)

    def cumsum(self, x, axis):
        return np.cumsum(x, axis=axis)

    def argsort(self, x, axis=-1):
        return np.argsort(x, axis=axis, kind="stable")

    def searchsorted(self, sorted_sequence, values, side="left"):
        return np.searchsorted(sorted_sequence, values, side=side)

    def einsum(self, subscripts, *operands):
        return np.einsum(subscripts, *operands)

    def matmul(self, a, b):
        return np.matmul(a, b)

    def transpose(self, x):
        return np.swapaxes(x, -2, -1)

    def logsumexp(self, x, axis=None):
        return _scipy_logsumexp(x, axis=axis)

    def exp(self, x):
        return np.exp(x)

    def log(self, x):
        return np.log(x)

    def abs(self, x):
        return np.abs(x)

    def power(self, a, b):
        return np.power(a, b)

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def logical_or(self, a, b):
        return np.logical_or(a, b)

    def isfinite(self, x):
        return np.isfinite(x)

    def sum(self, x, axis=None, keepdims=False):
        return np.sum(x, axis=axis, keepdims=keepdims)

    def max(self, x, axis=None, keepdims=False):
        return np.max(x, axis=axis, keepdims=keepdims)

    def min(self, x, axis=None, keepdims=False):
        return np.min(x, axis=axis, keepdims=keepdims)

    def any(self, x, axis=None):
        return np.any(x, axis=axis)

    def all(self, x, axis=None):
        return np.all(x, axis=axis)


class ArrayAPIBackend(ArrayBackend):
    """Adapter for any namespace implementing the Python array-API standard.

    Used with ``array_api_strict`` it is the CI conformance harness: the
    strict namespace rejects every numpy-ism outside the standard
    (implicit bool arithmetic, scalar second operands, ``kind=`` sort
    arguments, ...), so a kernel that runs here runs on any conforming
    device library.  Operations the standard lacks (``einsum``,
    ``logsumexp``, ``take_along_axis`` before 2024.12) are emulated from
    standard primitives.
    """

    def __init__(self, xp, name=None):
        self.xp = xp
        self.name = name or getattr(xp, "__name__", "array_api")
        self.float64 = xp.float64
        self.int64 = xp.int64
        self.bool = xp.bool

    def _wrap_operand(self, reference, value):
        """Promote a Python scalar operand to a 0-d array (the standard
        only guarantees array-array elementwise signatures)."""
        if hasattr(value, "dtype") and hasattr(value, "shape"):
            return value
        return self.xp.asarray(value, dtype=reference.dtype)

    def asarray(self, x, dtype=None):
        # Only arrays of *this* namespace pass through untouched —
        # numpy 2.x arrays also expose __array_namespace__, and the
        # strict namespace rejects foreign arrays inside its functions.
        namespace = getattr(x, "__array_namespace__", None)
        if namespace is not None and namespace() is self.xp:
            return x if dtype is None else self.xp.astype(x, dtype)
        # Round-trip via numpy so nested sequences and foreign array
        # types are accepted uniformly.
        return self.xp.asarray(np.asarray(x), dtype=dtype)

    def astype(self, x, dtype):
        return self.xp.astype(x, dtype)

    def to_numpy(self, x) -> np.ndarray:
        try:
            return np.asarray(x)
        except (TypeError, ValueError):
            # Namespaces whose arrays refuse __array__ still export
            # dlpack (array-API mandates it).
            return np.asarray(np.from_dlpack(x))

    def zeros(self, shape, dtype=None):
        return self.xp.zeros(shape, dtype=dtype)

    def ones(self, shape, dtype=None):
        return self.xp.ones(shape, dtype=dtype)

    def arange(self, start, stop=None, dtype=None):
        return self.xp.arange(start, stop, dtype=dtype)

    def reshape(self, x, shape):
        return self.xp.reshape(x, shape)

    def stack(self, arrays, axis=0):
        return self.xp.stack(list(arrays), axis=axis)

    def concat(self, arrays, axis=0):
        return self.xp.concat(list(arrays), axis=axis)

    def take(self, x, indices, axis):
        return self.xp.take(x, indices, axis=axis)

    def take_along_axis(self, x, indices, axis):
        native = getattr(self.xp, "take_along_axis", None)
        if native is not None:
            return native(x, indices, axis=axis)
        # Pre-2024.12 namespaces: emulate the 2-D trailing-axis case the
        # kernels use via flat gather arithmetic.
        if x.ndim != 2 or axis not in (1, -1):
            raise ValidationError(
                f"backend {self.name!r} take_along_axis fallback supports "
                "2-D arrays along the last axis only")
        rows, cols = x.shape
        offsets = self.xp.reshape(
            self.xp.arange(rows, dtype=indices.dtype) * cols, (rows, 1))
        flat = self.xp.reshape(x, (-1,))
        gathered = self.xp.take(
            flat, self.xp.reshape(indices + offsets, (-1,)), axis=0)
        return self.xp.reshape(gathered, indices.shape)

    def cumsum(self, x, axis):
        return self.xp.cumulative_sum(x, axis=axis)

    def argsort(self, x, axis=-1):
        return self.xp.argsort(x, axis=axis, stable=True)

    def searchsorted(self, sorted_sequence, values, side="left"):
        return self.xp.searchsorted(sorted_sequence, values, side=side)

    def einsum(self, subscripts, *operands):
        """The einsum contractions the OT kernels use, via ``matmul``.

        The array-API standard has no ``einsum``; the stacked-kernel
        patterns below cover every call the kernels make.  Unknown
        subscripts fail loudly rather than silently mis-contract.
        """
        xp = self.xp
        key = subscripts.replace(" ", "")
        if key == "bij,bj->bi":
            a, b = operands
            return xp.matmul(a, b[..., None])[..., 0]
        if key == "bij,bi->bj":
            a, b = operands
            return xp.matmul(b[:, None, :], a)[:, 0, :]
        if key == "ij,j->i":
            a, b = operands
            return xp.matmul(a, b)
        if key == "ij,i->j":
            a, b = operands
            return xp.matmul(xp.matrix_transpose(a), b)
        if key in ("bt,bt->b", "bi,bi->b"):
            a, b = operands
            return xp.sum(a * b, axis=-1)
        raise ValidationError(
            f"einsum pattern {subscripts!r} is not supported by the "
            "array-API backend adapter")

    def matmul(self, a, b):
        return self.xp.matmul(a, b)

    def transpose(self, x):
        return self.xp.matrix_transpose(x)

    def logsumexp(self, x, axis=None):
        xp = self.xp
        shift = xp.max(x, axis=axis, keepdims=True)
        # Freeze non-finite shifts at zero so fully -inf slices produce
        # -inf (not nan) like scipy's implementation.
        shift = xp.where(xp.isfinite(shift), shift,
                         xp.zeros_like(shift))
        summed = xp.sum(xp.exp(x - shift), axis=axis)
        return xp.log(summed) + xp.squeeze(
            shift, axis=tuple(range(x.ndim)) if axis is None else axis)

    def exp(self, x):
        return self.xp.exp(x)

    def log(self, x):
        return self.xp.log(x)

    def abs(self, x):
        return self.xp.abs(x)

    def power(self, a, b):
        return self.xp.pow(a, self._wrap_operand(a, b))

    def where(self, condition, a, b):
        if not (hasattr(a, "dtype") or hasattr(b, "dtype")):
            a = self.xp.asarray(a)
        if hasattr(a, "dtype"):
            b = self._wrap_operand(a, b)
        else:
            a = self._wrap_operand(b, a)
        return self.xp.where(condition, a, b)

    def maximum(self, a, b):
        return self.xp.maximum(a, self._wrap_operand(a, b))

    def minimum(self, a, b):
        return self.xp.minimum(a, self._wrap_operand(a, b))

    def logical_or(self, a, b):
        return self.xp.logical_or(a, b)

    def isfinite(self, x):
        return self.xp.isfinite(x)

    def sum(self, x, axis=None, keepdims=False):
        return self.xp.sum(x, axis=axis, keepdims=keepdims)

    def max(self, x, axis=None, keepdims=False):
        return self.xp.max(x, axis=axis, keepdims=keepdims)

    def min(self, x, axis=None, keepdims=False):
        return self.xp.min(x, axis=axis, keepdims=keepdims)

    def any(self, x, axis=None):
        return self.xp.any(x, axis=axis)

    def all(self, x, axis=None):
        return self.xp.all(x, axis=axis)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class TorchBackend(ArrayBackend):
    """PyTorch backend (CPU by default; pass ``device=`` for CUDA/MPS)."""

    name = "torch"

    def __init__(self, device=None):
        import torch  # deferred: optional dependency

        self.torch = torch
        self.device = device
        self.float64 = torch.float64
        self.int64 = torch.int64
        self.bool = torch.bool

    def asarray(self, x, dtype=None):
        if isinstance(x, self.torch.Tensor):
            tensor = x
        else:
            # as_tensor mishandles non-contiguous host views (e.g.
            # numpy broadcast_to results with zero strides).
            tensor = self.torch.as_tensor(
                np.ascontiguousarray(np.asarray(x)))
        if dtype is not None:
            tensor = tensor.to(dtype)
        if self.device is not None:
            tensor = tensor.to(self.device)
        return tensor

    def astype(self, x, dtype):
        return x.to(dtype)

    def to_numpy(self, x) -> np.ndarray:
        return x.detach().cpu().numpy()

    def zeros(self, shape, dtype=None):
        return self.torch.zeros(shape, dtype=dtype, device=self.device)

    def ones(self, shape, dtype=None):
        return self.torch.ones(shape, dtype=dtype, device=self.device)

    def arange(self, start, stop=None, dtype=None):
        if stop is None:
            start, stop = 0, start
        return self.torch.arange(start, stop, dtype=dtype,
                                 device=self.device)

    def reshape(self, x, shape):
        return self.torch.reshape(x, shape)

    def stack(self, arrays, axis=0):
        return self.torch.stack(list(arrays), dim=axis)

    def concat(self, arrays, axis=0):
        return self.torch.cat(list(arrays), dim=axis)

    def take(self, x, indices, axis):
        return self.torch.index_select(x, axis, indices)

    def take_along_axis(self, x, indices, axis):
        return self.torch.take_along_dim(x, indices, dim=axis)

    def cumsum(self, x, axis):
        return self.torch.cumsum(x, dim=axis)

    def argsort(self, x, axis=-1):
        return self.torch.argsort(x, dim=axis, stable=True)

    def searchsorted(self, sorted_sequence, values, side="left"):
        return self.torch.searchsorted(sorted_sequence, values, side=side)

    def einsum(self, subscripts, *operands):
        return self.torch.einsum(subscripts, *operands)

    def matmul(self, a, b):
        return self.torch.matmul(a, b)

    def transpose(self, x):
        return self.torch.transpose(x, -2, -1)

    def logsumexp(self, x, axis=None):
        if axis is None:
            return self.torch.logsumexp(x.reshape(-1), dim=0)
        return self.torch.logsumexp(x, dim=axis)

    def exp(self, x):
        return self.torch.exp(x)

    def log(self, x):
        return self.torch.log(x)

    def abs(self, x):
        return self.torch.abs(x)

    def power(self, a, b):
        return self.torch.pow(a, b)

    def where(self, condition, a, b):
        if not isinstance(a, self.torch.Tensor) \
                and not isinstance(b, self.torch.Tensor):
            a = self.asarray(a)
        return self.torch.where(condition, a, b)

    def maximum(self, a, b):
        if not isinstance(b, self.torch.Tensor):
            b = self.torch.as_tensor(b, dtype=a.dtype, device=a.device)
        return self.torch.maximum(a, b)

    def minimum(self, a, b):
        if not isinstance(b, self.torch.Tensor):
            b = self.torch.as_tensor(b, dtype=a.dtype, device=a.device)
        return self.torch.minimum(a, b)

    def logical_or(self, a, b):
        return self.torch.logical_or(a, b)

    def isfinite(self, x):
        return self.torch.isfinite(x)

    def sum(self, x, axis=None, keepdims=False):
        if axis is None:
            return self.torch.sum(x)
        return self.torch.sum(x, dim=axis, keepdim=keepdims)

    def max(self, x, axis=None, keepdims=False):
        if axis is None:
            return self.torch.max(x)
        return self.torch.amax(x, dim=axis, keepdim=keepdims)

    def min(self, x, axis=None, keepdims=False):
        if axis is None:
            return self.torch.min(x)
        return self.torch.amin(x, dim=axis, keepdim=keepdims)

    def any(self, x, axis=None):
        if axis is None:
            return self.torch.any(x)
        return self.torch.any(x, dim=axis)

    def all(self, x, axis=None):
        if axis is None:
            return self.torch.all(x)
        return self.torch.all(x, dim=axis)


class CupyBackend(ArrayBackend):
    """CuPy backend (numpy-compatible namespace on CUDA devices)."""

    name = "cupy"

    def __init__(self):
        import cupy  # deferred: optional dependency

        self.cupy = cupy
        self.float64 = cupy.float64
        self.int64 = cupy.int64
        self.bool = cupy.bool_

    def asarray(self, x, dtype=None):
        return self.cupy.asarray(x, dtype=dtype)

    def astype(self, x, dtype):
        return x.astype(dtype)

    def to_numpy(self, x) -> np.ndarray:
        return self.cupy.asnumpy(x)

    def zeros(self, shape, dtype=None):
        return self.cupy.zeros(shape, dtype=dtype)

    def ones(self, shape, dtype=None):
        return self.cupy.ones(shape, dtype=dtype)

    def arange(self, start, stop=None, dtype=None):
        return self.cupy.arange(start, stop, dtype=dtype)

    def reshape(self, x, shape):
        return self.cupy.reshape(x, shape)

    def stack(self, arrays, axis=0):
        return self.cupy.stack(list(arrays), axis=axis)

    def concat(self, arrays, axis=0):
        return self.cupy.concatenate(list(arrays), axis=axis)

    def take(self, x, indices, axis):
        return self.cupy.take(x, indices, axis=axis)

    def take_along_axis(self, x, indices, axis):
        return self.cupy.take_along_axis(x, indices, axis=axis)

    def cumsum(self, x, axis):
        return self.cupy.cumsum(x, axis=axis)

    def argsort(self, x, axis=-1):
        return self.cupy.argsort(x, axis=axis, kind="stable")

    def searchsorted(self, sorted_sequence, values, side="left"):
        return self.cupy.searchsorted(sorted_sequence, values, side=side)

    def einsum(self, subscripts, *operands):
        return self.cupy.einsum(subscripts, *operands)

    def matmul(self, a, b):
        return self.cupy.matmul(a, b)

    def transpose(self, x):
        return self.cupy.swapaxes(x, -2, -1)

    def logsumexp(self, x, axis=None):
        shift = self.cupy.max(x, axis=axis, keepdims=True)
        shift = self.cupy.where(self.cupy.isfinite(shift), shift, 0.0)
        out = self.cupy.log(self.cupy.sum(self.cupy.exp(x - shift),
                                          axis=axis))
        return out + self.cupy.squeeze(shift, axis=axis)

    def exp(self, x):
        return self.cupy.exp(x)

    def log(self, x):
        return self.cupy.log(x)

    def abs(self, x):
        return self.cupy.abs(x)

    def power(self, a, b):
        return self.cupy.power(a, b)

    def where(self, condition, a, b):
        return self.cupy.where(condition, a, b)

    def maximum(self, a, b):
        return self.cupy.maximum(a, b)

    def minimum(self, a, b):
        return self.cupy.minimum(a, b)

    def logical_or(self, a, b):
        return self.cupy.logical_or(a, b)

    def isfinite(self, x):
        return self.cupy.isfinite(x)

    def sum(self, x, axis=None, keepdims=False):
        return self.cupy.sum(x, axis=axis, keepdims=keepdims)

    def max(self, x, axis=None, keepdims=False):
        return self.cupy.max(x, axis=axis, keepdims=keepdims)

    def min(self, x, axis=None, keepdims=False):
        return self.cupy.min(x, axis=axis, keepdims=keepdims)

    def any(self, x, axis=None):
        return self.cupy.any(x, axis=axis)

    def all(self, x, axis=None):
        return self.cupy.all(x, axis=axis)


# -- entry-point-free registry ------------------------------------------------


def _make_numpy() -> ArrayBackend:
    return NumpyBackend()


def _make_array_api_strict() -> ArrayBackend:
    import array_api_strict  # raises ImportError when unavailable

    return ArrayAPIBackend(array_api_strict, name="array_api_strict")


def _make_torch() -> ArrayBackend:
    return TorchBackend()


def _make_cupy() -> ArrayBackend:
    return CupyBackend()


#: name -> zero-argument factory.  Factories raise ``ImportError`` when
#: the underlying library is absent; :func:`get_backend` turns that into
#: an actionable :class:`~repro.exceptions.ValidationError`.
_FACTORIES: dict = {
    "numpy": _make_numpy,
    "array_api_strict": _make_array_api_strict,
    "torch": _make_torch,
    "cupy": _make_cupy,
}

#: Aliases accepted by :func:`get_backend` besides the primary names.
_ALIASES: dict = {"auto": "numpy", "strict": "array_api_strict"}

#: The registered primary backend names (availability not implied; see
#: :func:`available_backends`).
BACKEND_NAMES = tuple(_FACTORIES)

#: Resolved singletons, one per primary name.
_INSTANCES: dict = {}


def register_array_backend(name: str, factory, *,
                           overwrite: bool = False) -> None:
    """Register a zero-argument backend ``factory`` under ``name``.

    The entry-point-free plugin hook: third-party device backends add
    themselves here and every ``backend=`` consumer (``solve``,
    ``solve_many``, ``design_repair``, the CLI) can resolve them by
    name.  The factory may raise ``ImportError`` to signal that its
    library is unavailable at runtime.
    """
    if not name or not isinstance(name, str):
        raise ValidationError("backend name must be a non-empty string")
    if (name in _FACTORIES or name in _ALIASES) and not overwrite:
        raise ValidationError(
            f"backend {name!r} is already registered; pass overwrite=True "
            "to replace it")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple:
    """Names of the backends that can actually be constructed right now
    (the optional libraries behind ``torch``/``cupy``/
    ``array_api_strict`` are probed, not assumed).

    >>> "numpy" in available_backends()
    True
    """
    names = []
    for name in _FACTORIES:
        try:
            _resolve_name(name)
        except ValidationError:
            continue
        names.append(name)
    return tuple(names)


def _resolve_name(name: str) -> ArrayBackend:
    if name in _INSTANCES:
        return _INSTANCES[name]
    factory = _FACTORIES[name]
    try:
        instance = factory()
    except ImportError as exc:
        raise ValidationError(
            f"backend {name!r} is registered but not available in this "
            f"environment ({exc}); install it or pick another backend"
        ) from exc
    _INSTANCES[name] = instance
    return instance


def get_backend(spec=None) -> ArrayBackend:
    """Resolve a backend *spec* into an :class:`ArrayBackend`.

    Parameters
    ----------
    spec:
        ``None`` or ``"auto"`` — the numpy reference backend (device
        backends are explicit opt-ins, so default results never change);
        a registered name (``"numpy"``, ``"torch"``, ``"cupy"``,
        ``"array_api_strict"``, or anything added through
        :func:`register_array_backend`); or a ready-made
        :class:`ArrayBackend` instance (returned as-is).

    >>> get_backend("auto").name
    'numpy'
    >>> get_backend(get_backend("numpy")).name
    'numpy'
    """
    if spec is None:
        return _resolve_name("numpy")
    if isinstance(spec, ArrayBackend):
        return spec
    if isinstance(spec, str):
        name = _ALIASES.get(spec, spec)
        if name not in _FACTORIES:
            raise ValidationError(
                f"unknown backend {spec!r}; expected one of "
                f"{tuple(_FACTORIES) + tuple(_ALIASES)} or an ArrayBackend "
                "instance")
        return _resolve_name(name)
    raise ValidationError(
        f"cannot resolve backend spec of type {type(spec).__name__}; pass "
        f"a name from {tuple(_FACTORIES)}, None/'auto', or an ArrayBackend")
