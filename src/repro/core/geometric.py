"""The geometric-repair baseline of Del Barrio, Gordaliza & Loubes.

Reference [10] of the paper (ICML 2019), generalising the 1-D repair of
Feldman et al. [4].  Given empirical measures ``µ_0, µ_1`` of the two
protected subgroups and their optimal plan ``π*``, each *on-sample* point is
moved along the plan toward the ``t``-barycentre (paper Eqs. 8-9):

    x'_{0,i} = (1 - t) x_{0,i} + n_0 t   Σ_j π*_{ij} x_{1,j}
    x'_{1,j} = n_1 (1 - t) Σ_i π*_{ij} x_{0,i} + t x_{1,j}

The transport is designed point-wise on the research observations, so the
method cannot repair off-sample points — the limitation that motivates the
paper's distributional repair.  We implement it as the experimental
baseline: per-feature (1-D, exact monotone plans — the configuration used
in the paper's tables) and optionally multivariate via the transportation
simplex.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_rng, check_probability
from ..data.dataset import FairnessDataset
from ..exceptions import ValidationError
from ..ot.cost import squared_euclidean_cost
from ..ot.network_simplex import transport_simplex
from ..ot.onedim import solve_1d

__all__ = ["geometric_repair_1d", "geometric_repair_multivariate",
           "GeometricRepairer"]


def geometric_repair_1d(samples0, samples1,
                        t: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
    """Eqs. 8-9 for one feature: repair both subgroup samples in place.

    Returns the repaired values in the original orders of ``samples0`` and
    ``samples1``.
    """
    t = check_probability(t, name="t")
    xs0 = np.asarray(samples0, dtype=float).ravel()
    xs1 = np.asarray(samples1, dtype=float).ravel()
    if xs0.size == 0 or xs1.size == 0:
        raise ValidationError("both subgroups need at least one sample")
    n0, n1 = xs0.size, xs1.size
    mu = np.full(n0, 1.0 / n0)
    nu = np.full(n1, 1.0 / n1)
    plan = solve_1d(xs0, mu, xs1, nu, p=2).matrix
    # Eq. 8: x'_0 = (1 - t) x_0 + n_0 t Σ_j π_ij x_1j
    repaired0 = (1.0 - t) * xs0 + n0 * t * (plan @ xs1)
    # Eq. 9: x'_1 = n_1 (1 - t) Σ_i π_ij x_0i + t x_1
    repaired1 = n1 * (1.0 - t) * (plan.T @ xs0) + t * xs1
    return repaired0, repaired1


def geometric_repair_multivariate(samples0, samples1, t: float = 0.5
                                  ) -> tuple[np.ndarray, np.ndarray]:
    """Eqs. 8-9 on full feature vectors (squared-Euclidean plan).

    Couples the two empirical measures with the transportation simplex;
    cubic in the subgroup sizes, so intended for modest research sets.
    """
    t = check_probability(t, name="t")
    xs0 = np.asarray(samples0, dtype=float)
    xs1 = np.asarray(samples1, dtype=float)
    if xs0.ndim == 1:
        xs0 = xs0.reshape(-1, 1)
    if xs1.ndim == 1:
        xs1 = xs1.reshape(-1, 1)
    if xs0.size == 0 or xs1.size == 0:
        raise ValidationError("both subgroups need at least one sample")
    n0, n1 = xs0.shape[0], xs1.shape[0]
    cost = squared_euclidean_cost(xs0, xs1)
    plan = transport_simplex(cost, np.full(n0, 1.0 / n0),
                             np.full(n1, 1.0 / n1))
    repaired0 = (1.0 - t) * xs0 + n0 * t * (plan @ xs1)
    repaired1 = n1 * (1.0 - t) * (plan.T @ xs0) + t * xs1
    return repaired0, repaired1


class GeometricRepairer:
    """On-sample geometric repair, stratified by ``u`` (and ``k``).

    Parameters
    ----------
    t:
        Barycentric interpolation parameter (``0.5`` = fair midpoint; the
        partial-repair knob of [10]).
    mode:
        ``"per-feature"`` (paper configuration: independent 1-D repairs per
        feature, exact monotone plans) or ``"multivariate"`` (joint repair
        of the full vector via the transportation simplex).

    Notes
    -----
    There is deliberately no ``transform`` for unseen data: the plan's
    domain is exactly the design sample (Section III-B), which is the
    baseline's structural limitation versus the distributional repair.
    """

    def __init__(self, t: float = 0.5, *, mode: str = "per-feature") -> None:
        self.t = check_probability(t, name="t")
        if mode not in ("per-feature", "multivariate"):
            raise ValidationError(
                f"unknown mode {mode!r}; expected 'per-feature' or "
                "'multivariate'")
        self.mode = mode

    def fit_transform(self, dataset: FairnessDataset) -> FairnessDataset:
        """Design and apply the repair on the same (research) data."""
        repaired = dataset.features.copy()
        for u in dataset.u_values:
            mask0 = dataset.group_mask(int(u), 0)
            mask1 = dataset.group_mask(int(u), 1)
            if not mask0.any() or not mask1.any():
                raise ValidationError(
                    f"group u={int(u)} lacks one protected class; geometric "
                    "repair needs both")
            if self.mode == "per-feature":
                for k in range(dataset.n_features):
                    rep0, rep1 = geometric_repair_1d(
                        dataset.features[mask0, k],
                        dataset.features[mask1, k], self.t)
                    repaired[mask0, k] = rep0
                    repaired[mask1, k] = rep1
            else:
                rep0, rep1 = geometric_repair_multivariate(
                    dataset.features[mask0], dataset.features[mask1], self.t)
                repaired[mask0] = rep0
                repaired[mask1] = rep1
        return dataset.with_features(repaired)
