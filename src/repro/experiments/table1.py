"""Table I — repairs of the simulated bivariate-Gaussian subgroups.

Reproduces the paper's Section V-A1 comparison: per-feature conditional
dependence ``E_k`` of the research and archival sets under

* no repair,
* our distributional OT repair (Algorithms 1-2), and
* the geometric OT repair of Del Barrio et al. [10] (research only — it is
  on-sample by construction),

as ``mean ± std`` over independent Monte-Carlo repetitions.

Paper parameters: ``n_R = 500``, ``n_A = 5000``, ``n_Q = 50``, 200 repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_rng
from ..core.geometric import GeometricRepairer
from ..core.repair import DistributionalRepairer
from ..data.simulated import paper_simulation_spec, simulate_paper_data
from ..metrics.fairness import conditional_dependence_energy
from .montecarlo import MonteCarloSummary, run_monte_carlo
from .reporting import banner, format_mean_std, format_table

__all__ = ["Table1Config", "Table1Result", "run_table1", "main"]


@dataclass(frozen=True)
class Table1Config:
    """Operating conditions for the Table I experiment."""

    n_research: int = 500
    n_archive: int = 5000
    n_states: int = 50
    n_repeats: int = 25
    n_grid: int = 100
    seed: int = 2024


@dataclass(frozen=True)
class Table1Result:
    """Per-repair summaries; arrays are ordered ``[E_1, E_2]``."""

    unrepaired_research: MonteCarloSummary
    unrepaired_archive: MonteCarloSummary
    distributional_research: MonteCarloSummary
    distributional_archive: MonteCarloSummary
    geometric_research: MonteCarloSummary
    config: Table1Config

    def rows(self) -> list:
        """The table rows in the paper's layout."""
        def cells(summary: MonteCarloSummary) -> list:
            return [format_mean_std(summary.mean[k], summary.std[k])
                    for k in range(summary.mean.size)]

        dash = ["-", "-"]
        return [
            ["None", *cells(self.unrepaired_research),
             *cells(self.unrepaired_archive)],
            ["Distributional (ours)", *cells(self.distributional_research),
             *cells(self.distributional_archive)],
            ["Geometric [10]", *cells(self.geometric_research), *dash],
        ]

    def render(self) -> str:
        headers = ["Repair", "E1 (Research)", "E2 (Research)",
                   "E1 (Archive)", "E2 (Archive)"]
        title = (f"Table I — simulated Gaussian subgroups "
                 f"(nR={self.config.n_research}, nA={self.config.n_archive},"
                 f" nQ={self.config.n_states}, "
                 f"{self.config.n_repeats} repeats)")
        return format_table(headers, self.rows(), title=title)


def _one_trial(generator: np.random.Generator,
               config: Table1Config) -> np.ndarray:
    """One Monte-Carlo repetition; returns the 10 statistics of Table I."""
    split = simulate_paper_data(config.n_research, config.n_archive,
                                rng=generator,
                                spec=paper_simulation_spec())
    research, archive = split.research, split.archive

    def energy(dataset) -> np.ndarray:
        return conditional_dependence_energy(
            dataset.features, dataset.s, dataset.u,
            n_grid=config.n_grid).per_feature

    unrepaired_r = energy(research)
    unrepaired_a = energy(archive)

    repairer = DistributionalRepairer(n_states=config.n_states,
                                      rng=generator)
    repairer.fit(research)
    repaired_r = energy(repairer.transform(research))
    repaired_a = energy(repairer.transform(archive))

    geometric = GeometricRepairer().fit_transform(research)
    geometric_r = energy(geometric)

    return np.concatenate([unrepaired_r, unrepaired_a, repaired_r,
                           repaired_a, geometric_r])


def run_table1(config: Table1Config | None = None) -> Table1Result:
    """Run the full Monte-Carlo study and return the summarised table."""
    config = config or Table1Config()
    summary = run_monte_carlo(lambda g: _one_trial(g, config),
                              config.n_repeats, rng=config.seed)

    def slice_summary(start: int) -> MonteCarloSummary:
        block = summary.samples[:, start:start + 2]
        return MonteCarloSummary(mean=block.mean(axis=0),
                                 std=block.std(axis=0, ddof=1)
                                 if block.shape[0] > 1
                                 else np.zeros(2),
                                 samples=block)

    return Table1Result(
        unrepaired_research=slice_summary(0),
        unrepaired_archive=slice_summary(2),
        distributional_research=slice_summary(4),
        distributional_archive=slice_summary(6),
        geometric_research=slice_summary(8),
        config=config,
    )


def main(n_repeats: int = 25, seed: int = 2024) -> Table1Result:
    """CLI-style entry point: run and print Table I."""
    result = run_table1(Table1Config(n_repeats=n_repeats, seed=seed))
    print(banner("Experiment: Table I"))
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
