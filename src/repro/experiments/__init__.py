"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`~repro.experiments.table1` — Table I (simulated repair comparison).
* :mod:`~repro.experiments.table2` — Table II (Adult income repairs).
* :mod:`~repro.experiments.fig3` — Figure 3 (``E`` vs ``n_R``).
* :mod:`~repro.experiments.fig4` — Figure 4 (``E`` vs ``n_Q``).
* :mod:`~repro.experiments.montecarlo` — shared repetition harness.
* :mod:`~repro.experiments.reporting` — ASCII table/series rendering.
"""

from .extensions import (CorrelationStudyResult, MongeStudyResult,
                         TradeoffResult, copula_biased_spec,
                         run_correlation_study, run_monge_study,
                         run_tradeoff)
from .fig3 import Fig3Config, Fig3Result, run_fig3
from .fig4 import Fig4Config, Fig4Result, run_fig4
from .montecarlo import MonteCarloSummary, run_monte_carlo
from .reporting import banner, format_mean_std, format_series, format_table
from .table1 import Table1Config, Table1Result, run_table1
from .table2 import Table2Config, Table2Result, run_table2

__all__ = [
    "CorrelationStudyResult",
    "Fig3Config",
    "Fig3Result",
    "Fig4Config",
    "Fig4Result",
    "MongeStudyResult",
    "MonteCarloSummary",
    "Table1Config",
    "TradeoffResult",
    "Table1Result",
    "Table2Config",
    "Table2Result",
    "banner",
    "copula_biased_spec",
    "format_mean_std",
    "format_series",
    "format_table",
    "run_correlation_study",
    "run_fig3",
    "run_fig4",
    "run_monge_study",
    "run_monte_carlo",
    "run_tradeoff",
    "run_table1",
    "run_table2",
]
