"""ASCII reporting helpers for the experiment drivers.

Every experiment driver prints the same rows/series the paper reports, via
these small formatting utilities (no external tabulation library).
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_mean_std", "format_series", "banner"]


def format_mean_std(mean: float, std: float | None = None, *,
                    digits: int = 4) -> str:
    """``mean ± std`` with aligned significant digits (std optional)."""
    if std is None or not np.isfinite(std):
        return f"{mean:.{digits}g}"
    return f"{mean:.{digits}g} ± {std:.{digits}g}"


def format_table(headers, rows, *, title: str | None = None) -> str:
    """Render a list-of-lists as a fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row]
                                           for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w)
                            for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(xs, ys, *, x_name: str = "x", y_name: str = "y",
                  title: str | None = None, digits: int = 4) -> str:
    """Render a figure's (x, y) series as an aligned two-column listing."""
    rows = [[f"{x:g}", f"{y:.{digits}g}"] for x, y in zip(xs, ys)]
    return format_table([x_name, y_name], rows, title=title)


def banner(text: str) -> str:
    """A visually separated section header."""
    rule = "=" * max(len(text), 8)
    return f"{rule}\n{text}\n{rule}"
