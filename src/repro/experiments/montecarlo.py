"""Monte-Carlo harness for the repeated-simulation experiments.

The paper evaluates the simulated experiments over 200 independent
Monte-Carlo repetitions and reports ``mean ± std``.  This module provides a
small, seedable repetition engine that the table/figure drivers share.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from .._validation import as_rng, check_positive_int

__all__ = ["MonteCarloSummary", "run_monte_carlo"]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Mean/std summary of a vector-valued Monte-Carlo estimate.

    Attributes
    ----------
    mean, std:
        Element-wise statistics across repetitions.
    samples:
        The raw ``(n_repeats, dim)`` matrix, kept for downstream tests.
    """

    mean: np.ndarray
    std: np.ndarray
    samples: np.ndarray

    @property
    def n_repeats(self) -> int:
        return self.samples.shape[0]

    def scalar(self) -> tuple[float, float]:
        """(mean, std) when the estimate is one-dimensional."""
        return float(self.mean[0]), float(self.std[0])


def run_monte_carlo(trial: Callable[[np.random.Generator], np.ndarray],
                    n_repeats: int, *, rng=None) -> MonteCarloSummary:
    """Repeat ``trial`` with independent child generators and summarise.

    Parameters
    ----------
    trial:
        Callable receiving a fresh :class:`numpy.random.Generator` and
        returning a 1-D array of statistics for one repetition.
    n_repeats:
        Number of independent repetitions (the paper uses 200).
    """
    n_repeats = check_positive_int(n_repeats, name="n_repeats")
    master = as_rng(rng)
    results = []
    for _ in range(n_repeats):
        child = np.random.default_rng(master.integers(0, 2 ** 63 - 1))
        outcome = np.atleast_1d(np.asarray(trial(child), dtype=float))
        results.append(outcome)
    samples = np.vstack(results)
    return MonteCarloSummary(mean=samples.mean(axis=0),
                             std=samples.std(axis=0, ddof=1)
                             if n_repeats > 1 else np.zeros(samples.shape[1]),
                             samples=samples)
