"""Figure 3 — repair quality versus research-set size ``n_R``.

Sweeps the size of the research data set (the paper uses 25 to 750) at
fixed ``n_A = 5000`` and ``n_Q = 50``, measuring the aggregate ``E`` of the
repaired research and archival sets (plus the unrepaired composite as the
reference line).  The paper's headline: ``E`` converges by
``n_R ≈ 10 %`` of the archive size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.repair import DistributionalRepairer
from ..data.simulated import paper_simulation_spec
from ..metrics.fairness import conditional_dependence_energy
from .montecarlo import run_monte_carlo
from .reporting import banner, format_table

__all__ = ["Fig3Config", "Fig3Result", "run_fig3", "main"]

_DEFAULT_SIZES = (25, 50, 100, 200, 300, 500, 750)


@dataclass(frozen=True)
class Fig3Config:
    """Operating conditions for the Figure 3 sweep."""

    research_sizes: tuple = _DEFAULT_SIZES
    n_archive: int = 5000
    n_states: int = 50
    n_repeats: int = 10
    n_grid: int = 100
    seed: int = 2024


@dataclass(frozen=True)
class Fig3Result:
    """The figure's series: ``E`` vs ``n_R`` for each curve."""

    research_sizes: np.ndarray
    repaired_research: np.ndarray
    repaired_research_std: np.ndarray
    repaired_archive: np.ndarray
    repaired_archive_std: np.ndarray
    unrepaired: np.ndarray
    unrepaired_std: np.ndarray
    config: Fig3Config

    def render(self) -> str:
        rows = []
        for i, size in enumerate(self.research_sizes):
            rows.append([
                f"{int(size)}",
                f"{self.repaired_research[i]:.4g} "
                f"± {self.repaired_research_std[i]:.3g}",
                f"{self.repaired_archive[i]:.4g} "
                f"± {self.repaired_archive_std[i]:.3g}",
                f"{self.unrepaired[i]:.4g} ± {self.unrepaired_std[i]:.3g}",
            ])
        title = (f"Figure 3 — E vs nR (nA={self.config.n_archive}, "
                 f"nQ={self.config.n_states}, "
                 f"{self.config.n_repeats} repeats)")
        return format_table(
            ["nR", "E repaired research", "E repaired archive",
             "E unrepaired composite"], rows, title=title)

    def converged_by(self, *, rtol: float = 0.5) -> int:
        """Smallest ``n_R`` whose repaired-archive ``E`` is within
        ``(1 + rtol)`` of the final sweep value — the convergence point the
        paper reads off the figure."""
        final = self.repaired_archive[-1]
        for size, value in zip(self.research_sizes, self.repaired_archive):
            if value <= final * (1.0 + rtol):
                return int(size)
        return int(self.research_sizes[-1])


def _one_trial(generator: np.random.Generator, n_research: int,
               config: Fig3Config) -> np.ndarray:
    spec = paper_simulation_spec()
    composite = spec.sample(n_research + config.n_archive, rng=generator)
    split = composite.split(n_research=n_research, rng=generator)

    def total_energy(dataset) -> float:
        return conditional_dependence_energy(
            dataset.features, dataset.s, dataset.u,
            n_grid=config.n_grid).total

    repairer = DistributionalRepairer(n_states=config.n_states,
                                      rng=generator)
    repairer.fit(split.research)
    repaired_research = total_energy(repairer.transform(split.research))
    repaired_archive = total_energy(repairer.transform(split.archive))
    unrepaired = total_energy(composite)
    return np.array([repaired_research, repaired_archive, unrepaired])


def run_fig3(config: Fig3Config | None = None) -> Fig3Result:
    """Run the sweep and return the three series of Figure 3."""
    config = config or Fig3Config()
    means = []
    stds = []
    for n_research in config.research_sizes:
        summary = run_monte_carlo(
            lambda g: _one_trial(g, int(n_research), config),
            config.n_repeats, rng=config.seed + int(n_research))
        means.append(summary.mean)
        stds.append(summary.std)
    means = np.vstack(means)
    stds = np.vstack(stds)
    return Fig3Result(
        research_sizes=np.asarray(config.research_sizes, dtype=int),
        repaired_research=means[:, 0], repaired_research_std=stds[:, 0],
        repaired_archive=means[:, 1], repaired_archive_std=stds[:, 1],
        unrepaired=means[:, 2], unrepaired_std=stds[:, 2],
        config=config,
    )


def main(n_repeats: int = 10, seed: int = 2024) -> Fig3Result:
    """CLI-style entry point: run and print the Figure 3 series."""
    result = run_fig3(Fig3Config(n_repeats=n_repeats, seed=seed))
    print(banner("Experiment: Figure 3"))
    print(result.render())
    print(f"Repaired-archive E within 50% of final value by "
          f"nR = {result.converged_by()}")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
