"""Extension studies beyond the paper's evaluation.

Three structured drivers, reported like the table/figure experiments:

* :func:`run_tradeoff` — residual dependence vs feature damage along the
  partial-repair dial λ (Section VI's flagged trade-off);
* :func:`run_correlation_study` — per-feature vs joint repair on data
  whose unfairness hides in the correlation structure (the Section VI
  limitation);
* :func:`run_monge_study` — stochastic Kantorovich repair vs the
  deterministic Monge-map limit (Section VI's individual-fairness
  conjecture).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.joint import JointDistributionalRepairer
from ..core.monge import MongeRepairer
from ..core.partial import PartialRepairer, repair_damage
from ..core.repair import DistributionalRepairer
from ..data.dataset import FairnessDataset
from ..data.simulated import GaussianMixtureSpec, paper_simulation_spec
from ..metrics.fairness import conditional_dependence_energy
from ..metrics.multivariate import correlation_gap, sliced_dependence
from .reporting import format_table

__all__ = ["TradeoffResult", "run_tradeoff", "CorrelationStudyResult",
           "run_correlation_study", "MongeStudyResult", "run_monge_study",
           "copula_biased_spec"]


# -- partial-repair trade-off --------------------------------------------------


@dataclass(frozen=True)
class TradeoffResult:
    """The λ-sweep of (residual E, damage)."""

    amounts: np.ndarray
    energies: np.ndarray
    damages: np.ndarray

    def render(self) -> str:
        rows = [[f"{a:.2f}", f"{e:.4g}", f"{d:.4g}"]
                for a, e, d in zip(self.amounts, self.energies,
                                   self.damages)]
        return format_table(["lambda", "E residual", "damage RMS"], rows,
                            title="Extension — partial-repair trade-off")

    def is_monotone_damage(self) -> bool:
        return bool(np.all(np.diff(self.damages) >= -1e-12))


def run_tradeoff(*, n_research: int = 500, n_archive: int = 4000,
                 amounts=None, seed: int = 2024) -> TradeoffResult:
    """Sweep λ on the paper's simulated setting."""
    if amounts is None:
        amounts = np.linspace(0.0, 1.0, 6)
    split = paper_simulation_spec().sample(
        n_research + n_archive,
        rng=np.random.default_rng(seed)).split(n_research=n_research,
                                               rng=seed)

    def energy(dataset: FairnessDataset) -> float:
        return conditional_dependence_energy(dataset.features, dataset.s,
                                             dataset.u).total

    partial = PartialRepairer(n_states=50, rng=seed)
    records = partial.trade_off_curve(split.research, split.archive,
                                      amounts, energy_fn=energy, rng=seed)
    return TradeoffResult(
        amounts=np.asarray([r["amount"] for r in records]),
        energies=np.asarray([r["energy"] for r in records]),
        damages=np.asarray([r["damage"] for r in records]))


# -- correlation (joint vs per-feature) -----------------------------------------


def copula_biased_spec(rho: float = 0.8) -> GaussianMixtureSpec:
    """Identical marginals, ±rho correlation per protected class."""
    return GaussianMixtureSpec(
        means={(u, s): [0.0, 0.0] for u in (0, 1) for s in (0, 1)},
        p_u0=0.5, p_s0_given_u={0: 0.4, 1: 0.4},
        covariances={(0, 0): [[1, rho], [rho, 1]],
                     (1, 0): [[1, rho], [rho, 1]],
                     (0, 1): [[1, -rho], [-rho, 1]],
                     (1, 1): [[1, -rho], [-rho, 1]]})


@dataclass(frozen=True)
class CorrelationStudyResult:
    """Sliced-W and correlation-gap per repair variant."""

    sliced: dict
    corr_gaps: dict

    def render(self) -> str:
        rows = [[name, f"{self.sliced[name]:.4g}",
                 f"{self.corr_gaps[name]:.4g}"]
                for name in self.sliced]
        return format_table(
            ["repair", "sliced W", "max corr gap"], rows,
            title="Extension — copula-hidden unfairness "
                  "(per-feature vs joint)")


def run_correlation_study(*, n_total: int = 5000, n_research: int = 1500,
                          rho: float = 0.8,
                          seed: int = 2024) -> CorrelationStudyResult:
    """Contrast per-feature and joint repairs on copula-only bias."""
    split = copula_biased_spec(rho).sample(
        n_total, rng=np.random.default_rng(seed)).split(
        n_research=n_research, rng=seed)

    per_feature = DistributionalRepairer(n_states=30, rng=seed)
    pf_repaired = per_feature.fit(split.research).transform(split.archive)
    joint = JointDistributionalRepairer(n_states=12, rng=seed)
    jt_repaired = joint.fit(split.research).transform(split.archive)

    sliced = {}
    corr_gaps = {}
    for name, ds in (("unrepaired", split.archive),
                     ("per-feature", pf_repaired),
                     ("joint", jt_repaired)):
        sliced[name] = sliced_dependence(ds.features, ds.s, ds.u, rng=0,
                                         n_directions=64)
        corr_gaps[name] = max(correlation_gap(ds.features, ds.s,
                                              ds.u).values())
    return CorrelationStudyResult(sliced=sliced, corr_gaps=corr_gaps)


# -- Monge vs Kantorovich --------------------------------------------------------


@dataclass(frozen=True)
class MongeStudyResult:
    """Group-fairness E and clone spread per repair variant."""

    energies: dict
    clone_spreads: dict

    def render(self) -> str:
        rows = [[name, f"{self.energies[name]:.4g}",
                 f"{self.clone_spreads[name]:.4g}"]
                for name in self.energies]
        return format_table(
            ["repair", "E (archive)", "clone spread"], rows,
            title="Extension — Kantorovich (stochastic) vs Monge "
                  "(deterministic)")


def run_monge_study(*, n_research: int = 500, n_archive: int = 5000,
                    seed: int = 2024) -> MongeStudyResult:
    """Compare Algorithm 2 with its Monge-map limit."""
    split = paper_simulation_spec().sample(
        n_research + n_archive,
        rng=np.random.default_rng(seed)).split(n_research=n_research,
                                               rng=seed)
    monge = MongeRepairer().fit(split.research)
    stochastic = DistributionalRepairer(n_states=50, rng=seed).fit(
        split.research)

    def clone_spread(transform) -> float:
        probe = np.tile(split.archive.features[:1], (200, 1))
        clones = FairnessDataset(
            probe, np.full(200, int(split.archive.s[0])),
            np.full(200, int(split.archive.u[0])))
        return float(transform(clones).features.std(axis=0).mean())

    energies = {}
    spreads = {}
    for name, transform in (
            ("monge", monge.transform),
            ("kantorovich",
             lambda d: stochastic.transform(d, rng=seed + 1))):
        repaired = transform(split.archive)
        energies[name] = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        spreads[name] = clone_spread(transform)
    return MongeStudyResult(energies=energies, clone_spreads=spreads)
