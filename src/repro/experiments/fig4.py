"""Figure 4 — repair quality versus grid resolution ``n_Q``.

Sweeps the interpolated-support resolution ``n_Q ∈ {5, ..., 50}`` at the
paper's fixed sizes (``n_R = 500``, ``n_A = 5000``), measuring the
aggregate ``E`` of the repaired *composite* set ``X_R ∪ X_A``.  The paper's
headline: performance converges above ``n_Q ≈ 30`` — an order of magnitude
fewer states than research points, the compression that makes the method
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.repair import DistributionalRepairer
from ..data.simulated import paper_simulation_spec
from ..metrics.fairness import conditional_dependence_energy
from .montecarlo import run_monte_carlo
from .reporting import banner, format_table

__all__ = ["Fig4Config", "Fig4Result", "run_fig4", "main"]

_DEFAULT_RESOLUTIONS = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass(frozen=True)
class Fig4Config:
    """Operating conditions for the Figure 4 sweep."""

    resolutions: tuple = _DEFAULT_RESOLUTIONS
    n_research: int = 500
    n_archive: int = 5000
    n_repeats: int = 10
    n_grid: int = 100
    seed: int = 2024


@dataclass(frozen=True)
class Fig4Result:
    """The figure's series: composite repaired ``E`` vs ``n_Q``."""

    resolutions: np.ndarray
    composite_energy: np.ndarray
    composite_energy_std: np.ndarray
    config: Fig4Config

    def render(self) -> str:
        rows = [[f"{int(nq)}",
                 f"{self.composite_energy[i]:.4g} "
                 f"± {self.composite_energy_std[i]:.3g}"]
                for i, nq in enumerate(self.resolutions)]
        title = (f"Figure 4 — E vs nQ (nR={self.config.n_research}, "
                 f"nA={self.config.n_archive}, "
                 f"{self.config.n_repeats} repeats)")
        return format_table(["nQ", "E repaired composite"], rows,
                            title=title)

    def convergence_threshold(self, *, rtol: float = 0.25) -> int:
        """Smallest ``n_Q`` within ``(1 + rtol)`` of the final value."""
        final = self.composite_energy[-1]
        for nq, value in zip(self.resolutions, self.composite_energy):
            if value <= final * (1.0 + rtol):
                return int(nq)
        return int(self.resolutions[-1])


def _one_trial(generator: np.random.Generator, n_states: int,
               config: Fig4Config) -> np.ndarray:
    spec = paper_simulation_spec()
    composite = spec.sample(config.n_research + config.n_archive,
                            rng=generator)
    split = composite.split(n_research=config.n_research, rng=generator)
    repairer = DistributionalRepairer(n_states=n_states, rng=generator)
    repairer.fit(split.research)
    repaired = (repairer.transform(split.research)
                .concat(repairer.transform(split.archive)))
    total = conditional_dependence_energy(
        repaired.features, repaired.s, repaired.u,
        n_grid=config.n_grid).total
    return np.array([total])


def run_fig4(config: Fig4Config | None = None) -> Fig4Result:
    """Run the resolution sweep of Figure 4."""
    config = config or Fig4Config()
    means = []
    stds = []
    for n_states in config.resolutions:
        summary = run_monte_carlo(
            lambda g: _one_trial(g, int(n_states), config),
            config.n_repeats, rng=config.seed + int(n_states))
        mean, std = summary.scalar()
        means.append(mean)
        stds.append(std)
    return Fig4Result(resolutions=np.asarray(config.resolutions, dtype=int),
                      composite_energy=np.asarray(means),
                      composite_energy_std=np.asarray(stds),
                      config=config)


def main(n_repeats: int = 10, seed: int = 2024) -> Fig4Result:
    """CLI-style entry point: run and print the Figure 4 series."""
    result = run_fig4(Fig4Config(n_repeats=n_repeats, seed=seed))
    print(banner("Experiment: Figure 4"))
    print(result.render())
    print(f"E within 25% of final value by nQ = "
          f"{result.convergence_threshold()}")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
