"""Table II — repairs of the Adult income data set.

Reproduces the paper's Section V-B study: conditional dependence of the
educational groups (``u`` = college-educated) on gender (``s`` = male) for
the two continuous features *age* and *hours/week*, before and after
repair, on both the research and archive portions.

Paper parameters: ``n_R = 10,000``, ``n_A = 35,222``, ``n_Q = 250``.

Data source: a locally available UCI ``adult.data`` file when one exists
(pass ``adult_path``), otherwise the calibrated synthetic generator
(:func:`repro.data.adult.synthesize_adult`; see DESIGN.md §4 for the
substitution rationale).

The driver reports the distributional repair under both marginal
estimators: ``linear`` (our default for Adult — exact on the 40-hour atom)
and ``kde`` (the paper's Eq. 11), making the estimator choice an explicit
ablation row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.geometric import GeometricRepairer
from ..core.repair import DistributionalRepairer
from ..data.adult import DEFAULT_ADULT_SIZE, load_adult_csv, synthesize_adult
from ..metrics.fairness import conditional_dependence_energy
from .reporting import banner, format_table

__all__ = ["Table2Config", "Table2Result", "run_table2", "main"]


@dataclass(frozen=True)
class Table2Config:
    """Operating conditions for the Table II experiment."""

    n_research: int = 10_000
    n_total: int = DEFAULT_ADULT_SIZE
    n_states: int = 250
    n_grid: int = 100
    seed: int = 2024
    adult_path: str | None = None


@dataclass(frozen=True)
class Table2Result:
    """Per-repair ``E_k`` values (feature order: age, hours/week)."""

    unrepaired_research: np.ndarray
    unrepaired_archive: np.ndarray
    distributional_research: np.ndarray
    distributional_archive: np.ndarray
    distributional_kde_research: np.ndarray
    distributional_kde_archive: np.ndarray
    geometric_research: np.ndarray
    config: Table2Config
    data_source: str

    def rows(self) -> list:
        def cells(values: np.ndarray) -> list:
            return [f"{v:.4g}" for v in values]

        return [
            ["None", *cells(self.unrepaired_research),
             *cells(self.unrepaired_archive)],
            ["Distributional (ours, linear)",
             *cells(self.distributional_research),
             *cells(self.distributional_archive)],
            ["Distributional (ours, kde)",
             *cells(self.distributional_kde_research),
             *cells(self.distributional_kde_archive)],
            ["Geometric [10]", *cells(self.geometric_research), "-", "-"],
        ]

    def render(self) -> str:
        headers = ["Repair", "Age (Research)", "Hours (Research)",
                   "Age (Archive)", "Hours (Archive)"]
        title = (f"Table II — Adult income data [{self.data_source}] "
                 f"(nR={self.config.n_research}, nQ={self.config.n_states})")
        return format_table(headers, self.rows(), title=title)


def run_table2(config: Table2Config | None = None) -> Table2Result:
    """Run the Adult study once (the paper reports a single split)."""
    config = config or Table2Config()
    if config.adult_path is not None:
        data = load_adult_csv(config.adult_path)
        source = "UCI file"
    else:
        data = synthesize_adult(config.n_total, rng=config.seed)
        source = "synthetic"
    split = data.split(n_research=config.n_research, rng=config.seed)
    research, archive = split.research, split.archive

    def energy(dataset) -> np.ndarray:
        return conditional_dependence_energy(
            dataset.features, dataset.s, dataset.u,
            n_grid=config.n_grid).per_feature

    unrepaired_r = energy(research)
    unrepaired_a = energy(archive)

    linear = DistributionalRepairer(n_states=config.n_states,
                                    marginal_estimator="linear",
                                    rng=config.seed)
    linear.fit(research)
    linear_r = energy(linear.transform(research))
    linear_a = energy(linear.transform(archive))

    kde = DistributionalRepairer(n_states=config.n_states,
                                 marginal_estimator="kde", rng=config.seed)
    kde.fit(research)
    kde_r = energy(kde.transform(research))
    kde_a = energy(kde.transform(archive))

    geometric = GeometricRepairer().fit_transform(research)
    geometric_r = energy(geometric)

    return Table2Result(
        unrepaired_research=unrepaired_r,
        unrepaired_archive=unrepaired_a,
        distributional_research=linear_r,
        distributional_archive=linear_a,
        distributional_kde_research=kde_r,
        distributional_kde_archive=kde_a,
        geometric_research=geometric_r,
        config=config,
        data_source=source,
    )


def main(seed: int = 2024, adult_path: str | None = None) -> Table2Result:
    """CLI-style entry point: run and print Table II."""
    result = run_table2(Table2Config(seed=seed, adult_path=adult_path))
    print(banner("Experiment: Table II"))
    print(result.render())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
