"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of this package with a single ``except`` clause,
while still being able to discriminate the common failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, domain, ...)."""


class NotFittedError(ReproError, RuntimeError):
    """A transformer was used before its ``fit`` method was called."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class InfeasibleProblemError(ReproError, ValueError):
    """An optimisation problem has no feasible solution.

    For balanced transportation problems this indicates inconsistent
    marginals (total source mass != total target mass).
    """


class DataError(ReproError, ValueError):
    """A dataset is malformed or inconsistent with its declared schema."""


class SchemaError(DataError):
    """A schema definition is invalid or a record violates the schema."""
