"""Uniform interpolation supports (the sets ``Q`` of Algorithm 1).

Line 4 of Algorithm 1 builds, for every ``(u, k)``, a uniformly spaced grid
between the minimum and maximum of the *combined* research observations of
feature ``k`` in group ``u``.  These grids carry the interpolated marginal
pmfs, the barycentric repair target and (as the row/column index sets) the
OT plans themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_array, check_positive_int
from ..exceptions import ValidationError

__all__ = ["InterpolationGrid", "uniform_grid"]


def uniform_grid(samples, n_states: int, *, padding: float = 0.0) -> np.ndarray:
    """Uniform grid spanning the sample range (Algorithm 1, line 4).

    ``ζ_i = (n_Q - i)/(n_Q - 1) · min(x) + (i - 1)/(n_Q - 1) · max(x)`` for
    ``i = 1..n_Q``, optionally widened by a relative ``padding`` fraction of
    the range on each side (useful when archival data may fall slightly
    outside the research range).
    """
    xs = as_1d_array(samples, name="samples")
    n_states = check_positive_int(n_states, name="n_states", minimum=2)
    if padding < 0.0:
        raise ValidationError(f"padding must be >= 0, got {padding}")
    lo = float(np.min(xs))
    hi = float(np.max(xs))
    if hi <= lo:
        # Degenerate sample: widen symmetrically so the grid is valid.
        half_width = max(abs(lo) * 1e-6, 1e-6)
        lo, hi = lo - half_width, hi + half_width
    span = hi - lo
    lo -= padding * span
    hi += padding * span
    nodes = np.linspace(lo, hi, n_states)
    if np.any(np.diff(nodes) <= 0):
        # The span is below what n_states nodes can resolve at this
        # float magnitude (node spacing under one ulp), so linspace
        # collapses neighbouring nodes.  Widen symmetrically by the
        # minimum that guarantees strictly increasing nodes — a few
        # ulps per node — rather than a fraction of the magnitude,
        # preserving as much of the sample structure as possible.
        center = 0.5 * (lo + hi)
        scale = max(abs(lo), abs(hi), 1e-12)
        half_width = max(0.5 * (hi - lo),
                         (n_states - 1) * float(np.spacing(scale)))
        nodes = np.linspace(center - half_width, center + half_width,
                            n_states)
    return nodes


@dataclass(frozen=True)
class InterpolationGrid:
    """A uniform support ``Q`` with the cell arithmetic Algorithm 2 needs.

    Attributes
    ----------
    nodes:
        Strictly increasing grid nodes ``ζ_1 < ... < ζ_{n_Q}``.
    """

    nodes: np.ndarray

    def __post_init__(self) -> None:
        nodes = as_1d_array(self.nodes, name="nodes")
        if nodes.size < 2:
            raise ValidationError("grid needs at least two nodes")
        if np.any(np.diff(nodes) <= 0):
            raise ValidationError("grid nodes must be strictly increasing")
        object.__setattr__(self, "nodes", nodes)

    @classmethod
    def from_samples(cls, samples, n_states: int, *,
                     padding: float = 0.0) -> "InterpolationGrid":
        """Build the Algorithm-1 grid over ``samples``."""
        return cls(uniform_grid(samples, n_states, padding=padding))

    @property
    def n_states(self) -> int:
        return self.nodes.size

    @property
    def low(self) -> float:
        return float(self.nodes[0])

    @property
    def high(self) -> float:
        return float(self.nodes[-1])

    @property
    def spacing(self) -> float:
        """Common node spacing (grids are uniform by construction)."""
        return float((self.high - self.low) / (self.n_states - 1))

    def locate(self, values) -> tuple[np.ndarray, np.ndarray]:
        """Cell index ``q`` and within-cell offset ``τ`` for each value.

        Implements Algorithm 2 lines 5-6: ``ζ_q = ⌊x⌋`` in ``Q`` and
        ``τ = (x - ζ_q) / (ζ_{q+1} - ζ_q) ∈ [0, 1]``.  Values outside the
        grid range are clipped to the boundary cells (τ saturates at 0 / 1),
        mirroring the paper's assumption that archival data lie in the range
        of the research data, while remaining total for stragglers.
        """
        xs = np.atleast_1d(np.asarray(values, dtype=float))
        if not np.all(np.isfinite(xs)):
            raise ValidationError("values contain non-finite entries")
        clipped = np.clip(xs, self.low, self.high)
        idx = np.searchsorted(self.nodes, clipped, side="right") - 1
        idx = np.clip(idx, 0, self.n_states - 2)
        gaps = self.nodes[idx + 1] - self.nodes[idx]
        tau = (clipped - self.nodes[idx]) / gaps
        return idx, np.clip(tau, 0.0, 1.0)

    def coverage(self, values) -> float:
        """Fraction of ``values`` inside ``[low, high]``.

        A diagnostic for the stationarity assumption: low coverage means the
        archive drifts outside the research-data range and repairs saturate
        at the grid boundary.
        """
        xs = np.atleast_1d(np.asarray(values, dtype=float))
        if xs.size == 0:
            return 1.0
        inside = (xs >= self.low) & (xs <= self.high)
        return float(np.mean(inside))
