"""Gaussian kernel density estimation (paper Eqs. 11-12).

Algorithm 1 interpolates each empirical marginal onto the grid ``Q`` with a
Gaussian-kernel density estimate

    p_{s,q} ∝ Σ_i K(q - x_i, h),    K(x, h) ∝ exp(-x² / 2h²),

with Silverman's bandwidth.  :func:`interpolate_pmf` returns exactly that
normalised pmf on the grid; :class:`GaussianKDE` offers the full continuous
estimator (pdf / cdf / sampling) used by the fairness metrics and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_1d_array, as_rng
from ..exceptions import ValidationError
from .bandwidth import select_bandwidth

__all__ = ["GaussianKDE", "gaussian_kernel", "interpolate_pmf"]

_SQRT_2PI = float(np.sqrt(2.0 * np.pi))


def gaussian_kernel(x, h: float) -> np.ndarray:
    """Normalised Gaussian kernel ``K(x, h)`` (paper Eq. 12).

    The paper leaves the kernel unnormalised (``∝``); we include the
    ``1 / (h √(2π))`` constant so the kernel integrates to one, which makes
    :class:`GaussianKDE.pdf` a proper density.  The constant cancels in the
    pmf normalisation of Eq. 11 either way.
    """
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    xs = np.asarray(x, dtype=float)
    # Tiny bandwidths overflow the squared ratio to inf, which exp() maps
    # to the correct limit of 0 — silence the intermediate warning only.
    with np.errstate(over="ignore", under="ignore"):
        return np.exp(-0.5 * (xs / h) ** 2) / (h * _SQRT_2PI)


def interpolate_pmf(samples, grid, *, bandwidth: float | None = None,
                    bandwidth_method: str = "silverman") -> np.ndarray:
    """Interpolated marginal pmf on ``grid`` (paper Eq. 11).

    ``p_q ∝ Σ_i K(ζ_q - x_i, h)``, normalised over the grid.  This is the
    estimator Algorithm 1 uses for every ``(u, s, k)`` marginal.
    """
    xs = as_1d_array(samples, name="samples")
    nodes = as_1d_array(grid, name="grid")
    if bandwidth is None:
        bandwidth = select_bandwidth(xs, bandwidth_method)
    if bandwidth <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
    # (n_grid, n_samples) kernel evaluations, summed over samples.
    diffs = nodes[:, None] - xs[None, :]
    raw = gaussian_kernel(diffs, bandwidth).sum(axis=1)
    total = raw.sum()
    if total <= 0.0 or not np.isfinite(total):
        # Extremely narrow bandwidth relative to the grid: fall back to a
        # histogram-like assignment so the pmf stays well defined.
        raw = np.zeros_like(nodes)
        idx = np.clip(np.searchsorted(nodes, xs), 0, nodes.size - 1)
        np.add.at(raw, idx, 1.0)
        total = raw.sum()
    return raw / total


@dataclass
class GaussianKDE:
    """A fitted 1-D Gaussian kernel density estimator.

    Parameters
    ----------
    samples:
        Training observations.
    bandwidth:
        Fixed kernel bandwidth; when omitted it is selected by
        ``bandwidth_method`` (Silverman by default, as in the paper).
    """

    samples: np.ndarray
    bandwidth: float | None = None
    bandwidth_method: str = "silverman"
    _xs: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._xs = as_1d_array(self.samples, name="samples")
        if self.bandwidth is None:
            self.bandwidth = select_bandwidth(self._xs, self.bandwidth_method)
        if self.bandwidth <= 0.0:
            raise ValidationError(
                f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def n_samples(self) -> int:
        return self._xs.size

    def pdf(self, x) -> np.ndarray:
        """Estimated density ``f̂(x)`` at each query point."""
        queries = np.atleast_1d(np.asarray(x, dtype=float))
        diffs = queries[:, None] - self._xs[None, :]
        return gaussian_kernel(diffs, self.bandwidth).mean(axis=1)

    def log_pdf(self, x) -> np.ndarray:
        """``log f̂(x)`` computed stably via the log-sum-exp trick."""
        queries = np.atleast_1d(np.asarray(x, dtype=float))
        z = -0.5 * ((queries[:, None] - self._xs[None, :])
                    / self.bandwidth) ** 2
        zmax = z.max(axis=1, keepdims=True)
        log_sum = np.log(np.exp(z - zmax).sum(axis=1)) + zmax[:, 0]
        return (log_sum - np.log(self.n_samples)
                - np.log(self.bandwidth * _SQRT_2PI))

    def cdf(self, x) -> np.ndarray:
        """Estimated distribution function (mixture of Gaussian CDFs)."""
        from scipy.special import ndtr
        queries = np.atleast_1d(np.asarray(x, dtype=float))
        z = (queries[:, None] - self._xs[None, :]) / self.bandwidth
        return ndtr(z).mean(axis=1)

    def sample(self, size: int, *, rng=None) -> np.ndarray:
        """Draw from the KDE (resample a point, add kernel noise)."""
        if size <= 0:
            raise ValidationError(f"size must be positive, got {size}")
        generator = as_rng(rng)
        picks = generator.integers(0, self.n_samples, size=size)
        noise = generator.normal(0.0, self.bandwidth, size=size)
        return self._xs[picks] + noise

    def pmf_on_grid(self, grid) -> np.ndarray:
        """Normalised pmf of this KDE on a grid (Eq. 11 with this h)."""
        return interpolate_pmf(self._xs, grid, bandwidth=self.bandwidth)
