"""Histogram density estimation.

A deliberately simple alternative to KDE, used (a) as a robustness ablation
for the marginal-interpolation step of Algorithm 1 and (b) by the fairness
metrics when a non-smoothing estimator is preferred for discrete-ish
features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_1d_array, check_positive_int
from ..exceptions import ValidationError

__all__ = ["HistogramDensity", "histogram_pmf"]


def histogram_pmf(samples, grid) -> np.ndarray:
    """Probability mass on each grid node via nearest-node assignment.

    Each sample contributes unit mass to its nearest grid node; the result
    is normalised.  Compared with the KDE interpolation this produces a
    rougher pmf but introduces no smoothing bias.
    """
    xs = as_1d_array(samples, name="samples")
    nodes = as_1d_array(grid, name="grid")
    if nodes.size < 2:
        raise ValidationError("grid needs at least two nodes")
    if np.any(np.diff(nodes) <= 0):
        raise ValidationError("grid must be strictly increasing")
    midpoints = 0.5 * (nodes[:-1] + nodes[1:])
    idx = np.searchsorted(midpoints, xs)
    counts = np.zeros(nodes.size)
    np.add.at(counts, idx, 1.0)
    return counts / counts.sum()


@dataclass
class HistogramDensity:
    """Equal-width histogram estimator with pdf evaluation.

    Parameters
    ----------
    samples:
        Training observations.
    n_bins:
        Number of equal-width bins over the sample range.
    """

    samples: np.ndarray
    n_bins: int = 32
    _edges: np.ndarray = field(init=False, repr=False)
    _density: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        xs = as_1d_array(self.samples, name="samples")
        self.n_bins = check_positive_int(self.n_bins, name="n_bins")
        lo, hi = float(np.min(xs)), float(np.max(xs))
        if hi <= lo:
            hi = lo + max(abs(lo) * 1e-6, 1e-6)
        self._edges = np.linspace(lo, hi, self.n_bins + 1)
        counts, _ = np.histogram(xs, bins=self._edges)
        widths = np.diff(self._edges)
        self._density = counts / (counts.sum() * widths)

    @property
    def edges(self) -> np.ndarray:
        return self._edges

    def pdf(self, x) -> np.ndarray:
        """Piecewise-constant density estimate; zero outside the range."""
        queries = np.atleast_1d(np.asarray(x, dtype=float))
        idx = np.searchsorted(self._edges, queries, side="right") - 1
        inside = (idx >= 0) & (idx < self.n_bins)
        out = np.zeros_like(queries)
        out[inside] = self._density[idx[inside]]
        # Right edge belongs to the last bin.
        on_edge = queries == self._edges[-1]
        out[on_edge] = self._density[-1]
        return out
