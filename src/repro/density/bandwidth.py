"""Kernel bandwidth selectors.

The paper sets the Gaussian-kernel bandwidth with "Silverman's method"
(reference [31]).  We implement the two standard Silverman variants plus
Scott's rule; the robust rule-of-thumb (using the min of the standard
deviation and the normalised IQR) is the library default because it degrades
gracefully on skewed real data such as Adult.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_array
from ..exceptions import ValidationError

__all__ = [
    "silverman_bandwidth",
    "scott_bandwidth",
    "select_bandwidth",
]

# Smallest bandwidth returned; prevents degenerate (zero-variance) samples
# from collapsing the kernel into a delta and poisoning downstream KDE.
_MIN_BANDWIDTH = 1e-9


def silverman_bandwidth(samples, *, robust: bool = True) -> float:
    """Silverman's rule-of-thumb bandwidth for Gaussian kernels.

    ``h = 0.9 * min(σ, IQR / 1.34) * n^{-1/5}`` in the robust (default)
    form, or the classical ``h = 1.06 σ n^{-1/5}`` when ``robust=False``.
    """
    xs = as_1d_array(samples, name="samples")
    n = xs.size
    sigma = float(np.std(xs, ddof=1)) if n > 1 else 0.0
    if robust:
        q75, q25 = np.percentile(xs, [75.0, 25.0])
        iqr = float(q75 - q25)
        spread_candidates = [s for s in (sigma, iqr / 1.34) if s > 0.0]
        spread = min(spread_candidates) if spread_candidates else 0.0
        factor = 0.9
    else:
        spread = sigma
        factor = 1.06
    bandwidth = factor * spread * n ** (-0.2)
    return max(bandwidth, _MIN_BANDWIDTH)


def scott_bandwidth(samples) -> float:
    """Scott's rule ``h = σ n^{-1/5}``; slightly smoother than Silverman."""
    xs = as_1d_array(samples, name="samples")
    sigma = float(np.std(xs, ddof=1)) if xs.size > 1 else 0.0
    return max(sigma * xs.size ** (-0.2), _MIN_BANDWIDTH)


def select_bandwidth(samples, method: str = "silverman") -> float:
    """Dispatch on a named bandwidth rule.

    ``method`` is one of ``"silverman"`` (robust, library default),
    ``"silverman-classic"``, or ``"scott"``.
    """
    if method == "silverman":
        return silverman_bandwidth(samples, robust=True)
    if method == "silverman-classic":
        return silverman_bandwidth(samples, robust=False)
    if method == "scott":
        return scott_bandwidth(samples)
    raise ValidationError(
        f"unknown bandwidth method {method!r}; expected 'silverman', "
        "'silverman-classic' or 'scott'")
