"""Density-estimation substrate: KDE, bandwidths, grids, histograms."""

from .bandwidth import scott_bandwidth, select_bandwidth, silverman_bandwidth
from .grid import InterpolationGrid, uniform_grid
from .histogram import HistogramDensity, histogram_pmf
from .kde import GaussianKDE, gaussian_kernel, interpolate_pmf

__all__ = [
    "GaussianKDE",
    "HistogramDensity",
    "InterpolationGrid",
    "gaussian_kernel",
    "histogram_pmf",
    "interpolate_pmf",
    "scott_bandwidth",
    "select_bandwidth",
    "silverman_bandwidth",
    "uniform_grid",
]
