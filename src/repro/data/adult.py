"""The Adult Income data set: loader and offline synthetic equivalent.

The paper's real-data study (Section V-B) uses the UCI Adult Income data
with ``s = 1`` for males, ``u = 1`` for college-level education or above,
and the two continuous features *age* and *hours worked per week*.

This environment has no network access, so the module provides two paths:

* :func:`load_adult_csv` parses a locally available ``adult.data`` file in
  the original UCI comma-separated format, and
* :func:`synthesize_adult` generates data calibrated to the published Adult
  marginals (documented in DESIGN.md §4).  The synthetic generator keeps the
  properties Table II exercises: a dominant male group, education rates that
  depend on gender (structural bias), right-skewed age, an hours/week
  distribution with a heavy spike at 40 whose location shifts with gender
  (strong model bias on hours, milder on age), and non-Gaussian noise.

Both return the same :class:`~repro.data.dataset.FairnessDataset` interface,
so every downstream code path is identical.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import DataError
from .dataset import FairnessDataset
from .schema import ColumnSpec, TableSchema

__all__ = ["synthesize_adult", "load_adult_csv", "adult_schema",
           "DEFAULT_ADULT_SIZE"]

#: Research + archive sizes used in the paper's Table II experiment.
DEFAULT_ADULT_SIZE = 45_222

# Calibration constants (published Adult marginals, rounded):
_P_MALE = 0.669                       # Pr[s = 1]
_P_COLLEGE_GIVEN_MALE = 0.28          # Pr[u = 1 | s = 1]
_P_COLLEGE_GIVEN_FEMALE = 0.22        # Pr[u = 1 | s = 0]
_AGE_MIN, _AGE_MAX = 17.0, 90.0
_HOURS_MIN, _HOURS_MAX = 1.0, 99.0


def adult_schema() -> TableSchema:
    """Schema of the two-feature Adult view used in the paper."""
    return TableSchema(
        features=(
            ColumnSpec("age", low=_AGE_MIN, high=_AGE_MAX),
            ColumnSpec("hours_per_week", low=_HOURS_MIN, high=_HOURS_MAX),
        ),
        protected="sex_male",
        unprotected="college_educated",
    )


def synthesize_adult(n: int = DEFAULT_ADULT_SIZE, *, rng=None,
                     with_outcome: bool = True) -> FairnessDataset:
    """Generate an Adult-like fairness data set of ``n`` rows.

    Structural bias (``S`` correlated with ``U``) and model bias
    (``X`` depending on ``S`` given ``U``) are both present, as in the real
    data; the repair algorithms should remove only the latter.

    Parameters
    ----------
    with_outcome:
        When true, attach a binary ``>50K`` income label from a logistic
        rule with a direct gender effect, so classifier-level proxies
        (disparate impact) can be evaluated pre/post repair.
    """
    n = check_positive_int(n, name="n")
    generator = as_rng(rng)

    s = (generator.random(n) < _P_MALE).astype(int)
    p_college = np.where(s == 1, _P_COLLEGE_GIVEN_MALE,
                         _P_COLLEGE_GIVEN_FEMALE)
    u = (generator.random(n) < p_college).astype(int)

    age = _sample_age(s, u, generator)
    hours = _sample_hours(s, u, generator)
    features = np.column_stack([age, hours])

    y = None
    if with_outcome:
        y = _income_rule(age, hours, s, u, generator)
    return FairnessDataset(features, s, u, y, adult_schema())


def _sample_age(s: np.ndarray, u: np.ndarray,
                generator: np.random.Generator) -> np.ndarray:
    """Right-skewed age with mild gender and education shifts.

    Real Adult ages are gamma-like over a floor of 17 (mean ≈ 38.6,
    sd ≈ 13.7).  Educated individuals skew a few years older (degrees take
    time); men skew slightly older than women — a *mild* conditional
    dependence, matching the paper's small unrepaired ``E`` for age.
    """
    n = s.size
    mean_excess = 20.2 + 3.5 * u + 2.5 * s
    sd = 13.0 - 1.5 * u
    shape = (mean_excess / sd) ** 2
    scale = sd ** 2 / mean_excess
    age = _AGE_MIN + generator.gamma(shape, scale, size=n)
    # Adult records integer ages; the discreteness matters for KDE-based
    # measures and for the geometric baseline's behaviour.
    return np.clip(np.round(age), _AGE_MIN, _AGE_MAX)


def _sample_hours(s: np.ndarray, u: np.ndarray,
                  generator: np.random.Generator) -> np.ndarray:
    """Hours/week: heavy spike near 40 plus gender-shifted spread.

    Real Adult hours have ≈ 46 % exactly at 40, with men reporting ≈ 6 more
    hours on average than women — the *strong* conditional dependence the
    paper repairs (largest unrepaired ``E_k`` in Table II).
    """
    n = s.size
    # Women sit at the 40-hour spike more often; men's off-spike component
    # is shifted toward overtime — together ≈ +6 hours for men on average.
    p_spike = 0.40 + 0.10 * (1 - s)
    at_spike = generator.random(n) < p_spike
    # The real spike is *exactly* 40 (standard full-time week): a genuine
    # atom in the distribution, which stresses tie handling in point-wise
    # repairs.
    spike = np.full(n, 40.0)
    spread_mean = 32.0 + 9.0 * s + 2.0 * u
    spread_sd = 11.0 + 1.5 * (1 - s)
    spread = generator.normal(spread_mean, spread_sd, size=n)
    hours = np.where(at_spike, spike, spread)
    # Hours are reported as integers in Adult.
    return np.clip(np.round(hours), _HOURS_MIN, _HOURS_MAX)


def _income_rule(age: np.ndarray, hours: np.ndarray, s: np.ndarray,
                 u: np.ndarray,
                 generator: np.random.Generator) -> np.ndarray:
    """Binary ``>50K`` outcome with a direct gender effect (unfair g)."""
    logit = (-6.0 + 0.045 * age + 0.055 * hours + 1.1 * u + 0.85 * s)
    prob = 1.0 / (1.0 + np.exp(-logit))
    return (generator.random(age.size) < prob).astype(int)


# -- real-data loader ---------------------------------------------------------

# Column positions in the original UCI adult.data format.
_COL_AGE = 0
_COL_EDUCATION_NUM = 4
_COL_SEX = 9
_COL_HOURS = 12
_COL_INCOME = 14
_N_COLUMNS = 15
#: education-num of 13 corresponds to Bachelors; >= 13 is "college or above".
_COLLEGE_EDUCATION_NUM = 13


def load_adult_csv(path, *, drop_missing: bool = True) -> FairnessDataset:
    """Parse a UCI-format ``adult.data``/``adult.test`` file.

    Parameters
    ----------
    path:
        Location of the comma-separated file (no header; ``?`` marks
        missing fields).
    drop_missing:
        Skip records with missing values (default); otherwise raise.

    Raises
    ------
    DataError
        When the file is absent or malformed.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"Adult data file not found: {file_path}")

    ages: list[float] = []
    hours: list[float] = []
    sexes: list[int] = []
    educations: list[int] = []
    incomes: list[int] = []
    with open(file_path, newline="") as handle:
        reader = csv.reader(handle, skipinitialspace=True)
        for line_no, row in enumerate(reader, start=1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue  # blank separator lines
            if row[0].startswith("|"):
                continue  # adult.test banner line
            if len(row) != _N_COLUMNS:
                raise DataError(
                    f"{file_path}:{line_no}: expected {_N_COLUMNS} fields, "
                    f"got {len(row)}")
            if any(field.strip() == "?" for field in row):
                if drop_missing:
                    continue
                raise DataError(
                    f"{file_path}:{line_no}: record has missing fields")
            try:
                ages.append(float(row[_COL_AGE]))
                hours.append(float(row[_COL_HOURS]))
                educations.append(int(row[_COL_EDUCATION_NUM]))
            except ValueError as exc:
                raise DataError(
                    f"{file_path}:{line_no}: malformed numeric field "
                    f"({exc})") from exc
            sexes.append(1 if row[_COL_SEX].strip() == "Male" else 0)
            incomes.append(1 if ">50K" in row[_COL_INCOME] else 0)

    if not ages:
        raise DataError(f"{file_path}: no usable records")
    features = np.column_stack([np.asarray(ages), np.asarray(hours)])
    s = np.asarray(sexes)
    u = (np.asarray(educations) >= _COLLEGE_EDUCATION_NUM).astype(int)
    y = np.asarray(incomes)
    return FairnessDataset(features, s, u, y, adult_schema())
