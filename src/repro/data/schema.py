"""Column schemas for fairness data sets.

A tiny, explicit schema layer: every :class:`~repro.data.dataset.FairnessDataset`
carries a :class:`TableSchema` naming its feature columns and identifying
the protected (``S``) and unprotected (``U``) attributes.  The schema makes
error messages actionable and lets loaders validate raw records before they
enter the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SchemaError

__all__ = ["ColumnSpec", "TableSchema"]


@dataclass(frozen=True)
class ColumnSpec:
    """Description of one feature column.

    Attributes
    ----------
    name:
        Column identifier (unique within a schema).
    kind:
        ``"continuous"`` or ``"binary"``; the repair algorithms operate on
        continuous features, binary columns are used for attributes.
    low, high:
        Optional domain bounds used for validation.
    """

    name: str
    kind: str = "continuous"
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.kind not in ("continuous", "binary"):
            raise SchemaError(
                f"column {self.name!r}: kind must be 'continuous' or "
                f"'binary', got {self.kind!r}")
        if (self.low is not None and self.high is not None
                and self.low >= self.high):
            raise SchemaError(
                f"column {self.name!r}: low must be < high "
                f"({self.low} >= {self.high})")

    def validate_values(self, values) -> None:
        """Raise :class:`SchemaError` when values violate this spec."""
        arr = np.asarray(values, dtype=float).ravel()
        if not np.all(np.isfinite(arr)):
            raise SchemaError(
                f"column {self.name!r} contains non-finite values")
        if self.kind == "binary" and not np.all(np.isin(arr, (0.0, 1.0))):
            raise SchemaError(f"column {self.name!r} must be binary")
        if self.low is not None and np.any(arr < self.low):
            raise SchemaError(
                f"column {self.name!r} has values below {self.low}")
        if self.high is not None and np.any(arr > self.high):
            raise SchemaError(
                f"column {self.name!r} has values above {self.high}")


@dataclass(frozen=True)
class TableSchema:
    """Schema for a fairness table: features + the two attribute columns.

    Attributes
    ----------
    features:
        Ordered specs of the feature columns (the ``X`` block).
    protected:
        Name of the protected attribute ``S``.
    unprotected:
        Name of the unprotected attribute ``U``.
    """

    features: tuple
    protected: str = "s"
    unprotected: str = "u"

    def __post_init__(self) -> None:
        specs = tuple(self.features)
        if not specs:
            raise SchemaError("schema needs at least one feature column")
        if not all(isinstance(spec, ColumnSpec) for spec in specs):
            raise SchemaError("features must be ColumnSpec instances")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate feature names in {names}")
        reserved = {self.protected, self.unprotected}
        if len(reserved) != 2:
            raise SchemaError(
                "protected and unprotected attribute names must differ")
        clash = reserved.intersection(names)
        if clash:
            raise SchemaError(
                f"attribute names {sorted(clash)} clash with feature names")
        object.__setattr__(self, "features", specs)

    @classmethod
    def from_names(cls, feature_names, *, protected: str = "s",
                   unprotected: str = "u") -> "TableSchema":
        """Schema with all-continuous features from bare names."""
        specs = tuple(ColumnSpec(str(name)) for name in feature_names)
        return cls(specs, protected=protected, unprotected=unprotected)

    @property
    def feature_names(self) -> tuple:
        return tuple(spec.name for spec in self.features)

    @property
    def n_features(self) -> int:
        return len(self.features)

    def feature_index(self, name: str) -> int:
        """Position of a named feature column."""
        try:
            return self.feature_names.index(name)
        except ValueError:
            raise SchemaError(
                f"unknown feature {name!r}; schema has "
                f"{list(self.feature_names)}") from None

    def validate_matrix(self, features) -> None:
        """Validate an ``(n, d)`` feature matrix column-by-column."""
        arr = np.asarray(features, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != self.n_features:
            raise SchemaError(
                f"feature matrix shape {arr.shape} incompatible with "
                f"schema ({self.n_features} features)")
        for index, spec in enumerate(self.features):
            spec.validate_values(arr[:, index])
