"""Streaming access to archival data ("torrents").

The paper's motivating regime is an archive far larger than the research
set, possibly observed online.  :class:`ArchiveStream` models that: it
yields :class:`~repro.data.dataset.FairnessDataset` batches either from a
materialised archive (chunked) or from a generator callable (unbounded
simulation of a live feed).  The repair pipeline consumes batches one at a
time, so peak memory is bounded by the batch size regardless of archive
cardinality.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from .dataset import FairnessDataset

__all__ = ["ArchiveStream", "stream_batches"]


def stream_batches(dataset: FairnessDataset,
                   batch_size: int) -> Iterator[FairnessDataset]:
    """Yield contiguous row batches of ``dataset`` of size ``batch_size``.

    The final batch may be smaller; order is preserved so repaired batches
    can be re-assembled positionally.
    """
    batch_size = check_positive_int(batch_size, name="batch_size")
    n = len(dataset)
    for start in range(0, n, batch_size):
        yield dataset.take(np.arange(start, min(start + batch_size, n)))


class ArchiveStream:
    """An iterable source of archival batches.

    Parameters
    ----------
    source:
        Either a :class:`FairnessDataset` (streamed in chunks) or a
        zero-argument callable returning a fresh batch per call (an
        unbounded feed).
    batch_size:
        Chunk size when the source is a materialised dataset.
    max_batches:
        Stop after this many batches; mandatory for callable sources (the
        feed is otherwise infinite).
    """

    def __init__(self, source, *, batch_size: int = 1024,
                 max_batches: int | None = None) -> None:
        self._batch_size = check_positive_int(batch_size, name="batch_size")
        if max_batches is not None:
            max_batches = check_positive_int(max_batches, name="max_batches")
        self._max_batches = max_batches
        if isinstance(source, FairnessDataset):
            self._dataset: FairnessDataset | None = source
            self._generator: Callable[[], FairnessDataset] | None = None
        elif callable(source):
            if max_batches is None:
                raise ValidationError(
                    "callable sources are unbounded; pass max_batches")
            self._dataset = None
            self._generator = source
        else:
            raise ValidationError(
                "source must be a FairnessDataset or a callable, got "
                f"{type(source).__name__}")

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def __iter__(self) -> Iterator[FairnessDataset]:
        if self._dataset is not None:
            count = 0
            for batch in stream_batches(self._dataset, self._batch_size):
                if (self._max_batches is not None
                        and count >= self._max_batches):
                    return
                count += 1
                yield batch
            return
        assert self._generator is not None
        for _ in range(self._max_batches):
            batch = self._generator()
            if not isinstance(batch, FairnessDataset):
                raise ValidationError(
                    "stream callable must return FairnessDataset batches")
            yield batch
