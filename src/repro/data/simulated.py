"""The paper's simulation-study generator (Section V-A).

Composite data are drawn from ``(u, s)``-conditional bivariate Gaussians,

    x | (u, s)  ~  N(µ_{u,s}, Σ_{u,s}),

with the paper's defaults: ``µ_{0,0} = [-1,-1]``, ``µ_{0,1} = [0,0]``,
``µ_{1,0} = [1,1]``, ``µ_{1,1} = [0,0]``, ``Σ = I₂``, balanced ``u``
populations (``Pr[u=0] = 0.5``) and dominant ``s = 1`` subgroups
(``Pr[s=0|u=0] = 0.3``, ``Pr[s=0|u=1] = 0.1``).

:class:`GaussianMixtureSpec` generalises the construction so experiments can
vary separation, covariance and group priors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_rng, check_positive_int, check_probability
from ..exceptions import ValidationError
from .dataset import FairnessDataset
from .schema import TableSchema

__all__ = ["GaussianMixtureSpec", "paper_simulation_spec",
           "simulate_paper_data"]


@dataclass(frozen=True)
class GaussianMixtureSpec:
    """A ``(u, s)``-conditional Gaussian mixture over ``R^d``.

    Attributes
    ----------
    means:
        Mapping ``(u, s) -> mean vector`` (all the same length ``d``).
    covariances:
        Mapping ``(u, s) -> (d, d) covariance``; identity when omitted for
        a group.
    p_u0:
        ``Pr[u = 0]``.
    p_s0_given_u:
        Mapping ``u -> Pr[s = 0 | u]``.
    """

    means: dict
    p_u0: float
    p_s0_given_u: dict
    covariances: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_probability(self.p_u0, name="p_u0")
        if set(self.means) != {(0, 0), (0, 1), (1, 0), (1, 1)}:
            raise ValidationError(
                "means must be keyed by all four (u, s) pairs")
        dims = {len(np.atleast_1d(m)) for m in self.means.values()}
        if len(dims) != 1:
            raise ValidationError("all means must share a dimension")
        for u in (0, 1):
            if u not in self.p_s0_given_u:
                raise ValidationError(f"p_s0_given_u missing group u={u}")
            check_probability(self.p_s0_given_u[u], name=f"p_s0_given_u[{u}]")
        for key, cov in self.covariances.items():
            cov = np.asarray(cov, dtype=float)
            d = self.n_features
            if cov.shape != (d, d):
                raise ValidationError(
                    f"covariance for group {key} must be ({d}, {d})")

    @property
    def n_features(self) -> int:
        return len(np.atleast_1d(next(iter(self.means.values()))))

    def covariance(self, u: int, s: int) -> np.ndarray:
        cov = self.covariances.get((u, s))
        if cov is None:
            return np.eye(self.n_features)
        return np.asarray(cov, dtype=float)

    def group_probability(self, u: int, s: int) -> float:
        """Joint prior ``Pr[u, s]``."""
        p_u = self.p_u0 if u == 0 else 1.0 - self.p_u0
        p_s0 = self.p_s0_given_u[u]
        return p_u * (p_s0 if s == 0 else 1.0 - p_s0)

    def sample(self, n: int, *, rng=None,
               outcome_rule=None) -> FairnessDataset:
        """Draw ``n`` iid observations from the mixture.

        Parameters
        ----------
        outcome_rule:
            Optional callable ``X -> y`` producing binary outcomes; when
            omitted the dataset has ``y=None``.
        """
        n = check_positive_int(n, name="n")
        generator = as_rng(rng)
        u = (generator.random(n) >= self.p_u0).astype(int)
        p_s0 = np.where(u == 0, self.p_s0_given_u[0], self.p_s0_given_u[1])
        s = (generator.random(n) >= p_s0).astype(int)

        d = self.n_features
        x = np.empty((n, d))
        for (gu, gs), mean in self.means.items():
            mask = (u == gu) & (s == gs)
            count = int(mask.sum())
            if count:
                x[mask] = generator.multivariate_normal(
                    np.atleast_1d(np.asarray(mean, dtype=float)),
                    self.covariance(gu, gs), size=count)
        y = None
        if outcome_rule is not None:
            y = np.asarray(outcome_rule(x)).astype(int).ravel()
        schema = TableSchema.from_names([f"x{k + 1}" for k in range(d)])
        return FairnessDataset(x, s, u, y, schema)

    def exact_group_dependence(self) -> dict:
        """Closed-form symmetrised KL between the s-conditionals, per u.

        For Gaussians with shared covariance ``Σ`` the symmetrised KLD is
        ``½ δᵀ Σ⁻¹ δ`` with ``δ`` the mean difference — a useful oracle for
        sanity-checking the empirical ``E`` estimator.
        """
        out = {}
        for u in (0, 1):
            delta = (np.atleast_1d(self.means[(u, 0)])
                     - np.atleast_1d(self.means[(u, 1)])).astype(float)
            cov = 0.5 * (self.covariance(u, 0) + self.covariance(u, 1))
            out[u] = float(0.5 * delta @ np.linalg.solve(cov, delta))
        return out


def paper_simulation_spec(*, separation: float = 1.0) -> GaussianMixtureSpec:
    """The exact Section V-A configuration (optionally rescaled).

    ``separation`` scales the mean offsets; ``1.0`` reproduces the paper
    (means at ±[1, 1] and the origin).
    """
    if separation < 0.0:
        raise ValidationError(f"separation must be >= 0, got {separation}")
    return GaussianMixtureSpec(
        means={
            (0, 0): np.array([-1.0, -1.0]) * separation,
            (0, 1): np.array([0.0, 0.0]),
            (1, 0): np.array([1.0, 1.0]) * separation,
            (1, 1): np.array([0.0, 0.0]),
        },
        p_u0=0.5,
        p_s0_given_u={0: 0.3, 1: 0.1},
    )


def simulate_paper_data(n_research: int = 500, n_archive: int = 5000, *,
                        rng=None, spec: GaussianMixtureSpec | None = None):
    """Generate the paper's composite data set, already split.

    Returns a :class:`~repro.data.dataset.ResearchArchiveSplit` with
    ``n_research + n_archive`` total observations (``5,500`` by default,
    matching Section V-A).
    """
    check_positive_int(n_research, name="n_research")
    check_positive_int(n_archive, name="n_archive")
    generator = as_rng(rng)
    if spec is None:
        spec = paper_simulation_spec()
    composite = spec.sample(n_research + n_archive, rng=generator)
    return composite.split(n_research=n_research, rng=generator)
