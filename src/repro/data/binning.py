"""Discretisation of continuous unprotected attributes.

The paper's fairness definition conditions on a *discrete* unprotected
attribute ``U``; extending to continuous ``u ∈ R`` is called out as
future work (Section VI). The standard bridge — and the one implemented
here — is to bin the continuous attribute and run the ``(u, s, k)``
machinery per bin: with enough bins the conditional-independence target
is approximated arbitrarily well, at the price of thinner research
subgroups per bin.

:class:`AttributeBinner` supports uniform and quantile binning, is
fit/transform-shaped so the same edges discretise research and archive
consistently, and can rewrite a :class:`FairnessDataset` whose ``u`` is
continuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_1d_array, check_positive_int
from ..exceptions import NotFittedError, ValidationError
from .dataset import FairnessDataset

__all__ = ["AttributeBinner"]

_STRATEGIES = ("uniform", "quantile")


class AttributeBinner:
    """Bin a continuous attribute into ``n_bins`` ordinal groups.

    Parameters
    ----------
    n_bins:
        Number of output groups (``u ∈ {0, ..., n_bins - 1}``).
    strategy:
        ``"quantile"`` (default) gives equal-mass bins — each bin holds
        roughly the same number of research rows, which keeps every
        per-bin repair designable; ``"uniform"`` gives equal-width bins.
    """

    def __init__(self, n_bins: int = 4, *,
                 strategy: str = "quantile") -> None:
        self.n_bins = check_positive_int(n_bins, name="n_bins", minimum=2)
        if strategy not in _STRATEGIES:
            raise ValidationError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{_STRATEGIES}")
        self.strategy = strategy
        self._edges: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._edges is not None

    @property
    def edges(self) -> np.ndarray:
        """Interior bin edges (length ``n_bins - 1``)."""
        if self._edges is None:
            raise NotFittedError("AttributeBinner.fit must run first")
        return self._edges.copy()

    def fit(self, values) -> "AttributeBinner":
        """Learn bin edges from (research) attribute values."""
        xs = as_1d_array(values, name="values")
        if self.strategy == "quantile":
            levels = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
            edges = np.quantile(xs, levels)
        else:
            lo, hi = float(xs.min()), float(xs.max())
            if hi <= lo:
                hi = lo + max(abs(lo) * 1e-6, 1e-6)
            edges = np.linspace(lo, hi, self.n_bins + 1)[1:-1]
        # Collapse duplicate edges (heavy ties) rather than emit empty
        # bins; the effective bin count may shrink.
        self._edges = np.unique(edges)
        return self

    def transform(self, values) -> np.ndarray:
        """Map attribute values to bin indices ``0..n_effective_bins-1``."""
        if self._edges is None:
            raise NotFittedError("AttributeBinner.fit must run first")
        xs = as_1d_array(values, name="values")
        return np.searchsorted(self._edges, xs, side="right")

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)

    @property
    def n_effective_bins(self) -> int:
        """Actual number of groups after duplicate-edge collapsing."""
        if self._edges is None:
            raise NotFittedError("AttributeBinner.fit must run first")
        return self._edges.size + 1

    def bin_dataset(self, dataset: FairnessDataset,
                    continuous_u) -> FairnessDataset:
        """Replace a dataset's ``u`` with bins of a continuous attribute.

        Parameters
        ----------
        dataset:
            The dataset whose rows the attribute belongs to.
        continuous_u:
            Continuous attribute values, aligned with the rows.  The
            binner must already be fitted (typically on the research
            portion only, so research and archive share edges).
        """
        values = as_1d_array(continuous_u, name="continuous_u")
        if values.size != len(dataset):
            raise ValidationError(
                f"continuous_u has {values.size} values for "
                f"{len(dataset)} rows")
        binned = self.transform(values)
        return FairnessDataset(dataset.features, dataset.s, binned,
                               dataset.y, dataset.schema)
