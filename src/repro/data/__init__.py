"""Data substrate: containers, schemas, simulators, Adult, streaming."""

from .adult import (DEFAULT_ADULT_SIZE, adult_schema, load_adult_csv,
                    synthesize_adult)
from .binning import AttributeBinner
from .dataset import FairnessDataset, ResearchArchiveSplit
from .schema import ColumnSpec, TableSchema
from .simulated import (GaussianMixtureSpec, paper_simulation_spec,
                        simulate_paper_data)
from .streaming import ArchiveStream, stream_batches

__all__ = [
    "ArchiveStream",
    "AttributeBinner",
    "ColumnSpec",
    "DEFAULT_ADULT_SIZE",
    "FairnessDataset",
    "GaussianMixtureSpec",
    "ResearchArchiveSplit",
    "TableSchema",
    "adult_schema",
    "load_adult_csv",
    "paper_simulation_spec",
    "simulate_paper_data",
    "stream_batches",
    "synthesize_adult",
]
