"""The labelled observation container used throughout the library.

:class:`FairnessDataset` is the paper's composite data object: a feature
matrix ``X``, binary protected labels ``S``, binary unprotected labels
``U`` and (optionally) classifier targets ``Y``.  It supports the central
operation of the paper — splitting into a small, fully-labelled *research*
set and a large *archival* set — plus the ``(u, s)`` group indexing that
Algorithms 1 and 2 iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_2d_array, as_rng, check_in_range
from ..exceptions import DataError, ValidationError
from .schema import TableSchema

__all__ = ["FairnessDataset", "ResearchArchiveSplit"]


@dataclass(frozen=True)
class ResearchArchiveSplit:
    """The research/archive pair produced by :meth:`FairnessDataset.split`."""

    research: "FairnessDataset"
    archive: "FairnessDataset"

    @property
    def n_research(self) -> int:
        return len(self.research)

    @property
    def n_archive(self) -> int:
        return len(self.archive)

    @property
    def research_fraction(self) -> float:
        total = self.n_research + self.n_archive
        return self.n_research / total if total else 0.0


@dataclass(frozen=True)
class FairnessDataset:
    """Immutable ``(X, S, U[, Y])`` container with group utilities.

    Attributes
    ----------
    features:
        ``(n, d)`` observation matrix ``X``.
    s:
        Binary protected attribute per row.
    u:
        Binary (or small-integer) unprotected attribute per row.
    y:
        Optional binary outcome labels.
    schema:
        Column schema; generated automatically when omitted.
    """

    features: np.ndarray
    s: np.ndarray
    u: np.ndarray
    y: np.ndarray | None = None
    schema: TableSchema | None = None

    def __post_init__(self) -> None:
        x = as_2d_array(self.features, name="features")
        s = np.asarray(self.s).astype(int).ravel()
        u = np.asarray(self.u).astype(int).ravel()
        if s.size != x.shape[0] or u.size != x.shape[0]:
            raise DataError(
                f"features ({x.shape[0]} rows) and labels (s: {s.size}, "
                f"u: {u.size}) are misaligned")
        if not np.all(np.isin(s, (0, 1))):
            raise DataError("protected attribute s must be binary (0/1)")
        if np.any(u < 0):
            raise DataError("unprotected attribute u must be non-negative")
        y = self.y
        if y is not None:
            y = np.asarray(y).astype(int).ravel()
            if y.size != x.shape[0]:
                raise DataError("y labels misaligned with features")
            if not np.all(np.isin(y, (0, 1))):
                raise DataError("y labels must be binary (0/1)")
        schema = self.schema
        if schema is None:
            schema = TableSchema.from_names(
                [f"x{k}" for k in range(x.shape[1])])
        if schema.n_features != x.shape[1]:
            raise DataError(
                f"schema has {schema.n_features} features, matrix has "
                f"{x.shape[1]}")
        object.__setattr__(self, "features", x)
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "schema", schema)

    # -- basics -------------------------------------------------------------

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def feature_names(self) -> tuple:
        return self.schema.feature_names

    @property
    def u_values(self) -> np.ndarray:
        """Distinct unprotected-group labels, sorted."""
        return np.unique(self.u)

    @property
    def s_values(self) -> np.ndarray:
        return np.unique(self.s)

    def take(self, indices) -> "FairnessDataset":
        """Row subset preserving labels, outcomes and schema."""
        idx = np.asarray(indices)
        return FairnessDataset(
            self.features[idx], self.s[idx], self.u[idx],
            self.y[idx] if self.y is not None else None, self.schema)

    def with_features(self, features) -> "FairnessDataset":
        """Same rows/labels, new (repaired) feature matrix."""
        return FairnessDataset(features, self.s, self.u, self.y, self.schema)

    def concat(self, other: "FairnessDataset") -> "FairnessDataset":
        """Row-wise concatenation (schemas must agree on arity)."""
        if other.n_features != self.n_features:
            raise DataError(
                "cannot concat datasets with different feature arity "
                f"({self.n_features} != {other.n_features})")
        y = None
        if self.y is not None and other.y is not None:
            y = np.concatenate([self.y, other.y])
        return FairnessDataset(
            np.vstack([self.features, other.features]),
            np.concatenate([self.s, other.s]),
            np.concatenate([self.u, other.u]),
            y, self.schema)

    # -- group indexing (the (u, s) partition of Algorithms 1-2) -------------

    def group_mask(self, u: int, s: int | None = None) -> np.ndarray:
        """Boolean row mask of one ``u`` group or one ``(u, s)`` subgroup."""
        mask = self.u == u
        if s is not None:
            mask = mask & (self.s == s)
        return mask

    def group(self, u: int, s: int | None = None) -> "FairnessDataset":
        """Subset for a ``u`` group or ``(u, s)`` subgroup."""
        return self.take(np.flatnonzero(self.group_mask(u, s)))

    def group_sizes(self) -> dict:
        """Mapping ``(u, s) -> row count`` over all present subgroups."""
        sizes: dict = {}
        for u in self.u_values:
            for s in (0, 1):
                count = int(np.sum(self.group_mask(int(u), s)))
                if count:
                    sizes[(int(u), s)] = count
        return sizes

    def group_weights(self) -> dict:
        """Empirical ``Pr[u]`` per unprotected group."""
        return {int(g): float(np.mean(self.u == g)) for g in self.u_values}

    # -- the research/archive split ------------------------------------------

    def split(self, n_research: int | None = None, *,
              research_fraction: float | None = None,
              stratify: bool = True, rng=None) -> ResearchArchiveSplit:
        """Split into research (labelled, small) and archive (large) sets.

        Parameters
        ----------
        n_research:
            Absolute research-set size; mutually exclusive with
            ``research_fraction``.
        stratify:
            When true (default), sample the research set proportionally
            from each ``(u, s)`` subgroup so every OT plan has design data —
            mirroring the paper's assumption that the research set is
            representative.
        """
        n = len(self)
        if (n_research is None) == (research_fraction is None):
            raise ValidationError(
                "specify exactly one of n_research / research_fraction")
        if research_fraction is not None:
            check_in_range(research_fraction, name="research_fraction",
                           low=0.0, high=1.0, inclusive=False)
            n_research = int(round(research_fraction * n))
        if not 0 < n_research < n:
            raise ValidationError(
                f"n_research must be in (0, {n}), got {n_research}")

        generator = as_rng(rng)
        if stratify:
            research_idx = self._stratified_indices(n_research, generator)
        else:
            research_idx = generator.choice(n, size=n_research, replace=False)
        mask = np.zeros(n, dtype=bool)
        mask[research_idx] = True
        return ResearchArchiveSplit(
            research=self.take(np.flatnonzero(mask)),
            archive=self.take(np.flatnonzero(~mask)))

    def _stratified_indices(self, n_research: int,
                            generator: np.random.Generator) -> np.ndarray:
        """Proportional allocation of research rows across (u, s) groups.

        Uses largest-remainder rounding so the total is exact, and
        guarantees at least one research row per non-empty subgroup when
        the budget allows.
        """
        groups = [(u, s, np.flatnonzero(self.group_mask(int(u), s)))
                  for u in self.u_values for s in (0, 1)]
        groups = [(u, s, idx) for (u, s, idx) in groups if idx.size > 0]
        n = len(self)
        quotas = np.array([idx.size * n_research / n
                           for (_, _, idx) in groups])
        counts = np.floor(quotas).astype(int)
        if len(groups) <= n_research:
            counts = np.maximum(counts, 1)
        counts = np.minimum(counts,
                            [idx.size for (_, _, idx) in groups])
        remainder = n_research - counts.sum()
        order = np.argsort(-(quotas - np.floor(quotas)))
        for position in order:
            if remainder <= 0:
                break
            capacity = groups[position][2].size - counts[position]
            bump = min(capacity, remainder)
            counts[position] += bump
            remainder -= bump
        chosen = [generator.choice(idx, size=int(count), replace=False)
                  for (_, _, idx), count in zip(groups, counts)
                  if count > 0]
        return np.concatenate(chosen) if chosen else np.array([], dtype=int)
