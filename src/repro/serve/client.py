"""A minimal stdlib client for the ``repro serve`` endpoints.

``urllib``-based so the benchmark load generator and the e2e tests run
without any HTTP dependency.  :func:`repair_remote` is the convenience
wrapper: dataset in, repaired feature matrix out, bit-identical to the
offline ``repair_dataset`` path when a seed is supplied.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np

from ..data.dataset import FairnessDataset
from ..exceptions import DataError

__all__ = ["get_json", "post_json", "repair_payload", "repair_remote"]


def _request(url: str, data: bytes | None, timeout: float) -> dict:
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read()).get("error", "")
        except Exception:
            detail = ""
        raise DataError(
            f"serve request to {url} failed with HTTP {exc.code}"
            + (f": {detail}" if detail else "")) from exc
    except urllib.error.URLError as exc:
        raise DataError(f"serve request to {url} failed: {exc.reason}") \
            from exc


def get_json(url: str, *, timeout: float = 10.0) -> dict:
    """GET a JSON endpoint (``/healthz``, ``/stats``)."""
    return _request(url, None, timeout)


def post_json(url: str, payload: dict, *, timeout: float = 30.0) -> dict:
    """POST a JSON body and decode the JSON response."""
    return _request(url, json.dumps(payload).encode("utf-8"), timeout)


def repair_payload(dataset: FairnessDataset, *,
                   seed: int | None = None) -> dict:
    """The ``POST /repair`` body for ``dataset``."""
    payload = {"features": dataset.features.tolist(),
               "s": dataset.s.tolist(), "u": dataset.u.tolist()}
    if seed is not None:
        payload["seed"] = int(seed)
    return payload


def repair_remote(base_url: str, dataset: FairnessDataset, *,
                  seed: int | None = None,
                  timeout: float = 30.0) -> np.ndarray:
    """Repair ``dataset`` through a running server; returns the matrix."""
    response = post_json(base_url.rstrip("/") + "/repair",
                         repair_payload(dataset, seed=seed),
                         timeout=timeout)
    return np.asarray(response["features"], dtype=float)
