"""The repair service: warm plans, merged dispatches, accounting.

:class:`RepairService` is the process-local engine behind the ``repro
serve`` HTTP tier.  It wraps a loaded plan — a
:class:`~repro.core.plan.RepairPlan` or a lazy
:class:`~repro.core.serialize.ShardedPlanArchive` — and repairs request
batches through :class:`~repro.core.repair.PreparedFeatureRepair`
kernels kept hot in a bounded :class:`~repro.serve.cache.LRUCache`.

Bit-identity with the offline path is the contract: for any request
carrying a seed, the response equals
``repair_dataset(dataset, plan, rng=default_rng(seed))`` **bitwise**,
whether the request was served alone or merged into a micro-batch.
The trick is splitting randomness from arithmetic: each request's
uniform variates are drawn from its own generator in exactly the order
the offline loop would consume them, and only the deterministic
element-wise kernel is applied to the concatenation — so a flush of
``R`` concurrent requests costs one vectorised dispatch per *distinct*
``(u, s, k)`` cell instead of one per request per cell.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .._validation import as_rng
from ..core.plan import RepairPlan
from ..core.repair import (OUTPUT_MODES, ROUNDING_MODES,
                           PreparedFeatureRepair)
from ..core.serialize import ShardedPlanArchive, load_plan, _is_manifest
from ..data.dataset import FairnessDataset
from ..exceptions import DataError, ReproError, ValidationError
from .cache import LRUCache

__all__ = ["RepairRequest", "RepairService"]


@dataclass(frozen=True)
class RepairRequest:
    """One client's rows plus the generator answering its randomness.

    ``dataset`` carries the already-validated rows (construction of the
    :class:`FairnessDataset` *is* the up-front validation — finiteness,
    label domains, alignment — which is what lets the per-cell kernels
    skip re-validating); ``rng`` is the request's private stream, so a
    seeded request is reproducible regardless of batching.
    """

    dataset: FairnessDataset
    rng: np.random.Generator = field(
        default_factory=np.random.default_rng)

    @classmethod
    def from_payload(cls, payload) -> "RepairRequest":
        """Parse the ``/repair`` JSON body.

        Expected keys: ``features`` (list of rows), ``s`` and ``u``
        (per-row labels), optional integer ``seed`` (omitted → fresh
        entropy, i.e. a non-reproducible repair).
        """
        if not isinstance(payload, dict):
            raise DataError("request body must be a JSON object")
        missing = [key for key in ("features", "s", "u")
                   if key not in payload]
        if missing:
            raise DataError(f"request body missing keys {missing}")
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise DataError(f"seed must be an integer, got {seed!r}")
        try:
            dataset = FairnessDataset(
                np.asarray(payload["features"], dtype=float),
                np.asarray(payload["s"]), np.asarray(payload["u"]))
        except (ReproError, ValueError, TypeError) as exc:
            raise DataError(f"invalid repair payload: {exc}") from exc
        return cls(dataset=dataset, rng=np.random.default_rng(seed))


class RepairService:
    """Long-lived Algorithm-2 engine over a warm plan.

    Parameters
    ----------
    plan:
        A :class:`RepairPlan` or :class:`ShardedPlanArchive` (anything
        with ``n_features`` / ``covers`` / ``feature_plan``).
    rounding, output:
        The Algorithm-2 randomisation modes every request is served
        with (fixed per service so responses stay comparable).
    cache_size:
        Bound on resident :class:`PreparedFeatureRepair` kernels — the
        per-``(u, s, k)`` sampling state (dense row-CDF tables are
        ``O(n_Q²)`` each).  Eviction is LRU; evicted cells rebuild on
        next use.
    """

    def __init__(self, plan, *, rounding: str = "stochastic",
                 output: str = "sample", cache_size: int = 256) -> None:
        if not isinstance(plan, (RepairPlan, ShardedPlanArchive)):
            raise ValidationError(
                "RepairService expects a RepairPlan or "
                f"ShardedPlanArchive, got {type(plan).__name__}")
        if rounding not in ROUNDING_MODES:
            raise ValidationError(
                f"unknown rounding {rounding!r}; expected {ROUNDING_MODES}")
        if output not in OUTPUT_MODES:
            raise ValidationError(
                f"unknown output {output!r}; expected {OUTPUT_MODES}")
        self.plan = plan
        self.rounding = rounding
        self.output = output
        self.cells = LRUCache(cache_size)
        self._lock = threading.Lock()
        self.n_requests = 0
        self.n_errors = 0
        self.n_rows = 0
        self.n_cell_dispatches = 0
        self.n_cell_items = 0

    @classmethod
    def from_path(cls, path, *, mmap: bool = True,
                  max_shards: int | None = None,
                  **kwargs) -> "RepairService":
        """Build a service from a plan archive or shard manifest.

        Archives are memory-mapped by default (near-instant start-up,
        plan bytes shared across worker processes through the page
        cache); manifests stay *lazy* — each shard is mapped the first
        time one of its cells is requested, bounded by ``max_shards``.
        """
        from pathlib import Path

        file_path = Path(path)
        if not file_path.exists():
            raise DataError(f"plan file not found: {file_path}")
        if _is_manifest(file_path):
            plan = ShardedPlanArchive(file_path, mmap=mmap,
                                      max_shards=max_shards)
        else:
            plan = load_plan(file_path, mmap=mmap)
        return cls(plan, **kwargs)

    @property
    def n_features(self) -> int:
        return self.plan.n_features

    # -- the serving hot path ---------------------------------------------

    def repair(self, dataset: FairnessDataset, rng=None) -> np.ndarray:
        """Repair one request's rows; returns the repaired features.

        Bit-identical to ``repair_dataset(dataset, plan,
        rng=...).features``.
        """
        request = RepairRequest(dataset=dataset, rng=as_rng(rng))
        result = self.repair_many([request])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def repair_many(self, requests) -> list:
        """Repair a micro-batch; element ``i`` is request ``i``'s
        repaired feature matrix, or the :class:`ReproError` it failed
        validation with (not raised — per-request isolation).

        One vectorised dispatch per distinct ``(u, s, k)`` cell across
        the whole batch; each request's variates come from its own
        generator, consumed in the offline loop's exact order.
        """
        results: list = [None] * len(requests)
        outputs: dict = {}
        work: dict = {}
        n_rows = 0
        for i, request in enumerate(requests):
            dataset = request.dataset
            try:
                self._validate(dataset)
            except ReproError as exc:
                results[i] = exc
                continue
            outputs[i] = dataset.features.copy()
            n_rows += len(dataset)
            rng = request.rng
            # Mirrors repair_dataset's loop nest exactly — including its
            # random-stream consumption order — so seeded requests match
            # the offline path bitwise.
            for u in dataset.u_values:
                for s in (0, 1):
                    mask = dataset.group_mask(int(u), s)
                    if not mask.any():
                        continue
                    for k in range(dataset.n_features):
                        key = (int(u), k, s)
                        prepared = self._prepared(key)
                        values = dataset.features[mask, k]
                        variates = prepared.draw(rng, values.size)
                        work.setdefault(key, []).append(
                            (i, mask, k, values, variates))
        for key, items in work.items():
            prepared = self._prepared(key)
            values = np.concatenate([item[3] for item in items])
            variates = tuple(
                None if items[0][4][j] is None
                else np.concatenate([item[4][j] for item in items])
                for j in range(3))
            repaired = prepared.apply(values, variates)
            position = 0
            for (i, mask, k, segment, _) in items:
                outputs[i][mask, k] = \
                    repaired[position:position + segment.size]
                position += segment.size
        for i, matrix in outputs.items():
            results[i] = matrix
        with self._lock:
            self.n_requests += len(requests)
            self.n_errors += sum(isinstance(r, Exception) for r in results)
            self.n_rows += n_rows
            self.n_cell_dispatches += len(work)
            self.n_cell_items += sum(len(items) for items in work.values())
        return results

    def _prepared(self, key) -> PreparedFeatureRepair:
        u, k, s = key
        return self.cells.get_or_create(
            key, lambda: PreparedFeatureRepair(
                self.plan.feature_plan(u, k), s, rounding=self.rounding,
                output=self.output))

    def _validate(self, dataset: FairnessDataset) -> None:
        if dataset.n_features != self.plan.n_features:
            raise ValidationError(
                f"dataset has {dataset.n_features} features, plan was "
                f"designed for {self.plan.n_features}")
        missing = [int(u) for u in dataset.u_values
                   if not self.plan.covers(int(u))]
        if missing:
            raise ValidationError(
                f"plan has no design for groups u={missing}; re-run "
                "Algorithm 1 on research data covering them")

    def stats(self) -> dict:
        """Service counters + cache (and shard) accounting."""
        with self._lock:
            dispatches = self.n_cell_dispatches
            merged = (self.n_cell_items / dispatches) if dispatches else 0.0
            out = {"requests": self.n_requests, "errors": self.n_errors,
                   "rows": self.n_rows, "cell_dispatches": dispatches,
                   "cell_items": self.n_cell_items,
                   "mean_merge": merged}
        out["cache"] = self.cells.stats()
        shard_stats = getattr(self.plan, "stats", None)
        if callable(shard_stats):
            out["shards"] = shard_stats()
        return out
