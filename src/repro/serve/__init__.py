"""Repair-as-a-service: a long-lived serving tier for Algorithm 2.

Algorithm 1 (plan design) is the expensive offline step; Algorithm 2
(plan application) is cheap enough to answer online.  This package
keeps a designed plan warm behind an HTTP interface:

- :class:`~repro.serve.service.RepairService` — the engine: a loaded
  (usually memory-mapped) plan, an LRU of prepared per-cell kernels,
  and a batched ``repair_many`` that is bit-identical to the offline
  ``repair_dataset`` path.
- :class:`~repro.serve.cache.LRUCache` /
  :class:`~repro.serve.batcher.MicroBatcher` — the bounded-memory and
  request-coalescing primitives.
- :func:`~repro.serve.server.serve` /
  :class:`~repro.serve.server.BackgroundServer` — the stdlib HTTP
  front (``repro serve`` CLI, and the in-process variant for tests).
- :mod:`~repro.serve.client` — a ``urllib`` client for the endpoints.

Deliberately **not** imported from the top-level :mod:`repro` package:
offline users shouldn't pay for ``http.server`` imports.
"""

from .batcher import MicroBatcher
from .cache import LRUCache
from .client import get_json, post_json, repair_payload, repair_remote
from .server import (BackgroundServer, RepairHTTPServer, listening_socket,
                     serve)
from .service import RepairRequest, RepairService

__all__ = [
    "BackgroundServer",
    "LRUCache",
    "MicroBatcher",
    "RepairHTTPServer",
    "RepairRequest",
    "RepairService",
    "get_json",
    "listening_socket",
    "post_json",
    "repair_payload",
    "repair_remote",
    "serve",
]
