"""Bounded LRU caching for hot serving state.

A long-lived repair service keeps per-``(u, s, k)`` sampling state warm
— the dense row-CDF tables are ``O(n_Q²)`` each, so an unbounded cache
over a large design would quietly eat the worker's memory.
:class:`LRUCache` is the shared bound: capacity-limited, thread-safe,
with the hit/miss/eviction accounting the ``/stats`` endpoint reports.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..exceptions import ValidationError

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """A thread-safe, capacity-bounded least-recently-used mapping.

    ``get_or_create(key, factory)`` is the serving-loop primitive: a hit
    refreshes the entry's recency and returns it; a miss builds the
    value with ``factory()``, stores it, and evicts the least recently
    used entry once ``capacity`` is exceeded.  The factory runs while
    the cache lock is held, so concurrent requests for the *same* cold
    key build it exactly once (cold misses serialise; hits only contend
    for the lock's duration).
    """

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise ValidationError(
                f"cache capacity must be a positive int, got {capacity!r}")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_create(self, key, factory):
        """The cached value for ``key``, building it on a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
            value = factory()
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return value

    def get(self, key, default=None):
        """Peek without building; a hit still refreshes recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus occupancy, for ``/stats``."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "size": len(self._entries),
                    "capacity": self.capacity}
