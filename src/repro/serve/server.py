"""The ``repro serve`` HTTP tier: stdlib server, forked workers.

Stack, bottom-up: a listening socket is created **once** by the parent
(:func:`listening_socket`); ``--workers N`` forks ``N`` processes that
each run a :class:`ThreadingHTTPServer` *on the inherited socket* (the
kernel load-balances ``accept`` across them), each worker building its
own :class:`~repro.serve.service.RepairService` over the same
memory-mapped plan archive — so the plan bytes are shared through the
page cache rather than duplicated per worker.  Handler threads funnel
``POST /repair`` bodies through a
:class:`~repro.serve.batcher.MicroBatcher`, so concurrent requests
share vectorised dispatches.

Endpoints
---------
``POST /repair``
    Body ``{"features": [[...]], "s": [...], "u": [...], "seed": 7}``;
    response ``{"features": [[...]], "n_rows": ...}``.  Floats travel
    as their shortest round-trip ``repr``, so responses stay
    bit-identical to the offline ``repair_dataset`` path.
``GET /healthz``
    Liveness: ``{"status": "ok", "pid": ..., "uptime_s": ...}``.
``GET /stats``
    This worker's service / cache / batcher counters and request
    latency percentiles (per-process — each forked worker accounts for
    the requests the kernel handed it).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ReproError
from .batcher import MicroBatcher
from .service import RepairRequest, RepairService

__all__ = ["RepairHTTPServer", "BackgroundServer", "listening_socket",
           "serve"]


def listening_socket(host: str = "127.0.0.1", port: int = 0,
                     backlog: int = 128) -> socket.socket:
    """Create, bind and activate the shared listening socket.

    Done once in the parent before forking workers, so every worker
    accepts from the same queue.  ``port=0`` picks an ephemeral port
    (read it back with ``sock.getsockname()[1]``).
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


class _RepairHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints; all JSON in, all JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging would swamp the benchmark loops

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok", "pid": os.getpid(),
                "uptime_s": time.monotonic() - self.server.started})
        elif self.path == "/stats":
            self._send_json(200, self.server.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        if self.path != "/repair":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        start = time.perf_counter()
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length))
            request = RepairRequest.from_payload(payload)
        except (ValueError, ReproError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            repaired = self.server.batcher.submit(request)
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except Exception as exc:  # dispatch bug — fail loudly, stay up
            self._send_json(500, {"error": f"internal error: {exc}"})
            return
        self._send_json(200, {"features": repaired.tolist(),
                              "n_rows": int(repaired.shape[0])})
        self.server.record_latency(time.perf_counter() - start)


class RepairHTTPServer(ThreadingHTTPServer):
    """One worker's HTTP front over a :class:`RepairService`.

    Pass ``sock`` to adopt a pre-bound listening socket (the forked
    multi-worker path); without it the server binds ``server_address``
    itself (the in-process / test path).
    """

    daemon_threads = True

    def __init__(self, service: RepairService, server_address=None, *,
                 sock: socket.socket | None = None, max_batch: int = 32,
                 max_wait: float = 0.002,
                 latency_window: int = 8192) -> None:
        if sock is None and server_address is None:
            raise ValueError("need a server_address or a pre-bound sock")
        self.service = service
        self.batcher = MicroBatcher(service.repair_many,
                                    max_batch=max_batch, max_wait=max_wait)
        self.started = time.monotonic()
        self._latency_lock = threading.Lock()
        self._latencies: deque = deque(maxlen=latency_window)
        if sock is not None:
            super().__init__(sock.getsockname()[:2], _RepairHandler,
                             bind_and_activate=False)
            self.socket.close()  # replace the unused unbound socket
            self.socket = sock
            host, port = sock.getsockname()[:2]
            self.server_name = host
            self.server_port = port
        else:
            super().__init__(server_address, _RepairHandler)

    def record_latency(self, seconds: float) -> None:
        with self._latency_lock:
            self._latencies.append(seconds)

    def latency_percentiles(self) -> dict:
        """p50/p99/mean over the sliding latency window, in ms."""
        with self._latency_lock:
            window = sorted(self._latencies)
        if not window:
            return {"count": 0, "p50_ms": None, "p99_ms": None,
                    "mean_ms": None}
        rank = lambda q: window[min(len(window) - 1,  # noqa: E731
                                    int(q * len(window)))]
        return {"count": len(window),
                "p50_ms": rank(0.50) * 1e3,
                "p99_ms": rank(0.99) * 1e3,
                "mean_ms": sum(window) / len(window) * 1e3}

    def stats(self) -> dict:
        return {"pid": os.getpid(),
                "uptime_s": time.monotonic() - self.started,
                "service": self.service.stats(),
                "batcher": self.batcher.stats(),
                "latency": self.latency_percentiles()}


def _worker_loop(sock: socket.socket, plan_path, *, mmap: bool,
                 max_shards, rounding: str, output: str, cache_size: int,
                 max_batch: int, max_wait: float) -> None:
    """A forked worker: own service + HTTP server on the shared socket."""
    service = RepairService.from_path(
        plan_path, mmap=mmap, max_shards=max_shards, rounding=rounding,
        output=output, cache_size=cache_size)
    server = RepairHTTPServer(service, sock=sock, max_batch=max_batch,
                              max_wait=max_wait)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass


def serve(plan_path, *, host: str = "127.0.0.1", port: int = 8321,
          workers: int = 1, mmap: bool = True, max_shards=None,
          rounding: str = "stochastic", output: str = "sample",
          cache_size: int = 256, max_batch: int = 32,
          max_wait: float = 0.002, announce=print) -> None:
    """Run the repair service until interrupted (the CLI entry point).

    ``workers=1`` serves in-process; ``workers>1`` forks that many
    processes sharing one listening socket, each memory-mapping the
    same plan archive.
    """
    from .._validation import check_positive_int

    check_positive_int(workers, name="workers")
    sock = listening_socket(host, port)
    bound = sock.getsockname()
    options = dict(mmap=mmap, max_shards=max_shards, rounding=rounding,
                   output=output, cache_size=cache_size,
                   max_batch=max_batch, max_wait=max_wait)
    if announce is not None:
        announce(f"repro serve: http://{bound[0]}:{bound[1]} "
                 f"({workers} worker{'s' if workers != 1 else ''}, "
                 f"plan={plan_path})")
    if workers == 1:
        _worker_loop(sock, plan_path, **options)
        return
    import multiprocessing

    context = multiprocessing.get_context("fork")
    children = [context.Process(target=_worker_loop, args=(sock, plan_path),
                                kwargs=options, daemon=False)
                for _ in range(workers)]
    for child in children:
        child.start()
    sock.close()  # workers hold their inherited copies
    try:
        for child in children:
            child.join()
    except KeyboardInterrupt:
        pass
    finally:
        for child in children:
            if child.is_alive():
                child.terminate()
        for child in children:
            child.join()


class BackgroundServer:
    """An in-process server on an ephemeral port, for tests and
    benchmarks.

    ::

        with BackgroundServer(service) as bg:
            post_json(bg.url + "/repair", payload)
    """

    def __init__(self, service: RepairService, *, host: str = "127.0.0.1",
                 max_batch: int = 32, max_wait: float = 0.002) -> None:
        self.server = RepairHTTPServer(service, (host, 0),
                                       max_batch=max_batch,
                                       max_wait=max_wait)
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05}, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
