"""Micro-batching of concurrent repair requests.

A burst of single-row HTTP requests would naively cost one vectorised
dispatch *each*; since Algorithm 2's per-cell kernel is element-wise,
requests arriving together can share one dispatch per ``(u, s, k)``
cell instead.  :class:`MicroBatcher` is the collector: submitting
threads pool their items and one of them flushes the whole batch —
when it grows to ``max_batch`` items (flush-on-size) or when the
oldest item has waited ``max_wait`` seconds (flush-on-timeout).

The design is *leaderless-thread-free*: no background flusher thread
exists.  The first submitter of an empty queue becomes the batch's
leader and sleeps until its deadline; any submitter that fills the
batch flushes it immediately (waking the leader early).  A lone request
therefore pays at most ``max_wait`` of extra latency, and a saturated
server flushes on size alone.
"""

from __future__ import annotations

import threading

from ..exceptions import ValidationError

__all__ = ["MicroBatcher"]


class _Slot:
    """One submitted item's result mailbox."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result = None
        self.error = None


class MicroBatcher:
    """Group concurrent ``submit`` calls into shared ``dispatch`` calls.

    Parameters
    ----------
    dispatch:
        ``dispatch(items) -> results`` with ``len(results) ==
        len(items)``, element ``i`` being item ``i``'s result.  A result
        that is an :class:`Exception` is raised in that item's
        submitting thread (per-item failure isolation); a ``dispatch``
        that itself raises fails every item of the batch.
    max_batch:
        Flush as soon as this many items are pending.
    max_wait:
        Seconds the oldest pending item may wait before a flush.
    """

    def __init__(self, dispatch, *, max_batch: int = 32,
                 max_wait: float = 0.002) -> None:
        if not isinstance(max_batch, int) or max_batch < 1:
            raise ValidationError(
                f"max_batch must be a positive int, got {max_batch!r}")
        if max_wait < 0:
            raise ValidationError(
                f"max_wait must be >= 0, got {max_wait!r}")
        self._dispatch = dispatch
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._lock = threading.Lock()
        self._pending: list = []
        self.n_items = 0
        self.n_flushes = 0
        self.n_size_flushes = 0
        self.n_timeout_flushes = 0
        self.max_batch_seen = 0

    def submit(self, item):
        """Hand ``item`` to the current batch; blocks until its result.

        Raises the item's per-result exception, if any.
        """
        slot = _Slot()
        with self._lock:
            self._pending.append((item, slot))
            leader = len(self._pending) == 1
            batch = (self._drain("size")
                     if len(self._pending) >= self.max_batch else None)
        if batch is not None:
            self._run(batch)
        elif leader:
            slot.event.wait(self.max_wait)
            if not slot.event.is_set():
                with self._lock:
                    # Only flush if our batch was not already taken by a
                    # size-triggered flush racing with the timeout.
                    mine = any(entry[1] is slot for entry in self._pending)
                    batch = self._drain("timeout") if mine else None
                if batch is not None:
                    self._run(batch)
        slot.event.wait()
        if slot.error is not None:
            raise slot.error
        return slot.result

    def _drain(self, trigger: str) -> list:
        """Take the whole pending list (caller holds the lock)."""
        batch = self._pending
        self._pending = []
        self.n_flushes += 1
        self.n_items += len(batch)
        self.max_batch_seen = max(self.max_batch_seen, len(batch))
        if trigger == "size":
            self.n_size_flushes += 1
        else:
            self.n_timeout_flushes += 1
        return batch

    def _run(self, batch: list) -> None:
        """Dispatch a drained batch and deliver each slot's result."""
        items = [item for (item, _) in batch]
        try:
            results = self._dispatch(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"dispatch returned {len(results)} results for "
                    f"{len(items)} items")
        except Exception as exc:
            for _, slot in batch:
                slot.error = exc
                slot.event.set()
            return
        for (_, slot), result in zip(batch, results):
            if isinstance(result, Exception):
                slot.error = result
            else:
                slot.result = result
            slot.event.set()

    def flush(self) -> None:
        """Force-dispatch whatever is pending (shutdown convenience)."""
        with self._lock:
            batch = self._drain("timeout") if self._pending else None
        if batch is not None:
            self._run(batch)

    def stats(self) -> dict:
        """Flush counters for the ``/stats`` endpoint."""
        with self._lock:
            mean = (self.n_items / self.n_flushes) if self.n_flushes else 0.0
            return {"items": self.n_items, "flushes": self.n_flushes,
                    "size_flushes": self.n_size_flushes,
                    "timeout_flushes": self.n_timeout_flushes,
                    "max_batch_seen": self.max_batch_seen,
                    "mean_batch": mean,
                    "max_batch": self.max_batch,
                    "max_wait_s": self.max_wait}
