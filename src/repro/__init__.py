"""repro — OT-based fairness repair of archival data from small research sets.

Reproduction of Langbridge, Quinn & Shorten, *"Optimal Transport for
Fairness: Archival Data Repair using Small Research Data Sets"* (ICDE 2024).

Quick tour
----------

The repair machinery sits on one unified OT entry point: describe a
problem with :class:`~repro.ot.problem.OTProblem`, call
:func:`~repro.ot.solve.solve`, get an
:class:`~repro.ot.problem.OTResult` back — whichever registered solver
ran (``available_solvers()`` lists them; ``"auto"`` dispatches on
problem structure):

>>> from repro.ot import OTProblem, solve
>>> problem = OTProblem(source_weights=[0.5, 0.5],
...                     target_weights=[0.5, 0.5],
...                     source_support=[0.0, 1.0],
...                     target_support=[0.0, 2.0])
>>> result = solve(problem)                 # auto -> monotone closed form
>>> result.solver, result.converged, result.marginal_residual <= 1e-12
('exact', True, True)

The estimator API rides on top; ``solver=`` accepts any
registry-resolvable spec (``"exact"``, ``"simplex"``, ``"sinkhorn"``,
``"screened"``, a callable, ...):

>>> from repro import simulate_paper_data, DistributionalRepairer
>>> from repro import conditional_dependence_energy
>>> split = simulate_paper_data(n_research=500, n_archive=5000, rng=0)
>>> repairer = DistributionalRepairer(n_states=50, solver="exact", rng=0)
>>> _ = repairer.fit(split.research)                  # Algorithm 1
>>> repaired = repairer.transform(split.archive)      # Algorithm 2
>>> report = conditional_dependence_energy(
...     repaired.features, repaired.s, repaired.u)
>>> report.total < 2.0
True

Subpackages
-----------

``repro.ot``
    Optimal-transport substrate behind the unified ``solve()`` facade:
    pluggable solver registry, exact 1-D, simplex, LP, Sinkhorn, the
    Sinkhorn-screened sparse hybrid, barycentres.
``repro.density``
    KDE, bandwidth selection, interpolation grids.
``repro.metrics``
    Divergences, the paper's ``E`` measure, fairness proxies.
``repro.data``
    Dataset container, simulators, Adult loader/synthesiser, streaming.
``repro.core``
    Algorithms 1 & 2, the geometric baseline, partial repair, label
    estimation, the end-to-end pipeline.
``repro.classify``
    Logistic regression and naive Bayes for DI evaluation.
``repro.experiments``
    Drivers that regenerate every table and figure of the paper.
"""

from .classify import GaussianNaiveBayes, LogisticRegression
from .core import (DistributionalRepairer, DriftMonitor, GeometricRepairer,
                   PartialRepairer, RepairPipeline, RepairPlan, RepairReport,
                   SubgroupLabelModel, design_repair, load_plan,
                   repair_damage, repair_dataset, save_plan)
from .data import (ArchiveStream, AttributeBinner, FairnessDataset,
                   GaussianMixtureSpec, ResearchArchiveSplit, TableSchema,
                   load_adult_csv, paper_simulation_spec,
                   simulate_paper_data, synthesize_adult)
from .exceptions import (ConvergenceError, DataError, InfeasibleProblemError,
                         NotFittedError, ReproError, SchemaError,
                         ValidationError)
from .metrics import (conditional_dependence_energy, disparate_impact,
                      conditional_disparate_impact, symmetric_kl)
from .ot import (OTBatch, OTProblem, OTResult, Solver, available_solvers,
                 register_batch_solver, register_solver, solve, solve_many)

__version__ = "1.0.0"

__all__ = [
    "ArchiveStream",
    "AttributeBinner",
    "ConvergenceError",
    "DataError",
    "DistributionalRepairer",
    "DriftMonitor",
    "FairnessDataset",
    "GaussianMixtureSpec",
    "GaussianNaiveBayes",
    "GeometricRepairer",
    "InfeasibleProblemError",
    "LogisticRegression",
    "NotFittedError",
    "OTBatch",
    "OTProblem",
    "OTResult",
    "PartialRepairer",
    "RepairPipeline",
    "RepairPlan",
    "RepairReport",
    "ReproError",
    "ResearchArchiveSplit",
    "SchemaError",
    "Solver",
    "SubgroupLabelModel",
    "TableSchema",
    "ValidationError",
    "__version__",
    "available_solvers",
    "conditional_dependence_energy",
    "conditional_disparate_impact",
    "design_repair",
    "disparate_impact",
    "load_adult_csv",
    "load_plan",
    "paper_simulation_spec",
    "register_batch_solver",
    "register_solver",
    "save_plan",
    "repair_damage",
    "repair_dataset",
    "simulate_paper_data",
    "solve",
    "solve_many",
    "symmetric_kl",
    "synthesize_adult",
]
