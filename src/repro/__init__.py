"""repro — OT-based fairness repair of archival data from small research sets.

Reproduction of Langbridge, Quinn & Shorten, *"Optimal Transport for
Fairness: Archival Data Repair using Small Research Data Sets"* (ICDE 2024).

Quick tour
----------

>>> from repro import simulate_paper_data, DistributionalRepairer
>>> from repro import conditional_dependence_energy
>>> split = simulate_paper_data(n_research=500, n_archive=5000, rng=0)
>>> repairer = DistributionalRepairer(n_states=50, rng=0)
>>> _ = repairer.fit(split.research)                  # Algorithm 1
>>> repaired = repairer.transform(split.archive)      # Algorithm 2
>>> report = conditional_dependence_energy(
...     repaired.features, repaired.s, repaired.u)
>>> report.total < 2.0
True

Subpackages
-----------

``repro.ot``
    Optimal-transport substrate (exact 1-D, simplex, Sinkhorn,
    barycentres).
``repro.density``
    KDE, bandwidth selection, interpolation grids.
``repro.metrics``
    Divergences, the paper's ``E`` measure, fairness proxies.
``repro.data``
    Dataset container, simulators, Adult loader/synthesiser, streaming.
``repro.core``
    Algorithms 1 & 2, the geometric baseline, partial repair, label
    estimation, the end-to-end pipeline.
``repro.classify``
    Logistic regression and naive Bayes for DI evaluation.
``repro.experiments``
    Drivers that regenerate every table and figure of the paper.
"""

from .classify import GaussianNaiveBayes, LogisticRegression
from .core import (DistributionalRepairer, DriftMonitor, GeometricRepairer,
                   PartialRepairer, RepairPipeline, RepairPlan, RepairReport,
                   SubgroupLabelModel, design_repair, load_plan,
                   repair_damage, repair_dataset, save_plan)
from .data import (ArchiveStream, AttributeBinner, FairnessDataset,
                   GaussianMixtureSpec, ResearchArchiveSplit, TableSchema,
                   load_adult_csv, paper_simulation_spec,
                   simulate_paper_data, synthesize_adult)
from .exceptions import (ConvergenceError, DataError, InfeasibleProblemError,
                         NotFittedError, ReproError, SchemaError,
                         ValidationError)
from .metrics import (conditional_dependence_energy, disparate_impact,
                      conditional_disparate_impact, symmetric_kl)

__version__ = "1.0.0"

__all__ = [
    "ArchiveStream",
    "AttributeBinner",
    "ConvergenceError",
    "DataError",
    "DistributionalRepairer",
    "DriftMonitor",
    "FairnessDataset",
    "GaussianMixtureSpec",
    "GaussianNaiveBayes",
    "GeometricRepairer",
    "InfeasibleProblemError",
    "LogisticRegression",
    "NotFittedError",
    "PartialRepairer",
    "RepairPipeline",
    "RepairPlan",
    "RepairReport",
    "ReproError",
    "ResearchArchiveSplit",
    "SchemaError",
    "SubgroupLabelModel",
    "TableSchema",
    "ValidationError",
    "__version__",
    "conditional_dependence_energy",
    "conditional_disparate_impact",
    "design_repair",
    "disparate_impact",
    "load_adult_csv",
    "load_plan",
    "paper_simulation_spec",
    "save_plan",
    "repair_damage",
    "repair_dataset",
    "simulate_paper_data",
    "symmetric_kl",
    "synthesize_adult",
]
