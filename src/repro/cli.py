"""Command-line interface.

``python -m repro <command>`` drives the library without writing code:

* ``experiment {table1,table2,fig3,fig4}`` — regenerate a paper artefact;
* ``design`` — fit repair plans on a labelled CSV and save them;
* ``serve`` — keep saved plans warm behind a multi-worker HTTP tier;
* ``repair`` — apply saved plans to an archival CSV;
* ``evaluate`` — measure the conditional-dependence metric of a CSV;
* ``solvers`` — list the registered OT solvers ``--solver`` accepts.

CSV layout for the data commands: a header row, one column per feature,
plus integer columns named ``s`` and ``u`` (configurable).
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

import numpy as np

from .core.repair import DistributionalRepairer, repair_dataset
from .core.serialize import load_plan, save_plan
from .data.dataset import FairnessDataset
from .data.schema import TableSchema
from .exceptions import DataError, ReproError
from .core.backend import available_backends, get_backend
from .metrics.fairness import conditional_dependence_energy
from .ot.registry import resolve_solver, solver_descriptions

__all__ = ["main", "build_parser", "read_csv_dataset",
           "write_csv_dataset"]


def read_csv_dataset(path, *, s_column: str = "s",
                     u_column: str = "u") -> FairnessDataset:
    """Load a labelled data set from a headered CSV file."""
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"data file not found: {file_path}")
    with open(file_path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{file_path}: empty file") from None
        header = [name.strip() for name in header]
        for required in (s_column, u_column):
            if required not in header:
                raise DataError(
                    f"{file_path}: missing required column "
                    f"{required!r} (have {header})")
        s_index = header.index(s_column)
        u_index = header.index(u_column)
        feature_indices = [i for i in range(len(header))
                           if i not in (s_index, u_index)]
        if not feature_indices:
            raise DataError(f"{file_path}: no feature columns")
        rows = []
        for line_no, row in enumerate(reader, start=2):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) != len(header):
                raise DataError(
                    f"{file_path}:{line_no}: expected {len(header)} "
                    f"fields, got {len(row)}")
            try:
                rows.append([float(value) for value in row])
            except ValueError as exc:
                raise DataError(
                    f"{file_path}:{line_no}: non-numeric field "
                    f"({exc})") from exc
    if not rows:
        raise DataError(f"{file_path}: no data rows")
    matrix = np.asarray(rows)
    schema = TableSchema.from_names(
        [header[i] for i in feature_indices],
        protected=s_column, unprotected=u_column)
    return FairnessDataset(matrix[:, feature_indices],
                           matrix[:, s_index], matrix[:, u_index],
                           schema=schema)


def write_csv_dataset(dataset: FairnessDataset, path) -> None:
    """Write a data set back out with the same column convention."""
    file_path = Path(path)
    with open(file_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(dataset.feature_names)
                        + [dataset.schema.protected,
                           dataset.schema.unprotected])
        for i in range(len(dataset)):
            writer.writerow([f"{v:.10g}" for v in dataset.features[i]]
                            + [int(dataset.s[i]), int(dataset.u[i])])


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OT-based fairness repair of archival data "
                    "(ICDE 2024 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table or figure")
    experiment.add_argument("artefact",
                            choices=("table1", "table2", "fig3", "fig4",
                                     "tradeoff", "correlation", "monge"))
    experiment.add_argument("--repeats", type=int, default=None,
                            help="Monte-Carlo repetitions (simulated "
                                 "experiments)")
    experiment.add_argument("--seed", type=int, default=2024)
    experiment.add_argument("--adult-path", default=None,
                            help="real adult.data file for table2")

    design = commands.add_parser(
        "design", help="fit repair plans on a labelled research CSV")
    design.add_argument("research_csv")
    design.add_argument("plan_file", help="output .npz plan archive")
    design.add_argument("--n-states", type=int, default=50)
    design.add_argument("--t", type=float, default=0.5)
    design.add_argument("--solver", default="exact",
                        help="any registered OT solver name (see the "
                             "'solvers' command, e.g. exact, screened, "
                             "multiscale); typos fail with the available "
                             "names")
    design.add_argument("--solver-opt", action="append", default=[],
                        metavar="KEY=VALUE", dest="solver_opts",
                        help="extra solver option, repeatable (e.g. "
                             "--solver-opt coarsen=4 --solver-opt "
                             "levels=2 for --solver multiscale — "
                             "levels=auto builds the full pyramid — or "
                             "--solver-opt restricted_engine=lp to swap "
                             "screened/multiscale onto the scipy LP "
                             "oracle instead of the native network "
                             "simplex; restricted_engine=banded forces "
                             "the pivot-free monotone kernel that "
                             "multiscale's auto engine already picks on "
                             "certified cells); numeric values are "
                             "auto-converted, options the solver does "
                             "not accept are dropped")
    design.add_argument("--marginal-estimator", default="kde",
                        choices=("kde", "linear"))
    design.add_argument("--n-jobs", type=int, default=None,
                        help="worker budget for the design's execution "
                             "engine (default: serial)")
    design.add_argument("--executor", default="auto",
                        choices=("auto", "serial", "thread", "process"),
                        help="execution strategy for the non-vectorised "
                             "design work: thread suits BLAS/LP-bound "
                             "solvers (screened, multiscale, lp), "
                             "process is the historical --n-jobs "
                             "fan-out; auto picks per solver. Batch-"
                             "kernel solvers (exact) vectorise same-"
                             "grid cells regardless of the strategy")
    design.add_argument("--backend", default="auto",
                        help="compute backend for the vectorised plan "
                             "solves: auto/numpy (bit-identical "
                             "default), torch or cupy when installed, "
                             "array_api_strict for conformance runs; "
                             "unknown or unavailable names fail before "
                             "the CSV is read, and the resolved name "
                             "is recorded in the plan metadata")
    design.add_argument("--plan-dtype", default="float64",
                        choices=("float64", "float32"),
                        help="storage dtype of the transport-plan "
                             "arrays in the saved archive; float32 "
                             "halves the plan bytes on disk (loaders "
                             "up-convert, values round-trip to ~1e-7)")
    design.add_argument("--sparse-plans", action="store_true",
                        help="store transport plans CSR-sparse; cuts the "
                             "plan archive roughly n_Q-fold for screened/"
                             "exact designs")
    design.add_argument("--index-dtype", default=None,
                        choices=("int32", "int64"),
                        help="width of the CSR index arrays in sparse "
                             "archives (default: int32 whenever the "
                             "matrices fit, int64 otherwise; loaders "
                             "up-convert transparently)")
    design.add_argument("--plan-shard", default=None, metavar="MODE",
                        help="split the plan across several archive "
                             "files plus a JSON manifest: 'u' (one per "
                             "unprotected group), 'cell' (one per (u,k) "
                             "cell), or an integer shard count; loaders "
                             "and 'repro serve' read manifests "
                             "transparently")
    design.add_argument("--compress", action="store_true",
                        help="deflate the plan archive (only worthwhile "
                             "for dense entropic plans; sparse archives "
                             "gain little)")

    serve = commands.add_parser(
        "serve", help="serve Algorithm-2 repairs from a saved plan "
                      "over HTTP")
    serve.add_argument("--plan", required=True,
                       help=".npz plan archive or .manifest.json from "
                            "--plan-shard")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes sharing one listening "
                            "socket; each memory-maps the same plan")
    serve.add_argument("--no-mmap", action="store_true",
                       help="read the plan eagerly instead of "
                            "memory-mapping it (compressed archives "
                            "fall back to eager reads automatically)")
    serve.add_argument("--max-shards", type=int, default=None,
                       help="bound on concurrently-resident shard files "
                            "when serving a sharded plan (default: all)")
    serve.add_argument("--rounding", default="stochastic",
                       choices=("stochastic", "nearest"))
    serve.add_argument("--output", default="sample",
                       choices=("sample", "barycentric", "interpolated"))
    serve.add_argument("--cache-size", type=int, default=256,
                       help="bound on hot per-(u,s,k) repair kernels "
                            "kept in the LRU cache")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="flush a micro-batch at this many pending "
                            "requests")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="seconds a request may wait for batch "
                            "companions before a flush")

    repair = commands.add_parser(
        "repair", help="repair an archival CSV with saved plans")
    repair.add_argument("plan_file")
    repair.add_argument("archive_csv")
    repair.add_argument("output_csv")
    repair.add_argument("--seed", type=int, default=None)

    evaluate = commands.add_parser(
        "evaluate", help="measure conditional dependence (E) of a CSV")
    evaluate.add_argument("data_csv")
    evaluate.add_argument("--n-grid", type=int, default=100)

    commands.add_parser(
        "solvers", help="list the registered OT solvers")

    commands.add_parser(
        "backends", help="list the available compute backends")

    return parser


def _run_experiment(args) -> int:
    if args.artefact == "table1":
        from .experiments.table1 import Table1Config, run_table1
        config = Table1Config(seed=args.seed,
                              n_repeats=args.repeats or 25)
        print(run_table1(config).render())
    elif args.artefact == "table2":
        from .experiments.table2 import Table2Config, run_table2
        config = Table2Config(seed=args.seed, adult_path=args.adult_path)
        print(run_table2(config).render())
    elif args.artefact == "fig3":
        from .experiments.fig3 import Fig3Config, run_fig3
        config = Fig3Config(seed=args.seed, n_repeats=args.repeats or 10)
        result = run_fig3(config)
        print(result.render())
        print(f"converged by nR = {result.converged_by()}")
    elif args.artefact == "fig4":
        from .experiments.fig4 import Fig4Config, run_fig4
        config = Fig4Config(seed=args.seed, n_repeats=args.repeats or 10)
        result = run_fig4(config)
        print(result.render())
        print(f"converged by nQ = {result.convergence_threshold()}")
    elif args.artefact == "tradeoff":
        from .experiments.extensions import run_tradeoff
        print(run_tradeoff(seed=args.seed).render())
    elif args.artefact == "correlation":
        from .experiments.extensions import run_correlation_study
        print(run_correlation_study(seed=args.seed).render())
    else:
        from .experiments.extensions import run_monge_study
        print(run_monge_study(seed=args.seed).render())
    return 0


def _run_backends(args) -> int:
    names = available_backends()
    for name in names:
        suffix = " (default)" if name == "numpy" else ""
        print(f"{name}{suffix}")
    return 0


def _run_solvers(args) -> int:
    descriptions = solver_descriptions()
    width = max(len(name) for name in descriptions)
    for name, description in descriptions.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _parse_solver_opts(pairs) -> dict:
    """Parse repeated ``--solver-opt KEY=VALUE`` flags into a dict.

    Values are converted to ``bool`` (``true``/``false``, case
    insensitive), ``int`` or ``float`` when they parse as one (solver
    signatures are numeric- and flag-heavy); everything else stays a
    string (e.g. ``coarse_method=lp``).
    """
    opts = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        key = key.strip()
        if not key or not separator:
            raise DataError(
                f"--solver-opt expects KEY=VALUE, got {pair!r}")
        raw = raw.strip()
        value: object = raw
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    pass
        opts[key] = value
    return opts


def _run_design(args) -> int:
    # Resolve the solver, the backend and the options eagerly so a typo
    # fails before the CSV is even read, with the available names.
    resolve_solver(args.solver)
    get_backend(args.backend)
    solver_opts = _parse_solver_opts(args.solver_opts)
    research = read_csv_dataset(args.research_csv)
    repairer = DistributionalRepairer(
        n_states=args.n_states, t=args.t, solver=args.solver,
        solver_opts=solver_opts,
        marginal_estimator=args.marginal_estimator, n_jobs=args.n_jobs,
        executor=args.executor, backend=args.backend,
        sparse_plans=args.sparse_plans)
    repairer.fit(research)
    shard_by = args.plan_shard
    if shard_by is not None and shard_by.lstrip("-").isdigit():
        shard_by = int(shard_by)
    written = save_plan(repairer.plan, args.plan_file,
                        compress=args.compress, dtype=args.plan_dtype,
                        index_dtype=args.index_dtype, shard_by=shard_by)
    metadata = repairer.plan.metadata
    n_sparse = metadata.get("n_sparse_transports", 0)
    print(f"designed {len(repairer.plan.feature_plans)} feature plans "
          f"({n_sparse} sparse transports, "
          f"{metadata.get('n_batched_solves', 0)} batched solves, "
          f"executor {metadata.get('executor', 'serial')}, "
          f"backend {metadata.get('backend', 'numpy')}) on "
          f"{len(research)} research rows -> {written}")
    return 0


def _run_serve(args) -> int:
    # Imported lazily: offline commands shouldn't pay for http.server.
    from .serve.server import serve as run_server

    run_server(args.plan, host=args.host, port=args.port,
               workers=args.workers, mmap=not args.no_mmap,
               max_shards=args.max_shards, rounding=args.rounding,
               output=args.output, cache_size=args.cache_size,
               max_batch=args.max_batch, max_wait=args.max_wait)
    return 0


def _run_repair(args) -> int:
    plan = load_plan(args.plan_file)
    archive = read_csv_dataset(args.archive_csv)
    rng = np.random.default_rng(args.seed)
    repaired = repair_dataset(archive, plan, rng=rng)
    write_csv_dataset(repaired, args.output_csv)
    print(f"repaired {len(repaired)} rows -> {args.output_csv}")
    return 0


def _run_evaluate(args) -> int:
    data = read_csv_dataset(args.data_csv)
    report = conditional_dependence_energy(data.features, data.s, data.u,
                                           n_grid=args.n_grid)
    for k, name in enumerate(data.feature_names):
        print(f"E[{name}] = {report.per_feature[k]:.6g}")
    print(f"E total = {report.total:.6g}")
    return 0


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "experiment": _run_experiment,
        "design": _run_design,
        "serve": _run_serve,
        "repair": _run_repair,
        "evaluate": _run_evaluate,
        "solvers": _run_solvers,
        "backends": _run_backends,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
