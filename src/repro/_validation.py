"""Shared argument-validation helpers.

These helpers normalise user input into canonical numpy arrays and raise
:class:`~repro.exceptions.ValidationError` with actionable messages.  They are
deliberately small and composable so that public functions can state their
contracts in two or three lines.
"""

from __future__ import annotations

import numbers

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "as_1d_array",
    "as_2d_array",
    "as_probability_vector",
    "check_same_length",
    "check_positive_int",
    "check_in_range",
    "check_probability",
    "as_rng",
]


def as_1d_array(values, *, name: str = "array", dtype=float) -> np.ndarray:
    """Coerce ``values`` to a 1-D numpy array of ``dtype``.

    Raises
    ------
    ValidationError
        If the input is empty, has more than one dimension, or contains
        non-finite entries.
    """
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValidationError(
            f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return arr


def as_2d_array(values, *, name: str = "array", dtype=float) -> np.ndarray:
    """Coerce ``values`` to a 2-D numpy array (rows = observations)."""
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be two-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return arr


def as_probability_vector(values, *, name: str = "weights",
                          atol: float = 1e-8,
                          normalize: bool = False) -> np.ndarray:
    """Coerce ``values`` to a probability vector (non-negative, sums to 1).

    Parameters
    ----------
    normalize:
        When true, rescale a non-negative vector with positive mass to sum to
        one instead of rejecting it.
    """
    arr = as_1d_array(values, name=name)
    if np.any(arr < -atol):
        raise ValidationError(f"{name} must be non-negative")
    arr = np.clip(arr, 0.0, None)
    total = float(arr.sum())
    if total <= 0.0:
        raise ValidationError(f"{name} must have positive total mass")
    if normalize:
        return arr / total
    if abs(total - 1.0) > max(atol, 1e-6):
        raise ValidationError(
            f"{name} must sum to 1 (got {total!r}); "
            "pass normalize=True to rescale")
    return arr / total


def check_same_length(a: np.ndarray, b: np.ndarray, *,
                      names: tuple[str, str] = ("a", "b")) -> None:
    """Raise unless ``a`` and ``b`` have equal leading dimension."""
    if len(a) != len(b):
        raise ValidationError(
            f"{names[0]} and {names[1]} must have the same length "
            f"({len(a)} != {len(b)})")


def check_positive_int(value, *, name: str = "value",
                       minimum: int = 1) -> int:
    """Validate an integral value >= ``minimum`` and return it as ``int``."""
    if not isinstance(value, numbers.Integral):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    ivalue = int(value)
    if ivalue < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {ivalue}")
    return ivalue


def check_in_range(value, *, name: str, low: float, high: float,
                   inclusive: bool = True) -> float:
    """Validate a scalar within ``[low, high]`` (or the open interval)."""
    if not isinstance(value, numbers.Real):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    fvalue = float(value)
    if inclusive:
        ok = low <= fvalue <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < fvalue < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{name} must lie in {bounds}, got {fvalue}")
    return fvalue


def check_probability(value, *, name: str = "p") -> float:
    """Validate a scalar probability in ``[0, 1]``."""
    return check_in_range(value, name=name, low=0.0, high=1.0)


def as_rng(seed) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share RNG state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
