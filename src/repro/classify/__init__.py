"""Classifier substrate for before/after-repair fairness evaluation."""

from .logistic import LogisticRegression
from .naive_bayes import GaussianNaiveBayes

__all__ = ["GaussianNaiveBayes", "LogisticRegression"]
