"""Logistic regression from scratch (numpy IRLS).

The paper's fairness story is about the classifier ``ŷ = g(X)`` (Figure 1):
repairing ``X`` quenches the ``S``-dependence available to *any* downstream
rule ``g``.  To demonstrate that end-to-end — disparate impact of a trained
model before vs after repair — we need a classifier, and no ML library is
available, so here is a careful implementation: Newton/IRLS with ridge
regularisation and a gradient-descent fallback for ill-conditioned steps.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_positive_int
from ..exceptions import ConvergenceError, NotFittedError, ValidationError

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    l2:
        Ridge penalty on the non-intercept weights (``0`` disables it).
    max_iter:
        Newton-step budget.
    tol:
        Convergence threshold on the max absolute gradient.
    fit_intercept:
        Prepend a bias column (default true).
    """

    def __init__(self, *, l2: float = 1e-4, max_iter: int = 100,
                 tol: float = 1e-8, fit_intercept: bool = True) -> None:
        if l2 < 0.0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        self.l2 = float(l2)
        self.max_iter = check_positive_int(max_iter, name="max_iter")
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    @property
    def coef_(self) -> np.ndarray:
        """Fitted weights in standardised feature space (bias first when
        ``fit_intercept``)."""
        if self._weights is None:
            raise NotFittedError("LogisticRegression.fit must run first")
        return self._weights.copy()

    def fit(self, features, targets) -> "LogisticRegression":
        """Maximise the ridge-penalised log-likelihood by IRLS."""
        x = as_2d_array(features, name="features")
        y = np.asarray(targets).astype(float).ravel()
        if y.size != x.shape[0]:
            raise ValidationError("features/targets length mismatch")
        if not np.all(np.isin(y, (0.0, 1.0))):
            raise ValidationError("targets must be binary (0/1)")

        # Standardise for conditioning; fold the transform into predict.
        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        design = (x - self._mean) / self._scale
        if self.fit_intercept:
            design = np.hstack([np.ones((design.shape[0], 1)), design])

        n, d = design.shape
        weights = np.zeros(d)
        penalty = np.full(d, self.l2)
        if self.fit_intercept:
            penalty[0] = 0.0

        for _ in range(self.max_iter):
            z = design @ weights
            prob = _sigmoid(z)
            gradient = design.T @ (prob - y) / n + penalty * weights
            if np.max(np.abs(gradient)) < self.tol:
                break
            w_diag = np.maximum(prob * (1.0 - prob), 1e-10)
            hessian = (design.T * w_diag) @ design / n + np.diag(penalty)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = gradient  # gradient fallback
            # Backtracking keeps Newton honest on separable data.
            loss = self._loss(design, y, weights, penalty)
            step_size = 1.0
            for _ in range(30):
                candidate = weights - step_size * step
                if self._loss(design, y, candidate, penalty) <= loss:
                    break
                step_size *= 0.5
            weights = weights - step_size * step
        self._weights = weights
        return self

    @staticmethod
    def _loss(design: np.ndarray, y: np.ndarray, weights: np.ndarray,
              penalty: np.ndarray) -> float:
        z = design @ weights
        # log(1 + exp(z)) - y z, computed stably.
        softplus = np.logaddexp(0.0, z)
        nll = float(np.mean(softplus - y * z))
        return nll + 0.5 * float(penalty @ (weights * weights))

    def predict_proba(self, features) -> np.ndarray:
        """``Pr[y = 1 | x]`` per row."""
        if self._weights is None:
            raise NotFittedError("LogisticRegression.fit must run first")
        x = as_2d_array(features, name="features")
        if x.shape[1] != self._mean.size:
            raise ValidationError(
                f"feature arity changed between fit and predict "
                f"({x.shape[1]} != {self._mean.size})")
        design = (x - self._mean) / self._scale
        if self.fit_intercept:
            design = np.hstack([np.ones((design.shape[0], 1)), design])
        return _sigmoid(design @ self._weights)

    def predict(self, features, *, threshold: float = 0.5) -> np.ndarray:
        """MAP labels at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def accuracy(self, features, targets) -> float:
        y = np.asarray(targets).astype(int).ravel()
        return float(np.mean(self.predict(features) == y))
