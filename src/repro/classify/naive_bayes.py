"""Gaussian naive Bayes (numpy).

A second, structurally different classifier for the before/after-repair
experiments: where logistic regression is a discriminative linear rule,
naive Bayes is generative with per-class axis-aligned Gaussians.  Showing
the DI improvement on both guards against the conclusion being an artefact
of one hypothesis class.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array
from ..exceptions import NotFittedError, ValidationError

__all__ = ["GaussianNaiveBayes"]

_VAR_FLOOR = 1e-9


class GaussianNaiveBayes:
    """Binary Gaussian naive Bayes classifier."""

    def __init__(self) -> None:
        self._means: dict = {}
        self._variances: dict = {}
        self._log_priors: dict = {}

    @property
    def is_fitted(self) -> bool:
        return bool(self._means)

    def fit(self, features, targets) -> "GaussianNaiveBayes":
        """Estimate per-class means, variances and priors."""
        x = as_2d_array(features, name="features")
        y = np.asarray(targets).astype(int).ravel()
        if y.size != x.shape[0]:
            raise ValidationError("features/targets length mismatch")
        if not np.all(np.isin(y, (0, 1))):
            raise ValidationError("targets must be binary (0/1)")
        self._means.clear()
        self._variances.clear()
        self._log_priors.clear()
        for label in (0, 1):
            mask = y == label
            if not mask.any():
                raise ValidationError(
                    f"class {label} absent from the training targets")
            block = x[mask]
            self._means[label] = block.mean(axis=0)
            self._variances[label] = np.maximum(
                block.var(axis=0), _VAR_FLOOR)
            self._log_priors[label] = float(np.log(np.mean(mask)))
        return self

    def _joint_log_likelihood(self, features) -> np.ndarray:
        if not self.is_fitted:
            raise NotFittedError("GaussianNaiveBayes.fit must run first")
        x = as_2d_array(features, name="features")
        if x.shape[1] != self._means[0].size:
            raise ValidationError(
                f"feature arity changed between fit and predict "
                f"({x.shape[1]} != {self._means[0].size})")
        scores = np.empty((x.shape[0], 2))
        for label in (0, 1):
            mean = self._means[label]
            var = self._variances[label]
            log_pdf = -0.5 * (np.log(2.0 * np.pi * var)
                              + (x - mean) ** 2 / var).sum(axis=1)
            scores[:, label] = log_pdf + self._log_priors[label]
        return scores

    def predict_proba(self, features) -> np.ndarray:
        """``Pr[y = 1 | x]`` per row."""
        scores = self._joint_log_likelihood(features)
        top = scores.max(axis=1, keepdims=True)
        expd = np.exp(scores - top)
        return expd[:, 1] / expd.sum(axis=1)

    def predict(self, features) -> np.ndarray:
        """MAP class labels."""
        return np.argmax(self._joint_log_likelihood(features), axis=1)

    def accuracy(self, features, targets) -> float:
        y = np.asarray(targets).astype(int).ravel()
        return float(np.mean(self.predict(features) == y))
