"""Unbalanced entropic optimal transport.

The balanced Kantorovich problem forces the plan's marginals to equal the
inputs exactly — brittle when the archival distribution has drifted away
from the research-designed marginal (mass appears/disappears where the
design does not expect it).  The standard relaxation (Chizat et al.;
"robust OT" in the paper's reference [34]) replaces the hard constraints
with KL penalties:

    min_π <C, π> + ε KL(π | K) + λ KL(π1 | µ) + λ KL(πᵀ1 | ν).

The Sinkhorn iteration acquires exponents ``λ/(λ+ε)``; as ``λ → ∞`` the
balanced solution is recovered.  Exposed as a robustness tool for the
repair designer (an ablation target, not the paper's default path).

Cost scaling and the objective actually solved
----------------------------------------------

For kernel conditioning the Gibbs kernel is built on a *rescaled* cost
``C/σ`` (``σ = max C`` under the default ``scale_cost="max"``), while the
iteration exponent keeps the caller's raw ``λ/(λ+ε)``.  Unfolding the
fixed point, the problem actually solved **in terms of the original
cost** is

    min_π <C, π> + (σ·ε) KL(π | K) + (σ·λ) KL(π1 | µ) + (σ·λ) KL(πᵀ1 | ν)

i.e. both the regularisation strength and the marginal penalty are the
caller's values times ``σ``, and their *ratio* — which controls how much
marginal mismatch the plan may shed — is exactly the requested ``λ : ε``.
Historically this rescaling was silent; it is now explicit via
``scale_cost``, and the applied strength is reported as
``result.effective_epsilon``.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_probability_vector, check_positive_int
from ..exceptions import ConvergenceError, ValidationError
from .sinkhorn import SinkhornResult

__all__ = ["sinkhorn_unbalanced"]


def sinkhorn_unbalanced(cost: np.ndarray, source_weights, target_weights,
                        *, epsilon: float = 1e-2, marginal_relaxation: float = 1.0,
                        max_iter: int = 10_000, tol: float = 1e-9,
                        scale_cost="max",
                        raise_on_failure: bool = True) -> SinkhornResult:
    """KL-relaxed Sinkhorn (unbalanced OT).

    Parameters
    ----------
    marginal_relaxation:
        The penalty weight ``λ``; large values approximate balanced OT,
        small values let the plan shed/ignore mass where the marginals
        disagree with the geometry.
    tol:
        Convergence threshold on the max change of the scaling vectors
        between sweeps (the marginals are *not* matched exactly by
        design, so the balanced residual is not the right criterion).
    scale_cost:
        Divisor ``σ`` applied to the cost before the Gibbs kernel is
        built: ``"max"`` (default — the historical behaviour, making the
        kernel conditioning resolution-independent), ``"none"`` / ``None``
        / ``False`` (use the cost as given, so ``epsilon`` is applied
        verbatim), or a positive number (explicit divisor).  See the
        module docstring for the objective solved under scaling; the
        strength actually applied to the unscaled cost is returned as
        ``result.effective_epsilon = epsilon * σ``.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    if cost.shape != (mu.size, nu.size):
        raise ValidationError(
            f"cost shape {cost.shape} incompatible with marginals "
            f"({mu.size}, {nu.size})")
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if marginal_relaxation <= 0.0:
        raise ValidationError(
            f"marginal_relaxation must be positive, got "
            f"{marginal_relaxation}")
    max_iter = check_positive_int(max_iter, name="max_iter")
    scale = _resolve_cost_scale(scale_cost, cost)

    effective_epsilon = epsilon * scale
    kernel = np.exp(-cost / effective_epsilon)
    exponent = marginal_relaxation / (marginal_relaxation + epsilon)

    u = np.ones_like(mu)
    v = np.ones_like(nu)
    for iteration in range(1, max_iter + 1):
        kv = np.maximum(kernel @ v, 1e-300)
        new_u = (mu / kv) ** exponent
        ktu = np.maximum(kernel.T @ new_u, 1e-300)
        new_v = (nu / ktu) ** exponent
        change = max(float(np.max(np.abs(new_u - u))),
                     float(np.max(np.abs(new_v - v))))
        u, v = new_u, new_v
        if change <= tol:
            plan = (u[:, None] * kernel) * v[None, :]
            return SinkhornResult(plan, iteration, change, True,
                                  effective_epsilon=effective_epsilon)
    plan = (u[:, None] * kernel) * v[None, :]
    if raise_on_failure:
        raise ConvergenceError(
            "unbalanced Sinkhorn did not converge",
            iterations=max_iter, residual=change)
    return SinkhornResult(plan, max_iter, change, False,
                          effective_epsilon=effective_epsilon)


def _resolve_cost_scale(scale_cost, cost: np.ndarray) -> float:
    """The cost divisor ``σ`` selected by the ``scale_cost`` option."""
    if scale_cost is None or scale_cost is False or scale_cost == "none":
        return 1.0
    if scale_cost == "max":
        return max(float(np.max(cost)), 1e-300)
    if isinstance(scale_cost, (int, float)) and not isinstance(
            scale_cost, bool):
        if scale_cost <= 0.0:
            raise ValidationError(
                f"scale_cost must be positive, got {scale_cost}")
        return float(scale_cost)
    raise ValidationError(
        f"unknown scale_cost {scale_cost!r}; expected 'max', 'none', "
        "None, False, or a positive number")
