"""Exact discrete optimal transport via the transportation simplex.

Solves the balanced Kantorovich linear programme

    min_π  <C, π>   s.t.  π 1 = µ,  πᵀ 1 = ν,  π >= 0

with two engines:

* the classical **dense** primal transportation simplex (MODI / u-v
  method) behind the registered ``"simplex"`` solver: north-west-corner
  start, potentials from the spanning-tree basis, pivot along the unique
  tree cycle;
* a **sparse arc-list network simplex** (:func:`network_simplex_arcs`,
  registered as ``"network_simplex"``) that works on an explicit list of
  allowed coupling entries ``(rows, cols, costs)`` instead of a dense
  cost matrix.  It keeps a spanning-tree basis over the bipartite arc
  graph plus an artificial root node, prices reduced costs only on the
  given arcs with block/candidate-list pricing, falls back to Bland's
  rule under degeneracy, and supports **warm starts** from a previous
  basis (:class:`NetworkSimplexState`, returned on every solve and
  accepted via ``init=``).  This is the restricted-LP engine behind the
  ``"screened"`` and ``"multiscale"`` sparse hybrids.

Both are implemented from first principles (no external OT library) and
cross-checked in the test-suite against a ``scipy.linprog`` oracle
(:mod:`repro.ot.lp`); the sparse engine additionally carries a
hypothesis-driven differential suite
(``tests/ot/test_network_simplex_diff.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_probability_vector
from ..exceptions import ConvergenceError, InfeasibleProblemError, ValidationError
from .coupling import TransportPlan

__all__ = ["solve_transport", "transport_simplex", "NetworkSimplexState",
           "network_simplex_arcs", "refine_state"]

_MASS_TOL = 1e-13


def transport_simplex(cost: np.ndarray, source_weights, target_weights, *,
                      max_iter: int | None = None,
                      tol: float = 1e-10) -> np.ndarray:
    """Return the optimal plan matrix for the balanced transport LP.

    Thin shim over :func:`repro.ot.solve` with ``method="simplex"``.

    Parameters
    ----------
    cost:
        ``(n, m)`` ground-cost matrix.
    source_weights, target_weights:
        Marginals; normalised to probability vectors (the LP is invariant to
        common rescaling).
    max_iter:
        Pivot budget; defaults to ``50 * (n + m)`` which is generous for the
        problem sizes this library produces.
    """
    from .solve import solve
    _check_legacy_shapes(cost, source_weights, target_weights)
    return solve(cost, source_weights, target_weights, method="simplex",
                 max_iter=max_iter, tol=tol).matrix


def solve_transport(cost: np.ndarray, source_weights, target_weights,
                    source_support=None, target_support=None, *,
                    max_iter: int | None = None,
                    tol: float = 1e-10) -> TransportPlan:
    """Like :func:`transport_simplex` but returns a :class:`TransportPlan`.

    Thin shim over :func:`repro.ot.solve`; when supports are omitted,
    integer index supports are attached so the plan object remains fully
    usable (conditional rows, projections).
    """
    from .solve import solve
    _check_legacy_shapes(cost, source_weights, target_weights)
    return solve(cost, source_weights, target_weights, method="simplex",
                 source_support=source_support,
                 target_support=target_support,
                 max_iter=max_iter, tol=tol).plan


def _check_legacy_shapes(cost, source_weights, target_weights) -> None:
    """Preserve the historical error contract of these entry points:
    a marginal-size mismatch is an *infeasible problem*, not a plain
    validation failure."""
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    if mu.size != cost.shape[0] or nu.size != cost.shape[1]:
        raise InfeasibleProblemError(
            f"cost shape {cost.shape} incompatible with marginal sizes "
            f"({mu.size}, {nu.size})")


def _transport_simplex_core(cost, source_weights, target_weights, *,
                            max_iter: int | None = None,
                            tol: float = 1e-10) -> tuple[np.ndarray, int]:
    """The actual MODI iteration; returns ``(plan, pivots_performed)``."""
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    n, m = cost.shape
    if mu.size != n or nu.size != m:
        raise InfeasibleProblemError(
            f"cost shape {cost.shape} incompatible with marginal sizes "
            f"({mu.size}, {nu.size})")
    if max_iter is None:
        max_iter = 50 * (n + m)

    plan, basis = _north_west_start(mu, nu)
    _complete_degenerate_basis(basis, n, m)

    for pivots in range(max_iter):
        potentials_u, potentials_v = _solve_potentials(cost, basis, n, m)
        reduced = cost - potentials_u[:, None] - potentials_v[None, :]
        # Basic cells have zero reduced cost by construction; mask them so
        # numerical noise cannot re-select them.
        for (bi, bj) in basis:
            reduced[bi, bj] = 0.0
        enter = np.unravel_index(np.argmin(reduced), reduced.shape)
        if reduced[enter] >= -tol:
            return plan, pivots
        _pivot(plan, basis, enter, n, m)
    raise ConvergenceError(
        "transportation simplex exceeded its pivot budget",
        iterations=max_iter)


# -- internals --------------------------------------------------------------


def _north_west_start(mu: np.ndarray,
                      nu: np.ndarray) -> tuple[np.ndarray, set]:
    """North-west-corner initial BFS plus the set of basic cells."""
    n, m = mu.size, nu.size
    plan = np.zeros((n, m))
    basis: set[tuple[int, int]] = set()
    remaining_mu = mu.copy()
    remaining_nu = nu.copy()
    i = j = 0
    while i < n and j < m:
        mass = min(remaining_mu[i], remaining_nu[j])
        plan[i, j] = mass
        basis.add((i, j))
        remaining_mu[i] -= mass
        remaining_nu[j] -= mass
        row_done = remaining_mu[i] <= _MASS_TOL
        col_done = remaining_nu[j] <= _MASS_TOL
        if row_done and col_done:
            # Degenerate step: keep the basis a tree by moving along exactly
            # one axis; the next cell enters with zero mass.
            if i + 1 < n:
                i += 1
            else:
                j += 1
        elif row_done:
            i += 1
        else:
            j += 1
    return plan, basis


def _complete_degenerate_basis(basis: set, n: int, m: int) -> None:
    """Ensure the basis has exactly ``n + m - 1`` cells and spans all nodes.

    The NW-corner construction above already yields a spanning tree, but we
    defensively patch any missing coverage with zero cells (can occur for
    marginals containing exact zeros).
    """
    target_size = n + m - 1
    if len(basis) == target_size:
        return
    rows_seen = {i for i, _ in basis}
    cols_seen = {j for _, j in basis}
    for i in range(n):
        if len(basis) >= target_size:
            break
        if i not in rows_seen:
            basis.add((i, next(iter(cols_seen)) if cols_seen else 0))
            rows_seen.add(i)
    for j in range(m):
        if len(basis) >= target_size:
            break
        if j not in cols_seen:
            basis.add((next(iter(rows_seen)) if rows_seen else 0, j))
            cols_seen.add(j)
    # Top up with arbitrary non-basic cells that do not close a cycle.
    i = 0
    while len(basis) < target_size:
        for j in range(m):
            if (i, j) not in basis and not _would_close_cycle(basis, (i, j), n, m):
                basis.add((i, j))
                break
        i = (i + 1) % n


def _would_close_cycle(basis: set, cell: tuple[int, int], n: int,
                       m: int) -> bool:
    """True if adding ``cell`` connects two already-connected components."""
    adjacency = _adjacency(basis, n, m)
    start, goal = ("r", cell[0]), ("c", cell[1])
    return _path_exists(adjacency, start, goal)


def _adjacency(basis: set, n: int, m: int) -> dict:
    adjacency: dict = {("r", i): [] for i in range(n)}
    adjacency.update({("c", j): [] for j in range(m)})
    for (i, j) in basis:
        adjacency[("r", i)].append(("c", j))
        adjacency[("c", j)].append(("r", i))
    return adjacency


def _path_exists(adjacency: dict, start, goal) -> bool:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return False


def _solve_potentials(cost: np.ndarray, basis: set, n: int,
                      m: int) -> tuple[np.ndarray, np.ndarray]:
    """Node potentials ``u, v`` with ``u_i + v_j = C_ij`` on basic cells.

    The basis is a spanning tree, so fixing ``u_0 = 0`` and propagating by
    breadth-first search determines every potential uniquely.
    """
    potentials_u = np.full(n, np.nan)
    potentials_v = np.full(m, np.nan)
    adjacency = _adjacency(basis, n, m)
    potentials_u[0] = 0.0
    stack = [("r", 0)]
    while stack:
        kind, index = stack.pop()
        for (nkind, nindex) in adjacency[(kind, index)]:
            if nkind == "c" and np.isnan(potentials_v[nindex]):
                potentials_v[nindex] = cost[index, nindex] - potentials_u[index]
                stack.append(("c", nindex))
            elif nkind == "r" and np.isnan(potentials_u[nindex]):
                potentials_u[nindex] = cost[nindex, index] - potentials_v[index]
                stack.append(("r", nindex))
    # Disconnected components (possible only with a patched degenerate
    # basis) get zero potentials; their cells price out on the next pivot.
    np.nan_to_num(potentials_u, copy=False)
    np.nan_to_num(potentials_v, copy=False)
    return potentials_u, potentials_v


def _find_cycle(basis: set, enter: tuple[int, int], n: int,
                m: int) -> list[tuple[int, int]]:
    """Alternating cycle created by the entering cell in the basis tree.

    Returns the cycle as a list of cells starting with ``enter``; even
    positions gain mass, odd positions lose mass.
    """
    adjacency = _adjacency(basis, n, m)
    start, goal = ("c", enter[1]), ("r", enter[0])
    # Depth-first search for the unique tree path goal -> start.
    parents = {start: None}
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            break
        for neighbour in adjacency[node]:
            if neighbour not in parents:
                parents[neighbour] = node
                stack.append(neighbour)
    if goal not in parents:
        raise ConvergenceError("basis lost connectivity during pivoting")

    path_nodes = [goal]
    while parents[path_nodes[-1]] is not None:
        path_nodes.append(parents[path_nodes[-1]])
    # path_nodes: row(enter) -> ... -> col(enter); consecutive nodes are the
    # basic cells of the cycle.
    cycle = [enter]
    for a, b in zip(path_nodes, path_nodes[1:]):
        if a[0] == "r":
            cycle.append((a[1], b[1]))
        else:
            cycle.append((b[1], a[1]))
    return cycle


def _pivot(plan: np.ndarray, basis: set, enter: tuple[int, int], n: int,
           m: int) -> None:
    """Execute one simplex pivot along the cycle of ``enter``."""
    cycle = _find_cycle(basis, enter, n, m)
    minus_cells = cycle[1::2]
    theta = min(plan[c] for c in minus_cells)
    leave = min((c for c in minus_cells if plan[c] <= theta + _MASS_TOL),
                key=lambda c: plan[c])
    for position, cell in enumerate(cycle):
        if position % 2 == 0:
            plan[cell] += theta
        else:
            plan[cell] -= theta
            if plan[cell] < 0.0:
                plan[cell] = 0.0
    basis.add(enter)
    basis.discard(leave)


# -- sparse arc-list network simplex ----------------------------------------
#
# Bipartite min-cost-flow formulation: source node i (supply mu_i) for
# each row, target node n + j (demand nu_j) for each column, plus one
# artificial *root* node.  Real arcs are exactly the caller's (row, col)
# support entries; every non-root node additionally owns one artificial
# big-M arc to/from the root (source -> root, root -> target), which
# makes any spanning forest completable to a basis and turns
# infeasibility of the restricted support into positive artificial flow
# at optimality.

#: Consecutive degenerate (zero-length) pivots tolerated under the
#: default block pricing before switching to Bland's rule, which cannot
#: cycle.  A non-degenerate pivot switches back.
_BLAND_TRIGGER = 32

#: Artificial flow above this at optimality means the restricted support
#: admits no coupling of the marginals (masses are probabilities, so any
#: genuinely stranded mass is far larger).
_ARTIFICIAL_FLOW_TOL = 1e-12

#: Flows this far below zero during warm-start completion mark basis
#: arcs that the new marginals cannot support; they are dropped and the
#: forest is rebuilt.
_NEGATIVE_FLOW_TOL = -1e-15


@dataclass(eq=False, repr=False)
class NetworkSimplexState:
    """A network-simplex basis, transferable between solves.

    Stores the *real* (non-artificial) tree arcs as ``(row, col)``
    node-index pairs — not arc-list positions — so a state captured on
    one arc list warm-starts a solve on a different arc list over the
    same (or a refined) node set: pairs missing from the new list are
    dropped and the forest is re-completed.  The node potentials are the
    solver's internal convention (``reduced cost = c - pi[row node] +
    pi[col node]``); they are diagnostic — a warm start recomputes exact
    potentials from the transferred tree.
    """

    tree_rows: np.ndarray
    tree_cols: np.ndarray
    potentials_source: np.ndarray
    potentials_target: np.ndarray

    def __post_init__(self):
        self.tree_rows = np.asarray(self.tree_rows, dtype=np.intp)
        self.tree_cols = np.asarray(self.tree_cols, dtype=np.intp)
        self.potentials_source = np.asarray(self.potentials_source,
                                            dtype=float)
        self.potentials_target = np.asarray(self.potentials_target,
                                            dtype=float)
        if self.tree_rows.shape != self.tree_cols.shape:
            raise ValidationError(
                "NetworkSimplexState tree_rows/tree_cols must be parallel "
                f"arrays, got {self.tree_rows.shape} vs "
                f"{self.tree_cols.shape}")

    @property
    def shape(self) -> tuple:
        """The ``(n, m)`` problem shape this state belongs to."""
        return (self.potentials_source.size, self.potentials_target.size)

    def __repr__(self):  # compact: states travel inside OTResult extras
        n, m = self.shape
        return (f"NetworkSimplexState(shape=({n}, {m}), "
                f"tree_arcs={self.tree_rows.size})")

    def __eq__(self, other):
        if not isinstance(other, NetworkSimplexState):
            return NotImplemented
        return (np.array_equal(self.tree_rows, other.tree_rows)
                and np.array_equal(self.tree_cols, other.tree_cols)
                and np.array_equal(self.potentials_source,
                                   other.potentials_source)
                and np.array_equal(self.potentials_target,
                                   other.potentials_target))


@dataclass(frozen=True)
class ArcFlowSolution:
    """Raw outcome of :func:`network_simplex_arcs`.

    ``flows`` is aligned with the *caller's* arc list (duplicate
    ``(row, col)`` entries carry their joint flow on the cheapest
    duplicate).  ``state`` warm-starts a later solve via ``init=``.
    """

    flows: np.ndarray
    value: float
    state: NetworkSimplexState
    pivots: int
    degenerate_pivots: int = 0
    bland_pivots: int = 0
    warm_started: bool = False
    extras: dict = field(default_factory=dict)


def network_simplex_arcs(rows, cols, costs, source_weights, target_weights,
                         *, init: NetworkSimplexState | None = None,
                         max_iter: int | None = None, tol: float = 1e-10,
                         block_size: int | None = None) -> ArcFlowSolution:
    """Exact balanced OT restricted to an explicit sparse arc list.

    Solves ``min sum_a c_a f_a`` over flows supported on the given
    ``(rows, cols)`` coupling entries only, with marginals
    ``source_weights`` / ``target_weights`` (normalised to probability
    vectors).  Raises :class:`~repro.exceptions.InfeasibleProblemError`
    when the arc list admits no coupling, and
    :class:`~repro.exceptions.ConvergenceError` on pivot-budget
    exhaustion.

    Parameters
    ----------
    rows, cols, costs:
        Parallel arrays: the allowed entries and their ground costs.
        Duplicate pairs are legal; the cheapest duplicate is used.
    init:
        Optional :class:`NetworkSimplexState` from a previous solve (any
        arc list over the same node sets).  Its tree arcs seed the
        starting basis; missing pairs are dropped, gaps are filled with
        north-west-corner staircase arcs present in the arc list and,
        last, artificial root arcs.
    max_iter:
        Pivot budget; defaults to ``max(2000, 20 * (n + m))``.
    tol:
        Reduced-cost optimality tolerance, relative to the largest
        absolute arc cost.
    block_size:
        Candidate-list length for block pricing; default
        ``max(64, sqrt(#arcs))``.
    """
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    rows = np.asarray(rows, dtype=np.intp).ravel()
    cols = np.asarray(cols, dtype=np.intp).ravel()
    costs = np.asarray(costs, dtype=float).ravel()
    if not (rows.size == cols.size == costs.size):
        raise ValidationError(
            f"rows/cols/costs must be parallel arrays, got sizes "
            f"{rows.size}/{cols.size}/{costs.size}")
    if rows.size == 0:
        raise ValidationError("the arc list must contain at least one arc")
    n, m = mu.size, nu.size
    if rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= m:
        raise ValidationError(
            f"arc indices out of range for marginals of sizes ({n}, {m})")
    if not np.all(np.isfinite(costs)):
        raise ValidationError("arc costs must be finite")

    # Deduplicate (row, col) pairs keeping the cheapest arc; the kept
    # arcs come out sorted by (row, col), which fixes a deterministic
    # index order for Bland's rule and for all tie-breaking.
    key = rows.astype(np.int64) * np.int64(m) + cols.astype(np.int64)
    order = np.lexsort((costs, key))
    key_sorted = key[order]
    first = np.ones(key_sorted.size, dtype=bool)
    first[1:] = key_sorted[1:] != key_sorted[:-1]
    rep = order[first]            # original positions of the kept arcs
    arc_keys = key_sorted[first]  # sorted unique keys, parallel to ids
    engine = _ArcSimplex(rows[rep], cols[rep], costs[rep], mu, nu,
                         arc_keys=arc_keys, tol=tol, block_size=block_size)
    engine.start(init)
    pivots, degenerate, bland = engine.run(
        max_iter if max_iter is not None else max(2000, 20 * (n + m)))
    engine.check_feasible()
    flows = np.zeros(rows.size)
    flows[rep] = engine.real_flows()
    return ArcFlowSolution(flows=flows, value=engine.objective(),
                           state=engine.state(), pivots=pivots,
                           degenerate_pivots=degenerate,
                           bland_pivots=bland,
                           warm_started=engine.warm_started)


class _ArcSimplex:
    """The pivoting engine; one instance per solve, deduped arcs in."""

    def __init__(self, arc_rows, arc_cols, arc_costs, mu, nu, *, arc_keys,
                 tol, block_size):
        self.n = n = mu.size
        self.m = m = nu.size
        self.mu, self.nu = mu, nu
        self.root = n + m
        self.n_nodes = n + m + 1
        self.A = A = arc_rows.size
        self.arc_rows = arc_rows
        self.arc_cols = arc_cols
        self.arc_keys = arc_keys
        # Both the big-M cost and the pricing tolerance scale with the
        # arc costs, so the engine is invariant under cost rescaling all
        # the way down to denormal magnitudes: an absolute floor would
        # absorb tiny costs into the root potentials and stop pricing
        # from ever seeing them.
        cmax = float(np.abs(arc_costs).max())
        self.big = (n + m + 1) * cmax if cmax > 0.0 else 1.0
        # Arc ids: real arcs 0..A-1, artificial arc of node v at A + v.
        art_nodes = np.arange(n + m)
        art_tails = np.where(art_nodes < n, art_nodes, self.root)
        art_heads = np.where(art_nodes < n, self.root, art_nodes)
        self.tails = np.concatenate([arc_rows,
                                     art_tails]).astype(np.intp)
        self.heads = np.concatenate([arc_cols + n,
                                     art_heads]).astype(np.intp)
        self.costs = np.concatenate([arc_costs,
                                     np.full(n + m, self.big)])
        self.balance = np.concatenate([mu, -nu, [0.0]])
        self.price_tol = tol * cmax if cmax > 0.0 else tol
        self.block = int(block_size) if block_size else max(
            64, int(np.sqrt(A)) + 1)
        self.flow = np.zeros(A + n + m)
        self.pi = np.zeros(self.n_nodes)
        self.parent = np.full(self.n_nodes, -1, dtype=np.intp)
        self.parent_arc = np.full(self.n_nodes, -1, dtype=np.intp)
        self.depth = np.zeros(self.n_nodes, dtype=np.intp)
        self.children: list = [set() for _ in range(self.n_nodes)]
        self.in_tree = np.zeros(A + n + m, dtype=bool)
        self.warm_started = False

    # -- basis construction --------------------------------------------

    def _lookup_arcs(self, pair_rows, pair_cols) -> np.ndarray:
        """Arc ids of the (row, col) pairs present in the arc list."""
        keys = (np.asarray(pair_rows, dtype=np.int64) * self.m
                + np.asarray(pair_cols, dtype=np.int64))
        pos = np.searchsorted(self.arc_keys, keys)
        pos = np.minimum(pos, self.A - 1)
        valid = self.arc_keys[pos] == keys
        return pos[valid]

    def start(self, init: NetworkSimplexState | None) -> None:
        """Build the initial basis: warm arcs, then staircase, then root.

        One mechanism covers the cold and warm cases: a priority-ordered
        arc *forest* is completed to a spanning tree with artificial
        root arcs, flows follow by leaf elimination, and any real arc
        forced to negative flow is dropped and the forest rebuilt (each
        round removes at least one real arc, so this terminates — in the
        worst case at the all-artificial basis).
        """
        from .onedim import _staircase_walk

        preferred = []
        if init is not None:
            if not isinstance(init, NetworkSimplexState):
                raise ValidationError(
                    "init must be a NetworkSimplexState (from a previous "
                    f"solve), got {type(init).__name__}")
            if init.shape != (self.n, self.m):
                raise ValidationError(
                    f"init state has shape {init.shape}, expected "
                    f"({self.n}, {self.m})")
            if init.tree_rows.size:
                if (init.tree_rows.min() < 0
                        or init.tree_rows.max() >= self.n
                        or init.tree_cols.min() < 0
                        or init.tree_cols.max() >= self.m):
                    raise ValidationError(
                        "init state tree arcs out of range for shape "
                        f"({self.n}, {self.m})")
                preferred.append(self._lookup_arcs(init.tree_rows,
                                                   init.tree_cols))
                self.warm_started = True
        st_rows, st_cols, _ = _staircase_walk(self.mu, self.nu)
        preferred.append(self._lookup_arcs(st_rows, st_cols))
        forest = np.concatenate(preferred) if preferred else \
            np.empty(0, dtype=np.intp)
        while True:
            tree_arcs = self._complete_forest(forest)
            self._build_tree(tree_arcs)
            self._eliminate_flows()
            negative = [a for a in tree_arcs
                        if a < self.A and self.flow[a] < _NEGATIVE_FLOW_TOL]
            if not negative:
                break
            dropped = set(negative)
            forest = np.array([a for a in tree_arcs
                               if a < self.A and a not in dropped],
                              dtype=np.intp)

    def _complete_forest(self, forest_ids) -> list:
        """Union-find the forest into a spanning tree rooted via big-M arcs.

        Detached components attach to the root through the artificial
        arc of a node chosen by the component's net balance, so the
        attachment flow (the balance itself) is always non-negative: a
        positive-balance component holds a source node and exports via
        ``source -> root``; a negative one holds a target and imports
        via ``root -> target``.
        """
        parent = np.arange(self.n_nodes)

        def find(x):
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        tree_arcs = []
        for a in forest_ids:
            t, h = find(self.tails[a]), find(self.heads[a])
            if t != h:
                parent[t] = h
                tree_arcs.append(int(a))
        comp = np.fromiter((find(v) for v in range(self.n_nodes)),
                           dtype=np.intp, count=self.n_nodes)
        balance = np.zeros(self.n_nodes)
        np.add.at(balance, comp, self.balance)
        root_comp = comp[self.root]
        # Best attachment node per detached component: a source when the
        # component exports mass, a target when it imports — the
        # attachment arc's leaf-elimination flow is then the component
        # balance itself, never negative.
        attach: dict = {}
        for v in range(self.n + self.m):
            c = comp[v]
            if c == root_comp:
                continue
            right_type = (v < self.n) == (balance[c] > 0.0)
            if c not in attach or (right_type and not attach[c][1]):
                attach[c] = (v, right_type)
        for v, _ in attach.values():
            tree_arcs.append(self.A + v)
        return tree_arcs

    def _build_tree(self, tree_arcs) -> None:
        """Parent/depth/children/potentials from the spanning arc set."""
        adjacency: list = [[] for _ in range(self.n_nodes)]
        for a in tree_arcs:
            t, h = self.tails[a], self.heads[a]
            adjacency[t].append((h, a))
            adjacency[h].append((t, a))
        self.in_tree[:] = False
        self.in_tree[np.asarray(tree_arcs, dtype=np.intp)] = True
        parent, parent_arc = self.parent, self.parent_arc
        depth, pi, children = self.depth, self.pi, self.children
        parent[:] = -1
        parent_arc[:] = -1
        depth[:] = 0
        pi[:] = 0.0
        for c in children:
            c.clear()
        order = [self.root]
        seen = np.zeros(self.n_nodes, dtype=bool)
        seen[self.root] = True
        stack = [self.root]
        while stack:
            v = stack.pop()
            for (w, a) in adjacency[v]:
                if seen[w]:
                    continue
                seen[w] = True
                parent[w] = v
                parent_arc[w] = a
                depth[w] = depth[v] + 1
                children[v].add(w)
                if self.tails[a] == v:
                    pi[w] = pi[v] - self.costs[a]
                else:
                    pi[w] = pi[v] + self.costs[a]
                order.append(w)
                stack.append(w)
        if len(order) != self.n_nodes:
            raise ConvergenceError(
                "network simplex basis lost connectivity")
        self._order = order

    def _eliminate_flows(self) -> None:
        """Leaf elimination: tree-arc flows from the subtree balances."""
        self.flow[:] = 0.0
        excess = self.balance.copy()
        tails, flow, parent, parent_arc = (self.tails, self.flow,
                                           self.parent, self.parent_arc)
        for v in reversed(self._order[1:]):
            a = parent_arc[v]
            if tails[a] == v:
                flow[a] = excess[v]
            else:
                flow[a] = -excess[v]
            excess[parent[v]] += excess[v]

    # -- pricing --------------------------------------------------------

    def _refresh_candidates(self):
        """Full reduced-cost sweep over the real arcs; most-negative block."""
        rc = (self.costs[:self.A] - self.pi[self.tails[:self.A]]
              + self.pi[self.heads[:self.A]])
        negative = np.flatnonzero(rc < -self.price_tol)
        if negative.size == 0:
            return None
        if negative.size > self.block:
            keep = np.argpartition(rc[negative], self.block)[:self.block]
            negative = negative[keep]
        return negative

    def _first_negative(self):
        """Bland's rule: lowest-index real arc with negative reduced cost."""
        chunk = 8192
        for start in range(0, self.A, chunk):
            stop = min(start + chunk, self.A)
            rc = (self.costs[start:stop]
                  - self.pi[self.tails[start:stop]]
                  + self.pi[self.heads[start:stop]])
            hits = np.flatnonzero(rc < -self.price_tol)
            for j in hits:
                a = start + int(j)
                if not self.in_tree[a]:
                    return a
        return None

    # -- pivoting -------------------------------------------------------

    def run(self, max_iter: int) -> tuple:
        """Pivot to optimality; returns (pivots, degenerate, bland)."""
        pivots = degenerate = bland_pivots = 0
        bland_mode = False
        streak = 0
        candidates = None
        while True:
            enter = None
            if bland_mode:
                enter = self._first_negative()
            else:
                while True:
                    if candidates is None:
                        candidates = self._refresh_candidates()
                        if candidates is None:
                            break
                    rc = (self.costs[candidates]
                          - self.pi[self.tails[candidates]]
                          + self.pi[self.heads[candidates]])
                    j = int(np.argmin(rc))
                    if rc[j] < -self.price_tol \
                            and not self.in_tree[candidates[j]]:
                        enter = int(candidates[j])
                        keep = rc < -self.price_tol
                        keep[j] = False
                        candidates = (candidates[keep] if keep.any()
                                      else None)
                        break
                    candidates = None
            if enter is None:
                return pivots, degenerate, bland_pivots
            if pivots >= max_iter:
                raise ConvergenceError(
                    "network simplex exceeded its pivot budget",
                    iterations=max_iter)
            theta = self._pivot(enter)
            pivots += 1
            if bland_mode:
                bland_pivots += 1
            if theta <= _MASS_TOL:
                degenerate += 1
                streak += 1
                if streak >= _BLAND_TRIGGER:
                    bland_mode = True
            else:
                streak = 0
                if bland_mode:
                    bland_mode = False
                    candidates = None

    def _pivot(self, enter: int) -> float:
        """One primal pivot: push along the cycle of ``enter``; re-hang."""
        tails, heads, flow = self.tails, self.heads, self.flow
        parent, parent_arc, depth = (self.parent, self.parent_arc,
                                     self.depth)
        t, h = tails[enter], heads[enter]
        # Walk both endpoints up to the lowest common ancestor, recording
        # (arc, child endpoint) per step.  Cycle orientation is the
        # entering arc's direction t -> h, so on h's side (traversed
        # child -> parent, along the cycle) an arc gains flow when it
        # points child -> parent; on t's side (traversed against the
        # cycle) when it points parent -> child.
        t_arcs: list = []
        t_nodes: list = []
        h_arcs: list = []
        h_nodes: list = []
        a_node, b_node = t, h
        while a_node != b_node:
            if depth[a_node] >= depth[b_node]:
                t_arcs.append(parent_arc[a_node])
                t_nodes.append(a_node)
                a_node = parent[a_node]
            else:
                h_arcs.append(parent_arc[b_node])
                h_nodes.append(b_node)
                b_node = parent[b_node]
        theta = np.inf
        leave = -1
        leave_node = -1
        leave_on_t_side = False
        for a, x in zip(h_arcs, h_nodes):
            if tails[a] != x:        # arc points parent -> child: loses
                f = flow[a]
                if f < theta or (f == theta and a < leave):
                    theta, leave, leave_node = f, a, x
                    leave_on_t_side = False
        for a, x in zip(t_arcs, t_nodes):
            if tails[a] == x:        # arc points child -> parent: loses
                f = flow[a]
                if f < theta or (f == theta and a < leave):
                    theta, leave, leave_node = f, a, x
                    leave_on_t_side = True
        if leave < 0:
            raise ConvergenceError(
                "network simplex found an unbounded pivot cycle")
        theta = max(theta, 0.0)
        flow[enter] += theta
        for a, x in zip(h_arcs, h_nodes):
            if tails[a] == x:
                flow[a] += theta
            else:
                flow[a] -= theta
                if flow[a] < 0.0:
                    flow[a] = 0.0
        for a, x in zip(t_arcs, t_nodes):
            if tails[a] == x:
                flow[a] -= theta
                if flow[a] < 0.0:
                    flow[a] = 0.0
            else:
                flow[a] += theta
        # Re-hang the subtree cut off by the leaving arc from the
        # entering arc's endpoint inside it.
        self.in_tree[leave] = False
        self.in_tree[enter] = True
        q = t if leave_on_t_side else h
        other = h if leave_on_t_side else t
        path_nodes = [q]
        path_arcs = []
        v = q
        while v != leave_node:
            path_arcs.append(parent_arc[v])
            v = parent[v]
            path_nodes.append(v)
        self.children[parent[leave_node]].discard(leave_node)
        for i in range(len(path_arcs)):
            child, new_parent = path_nodes[i + 1], path_nodes[i]
            self.children[child].discard(new_parent)
            self.children[new_parent].add(child)
            parent[child] = new_parent
            parent_arc[child] = path_arcs[i]
        parent[q] = other
        parent_arc[q] = enter
        self.children[other].add(q)
        # Exact depth/potential recomputation over the re-hung subtree.
        pi, costs = self.pi, self.costs
        stack = [q]
        while stack:
            v = stack.pop()
            p = parent[v]
            a = parent_arc[v]
            depth[v] = depth[p] + 1
            if tails[a] == p:
                pi[v] = pi[p] - costs[a]
            else:
                pi[v] = pi[p] + costs[a]
            stack.extend(self.children[v])
        return float(theta)

    # -- results --------------------------------------------------------

    def check_feasible(self) -> None:
        art = self.flow[self.A:]
        worst = float(art.max()) if art.size else 0.0
        if worst > _ARTIFICIAL_FLOW_TOL:
            raise InfeasibleProblemError(
                "the arc list admits no coupling of the marginals "
                f"(stranded mass {worst:.3e}); widen the support")

    def real_flows(self) -> np.ndarray:
        return np.clip(self.flow[:self.A], 0.0, None)

    def objective(self) -> float:
        return float(np.dot(self.costs[:self.A], self.real_flows()))

    def state(self) -> NetworkSimplexState:
        ids = np.flatnonzero(self.in_tree[:self.A])
        return NetworkSimplexState(
            tree_rows=self.arc_rows[ids].copy(),
            tree_cols=self.arc_cols[ids].copy(),
            potentials_source=self.pi[:self.n].copy(),
            potentials_target=self.pi[self.n:self.n + self.m].copy())


def _bin_representatives(bins: np.ndarray, weights: np.ndarray,
                         n_coarse: int) -> np.ndarray:
    """Per coarse bin, the fine index carrying the most marginal mass.

    Deterministic: weight ties resolve to the largest fine index (stable
    lexsort order).  Bins with no fine member keep ``-1`` — a state arc
    touching one cannot be mapped and is dropped by the arc lookup.
    """
    bins = np.asarray(bins, dtype=np.intp)
    reps = np.full(n_coarse, -1, dtype=np.intp)
    order = np.lexsort((np.asarray(weights, dtype=float), bins))
    last = np.ones(order.size, dtype=bool)
    last[:-1] = bins[order][1:] != bins[order][:-1]
    winners = order[last]
    reps[bins[winners]] = winners
    return reps


def refine_state(state: NetworkSimplexState, source_bins, target_bins,
                 source_weights, target_weights) -> NetworkSimplexState:
    """Map a coarse-level basis onto the fine grid it was binned from.

    Each coarse node is represented by its heaviest fine member, so a
    coarse tree arc ``(I, J)`` becomes the fine arc between the two
    representatives; the coarse potentials broadcast over each bin.  The
    result warm-starts the fine restricted solve of the multiscale
    solver (``init=``): pairs absent from the fine arc list are dropped
    there, and flows are recomputed from the fine marginals.
    """
    source_bins = np.asarray(source_bins, dtype=np.intp)
    target_bins = np.asarray(target_bins, dtype=np.intp)
    n_c, m_c = state.shape
    if source_bins.size and (source_bins.min() < 0
                             or source_bins.max() >= n_c):
        raise ValidationError(
            f"source_bins out of range for a coarse state of shape "
            f"({n_c}, {m_c})")
    if target_bins.size and (target_bins.min() < 0
                             or target_bins.max() >= m_c):
        raise ValidationError(
            f"target_bins out of range for a coarse state of shape "
            f"({n_c}, {m_c})")
    mu = np.asarray(source_weights, dtype=float)
    nu = np.asarray(target_weights, dtype=float)
    reps_source = _bin_representatives(source_bins, mu, n_c)
    reps_target = _bin_representatives(target_bins, nu, m_c)
    fine_rows = reps_source[state.tree_rows]
    fine_cols = reps_target[state.tree_cols]
    mapped = (fine_rows >= 0) & (fine_cols >= 0)
    return NetworkSimplexState(
        tree_rows=fine_rows[mapped], tree_cols=fine_cols[mapped],
        potentials_source=state.potentials_source[source_bins],
        potentials_target=state.potentials_target[target_bins])


# -- registered solver -------------------------------------------------------


def _arc_cost_entries(problem, rows: np.ndarray,
                      cols: np.ndarray) -> np.ndarray:
    """Ground-cost values at the ``(rows, cols)`` support entries.

    Metric-family costs are evaluated pointwise on the supports so the
    dense cost matrix is never built; explicit and callable costs index
    the (cached) matrix.
    """
    from .cost import pointwise_cost

    metric = problem.metric
    if metric is not None:
        return pointwise_cost(problem.source_support[rows],
                              problem.target_support[cols],
                              metric=metric, p=problem.p)
    return problem.cost_matrix()[rows, cols]


def _register_network_simplex() -> None:
    """Register the ``"network_simplex"`` solver.

    Deferred into a function called at the bottom of the module so the
    registry import sits next to its single use; the module itself is
    imported by :mod:`repro.ot.solve` before the built-ins register.
    """
    from scipy import sparse

    from .coupling import SPARSE_DENSITY_THRESHOLD
    from .onedim import north_west_corner_support
    from .problem import OTProblem, OTResult, result_from_matrix
    from .registry import register_solver

    @register_solver(
        "network_simplex", aliases=("netsimplex",),
        description="sparse arc-list network simplex: exact restricted "
                    "solve on a support_mask (or the full product) with "
                    "warm-startable spanning-tree basis — the native "
                    "engine behind the screened/multiscale restricted "
                    "solves")
    def _solve_network_simplex(problem: OTProblem, *,
                               max_iter: int | None = None,
                               tol: float = 1e-10,
                               init: NetworkSimplexState | None = None,
                               block_size: int | None = None) -> OTResult:
        """Exact OT restricted to ``problem.support_mask`` (hard, like
        ``"lp"``): on an infeasible mask the north-west-corner staircase
        is unioned in and the solve retried, reported via
        ``extras["mask_widened"]``.  Without a mask the full product
        support is solved.  The returned basis travels in
        ``extras["state"]`` and a previous one warm-starts via
        ``init=``."""
        mu = problem.source_weights
        nu = problem.target_weights
        n, m = problem.shape
        if problem.support_mask is None:
            rows, cols = np.nonzero(np.ones((n, m), dtype=bool))
            masked = False
        else:
            rows, cols = np.nonzero(problem.support_mask)
            masked = True
        costs = _arc_cost_entries(problem, rows, cols)
        widened = False
        try:
            outcome = network_simplex_arcs(rows, cols, costs, mu, nu,
                                           init=init, max_iter=max_iter,
                                           tol=tol, block_size=block_size)
        except InfeasibleProblemError:
            if not masked:
                raise
            nw_rows, nw_cols = north_west_corner_support(mu, nu)
            mask = problem.support_mask.copy()
            mask[nw_rows, nw_cols] = True
            rows, cols = np.nonzero(mask)
            costs = _arc_cost_entries(problem, rows, cols)
            outcome = network_simplex_arcs(rows, cols, costs, mu, nu,
                                           init=init, max_iter=max_iter,
                                           tol=tol, block_size=block_size)
            widened = True
        matrix = sparse.csr_array((outcome.flows, (rows, cols)),
                                  shape=(n, m))
        matrix.eliminate_zeros()
        if matrix.nnz / float(n * m) > SPARSE_DENSITY_THRESHOLD:
            matrix = matrix.toarray()
        extras = {"support_size": int(rows.size),
                  "support_density": float(rows.size / (n * m)),
                  "pivots": outcome.pivots,
                  "degenerate_pivots": outcome.degenerate_pivots,
                  "bland_pivots": outcome.bland_pivots,
                  "warm_started": outcome.warm_started,
                  "state": outcome.state}
        if masked:
            extras["mask_widened"] = widened
        return result_from_matrix(problem, matrix, value=outcome.value,
                                  converged=True, n_iter=outcome.pivots,
                                  extras=extras)


_register_network_simplex()
