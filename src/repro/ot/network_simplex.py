"""Exact discrete optimal transport via the transportation simplex.

Solves the balanced Kantorovich linear programme

    min_π  <C, π>   s.t.  π 1 = µ,  πᵀ 1 = ν,  π >= 0

with the classical primal transportation simplex (MODI / u-v method):

1. build an initial basic feasible solution with the north-west-corner rule,
2. compute node potentials from the spanning-tree basis,
3. price out non-basic cells via reduced costs, pivot along the unique
   tree cycle, and repeat until no negative reduced cost remains.

This is the ``O(n_Q^3 log n_Q)``-class exact solver the paper cites for
unregularised OT.  It is implemented from first principles (no external OT
library) and cross-checked in the test-suite against a ``scipy.linprog``
oracle (:mod:`repro.ot.lp`).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_probability_vector
from ..exceptions import ConvergenceError, InfeasibleProblemError, ValidationError
from .coupling import TransportPlan

__all__ = ["solve_transport", "transport_simplex"]

_MASS_TOL = 1e-13


def transport_simplex(cost: np.ndarray, source_weights, target_weights, *,
                      max_iter: int | None = None,
                      tol: float = 1e-10) -> np.ndarray:
    """Return the optimal plan matrix for the balanced transport LP.

    Thin shim over :func:`repro.ot.solve` with ``method="simplex"``.

    Parameters
    ----------
    cost:
        ``(n, m)`` ground-cost matrix.
    source_weights, target_weights:
        Marginals; normalised to probability vectors (the LP is invariant to
        common rescaling).
    max_iter:
        Pivot budget; defaults to ``50 * (n + m)`` which is generous for the
        problem sizes this library produces.
    """
    from .solve import solve
    _check_legacy_shapes(cost, source_weights, target_weights)
    return solve(cost, source_weights, target_weights, method="simplex",
                 max_iter=max_iter, tol=tol).matrix


def solve_transport(cost: np.ndarray, source_weights, target_weights,
                    source_support=None, target_support=None, *,
                    max_iter: int | None = None,
                    tol: float = 1e-10) -> TransportPlan:
    """Like :func:`transport_simplex` but returns a :class:`TransportPlan`.

    Thin shim over :func:`repro.ot.solve`; when supports are omitted,
    integer index supports are attached so the plan object remains fully
    usable (conditional rows, projections).
    """
    from .solve import solve
    _check_legacy_shapes(cost, source_weights, target_weights)
    return solve(cost, source_weights, target_weights, method="simplex",
                 source_support=source_support,
                 target_support=target_support,
                 max_iter=max_iter, tol=tol).plan


def _check_legacy_shapes(cost, source_weights, target_weights) -> None:
    """Preserve the historical error contract of these entry points:
    a marginal-size mismatch is an *infeasible problem*, not a plain
    validation failure."""
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    if mu.size != cost.shape[0] or nu.size != cost.shape[1]:
        raise InfeasibleProblemError(
            f"cost shape {cost.shape} incompatible with marginal sizes "
            f"({mu.size}, {nu.size})")


def _transport_simplex_core(cost, source_weights, target_weights, *,
                            max_iter: int | None = None,
                            tol: float = 1e-10) -> tuple[np.ndarray, int]:
    """The actual MODI iteration; returns ``(plan, pivots_performed)``."""
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    n, m = cost.shape
    if mu.size != n or nu.size != m:
        raise InfeasibleProblemError(
            f"cost shape {cost.shape} incompatible with marginal sizes "
            f"({mu.size}, {nu.size})")
    if max_iter is None:
        max_iter = 50 * (n + m)

    plan, basis = _north_west_start(mu, nu)
    _complete_degenerate_basis(basis, n, m)

    for pivots in range(max_iter):
        potentials_u, potentials_v = _solve_potentials(cost, basis, n, m)
        reduced = cost - potentials_u[:, None] - potentials_v[None, :]
        # Basic cells have zero reduced cost by construction; mask them so
        # numerical noise cannot re-select them.
        for (bi, bj) in basis:
            reduced[bi, bj] = 0.0
        enter = np.unravel_index(np.argmin(reduced), reduced.shape)
        if reduced[enter] >= -tol:
            return plan, pivots
        _pivot(plan, basis, enter, n, m)
    raise ConvergenceError(
        "transportation simplex exceeded its pivot budget",
        iterations=max_iter)


# -- internals --------------------------------------------------------------


def _north_west_start(mu: np.ndarray,
                      nu: np.ndarray) -> tuple[np.ndarray, set]:
    """North-west-corner initial BFS plus the set of basic cells."""
    n, m = mu.size, nu.size
    plan = np.zeros((n, m))
    basis: set[tuple[int, int]] = set()
    remaining_mu = mu.copy()
    remaining_nu = nu.copy()
    i = j = 0
    while i < n and j < m:
        mass = min(remaining_mu[i], remaining_nu[j])
        plan[i, j] = mass
        basis.add((i, j))
        remaining_mu[i] -= mass
        remaining_nu[j] -= mass
        row_done = remaining_mu[i] <= _MASS_TOL
        col_done = remaining_nu[j] <= _MASS_TOL
        if row_done and col_done:
            # Degenerate step: keep the basis a tree by moving along exactly
            # one axis; the next cell enters with zero mass.
            if i + 1 < n:
                i += 1
            else:
                j += 1
        elif row_done:
            i += 1
        else:
            j += 1
    return plan, basis


def _complete_degenerate_basis(basis: set, n: int, m: int) -> None:
    """Ensure the basis has exactly ``n + m - 1`` cells and spans all nodes.

    The NW-corner construction above already yields a spanning tree, but we
    defensively patch any missing coverage with zero cells (can occur for
    marginals containing exact zeros).
    """
    target_size = n + m - 1
    if len(basis) == target_size:
        return
    rows_seen = {i for i, _ in basis}
    cols_seen = {j for _, j in basis}
    for i in range(n):
        if len(basis) >= target_size:
            break
        if i not in rows_seen:
            basis.add((i, next(iter(cols_seen)) if cols_seen else 0))
            rows_seen.add(i)
    for j in range(m):
        if len(basis) >= target_size:
            break
        if j not in cols_seen:
            basis.add((next(iter(rows_seen)) if rows_seen else 0, j))
            cols_seen.add(j)
    # Top up with arbitrary non-basic cells that do not close a cycle.
    i = 0
    while len(basis) < target_size:
        for j in range(m):
            if (i, j) not in basis and not _would_close_cycle(basis, (i, j), n, m):
                basis.add((i, j))
                break
        i = (i + 1) % n


def _would_close_cycle(basis: set, cell: tuple[int, int], n: int,
                       m: int) -> bool:
    """True if adding ``cell`` connects two already-connected components."""
    adjacency = _adjacency(basis, n, m)
    start, goal = ("r", cell[0]), ("c", cell[1])
    return _path_exists(adjacency, start, goal)


def _adjacency(basis: set, n: int, m: int) -> dict:
    adjacency: dict = {("r", i): [] for i in range(n)}
    adjacency.update({("c", j): [] for j in range(m)})
    for (i, j) in basis:
        adjacency[("r", i)].append(("c", j))
        adjacency[("c", j)].append(("r", i))
    return adjacency


def _path_exists(adjacency: dict, start, goal) -> bool:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return False


def _solve_potentials(cost: np.ndarray, basis: set, n: int,
                      m: int) -> tuple[np.ndarray, np.ndarray]:
    """Node potentials ``u, v`` with ``u_i + v_j = C_ij`` on basic cells.

    The basis is a spanning tree, so fixing ``u_0 = 0`` and propagating by
    breadth-first search determines every potential uniquely.
    """
    potentials_u = np.full(n, np.nan)
    potentials_v = np.full(m, np.nan)
    adjacency = _adjacency(basis, n, m)
    potentials_u[0] = 0.0
    stack = [("r", 0)]
    while stack:
        kind, index = stack.pop()
        for (nkind, nindex) in adjacency[(kind, index)]:
            if nkind == "c" and np.isnan(potentials_v[nindex]):
                potentials_v[nindex] = cost[index, nindex] - potentials_u[index]
                stack.append(("c", nindex))
            elif nkind == "r" and np.isnan(potentials_u[nindex]):
                potentials_u[nindex] = cost[nindex, index] - potentials_v[index]
                stack.append(("r", nindex))
    # Disconnected components (possible only with a patched degenerate
    # basis) get zero potentials; their cells price out on the next pivot.
    np.nan_to_num(potentials_u, copy=False)
    np.nan_to_num(potentials_v, copy=False)
    return potentials_u, potentials_v


def _find_cycle(basis: set, enter: tuple[int, int], n: int,
                m: int) -> list[tuple[int, int]]:
    """Alternating cycle created by the entering cell in the basis tree.

    Returns the cycle as a list of cells starting with ``enter``; even
    positions gain mass, odd positions lose mass.
    """
    adjacency = _adjacency(basis, n, m)
    start, goal = ("c", enter[1]), ("r", enter[0])
    # Depth-first search for the unique tree path goal -> start.
    parents = {start: None}
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            break
        for neighbour in adjacency[node]:
            if neighbour not in parents:
                parents[neighbour] = node
                stack.append(neighbour)
    if goal not in parents:
        raise ConvergenceError("basis lost connectivity during pivoting")

    path_nodes = [goal]
    while parents[path_nodes[-1]] is not None:
        path_nodes.append(parents[path_nodes[-1]])
    # path_nodes: row(enter) -> ... -> col(enter); consecutive nodes are the
    # basic cells of the cycle.
    cycle = [enter]
    for a, b in zip(path_nodes, path_nodes[1:]):
        if a[0] == "r":
            cycle.append((a[1], b[1]))
        else:
            cycle.append((b[1], a[1]))
    return cycle


def _pivot(plan: np.ndarray, basis: set, enter: tuple[int, int], n: int,
           m: int) -> None:
    """Execute one simplex pivot along the cycle of ``enter``."""
    cycle = _find_cycle(basis, enter, n, m)
    minus_cells = cycle[1::2]
    theta = min(plan[c] for c in minus_cells)
    leave = min((c for c in minus_cells if plan[c] <= theta + _MASS_TOL),
                key=lambda c: plan[c])
    for position, cell in enumerate(cycle):
        if position % 2 == 0:
            plan[cell] += theta
        else:
            plan[cell] -= theta
            if plan[cell] < 0.0:
                plan[cell] = 0.0
    basis.add(enter)
    basis.discard(leave)
