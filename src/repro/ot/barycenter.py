"""Wasserstein barycentres and displacement geodesics.

The paper's repair target is the ``t = 0.5`` point of the Wasserstein-2
geodesic between the two ``s``-conditional marginals (Eq. 7), represented on
the same interpolated support ``Q`` as the marginals themselves.

For one-dimensional measures the ``W_2`` geodesic has a closed form: the
quantile function of ``ν_t`` is the convex combination

    F⁻¹_{ν_t}(q) = (1 - t) F⁻¹_{µ_0}(q) + t F⁻¹_{µ_1}(q),

so barycentre computation reduces to quantile averaging followed by a
projection back onto the grid.  A general fixed-support barycentre via
iterative Bregman projections (entropic, Benamou et al.) is also provided
for ablations and for non-1-D use.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from .._validation import (as_1d_array, as_probability_vector,
                           check_positive_int, check_probability)
from ..exceptions import ConvergenceError, ValidationError

__all__ = [
    "barycenter_1d",
    "geodesic_point_1d",
    "project_onto_grid",
    "sinkhorn_barycenter",
]


def geodesic_point_1d(support0, weights0, support1, weights1, t: float, *,
                      n_levels: int = 2048) -> tuple[np.ndarray, np.ndarray]:
    """Point ``ν_t`` on the W2 geodesic between two discrete 1-D measures.

    Returns ``(support, weights)`` of a discrete approximation built from
    ``n_levels`` equal-mass quantile slices.  ``t = 0`` reproduces ``µ_0``
    (up to quantisation), ``t = 1`` reproduces ``µ_1``, and ``t = 0.5`` is
    the fair barycentre used as the paper's repair target.
    """
    t = check_probability(t, name="t")
    n_levels = check_positive_int(n_levels, name="n_levels", minimum=2)
    xs0 = as_1d_array(support0, name="support0")
    xs1 = as_1d_array(support1, name="support1")
    ws0 = as_probability_vector(weights0, name="weights0", normalize=True)
    ws1 = as_probability_vector(weights1, name="weights1", normalize=True)
    if xs0.size != ws0.size or xs1.size != ws1.size:
        raise ValidationError("support/weights length mismatch")

    levels = (np.arange(n_levels) + 0.5) / n_levels
    q0 = _quantiles(xs0, ws0, levels)
    q1 = _quantiles(xs1, ws1, levels)
    atoms = (1.0 - t) * q0 + t * q1
    weights = np.full(n_levels, 1.0 / n_levels)
    return atoms, weights


def barycenter_1d(support0, weights0, support1, weights1, grid, *,
                  t: float = 0.5, n_levels: int = 2048) -> np.ndarray:
    """W2 barycentre of two 1-D measures, represented on ``grid``.

    This is the construction used by Algorithm 1: the repair target ``ν``
    lives on the same interpolated support ``Q`` as the marginals.  The
    continuous quantile-averaged barycentre is projected onto the grid by
    linear mass splitting (:func:`project_onto_grid`), which preserves both
    total mass and the first moment.
    """
    atoms, weights = geodesic_point_1d(support0, weights0, support1,
                                       weights1, t, n_levels=n_levels)
    return project_onto_grid(atoms, weights, grid)


def project_onto_grid(atoms, weights, grid) -> np.ndarray:
    """Project a weighted sample onto a sorted grid by linear mass splitting.

    Each atom ``x`` lying between grid nodes ``g_q <= x <= g_{q+1}`` donates
    mass ``(1 - τ)`` to ``g_q`` and ``τ`` to ``g_{q+1}`` with
    ``τ = (x - g_q) / (g_{q+1} - g_q)``; atoms outside the grid range are
    assigned to the nearest endpoint.  The result is a probability vector on
    the grid with the same mean as the input (for interior atoms).
    """
    xs = as_1d_array(atoms, name="atoms")
    ws = as_probability_vector(weights, name="weights", normalize=True)
    if xs.size != ws.size:
        raise ValidationError("atoms/weights length mismatch")
    grid = as_1d_array(grid, name="grid")
    if grid.size < 2:
        raise ValidationError("grid needs at least two nodes")
    if np.any(np.diff(grid) <= 0):
        raise ValidationError("grid must be strictly increasing")

    clipped = np.clip(xs, grid[0], grid[-1])
    idx = np.searchsorted(grid, clipped, side="right") - 1
    idx = np.clip(idx, 0, grid.size - 2)
    gaps = grid[idx + 1] - grid[idx]
    tau = (clipped - grid[idx]) / gaps

    out = np.zeros(grid.size)
    np.add.at(out, idx, ws * (1.0 - tau))
    np.add.at(out, idx + 1, ws * tau)
    total = out.sum()
    if total <= 0.0:
        raise ValidationError("projection produced zero mass")
    return out / total


def sinkhorn_barycenter(cost: np.ndarray, marginals, *, weights=None,
                        epsilon: float = 1e-2, max_iter: int = 5_000,
                        tol: float = 1e-8) -> np.ndarray:
    """Entropic fixed-support barycentre (iterative Bregman projections).

    All marginals must live on the same support with pairwise cost matrix
    ``cost``.  Returns the barycentre weights on that support.  Used for
    ablation against the closed-form 1-D construction and available for
    multi-marginal (> 2) targets.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2 or cost.shape[0] != cost.shape[1]:
        raise ValidationError("cost must be a square matrix on the shared "
                              f"support, got shape {cost.shape}")
    mus = [as_probability_vector(marg, name=f"marginals[{k}]",
                                 normalize=True)
           for k, marg in enumerate(marginals)]
    if len(mus) < 2:
        raise ValidationError("need at least two marginals")
    n = cost.shape[0]
    for k, mu in enumerate(mus):
        if mu.size != n:
            raise ValidationError(
                f"marginals[{k}] has {mu.size} states, cost expects {n}")
    if weights is None:
        lam = np.full(len(mus), 1.0 / len(mus))
    else:
        lam = as_probability_vector(weights, name="weights", normalize=True)
        if lam.size != len(mus):
            raise ValidationError("weights/marginals length mismatch")
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")

    scale = max(float(np.max(cost)), 1e-300)
    log_kernel = -cost / (epsilon * scale)
    log_mus = [np.log(np.maximum(mu, 1e-300)) for mu in mus]
    log_v = [np.zeros(n) for _ in mus]

    log_bary = np.full(n, -np.log(n))
    for iteration in range(1, max_iter + 1):
        log_u = []
        for k, log_mu in enumerate(log_mus):
            # u_k = mu_k / (K v_k), in log domain.
            log_kv = logsumexp(log_kernel + log_v[k][None, :], axis=1)
            log_u.append(log_mu - log_kv)
        # Barycentre is the weighted geometric mean of K^T u_k.
        log_ktu = [logsumexp(log_kernel.T + log_u[k][None, :], axis=1)
                   for k in range(len(mus))]
        new_log_bary = sum(lam[k] * log_ktu[k] for k in range(len(mus)))
        new_log_bary -= logsumexp(new_log_bary)
        for k in range(len(mus)):
            log_v[k] = new_log_bary - log_ktu[k]
        change = float(np.max(np.abs(np.exp(new_log_bary)
                                     - np.exp(log_bary))))
        log_bary = new_log_bary
        if change <= tol:
            return np.exp(log_bary)
    raise ConvergenceError(
        "Sinkhorn barycentre did not converge", iterations=max_iter)


def _quantiles(support: np.ndarray, weights: np.ndarray,
               levels: np.ndarray) -> np.ndarray:
    order = np.argsort(support, kind="stable")
    xs, ws = support[order], weights[order]
    cdf = np.cumsum(ws)
    idx = np.searchsorted(cdf, levels - 1e-12, side="left")
    idx = np.minimum(idx, xs.size - 1)
    return xs[idx]
