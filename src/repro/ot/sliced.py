"""Sliced Wasserstein distance.

The paper stratifies its repair per feature to dodge the curse of
dimensionality in OT (Section IV-A), at the acknowledged cost of ignoring
intra-feature correlation (Section VI).  The *sliced* Wasserstein distance
is the standard cheap multivariate OT surrogate: average the closed-form
1-D distance over random projection directions,

    SW_p(µ, ν)^p = E_{θ ~ U(S^{d-1})} [ W_p(θ#µ, θ#ν)^p ].

It lets the library *measure* the multivariate discrepancy that the
per-feature machinery cannot see — used by
:func:`repro.metrics.multivariate.sliced_dependence` and the correlation
ablation bench.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, as_rng, check_positive_int
from ..exceptions import ValidationError
from .onedim import wasserstein_1d

__all__ = ["sliced_wasserstein", "random_directions"]


def random_directions(n_directions: int, dim: int, *,
                      rng=None) -> np.ndarray:
    """``(n_directions, dim)`` unit vectors uniform on the sphere."""
    n_directions = check_positive_int(n_directions, name="n_directions")
    dim = check_positive_int(dim, name="dim")
    generator = as_rng(rng)
    raw = generator.normal(size=(n_directions, dim))
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    # Resample the (probability-zero) degenerate rows.
    bad = norms[:, 0] < 1e-12
    while bad.any():
        raw[bad] = generator.normal(size=(int(bad.sum()), dim))
        norms = np.linalg.norm(raw, axis=1, keepdims=True)
        bad = norms[:, 0] < 1e-12
    return raw / norms


def sliced_wasserstein(source_samples, target_samples, *, p: int = 2,
                       n_directions: int = 64, rng=None) -> float:
    """Monte-Carlo sliced ``W_p`` between two empirical samples.

    Parameters
    ----------
    source_samples, target_samples:
        ``(n, d)`` / ``(m, d)`` sample matrices (uniform weights).
    n_directions:
        Number of random projections; the estimator error decays as
        ``1/sqrt(n_directions)``.
    rng:
        Seed/generator for the projections — fix it to make the distance
        deterministic.
    """
    xs = as_2d_array(source_samples, name="source_samples")
    ys = as_2d_array(target_samples, name="target_samples")
    if xs.shape[1] != ys.shape[1]:
        raise ValidationError(
            "samples must share the feature dimension "
            f"({xs.shape[1]} != {ys.shape[1]})")
    p = check_positive_int(p, name="p")
    directions = random_directions(n_directions, xs.shape[1], rng=rng)

    mu = np.full(xs.shape[0], 1.0 / xs.shape[0])
    nu = np.full(ys.shape[0], 1.0 / ys.shape[0])
    projected_x = xs @ directions.T
    projected_y = ys @ directions.T
    total = 0.0
    for j in range(directions.shape[0]):
        total += wasserstein_1d(projected_x[:, j], mu,
                                projected_y[:, j], nu, p=p) ** p
    return float((total / directions.shape[0]) ** (1.0 / p))
