"""Unified entry point for every discrete OT solve in the library.

``solve(problem, method=...)`` replaces the historical five unrelated
entry points (``solve_1d``, ``solve_transport``, ``transport_simplex``,
``solve_transport_lp``, ``solve_sinkhorn``): one problem object in, one
result object out, solvers resolved through the pluggable registry.

Built-in methods
----------------

``"exact"``
    Closed-form monotone coupling — optimal for 1-D supports with any
    convex ``|x - y|^p`` cost, ``O(n + m)``.
``"simplex"``
    Dense transportation simplex (MODI), exact, cubic-class.
``"lp"``
    scipy/HiGHS linear-programming oracle; honours a sparse
    ``support_mask`` by solving the restricted LP.
``"sinkhorn"`` / ``"sinkhorn_log"``
    Entropic OT (probability-domain scaling / log-domain stabilised).
``"screened"``
    The sparse hybrid: a cheap entropic solve *screens* the product
    support down to the top-``k`` entries per row and column, then an
    exact LP restricted to that sparse support recovers an unregularised
    plan — the POT network-simplex/Sinkhorn hybrid pattern, and this
    library's fast path for large general supports.
``"multiscale"``
    Coarsen-solve-refine (see :mod:`repro.ot.multiscale`): bin the fine
    grid, solve the coarse problem exactly, dilate the coarse plan's
    support onto the fine grid, and solve the exact LP restricted to
    that sparse support.  Needs 1-D supports; the fast path for very
    large quantile grids with metric-family costs.
``"auto"`` (default)
    Dispatches on problem structure: monotone closed form when provably
    optimal, simplex for small dense problems, LP for medium ones,
    screened beyond :data:`LP_AUTO_LIMIT` states, multiscale beyond
    :data:`MULTISCALE_AUTO_LIMIT` states when the supports are 1-D and
    the cost is metric-family (i.e. derived from those supports).

A quick doctest tour (the facade accepts a problem or the legacy
``(cost, mu, nu)`` triplet):

>>> import numpy as np
>>> from repro.ot import OTProblem, solve
>>> problem = OTProblem(source_weights=[0.5, 0.5],
...                     target_weights=[0.5, 0.5],
...                     source_support=[0.0, 1.0],
...                     target_support=[0.0, 2.0])
>>> result = solve(problem)          # auto -> monotone closed form
>>> result.solver
'exact'
>>> result.plan.toarray()
array([[0.5, 0. ],
       [0. , 0.5]])
>>> float(result.value)              # 0.5*(0-0)^2 + 0.5*(1-2)^2
0.5
>>> solve(np.eye(2), [0.5, 0.5], [0.5, 0.5], method="lp").converged
True
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
from scipy import sparse

from ..core.backend import get_backend
from ..exceptions import (ConvergenceError, InfeasibleProblemError,
                          ValidationError)
from .cost import pointwise_cost
from .coupling import (SPARSE_DENSITY_THRESHOLD, TransportPlan,
                       _inner_product as _plan_inner_product, band_bounds,
                       is_banded)
from .lp import _linprog_with_presolve_retry, _lp_matrix
from .network_simplex import (NetworkSimplexState, _arc_cost_entries,
                              _transport_simplex_core, network_simplex_arcs)
from .onedim import (_staircase_walk, banded_monotone_transport,
                     batched_north_west_corner, north_west_corner,
                     north_west_corner_support)
from .problem import (_MONOTONE_METRICS, OTBatch, OTProblem, OTResult,
                      result_from_matrix)
from .registry import (filter_opts, register_batch_solver, register_solver,
                       resolve_solver)
from .sinkhorn import batched_sinkhorn as _batched_sinkhorn_impl
from .sinkhorn import batched_sinkhorn_log as _batched_sinkhorn_log_impl
from .sinkhorn import sinkhorn as _sinkhorn_impl
from .sinkhorn import sinkhorn_log as _sinkhorn_log_impl

__all__ = ["solve", "solve_many", "auto_method", "as_problem",
           "default_screen_k", "SIMPLEX_AUTO_LIMIT", "LP_AUTO_LIMIT",
           "MULTISCALE_AUTO_LIMIT", "EPSILON_SCALING_AUTO_LIMIT",
           "SCREEN_BAND_LIMIT"]

#: Largest marginal size ``auto`` still hands to the dense simplex.
SIMPLEX_AUTO_LIMIT = 64
#: Largest marginal size ``auto`` still hands to the dense LP; beyond
#: this the screened sparse hybrid takes over.
LP_AUTO_LIMIT = 300
#: Marginal size from which ``auto`` prefers the multiscale
#: coarsen-solve-refine solver over the single-level screened hybrid —
#: the regime where the entropic screen itself becomes the bottleneck.
#: Only problems with 1-D supports *and* a metric-family cost qualify:
#: the solver coarsens by support geometry, which predicts the optimal
#: support only when the cost is derived from that geometry.
MULTISCALE_AUTO_LIMIT = 2000
#: Marginal size from which the screened solver's default
#: ``epsilon_scaling="auto"`` switches the annealed Sinkhorn screen on.
#: Small problems converge fine from a cold start; past this size the
#: sharp small-epsilon screens that produce the most selective supports
#: routinely stall without the geometric epsilon schedule.
EPSILON_SCALING_AUTO_LIMIT = 1024
#: Marginal size above which the screened solver swaps the dense
#: entropic screen for the geometric *band* screen on 1-D problems with
#: a convex metric-family cost: a band of half-width ``k // 2`` around
#: the sorted north-west-corner staircase, built index-sparse so neither
#: the ``(n, m)`` cost matrix nor an ``(n, m)`` mask is ever
#: materialised.  The staircase of the sorted marginals *is* the
#: monotone optimal support for convex ``|x - y|^p`` costs, so the band
#: provably contains an optimal basis and the restricted solve is exact.
SCREEN_BAND_LIMIT = 10_000


def as_problem(problem_or_cost, source_weights=None, target_weights=None,
               **problem_kwargs) -> OTProblem:
    """Coerce the facade's positional arguments into an :class:`OTProblem`.

    Accepts either a ready-made problem (marginals must then *not* be
    repeated alongside it) or the legacy triplet
    ``(cost, source_weights, target_weights)``.
    """
    if isinstance(problem_or_cost, OTProblem):
        if source_weights is not None or target_weights is not None:
            raise ValidationError(
                "marginals are part of the OTProblem; do not pass them "
                "again alongside it")
        if problem_kwargs:
            raise ValidationError(
                "problem construction keywords "
                f"{sorted(problem_kwargs)} are only valid with the "
                "(cost, source_weights, target_weights) calling form")
        return problem_or_cost
    if source_weights is None or target_weights is None:
        raise ValidationError(
            "solve() needs an OTProblem, or a cost matrix plus both "
            "marginals")
    return OTProblem.from_cost(problem_or_cost, source_weights,
                               target_weights, **problem_kwargs)


def auto_method(problem: OTProblem) -> str:
    """The solver name ``method="auto"`` dispatches ``problem`` to.

    >>> import numpy as np
    >>> from repro.ot import OTProblem
    >>> nodes = np.linspace(0.0, 1.0, 4)
    >>> weights = np.full(4, 0.25)
    >>> auto_method(OTProblem(source_weights=weights,
    ...                       target_weights=weights,
    ...                       source_support=nodes, target_support=nodes))
    'exact'
    >>> auto_method(OTProblem(source_weights=weights,
    ...                       target_weights=weights,
    ...                       cost=np.eye(4)))
    'simplex'
    """
    if problem.is_monotone_solvable:
        return "exact"
    size = max(problem.shape)
    if problem.support_mask is not None:
        # Only the LP, screened and multiscale solvers honour a mask.
        if size <= LP_AUTO_LIMIT:
            return "lp"
        return _large_scale_method(problem, size)
    if size <= SIMPLEX_AUTO_LIMIT:
        return "simplex"
    if size <= LP_AUTO_LIMIT:
        return "lp"
    return _large_scale_method(problem, size)


def _large_scale_method(problem: OTProblem, size: int) -> str:
    """Pick between the two sparse large-support paths.

    Multiscale coarsens by support geometry, which predicts the optimal
    support only when the cost is *derived from* that geometry — so it
    takes over past :data:`MULTISCALE_AUTO_LIMIT` only for 1-D-supported
    metric-family problems (in practice: masked ones, since unmasked
    metric 1-D problems are monotone-solvable and never reach here).
    Arbitrary explicit or callable costs go to the screened hybrid,
    whose Sinkhorn screen works on the true cost.
    """
    if (size >= MULTISCALE_AUTO_LIMIT and problem.is_one_dimensional
            and problem.has_metric_cost):
        return "multiscale"
    return "screened"


def solve(problem_or_cost, source_weights=None, target_weights=None, *,
          method="auto", backend=None, source_support=None,
          target_support=None, support_mask=None, **opts) -> OTResult:
    """Solve a discrete optimal-transport problem.

    Parameters
    ----------
    problem_or_cost:
        An :class:`OTProblem`, or an ``(n, m)`` cost matrix accompanied by
        the two marginals (the legacy calling convention).
    method:
        A registered solver name (see
        :func:`~repro.ot.registry.available_solvers`), a callable
        ``fn(problem, **opts)``, a :class:`~repro.ot.registry.Solver`
        instance, or ``"auto"`` (structure-based dispatch).
    backend:
        Compute backend for the solver's vectorised kernels
        (:func:`repro.core.backend.get_backend`): ``None``/``"auto"``
        for the bit-identical numpy reference, or ``"torch"``/
        ``"cupy"``/``"array_api_strict"``.  Offered with signature
        filtering, like every other tuning knob: backend-aware solvers
        (see :func:`~repro.ot.registry.backend_support`) receive it,
        the scipy-bound ones (``"lp"``, ``"simplex"``, ...) ignore it.
        Unknown backend names fail fast regardless of the solver.
    **opts:
        Forwarded verbatim to the resolved solver (e.g. ``epsilon`` for
        the entropic methods, ``k`` for ``"screened"``).

    Returns
    -------
    OTResult
        Plan, cost value, marginal residuals, convergence flag, iteration
        count, solver name and wall time.
    """
    problem_kwargs = {}
    if not isinstance(problem_or_cost, OTProblem):
        problem_kwargs = {"source_support": source_support,
                          "target_support": target_support,
                          "support_mask": support_mask}
    elif (source_support is not None or target_support is not None
          or support_mask is not None):
        raise ValidationError(
            "supports/support_mask are part of the OTProblem; do not pass "
            "them again alongside it")
    problem = as_problem(problem_or_cost, source_weights, target_weights,
                         **problem_kwargs)
    if backend is not None:
        get_backend(backend)  # typos fail fast, before any solving
    if isinstance(method, str) and method == "auto":
        # Dispatch here (rather than through the registered "auto"
        # solver) so the result reports the solver that actually ran,
        # with the same opts filtering: entropic knobs passed alongside
        # method="auto" reach entropic dispatch targets and are dropped
        # for exact ones.
        solver = resolve_solver(auto_method(problem))
        if backend is not None:
            opts = {**opts, "backend": backend}
        opts = filter_opts(solver, opts)
    else:
        solver = resolve_solver(method)
        if backend is not None:
            # Only the backend knob is signature-filtered here; explicit
            # methods keep receiving their other opts verbatim.
            opts = {**opts, **filter_opts(solver, {"backend": backend})}
    start = time.perf_counter()
    result = solver(problem, **opts)
    return result.with_timing(solver.name, time.perf_counter() - start)


def solve_many(problems, *, method="auto", executor=None, backend=None,
               **opts) -> list:
    """Solve a batch of independent OT problems through one entry point.

    The batched counterpart of :func:`solve`, and the engine behind
    Algorithm 1's cell fan-out: one :class:`~repro.ot.problem.OTBatch`
    (or iterable of problems) in, one list of
    :class:`~repro.ot.problem.OTResult` out, in batch order, with every
    result identical (bitwise, up to wall time and the batch-diagnostic
    extras below) to what a per-problem ``solve(problem, method=...)``
    loop would produce.

    Dispatch per problem group:

    * solvers that declare a batch kernel
      (:func:`~repro.ot.registry.register_batch_solver`) receive every
      qualifying same-shape sub-batch in **one vectorised call** — the
      shared-shape fast path (the ``"exact"`` monotone kernel solves all
      same-grid design cells in a single NumPy dispatch);
    * everything else is fanned over ``executor`` — ``None`` for an
      in-line serial loop, or any object exposing
      ``map(fn, iterable) -> results`` (a
      :mod:`repro.core.executor` executor, or a raw
      ``concurrent.futures`` pool).  A string (``"serial"``,
      ``"thread"``, ``"process"``, ``"auto"``) is resolved through
      :func:`repro.core.executor.resolve_executor`.

    ``method="auto"`` groups the batch by :func:`auto_method`; solver
    options are signature-filtered **once per group** (not once per
    problem — the registry's ``inspect.signature`` walk leaves the hot
    loop).  An explicit method receives ``opts`` verbatim, exactly like
    :func:`solve`.

    ``backend`` selects the compute backend for the vectorised kernels
    (see :func:`solve`); the whole batch then iterates as backend array
    operations — the monotone staircase and the stacked Sinkhorn
    kernels run end-to-end on the device and convert to NumPy/CSR only
    at the :class:`~repro.ot.coupling.TransportPlan` boundary.  Like on
    the facade, the knob is signature-filtered per solver, and the spec
    (a plain string) — not a live backend object — is what travels to
    executor workers, so process pools keep working.

    Results produced by a batch kernel additionally carry
    ``extras["batched"] = True`` and ``extras["batch_size"]``, and report
    the kernel's wall time divided evenly across the sub-batch.

    >>> import numpy as np
    >>> from repro.ot import OTProblem
    >>> cells = [OTProblem(source_weights=[0.5, 0.5],
    ...                    target_weights=[0.5, 0.5],
    ...                    source_support=[0.0, 1.0],
    ...                    target_support=[0.0, float(k)])
    ...          for k in (1, 2, 3)]
    >>> results = solve_many(cells)       # auto -> one batched dispatch
    >>> [r.solver for r in results]
    ['exact', 'exact', 'exact']
    >>> [float(r.value) for r in results]
    [0.0, 0.5, 2.0]
    >>> results[0].extras["batch_size"]
    3
    """
    batch = (problems if isinstance(problems, OTBatch)
             else OTBatch(tuple(problems)))
    if len(batch) == 0:
        return []
    if isinstance(executor, str):
        # The named executors live one layer up (repro.core.executor);
        # deferred import so the OT layer stays import-independent of it.
        from ..core.executor import resolve_executor
        executor = resolve_executor(executor)
    if executor is not None and not callable(getattr(executor, "map",
                                                     None)):
        raise ValidationError(
            "executor must be None, an executor name, or an object with "
            "map(fn, iterable) — see repro.core.executor")
    if backend is not None:
        get_backend(backend)  # typos fail fast, before any solving

    # Group the batch per dispatched solver, filtering options once per
    # group (satellite of the batched-engine design: no per-cell
    # inspect.signature overhead).
    groups = []
    if isinstance(method, str) and method == "auto":
        is_auto = True
    else:
        resolved = resolve_solver(method)
        is_auto = resolved.fn is _solve_auto
    if is_auto:
        by_name: dict = {}
        for index, problem in enumerate(batch):
            by_name.setdefault(auto_method(problem), []).append(index)
        candidates = (opts if backend is None
                      else {**opts, "backend": backend})
        for name, indices in by_name.items():
            solver = resolve_solver(name)
            groups.append((solver, filter_opts(solver, candidates),
                           indices))
    else:
        group_opts = dict(opts)
        if backend is not None:
            group_opts.update(filter_opts(resolved, {"backend": backend}))
        groups.append((resolved, group_opts, list(range(len(batch)))))

    results: list = [None] * len(batch)
    fallback = []
    for solver, group_opts, indices in groups:
        remaining = indices
        if solver.supports_batch:
            remaining = []
            by_shape: dict = {}
            for i in indices:
                if solver.can_batch(batch[i]):
                    by_shape.setdefault(batch[i].shape, []).append(i)
                else:
                    remaining.append(i)
            for same_shape in by_shape.values():
                sub = batch.subset(same_shape)
                start = time.perf_counter()
                outcomes = solver.solve_batch(sub, **group_opts)
                share = (time.perf_counter() - start) / len(same_shape)
                for i, outcome in zip(same_shape, outcomes):
                    outcome = outcome.with_timing(solver.name, share)
                    results[i] = replace(
                        outcome,
                        extras={**outcome.extras, "batched": True,
                                "batch_size": len(same_shape)})
        fallback.extend((i, solver, group_opts) for i in remaining)

    if fallback:
        payloads = [(solver, batch[i], group_opts)
                    for i, solver, group_opts in fallback]
        if executor is None:
            solved = [_solve_many_worker(payload) for payload in payloads]
        else:
            solved = list(executor.map(_solve_many_worker, payloads))
        for (i, _, _), result in zip(fallback, solved):
            results[i] = result
    return results


def _solve_many_worker(payload):
    """Solve one fallback problem (module-level so process pools can
    pickle it); mirrors the facade's solver-name/timing stamping."""
    solver, problem, opts = payload
    start = time.perf_counter()
    result = solver(problem, **opts)
    return result.with_timing(solver.name, time.perf_counter() - start)


# -- shared result assembly --------------------------------------------------


def _finish(problem: OTProblem, matrix: np.ndarray, *, value=None,
            converged: bool = True, n_iter: int = 1,
            extras: dict | None = None) -> OTResult:
    """Wrap a raw plan matrix into an :class:`OTResult` for ``problem``."""
    return result_from_matrix(problem, matrix, value=value,
                              converged=converged, n_iter=n_iter,
                              extras=extras)


# -- built-in solvers --------------------------------------------------------


def _check_monotone_problem(problem: OTProblem) -> None:
    """Raise the 'exact' solver's validation errors for bad problems."""
    if not problem.is_one_dimensional:
        raise ValidationError(
            "the 'exact' monotone solver needs 1-D source and target "
            "supports; use 'simplex', 'lp' or 'screened' for general "
            "problems")
    if problem.support_mask is not None:
        raise ValidationError(
            "the 'exact' monotone solver cannot honour a support_mask; "
            "use 'lp' or 'screened'")


def _monotone_batchable(problem: OTProblem) -> bool:
    """Problems the vectorised monotone kernel accepts."""
    return problem.is_one_dimensional and problem.support_mask is None


def _monotone_engine(problems, backend=None) -> tuple:
    """The monotone kernel shared by the serial and batched 'exact' paths.

    All ``problems`` must share one ``(n, m)`` shape and have 1-D
    unmasked supports.  Sorting, the staircase itself
    (:func:`~repro.ot.onedim.batched_north_west_corner`), the index
    un-sorting and the staircase-support gathers are each one array
    dispatch over the whole stack **on the selected compute backend**
    (:func:`repro.core.backend.get_backend`); results convert to numpy
    exactly once, for the plan scatter and cost contraction at the
    :class:`~repro.ot.coupling.TransportPlan` boundary.  On the default
    numpy backend every operation is the historical one — bit-identical
    results — and every per-row operation is independent of the batch
    size, so a problem's plan and value are bit-identical whether it is
    solved alone or inside any batch.

    Returns ``(plans, values)``: a list of ``B`` independent dense
    ``(n, m)`` numpy plan arrays (each problem owns its buffer, so
    retaining one result never pins the whole batch) and the per-problem
    staircase cost values (``None`` for problems with an explicit/
    callable cost, whose value is ``<C, plan>`` downstream).
    """
    nx = get_backend(backend)
    B = len(problems)
    n, m = problems[0].shape
    xs = nx.asarray(np.stack([problem.source_support.ravel()
                              for problem in problems]), dtype=nx.float64)
    ys = nx.asarray(np.stack([problem.target_support.ravel()
                              for problem in problems]), dtype=nx.float64)
    order_x = nx.argsort(xs, axis=1)
    order_y = nx.argsort(ys, axis=1)
    mu_sorted = nx.take_along_axis(
        nx.asarray(np.stack([problem.source_weights
                             for problem in problems]), dtype=nx.float64),
        order_x, axis=1)
    nu_sorted = nx.take_along_axis(
        nx.asarray(np.stack([problem.target_weights
                             for problem in problems]), dtype=nx.float64),
        order_y, axis=1)
    srows, scols, masses = batched_north_west_corner(mu_sorted, nu_sorted,
                                                     backend=nx)
    # Un-sort: staircase entry (i, j) of the sorted problem lands at the
    # original support positions.  The per-problem bincount scatters
    # with accumulation, so tie-induced zero-mass duplicates cannot
    # clobber real entries.
    rows = nx.take_along_axis(order_x, srows, axis=1)
    cols = nx.take_along_axis(order_y, scols, axis=1)
    x_at = nx.take_along_axis(xs, rows, axis=1)
    y_at = nx.take_along_axis(ys, cols, axis=1)
    rows_h = nx.to_numpy(rows)
    cols_h = nx.to_numpy(cols)
    masses_h = nx.to_numpy(masses)
    flat = rows_h * m + cols_h
    # Per-problem scatter (identical accumulation order to a lone
    # solve); each plan owns an independent buffer, which is both
    # allocator-friendly versus one B·n·m-sized bincount and lets a
    # caller keep one result without pinning the whole batch.
    plans = [np.bincount(flat[b], weights=masses_h[b],
                         minlength=n * m).reshape(n, m)
             for b in range(B)]
    # O(n + m) pointwise cost on the staircase support — the dense cost
    # matrix is never built for metric problems.  On 1-D supports the
    # |x - y|^p family is elementwise, so a batch sharing one metric is
    # costed in a single dispatch, bit-identical to the per-pair
    # pointwise_cost evaluation.
    x_at_h = nx.to_numpy(x_at)
    y_at_h = nx.to_numpy(y_at)
    metrics = {(problem.metric, problem.p) if problem.has_metric_cost
               else None for problem in problems}
    if len(metrics) == 1 and None not in metrics:
        ((metric, p),) = metrics
        cost_stack = _metric_cost_stack_1d(x_at_h - y_at_h, metric, p)
        values = [float(np.dot(masses_h[b], cost_stack[b]))
                  for b in range(B)]
        return plans, values
    values = []
    for b, problem in enumerate(problems):
        if problem.has_metric_cost:
            costs = pointwise_cost(x_at_h[b], y_at_h[b],
                                   metric=problem.metric, p=problem.p)
            values.append(float(np.dot(masses_h[b], costs)))
        else:
            values.append(None)
    return plans, values


def _metric_cost_stack_1d(diff: np.ndarray, metric: str,
                          p: int) -> np.ndarray:
    """``|x - y|^p``-family costs for stacked 1-D displacement values —
    elementwise, hence bitwise identical to
    :func:`~repro.ot.cost.pointwise_cost` on each ``(x, y)`` pair."""
    if metric == "sqeuclidean" or (metric == "lp" and p == 2):
        return diff * diff
    if metric == "euclidean":
        return np.abs(diff)
    return np.abs(diff) ** p


@register_solver(
    "exact", aliases=("monotone", "1d"),
    description="closed-form monotone coupling; optimal for 1-D supports "
                "with convex |x-y|^p costs, O(n+m)")
def _solve_exact(problem: OTProblem, *, backend=None) -> OTResult:
    """North-west-corner traversal of the sorted supports."""
    _check_monotone_problem(problem)
    plans, values = _monotone_engine([problem], backend)
    return _finish(problem, plans[0], value=values[0])


@register_batch_solver("exact", when=_monotone_batchable)
def _solve_exact_batch(batch: OTBatch, *, backend=None) -> list:
    """Vectorised monotone couplings for a same-shape 1-D batch.

    Result assembly is *trusted*: the kernel guarantees non-negative
    plans of the right shape, so the per-problem re-validation of
    :func:`~repro.ot.problem.result_from_matrix` (and its defensive
    clip/copy) is skipped.  Every stored value is bit-identical to the
    serial assembly (the equivalence is asserted per solver by
    ``tests/ot/test_batch.py``).
    """
    problems = list(batch)
    for problem in problems:
        _check_monotone_problem(problem)
    plans, values = _monotone_engine(problems, backend)
    results = []
    for b, problem in enumerate(problems):
        value = values[b]
        if value is None:
            value = _plan_inner_product(plans[b], problem.cost_matrix())
        plan = TransportPlan._trusted(plans[b], problem.source_support,
                                      problem.target_support, float(value))
        # Same reductions the validated per-problem path performs,
        # hence bitwise-equal residuals.
        row_err = float(np.abs(plans[b].sum(axis=1)
                               - problem.source_weights).max())
        col_err = float(np.abs(plans[b].sum(axis=0)
                               - problem.target_weights).max())
        results.append(OTResult(plan=plan, value=float(value),
                                residual_source=row_err,
                                residual_target=col_err,
                                converged=True, n_iter=1))
    return results


@register_solver(
    "simplex",
    description="exact dense transportation simplex (MODI / u-v method), "
                "cubic-class in the support size")
def _solve_simplex(problem: OTProblem, *, max_iter: int | None = None,
                   tol: float = 1e-10) -> OTResult:
    if problem.support_mask is not None:
        raise ValidationError(
            "the dense simplex cannot honour a support_mask; use 'lp' or "
            "'screened'")
    matrix, pivots = _transport_simplex_core(
        problem.cost_matrix(), problem.source_weights,
        problem.target_weights, max_iter=max_iter, tol=tol)
    return _finish(problem, matrix, n_iter=pivots)


@register_solver(
    "lp", aliases=("linprog", "highs"),
    description="scipy HiGHS linear-programming oracle; honours a sparse "
                "support_mask via the restricted LP")
def _solve_lp(problem: OTProblem) -> OTResult:
    cost = problem.cost_matrix()
    mu = problem.source_weights
    nu = problem.target_weights
    if problem.support_mask is None:
        matrix, nit = _lp_matrix(cost, mu, nu)
        extras = {}
    else:
        # The mask is a hard restriction; widen it with a feasibility
        # patch (the NW-corner coupling, O(n+m) to build) only when the
        # restricted problem admits no coupling — and say so.
        mask = problem.support_mask
        widened = False
        try:
            # No presolve retry here: this mask's feasibility is unknown,
            # so an infeasible verdict is probably real and the widened
            # attempt below is the useful follow-up.
            matrix, nit = _restricted_lp_matrix(cost, mu, nu, mask,
                                                presolve_retry=False)
        except ConvergenceError:
            mask = mask | (north_west_corner(mu, nu) > 0.0)
            matrix, nit = _restricted_lp_matrix(cost, mu, nu, mask)
            widened = True
        extras = {"support_size": int(mask.sum()),
                  "support_density": float(mask.mean()),
                  "mask_widened": widened}
    return _finish(problem, matrix, n_iter=nit, extras=extras)


@register_solver(
    "sinkhorn",
    description="entropic OT via probability-domain Sinkhorn-Knopp "
                "scaling (auto-falls back to the log domain)")
def _solve_sinkhorn(problem: OTProblem, *, epsilon: float = 1e-2,
                    max_iter: int = 10_000, tol: float = 1e-9,
                    raise_on_failure: bool = False,
                    backend=None) -> OTResult:
    outcome = _sinkhorn_impl(problem.cost_matrix(), problem.source_weights,
                             problem.target_weights, epsilon=epsilon,
                             max_iter=max_iter, tol=tol,
                             raise_on_failure=raise_on_failure,
                             backend=backend)
    return _finish(problem, outcome.plan, converged=outcome.converged,
                   n_iter=outcome.iterations,
                   extras={"epsilon": epsilon, "tol": tol})


@register_batch_solver("sinkhorn")
def _solve_sinkhorn_batch(batch: OTBatch, *, epsilon: float = 1e-2,
                          max_iter: int = 10_000, tol: float = 1e-9,
                          raise_on_failure: bool = False,
                          backend=None) -> list:
    """Stacked probability-domain Sinkhorn for a same-shape batch.

    All cells iterate as one ``(B, n, m)`` einsum chain
    (:func:`repro.ot.sinkhorn.batched_sinkhorn`) with per-problem
    convergence masking; each cell's result agrees with its per-cell
    ``solve`` counterpart to ~1e-12 (asserted by
    ``tests/ot/test_batch.py``).  The cost stack is built per problem —
    equal shapes do **not** imply equal grids — and collapses to a
    single shared cost matrix only when
    :attr:`~repro.ot.problem.OTBatch.has_shared_grid` certifies that
    every cell lives on identical supports with one cost recipe.
    """
    problems = list(batch)
    outcomes = _batched_sinkhorn_impl(
        _entropic_cost_stack(batch), batch.source_weight_stack(),
        batch.target_weight_stack(), epsilon=epsilon, max_iter=max_iter,
        tol=tol, raise_on_failure=raise_on_failure, backend=backend)
    return [_finish(problem, outcome.plan, converged=outcome.converged,
                    n_iter=outcome.iterations,
                    extras={"epsilon": epsilon, "tol": tol})
            for problem, outcome in zip(problems, outcomes)]


@register_solver(
    "sinkhorn_log",
    description="entropic OT, log-domain stabilised (survives very small "
                "epsilon)")
def _solve_sinkhorn_log(problem: OTProblem, *, epsilon: float = 1e-2,
                        max_iter: int = 10_000, tol: float = 1e-9,
                        raise_on_failure: bool = False,
                        backend=None) -> OTResult:
    outcome = _sinkhorn_log_impl(problem.cost_matrix(),
                                 problem.source_weights,
                                 problem.target_weights, epsilon=epsilon,
                                 max_iter=max_iter, tol=tol,
                                 raise_on_failure=raise_on_failure,
                                 backend=backend)
    return _finish(problem, outcome.plan, converged=outcome.converged,
                   n_iter=outcome.iterations,
                   extras={"epsilon": epsilon, "tol": tol})


@register_batch_solver("sinkhorn_log")
def _solve_sinkhorn_log_batch(batch: OTBatch, *, epsilon: float = 1e-2,
                              max_iter: int = 10_000, tol: float = 1e-9,
                              raise_on_failure: bool = False,
                              backend=None) -> list:
    """Stacked log-domain Sinkhorn for a same-shape batch.

    One backend ``logsumexp`` over the ``(B, n, m)`` stack per
    half-sweep (:func:`repro.ot.sinkhorn.batched_sinkhorn_log`), with
    the same per-problem masking and per-problem cost stacking as the
    probability-domain kernel.
    """
    problems = list(batch)
    outcomes = _batched_sinkhorn_log_impl(
        _entropic_cost_stack(batch), batch.source_weight_stack(),
        batch.target_weight_stack(), epsilon=epsilon, max_iter=max_iter,
        tol=tol, raise_on_failure=raise_on_failure, backend=backend)
    return [_finish(problem, outcome.plan, converged=outcome.converged,
                    n_iter=outcome.iterations,
                    extras={"epsilon": epsilon, "tol": tol})
            for problem, outcome in zip(problems, outcomes)]


def _entropic_cost_stack(batch: OTBatch) -> np.ndarray:
    """The ``(B, n, m)`` — or shared ``(1, n, m)`` — cost stack of a
    same-shape batch.

    The regression rule here (grids, not shapes): a batch kernel may
    only assume a common cost when every problem's *supports* are
    identical and the cost recipe matches —
    :attr:`~repro.ot.problem.OTBatch.has_shared_grid`, which is strictly
    stronger than the shape-keyed grouping ``solve_many`` batches by.
    Everything else gets its own cost matrix in the stack.
    """
    problems = list(batch)
    first = problems[0]
    if len(problems) > 1:
        if first.cost is not None and all(
                problem.cost is first.cost for problem in problems[1:]):
            # One explicit cost *object* shared by every problem (the
            # joint design's per-group layout) — identity is the
            # certificate, no grid needed.
            return first.cost_matrix()[None, :, :]
        if batch.has_shared_grid and all(
                _same_cost_recipe(problem, first)
                for problem in problems[1:]):
            return first.cost_matrix()[None, :, :]
    return np.stack([problem.cost_matrix() for problem in problems])


def _same_cost_recipe(problem: OTProblem, reference: OTProblem) -> bool:
    """True when the two problems provably build the same cost matrix
    from the same supports (no explicit matrices; identical metric or
    the very same callable)."""
    if problem.cost is not None or reference.cost is not None:
        return False
    if callable(problem.cost_fn) or callable(reference.cost_fn):
        return problem.cost_fn is reference.cost_fn
    return (problem.metric, problem.p) == (reference.metric, reference.p)


@register_solver(
    "screened",
    description="Sinkhorn-screened sparse hybrid: entropic solve prunes "
                "the support to top-k per row/column, then an exact "
                "restricted LP returning a CSR-backed plan — the fast "
                "path for large supports")
def _solve_screened(problem: OTProblem, *, epsilon: float = 1e-2,
                    k: int | None = None, screen_max_iter: int = 2_000,
                    screen_tol: float = 1e-6,
                    epsilon_scaling: bool | str = "auto",
                    n_scales: int = 4,
                    restricted_engine: str = "network_simplex") -> OTResult:
    """The POT-style hybrid: approximate globally, solve exactly locally.

    The entropic plan concentrates its mass near the unregularised
    optimum, so keeping only its ``k`` largest entries per row and per
    column yields a sparse support that almost surely contains the exact
    optimal basis; the exact solve restricted to that support has
    ``O(k·n)`` variables instead of ``n·m``.  A north-west-corner
    coupling is unioned into the support so the restriction is always
    feasible, and a caller-supplied ``support_mask`` is unioned in as
    additional support to include (see
    :class:`~repro.ot.problem.OTProblem`).

    ``restricted_engine`` selects the exact engine for the restricted
    solve: the native sparse arc-list network simplex
    (:func:`~repro.ot.network_simplex.network_simplex_arcs`, the
    default), ``"lp"`` for the scipy HiGHS oracle it is differentially
    tested against, ``"banded"`` for the O(n + m) monotone band kernel
    (exact only for convex metric costs on sorted 1-D supports whose
    screened support is a contiguous band — anything else falls back to
    the simplex), or ``"auto"`` to pick banded exactly when that
    certificate holds.

    ``epsilon_scaling=True`` runs the Sinkhorn screen as an annealing
    loop instead of a single cold solve: ``n_scales`` geometrically
    decreasing regularisation strengths from ``1.0`` (relative; the
    screen rescales by the max cost internally) down to ``epsilon``,
    each scale warm-started from the previous scale's scaling vectors
    via the classical ``u ** (ε_prev / ε_next)`` transfer.  The small-
    ``epsilon`` screens that stall from a cold start — the sharpest,
    most selective supports — then converge in a fraction of the
    iterations.  The default ``"auto"`` switches the annealing on from
    :data:`EPSILON_SCALING_AUTO_LIMIT` states per marginal.  With the
    network-simplex engine the annealing loop additionally carries a
    spanning-tree basis across the scales: each intermediate scale's
    top-``k`` support is solved exactly, warm-started from the previous
    scale's basis, so the final (sharpest) restricted solve starts one
    or two pivots from optimal.

    Very large 1-D problems with a convex metric-family cost (past
    :data:`SCREEN_BAND_LIMIT` states) skip the entropic screen entirely
    for a geometric *band* screen around the sorted staircase — see
    :data:`SCREEN_BAND_LIMIT`; that path never materialises the dense
    cost matrix, which is what lets screened cells scale to
    ``n_Q ~ 10^5``.
    """
    mu = problem.source_weights
    nu = problem.target_weights
    n, m = problem.shape
    if k is None:
        k = default_screen_k(n, m)
    if epsilon_scaling == "auto":
        epsilon_scaling = max(n, m) >= EPSILON_SCALING_AUTO_LIMIT
    elif not isinstance(epsilon_scaling, (bool, np.bool_)):
        raise ValidationError(
            "epsilon_scaling must be a bool or 'auto', got "
            f"{epsilon_scaling!r}")
    if (max(n, m) > SCREEN_BAND_LIMIT and problem.is_one_dimensional
            and problem.has_metric_cost
            and (problem.cost_fn is None
                 or problem.cost_fn in _MONOTONE_METRICS)):
        return _screened_band(problem, k=int(k), epsilon=epsilon,
                              restricted_engine=restricted_engine)
    cost = problem.cost_matrix()
    state = None
    stage_pivots: list[int] = []
    on_stage = None
    if epsilon_scaling and restricted_engine == "network_simplex":
        # Carry a spanning-tree basis across the annealing scales: each
        # intermediate screen's support is solved exactly, warm-started
        # from the previous scale's basis, and the final solve below
        # inherits the last one.
        def on_stage(stage) -> None:
            nonlocal state
            rows, cols = np.nonzero(
                _screen_topk_mask(stage.plan, k, problem, mu, nu))
            outcome = network_simplex_arcs(rows, cols, cost[rows, cols],
                                           mu, nu, init=state)
            state = outcome.state
            stage_pivots.append(int(outcome.pivots))
    if epsilon_scaling:
        screened, screen_info = _epsilon_scaled_screen(
            cost, mu, nu, epsilon=epsilon, n_scales=n_scales,
            max_iter=screen_max_iter, tol=screen_tol, on_stage=on_stage)
    else:
        screened = _sinkhorn_impl(cost, mu, nu, epsilon=epsilon,
                                  max_iter=screen_max_iter,
                                  tol=screen_tol, raise_on_failure=False)
        screen_info = {"screen_iterations": screened.iterations}
    mask = _screen_topk_mask(screened.plan, k, problem, mu, nu)
    rows, cols = np.nonzero(mask)
    # The restricted solve's plan lives on a tiny support, so return it
    # CSR-backed: downstream consumers (TransportPlan sampling, v2 plan
    # archives) then stay O(nnz) instead of O(n*m).  Dense problems small
    # enough for the plan to exceed the density threshold stay dense.
    matrix, nit, value, state, engine_used = _restricted_exact_entries(
        cost[rows, cols], rows, cols, (n, m), mu, nu,
        engine=restricted_engine, init=state, sparse_output=True,
        monotone_certified=_banded_certifiable(problem))
    if sparse.issparse(matrix) \
            and matrix.nnz / float(n * m) > SPARSE_DENSITY_THRESHOLD:
        matrix = matrix.toarray()
    extras = {"epsilon": epsilon, "k": int(k),
              "restricted_engine": engine_used,
              "screen_method": "sinkhorn",
              "support_size": int(mask.sum()),
              "support_density": float(mask.mean()),
              "screen_converged": screened.converged,
              "screen_residual": float(screened.residual),
              **screen_info}
    if stage_pivots:
        extras["stage_pivots"] = stage_pivots
    if state is not None:
        extras["state"] = state
    # The restricted solve is exact on its support, but the support
    # quality depends on the screen: an unconverged screen may have
    # missed the optimal basis, so the overall result must not claim
    # convergence — unless the mask ended up covering the full support,
    # where the restricted solve *is* the dense one and the optimum is
    # certain.
    return _finish(problem, matrix, value=value,
                   converged=screened.converged or bool(mask.all()),
                   n_iter=nit, extras=extras)


def default_screen_k(n: int, m: int) -> int:
    """The screened solver's default top-``k`` per row/column.

    Tuned from the committed sweep in
    ``benchmarks/results/screened_k_sweep.txt``, which measures both of
    the solver's regimes: on metric design cells (the library workload)
    every ``k`` is staircase-certified exact, so only support economy
    matters; on adversarial supports (where the screen does all the
    work) the objective error vs the dense LP falls off a cliff below
    ``log2`` of the marginal size plus a safety margin and shows
    diminishing returns past it, while the restricted-solve cost keeps
    growing linearly in ``k`` — so the default sits at that elbow.
    """
    return max(5, int(np.ceil(np.log2(max(n, m)))) + 8)


def _screen_topk_mask(plan: np.ndarray, k: int, problem: OTProblem,
                      mu: np.ndarray, nu: np.ndarray) -> np.ndarray:
    """Top-``k``-per-row/column support of an entropic plan, with the
    caller's ``support_mask`` and the NW feasibility staircase unioned
    in — the screened solver's mask recipe, shared by the final solve
    and the per-scale warm-start solves."""
    n, m = plan.shape
    k_row = min(k, m)
    k_col = min(k, n)
    mask = np.zeros((n, m), dtype=bool)
    top_rows = np.argpartition(plan, m - k_row, axis=1)[:, m - k_row:]
    mask[np.arange(n)[:, None], top_rows] = True
    top_cols = np.argpartition(plan, n - k_col, axis=0)[n - k_col:, :]
    mask[top_cols, np.arange(m)[None, :]] = True
    if problem.support_mask is not None:
        mask |= problem.support_mask
    mask |= north_west_corner(mu, nu) > 0.0
    return mask


def _band_screen_support(problem: OTProblem,
                         k: int) -> tuple[np.ndarray, np.ndarray]:
    """Index-sparse band support for large 1-D convex-metric problems.

    Walks the north-west-corner staircase of the *sorted* marginals —
    the monotone optimal support for convex ``|x - y|^p`` costs — and
    adds a cross-shaped band of half-width ``max(k // 2, 1)`` around
    each staircase arc (both along the row and along the column), mapped
    back to the caller's support order.  ``O((n + m) · k)`` arcs, no
    ``(n, m)`` intermediate.
    """
    mu = problem.source_weights
    nu = problem.target_weights
    n, m = problem.shape
    source_order = np.argsort(problem.source_support.ravel(), kind="stable")
    target_order = np.argsort(problem.target_support.ravel(), kind="stable")
    srows, scols, _ = _staircase_walk(mu[source_order], nu[target_order])
    width = max(k // 2, 1)
    offsets = np.arange(-width, width + 1)
    band_rows = np.concatenate([
        np.repeat(srows, offsets.size),
        np.clip(srows[:, None] + offsets, 0, n - 1).ravel()])
    band_cols = np.concatenate([
        np.clip(scols[:, None] + offsets, 0, m - 1).ravel(),
        np.repeat(scols, offsets.size)])
    rows = source_order[band_rows]
    cols = target_order[band_cols]
    if problem.support_mask is not None:
        mask_rows, mask_cols = np.nonzero(problem.support_mask)
        rows = np.concatenate([rows, mask_rows])
        cols = np.concatenate([cols, mask_cols])
    keys = np.unique(rows.astype(np.int64) * m + cols)
    return keys // m, keys % m


def _screened_band(problem: OTProblem, *, k: int, epsilon: float,
                   restricted_engine: str) -> OTResult:
    """The screened solver's large-1-D path: geometric band screen plus
    an exact restricted solve, entirely index-sparse.

    The band provably contains a monotone optimal basis (see
    :data:`SCREEN_BAND_LIMIT`), so unlike the entropic screen this one
    is certain: ``screen_converged`` is structurally ``True`` and the
    result is exact.
    """
    mu = problem.source_weights
    nu = problem.target_weights
    n, m = problem.shape
    rows, cols = _band_screen_support(problem, k)
    cost_values = _arc_cost_entries(problem, rows, cols)
    matrix, nit, value, state, engine_used = _restricted_exact_entries(
        cost_values, rows, cols, (n, m), mu, nu,
        engine=restricted_engine, sparse_output=True,
        monotone_certified=_banded_certifiable(problem))
    density = rows.size / float(n * m)
    if sparse.issparse(matrix) and density > SPARSE_DENSITY_THRESHOLD:
        matrix = matrix.toarray()
    extras = {"epsilon": epsilon, "k": int(k),
              "restricted_engine": engine_used,
              "screen_method": "band",
              "support_size": int(rows.size),
              "support_density": float(density),
              "screen_converged": True,
              "screen_residual": 0.0,
              "screen_iterations": 0}
    if state is not None:
        extras["state"] = state
    return _finish(problem, matrix, value=value, converged=True,
                   n_iter=nit, extras=extras)


#: Starting strength of the screened solver's epsilon-scaling loop,
#: relative to the internally rescaled cost (1.0 means the Gibbs kernel
#: starts at the max-cost temperature — a few iterations to converge).
EPSILON_SCALING_START = 1.0


def _epsilon_scaled_screen(cost, mu, nu, *, epsilon: float, n_scales: int,
                           max_iter: int, tol: float,
                           on_stage=None) -> tuple:
    """Annealed Sinkhorn screen: geometric epsilon schedule + warm starts.

    Runs the probability-domain screen at ``n_scales`` strengths from
    :data:`EPSILON_SCALING_START` down to ``epsilon``; each scale is
    warm-started from the previous scale's scaling vectors through the
    classical ``u ** (ε_prev / ε_next)`` potential transfer (the dual
    potentials ``ε·log u`` are carried over unchanged).  Intermediate
    scales run at a loosened tolerance — only the final scale must meet
    ``tol``.  Returns ``(final SinkhornResult, extras dict)`` with the
    cumulative iteration count and the schedule length.

    ``on_stage``, when given, is called with each *intermediate* scale's
    :class:`~repro.ot.sinkhorn.SinkhornResult` (the final scale's result
    is returned, not called back) — the screened solver uses it to carry
    a network-simplex basis across the scales.
    """
    if not isinstance(n_scales, (int, np.integer)) or n_scales < 1:
        raise ValidationError(
            f"n_scales must be a positive integer, got {n_scales!r}")
    if epsilon >= EPSILON_SCALING_START or n_scales == 1:
        schedule = [float(epsilon)]
    else:
        schedule = list(np.geomspace(EPSILON_SCALING_START, epsilon,
                                     int(n_scales)))
        schedule[-1] = float(epsilon)  # geomspace round-off
    total_iterations = 0
    init = None
    result = None
    for index, eps in enumerate(schedule):
        last = index == len(schedule) - 1
        result = _sinkhorn_impl(
            cost, mu, nu, epsilon=eps, max_iter=max_iter,
            tol=tol if last else max(tol, 1e-4),
            raise_on_failure=False, init=init)
        total_iterations += result.iterations
        init = None
        if not last and on_stage is not None:
            on_stage(result)
        if not last and result.scalings is not None:
            # Transfer the dual potentials: u_next = u ** (ε/ε_next).
            # Worked in log space and gauge-centred — the plan is
            # invariant under (u·c, v/c), so shifting keeps the
            # amplified exponents inside float range.
            ratio = eps / schedule[index + 1]
            with np.errstate(divide="ignore"):
                log_u = ratio * np.log(result.scalings[0])
                log_v = ratio * np.log(result.scalings[1])
            finite_u = log_u[np.isfinite(log_u)]
            finite_v = log_v[np.isfinite(log_v)]
            if finite_u.size and finite_v.size:
                # Balance the two peaks: shifting u by -s and v by +s
                # leaves the plan unchanged, so put both maxima at the
                # same height to dodge overflow on either side.
                shift = (np.max(finite_u) - np.max(finite_v)) / 2.0
                log_u = log_u - shift
                log_v = log_v + shift
            with np.errstate(over="ignore"):
                u0, v0 = np.exp(log_u), np.exp(log_v)
            if np.all(np.isfinite(u0)) and np.all(np.isfinite(v0)):
                init = (u0, v0)
            # else: restart the next scale cold rather than poison it.
    return result, {"screen_iterations": total_iterations,
                    "epsilon_scaling": True,
                    "n_scales": len(schedule)}


@register_solver(
    "auto",
    description="structure-based dispatch: monotone closed form for 1-D "
                "convex costs, simplex for small dense problems, LP for "
                "medium, screened hybrid for large supports, multiscale "
                "for very large 1-D metric-cost grids")
def _solve_auto(problem: OTProblem, **opts) -> OTResult:
    """Resolvable name for the default dispatch (so registry consumers
    like ``design_repair(solver="auto")`` work uniformly).

    Options are forwarded to the dispatched solver filtered by its
    signature (:func:`~repro.ot.registry.filter_opts`), so callers may
    pass e.g. ``epsilon`` without knowing whether dispatch will land on
    an entropic method (which uses it) or an exact one (which has no
    such knob).
    """
    target = resolve_solver(auto_method(problem))
    inner = solve(problem, method=target, **filter_opts(target, opts))
    return replace(inner,
                   extras={**inner.extras, "dispatched_to": inner.solver})


#: Engine names `_restricted_exact_entries` accepts (and the public
#: ``restricted_engine=`` knob of the screened/multiscale hybrids).
RESTRICTED_ENGINES = ("network_simplex", "lp", "banded", "auto")


def _banded_certifiable(problem: OTProblem) -> bool:
    """True when the ``"banded"`` restricted engine is provably exact
    for ``problem``: 1-D supports, a convex ``|x - y|^p``-family cost
    derived from them, and both supports already in sorted order (the
    banded kernel works in index space, so index order must *be*
    support order for the monotone staircase to be optimal)."""
    if not problem.is_one_dimensional or not problem.has_metric_cost:
        return False
    if problem.cost_fn is not None \
            and problem.cost_fn not in _MONOTONE_METRICS:
        return False
    return (bool(np.all(np.diff(problem.source_support.ravel()) >= 0.0))
            and bool(np.all(np.diff(problem.target_support.ravel())
                            >= 0.0)))


def _restricted_banded_entries(cost_values: np.ndarray, rows: np.ndarray,
                               cols: np.ndarray, shape: tuple,
                               mu: np.ndarray, nu: np.ndarray, *,
                               sparse_output: bool):
    """The banded fast path of :func:`_restricted_exact_entries`.

    Certifies that the arc list is a monotone contiguous band
    (:func:`~repro.ot.coupling.is_banded`), runs the O(n + m)
    north-west-corner-with-repair kernel
    (:func:`~repro.ot.onedim.banded_monotone_transport`), and prices the
    result against ``cost_values`` through the band's closed-form arc
    positions — no cost matrix, no pivots.  Returns ``None`` when the
    certificate or the in-band feasibility check fails (the caller then
    falls back to the network simplex), else ``(matrix, n_iter,
    value)``.
    """
    n, m = shape
    keys = np.asarray(rows, dtype=np.int64) * m + np.asarray(cols)
    if keys.size > 1 and np.any(np.diff(keys) <= 0):
        # Pricing below maps band positions into `cost_values` closed-
        # form, which needs the lex-sorted deduped arc lists every
        # hybrid caller produces; anything else goes to the simplex.
        return None
    if not is_banded(rows, cols, shape):
        return None
    lower, upper = band_bounds(rows, cols, shape)
    try:
        brows, bcols, masses = banded_monotone_transport(mu, nu, lower,
                                                         upper)
    except InfeasibleProblemError:
        return None
    # Certified band: arcs are lex-sorted with row i occupying the
    # contiguous slice starting at `starts[i]`, so the position of arc
    # (i, j) in `cost_values` is closed-form.
    counts = upper - lower + 1
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    entry_costs = cost_values[starts[brows] + (bcols - lower[brows])]
    value = float(np.dot(masses, entry_costs))
    if sparse_output:
        matrix = sparse.csr_array((masses, (brows, bcols)), shape=(n, m))
        matrix.eliminate_zeros()
    else:
        matrix = np.zeros((n, m))
        np.add.at(matrix, (brows, bcols), masses)
    return matrix, 1, value


def _restricted_exact_entries(cost_values: np.ndarray, rows: np.ndarray,
                              cols: np.ndarray, shape: tuple,
                              mu: np.ndarray, nu: np.ndarray, *,
                              engine: str = "network_simplex",
                              init: NetworkSimplexState | None = None,
                              presolve_retry: bool = True,
                              sparse_output: bool = False,
                              monotone_certified: bool = False):
    """Exact solve over an explicit arc list, dispatched by engine.

    The single restricted-solve entry point behind the ``"screened"``
    and ``"multiscale"`` hybrids.  ``engine="network_simplex"`` runs the
    native sparse arc-list network simplex
    (:func:`~repro.ot.network_simplex.network_simplex_arcs`), which
    accepts a warm-start basis via ``init``; ``engine="lp"`` keeps the
    scipy HiGHS oracle (``init`` is then ignored); ``engine="banded"``
    runs the O(n + m) monotone band kernel
    (:func:`~repro.ot.onedim.banded_monotone_transport`) when the
    caller certifies monotone optimality (``monotone_certified`` — a
    convex metric cost on sorted 1-D supports, see
    :func:`_banded_certifiable`) *and* the arc list is structurally a
    monotone band (:func:`~repro.ot.coupling.is_banded`), falling back
    to the network simplex otherwise; ``engine="auto"`` picks
    ``"banded"`` exactly when ``monotone_certified`` and the simplex
    otherwise.  Returns ``(matrix, n_iter, value, state, engine_used)``
    where ``state`` is the network-simplex basis for reuse (``None``
    for the LP and banded paths) and ``engine_used`` names the engine
    that actually solved (so callers can report banded fallbacks).
    """
    if engine not in RESTRICTED_ENGINES:
        raise ValidationError(
            "restricted_engine must be one of "
            f"{RESTRICTED_ENGINES}, got {engine!r}")
    if engine == "auto":
        engine = "banded" if monotone_certified else "network_simplex"
    if engine == "lp":
        matrix, nit, value = _restricted_lp_entries(
            cost_values, rows, cols, shape, mu, nu,
            presolve_retry=presolve_retry, sparse_output=sparse_output)
        return matrix, nit, value, None, "lp"
    if engine == "banded":
        solved = None
        if monotone_certified:
            solved = _restricted_banded_entries(
                cost_values, rows, cols, shape, mu, nu,
                sparse_output=sparse_output)
        if solved is not None:
            matrix, nit, value = solved
            return matrix, nit, value, None, "banded"
        # Not certified (non-metric cost, unsorted supports, holes in
        # the band): the simplex prices arbitrary sparse arc lists.
    outcome = network_simplex_arcs(rows, cols, cost_values, mu, nu,
                                   init=init)
    n, m = shape
    if sparse_output:
        matrix = sparse.csr_array((outcome.flows, (rows, cols)),
                                  shape=(n, m))
        matrix.eliminate_zeros()
    else:
        matrix = np.zeros((n, m))
        matrix[rows, cols] = outcome.flows
    return (matrix, outcome.pivots, outcome.value, outcome.state,
            "network_simplex")


def _restricted_lp_matrix(cost: np.ndarray, mu: np.ndarray, nu: np.ndarray,
                          mask: np.ndarray, *,
                          presolve_retry: bool = True,
                          sparse_output: bool = False):
    """Exact LP over only the ``mask``-allowed coupling entries.

    With ``sparse_output`` the plan comes back as a CSR sparse array
    holding just the optimal-basis entries (zeros eliminated) — the plan
    is never materialised densely.
    """
    rows, cols = np.nonzero(mask)
    matrix, nit, _ = _restricted_lp_entries(
        cost[rows, cols], rows, cols, cost.shape, mu, nu,
        presolve_retry=presolve_retry, sparse_output=sparse_output)
    return matrix, nit


def _restricted_lp_entries(cost_values: np.ndarray, rows: np.ndarray,
                           cols: np.ndarray, shape: tuple, mu: np.ndarray,
                           nu: np.ndarray, *, presolve_retry: bool = True,
                           sparse_output: bool = False):
    """Exact LP over an explicit list of allowed coupling entries.

    The support is given directly as parallel ``rows`` / ``cols`` index
    arrays with ``cost_values`` holding the ground cost at exactly those
    entries, so callers that can evaluate the cost pointwise (the
    multiscale solver on metric-family costs) never build the dense
    ``(n, m)`` cost matrix.  Returns ``(matrix, n_iter, value)`` where
    ``value`` is the LP objective of the returned plan.
    """
    nnz = rows.size
    data = np.ones(nnz)
    variable_ids = np.arange(nnz)
    n, m = shape
    a_rows = sparse.coo_matrix((data, (rows, variable_ids)),
                               shape=(n, nnz)).tocsr()
    # Final column constraint dropped: redundant in the balanced problem.
    a_cols = sparse.coo_matrix((data, (cols, variable_ids)),
                               shape=(m, nnz)).tocsr()[:-1]
    a_eq = sparse.vstack([a_rows, a_cols], format="csr")
    b_eq = np.concatenate([mu, nu[:-1]])
    result = _linprog_with_presolve_retry(
        cost_values, a_eq, b_eq, what="the restricted transport LP",
        presolve_retry=presolve_retry)
    values = np.clip(result.x, 0.0, None)
    value = float(np.dot(cost_values, values))
    nit = int(getattr(result, "nit", 0) or 0)
    if sparse_output:
        matrix = sparse.csr_array((values, (rows, cols)), shape=(n, m))
        matrix.eliminate_zeros()
        return matrix, nit, value
    matrix = np.zeros((n, m))
    matrix[rows, cols] = values
    return matrix, nit, value
