"""Ground-cost construction for discrete optimal transport.

The Kantorovich problem (paper Eq. 5/13) needs a cost matrix
``C[i, j] = c(x_i, y_j)`` over the product of the two supports.  The paper
uses ``c = ||x - y||_p^p`` with ``p = 2`` (squared Euclidean), which induces
the Wasserstein-2 metric; this module provides that family plus a few other
standard ground costs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .._validation import as_2d_array, check_positive_int
from ..exceptions import ValidationError

__all__ = [
    "cost_matrix",
    "pointwise_cost",
    "squared_euclidean_cost",
    "euclidean_cost",
    "lp_cost",
    "make_cost_function",
]


def _pairwise_differences(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Return the (n, m, d) array of coordinate differences."""
    return source[:, None, :] - target[None, :, :]


def squared_euclidean_cost(source, target) -> np.ndarray:
    """``C[i, j] = ||x_i - y_j||_2^2`` — the paper's choice (W2 ground cost).

    Uses the expanded form ``||x||^2 + ||y||^2 - 2 x.y`` for efficiency and
    clamps tiny negative round-off to zero.
    """
    xs = as_2d_array(source, name="source")
    ys = as_2d_array(target, name="target")
    _check_same_dim(xs, ys)
    sq_x = np.sum(xs * xs, axis=1)[:, None]
    sq_y = np.sum(ys * ys, axis=1)[None, :]
    cost = sq_x + sq_y - 2.0 * (xs @ ys.T)
    np.clip(cost, 0.0, None, out=cost)
    return cost


def euclidean_cost(source, target) -> np.ndarray:
    """``C[i, j] = ||x_i - y_j||_2`` (W1 ground cost)."""
    return np.sqrt(squared_euclidean_cost(source, target))


def lp_cost(source, target, p: int = 2) -> np.ndarray:
    """``C[i, j] = ||x_i - y_j||_p^p`` for integer ``p >= 1``.

    ``p = 1`` gives the Manhattan cost; ``p = 2`` the squared Euclidean cost.
    """
    p = check_positive_int(p, name="p")
    xs = as_2d_array(source, name="source")
    ys = as_2d_array(target, name="target")
    _check_same_dim(xs, ys)
    if p == 2:
        return squared_euclidean_cost(xs, ys)
    diff = np.abs(_pairwise_differences(xs, ys))
    return np.sum(diff ** p, axis=2)


def cost_matrix(source, target, *, metric: str = "sqeuclidean",
                p: int = 2) -> np.ndarray:
    """Build a cost matrix between two discrete supports.

    Parameters
    ----------
    source, target:
        Arrays of shape ``(n, d)`` / ``(m, d)`` (1-D inputs are treated as
        ``d = 1``).
    metric:
        One of ``"sqeuclidean"`` (default, the paper's ``C = L2^2``),
        ``"euclidean"``, or ``"lp"`` (uses ``p``).
    """
    if metric == "sqeuclidean":
        return squared_euclidean_cost(source, target)
    if metric == "euclidean":
        return euclidean_cost(source, target)
    if metric == "lp":
        return lp_cost(source, target, p)
    raise ValidationError(
        f"unknown metric {metric!r}; expected 'sqeuclidean', 'euclidean' "
        "or 'lp'")


def pointwise_cost(source, target, *, metric: str = "sqeuclidean",
                   p: int = 2) -> np.ndarray:
    """``c(x_i, y_i)`` for *paired* points — the pointwise counterpart
    of :func:`cost_matrix`, sharing its metric names and semantics.

    ``source`` and ``target`` are ``(k, d)`` (or ``(k,)``) arrays of
    equal length; the result is the length-``k`` vector of per-pair
    costs.  Sparse-support solvers use this to evaluate the ground cost
    at exactly their support entries without materialising the full
    ``(n, m)`` matrix.
    """
    xs = as_2d_array(source, name="source")
    ys = as_2d_array(target, name="target")
    _check_same_dim(xs, ys)
    if xs.shape[0] != ys.shape[0]:
        raise ValidationError(
            "pointwise_cost pairs points one-to-one; got "
            f"{xs.shape[0]} source vs {ys.shape[0]} target points")
    diff = xs - ys
    if metric == "sqeuclidean" or (metric == "lp" and p == 2):
        return np.sum(diff * diff, axis=1)
    if metric == "euclidean":
        return np.sqrt(np.sum(diff * diff, axis=1))
    if metric == "lp":
        p = check_positive_int(p, name="p")
        return np.sum(np.abs(diff) ** p, axis=1)
    raise ValidationError(
        f"unknown metric {metric!r}; expected 'sqeuclidean', 'euclidean' "
        "or 'lp'")


def make_cost_function(metric: str = "sqeuclidean",
                       p: int = 2) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Return a two-argument callable computing :func:`cost_matrix`.

    Convenient for APIs (e.g. Algorithm 1) that accept a pluggable cost.
    """
    def _cost(source, target):
        return cost_matrix(source, target, metric=metric, p=p)

    _cost.__name__ = f"cost_{metric}"
    return _cost


def _check_same_dim(xs: np.ndarray, ys: np.ndarray) -> None:
    if xs.shape[1] != ys.shape[1]:
        raise ValidationError(
            "source and target must share the feature dimension "
            f"({xs.shape[1]} != {ys.shape[1]})")
