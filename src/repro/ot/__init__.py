"""Optimal-transport substrate with a single unified entry point.

Every discrete OT solve in the library goes through one facade::

    from repro.ot import OTProblem, solve

    problem = OTProblem(source_weights=mu, target_weights=nu,
                        source_support=xs, target_support=ys)
    result = solve(problem)               # method="auto"
    result.plan        # TransportPlan coupling
    result.value       # <C, plan>
    result.converged   # solver met its tolerance
    result.solver      # which registered solver ran

``solve`` is backed by a pluggable registry: ``method=`` accepts any
registered name (``available_solvers()`` lists them), a bare callable, or
a :class:`~repro.ot.registry.Solver`.  New solvers plug in with the
:func:`~repro.ot.registry.register_solver` decorator — no core changes
needed.  ``method="auto"`` dispatches on problem structure: the
closed-form monotone coupling for 1-D convex costs, the dense simplex for
small problems, the HiGHS LP for medium ones, and the Sinkhorn-screened
sparse hybrid (``"screened"``) for large supports.

Modules
-------

* :mod:`~repro.ot.problem` — :class:`OTProblem` / :class:`OTResult`.
* :mod:`~repro.ot.registry` — the pluggable solver registry.
* :mod:`~repro.ot.solve` — the facade and the built-in solvers.
* :mod:`~repro.ot.cost` — ground-cost matrices (``L_p^p`` family).
* :mod:`~repro.ot.coupling` — :class:`TransportPlan` container.
* :mod:`~repro.ot.onedim` — closed-form 1-D OT (monotone couplings).
* :mod:`~repro.ot.network_simplex` — exact general solvers (dense
  MODI simplex + sparse arc-list network simplex with warm starts).
* :mod:`~repro.ot.lp` — scipy ``linprog`` oracle.
* :mod:`~repro.ot.sinkhorn` — entropic OT.
* :mod:`~repro.ot.multiscale` — coarsen-solve-refine sparse hybrid.
* :mod:`~repro.ot.barycenter` — W2 barycentres / geodesics.
* :mod:`~repro.ot.wasserstein` — ``W_p`` distances.

The historical per-solver entry points (``solve_1d``, ``solve_transport``,
``transport_simplex``, ``solve_transport_lp``, ``solve_sinkhorn``) remain
available as thin shims over :func:`solve`.
"""

from .barycenter import (barycenter_1d, geodesic_point_1d, project_onto_grid,
                         sinkhorn_barycenter)
from .cost import (cost_matrix, euclidean_cost, lp_cost, make_cost_function,
                   pointwise_cost, squared_euclidean_cost)
from .coupling import (TransportPlan, band_bounds, dilate_mask, is_banded,
                       is_coupling, marginal_residual, refine_mask)
from .lp import solve_transport_lp, transport_lp
from .multiscale import coarsen_problem, default_coarsen_factor
from .network_simplex import (NetworkSimplexState, network_simplex_arcs,
                              refine_state, solve_transport,
                              transport_simplex)
from .onedim import (banded_monotone_transport, batched_north_west_corner,
                     monotone_map, north_west_corner,
                     north_west_corner_support, quantile_function, solve_1d,
                     wasserstein_1d)
from .problem import OTBatch, OTProblem, OTResult
from .registry import (Solver, available_solvers, backend_support,
                       batch_support, filter_opts, register_batch_solver,
                       register_solver, resolve_solver,
                       solver_descriptions, unregister_solver)
from .sinkhorn import (SinkhornResult, batched_sinkhorn,
                       batched_sinkhorn_log, sinkhorn, sinkhorn_log,
                       solve_sinkhorn)
from .sliced import random_directions, sliced_wasserstein
from .solve import auto_method, default_screen_k, solve, solve_many
from .unbalanced import sinkhorn_unbalanced
from .wasserstein import wasserstein_distance, wasserstein_sample_distance

__all__ = [
    "NetworkSimplexState",
    "OTBatch",
    "OTProblem",
    "OTResult",
    "SinkhornResult",
    "Solver",
    "TransportPlan",
    "auto_method",
    "available_solvers",
    "backend_support",
    "band_bounds",
    "banded_monotone_transport",
    "barycenter_1d",
    "batch_support",
    "batched_north_west_corner",
    "batched_sinkhorn",
    "batched_sinkhorn_log",
    "coarsen_problem",
    "cost_matrix",
    "default_coarsen_factor",
    "default_screen_k",
    "dilate_mask",
    "euclidean_cost",
    "filter_opts",
    "geodesic_point_1d",
    "is_banded",
    "is_coupling",
    "lp_cost",
    "make_cost_function",
    "marginal_residual",
    "monotone_map",
    "network_simplex_arcs",
    "north_west_corner",
    "north_west_corner_support",
    "pointwise_cost",
    "project_onto_grid",
    "refine_mask",
    "refine_state",
    "quantile_function",
    "random_directions",
    "register_batch_solver",
    "register_solver",
    "resolve_solver",
    "sinkhorn",
    "sinkhorn_barycenter",
    "sinkhorn_log",
    "sinkhorn_unbalanced",
    "sliced_wasserstein",
    "solve",
    "solve_1d",
    "solve_many",
    "solve_sinkhorn",
    "solve_transport",
    "solve_transport_lp",
    "solver_descriptions",
    "squared_euclidean_cost",
    "transport_lp",
    "transport_simplex",
    "unregister_solver",
    "wasserstein_1d",
    "wasserstein_distance",
    "wasserstein_sample_distance",
]
