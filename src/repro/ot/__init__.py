"""Optimal-transport substrate.

Everything the repair algorithms need from OT, implemented from scratch:

* :mod:`~repro.ot.cost` — ground-cost matrices (``L_p^p`` family).
* :mod:`~repro.ot.coupling` — :class:`TransportPlan` container.
* :mod:`~repro.ot.onedim` — closed-form 1-D OT (monotone couplings).
* :mod:`~repro.ot.network_simplex` — exact general solver.
* :mod:`~repro.ot.lp` — scipy ``linprog`` oracle.
* :mod:`~repro.ot.sinkhorn` — entropic OT.
* :mod:`~repro.ot.barycenter` — W2 barycentres / geodesics.
* :mod:`~repro.ot.wasserstein` — ``W_p`` distances.
"""

from .barycenter import (barycenter_1d, geodesic_point_1d, project_onto_grid,
                         sinkhorn_barycenter)
from .cost import (cost_matrix, euclidean_cost, lp_cost, make_cost_function,
                   squared_euclidean_cost)
from .coupling import TransportPlan, is_coupling, marginal_residual
from .lp import solve_transport_lp, transport_lp
from .network_simplex import solve_transport, transport_simplex
from .onedim import (monotone_map, north_west_corner, quantile_function,
                     solve_1d, wasserstein_1d)
from .sinkhorn import SinkhornResult, sinkhorn, sinkhorn_log, solve_sinkhorn
from .sliced import random_directions, sliced_wasserstein
from .unbalanced import sinkhorn_unbalanced
from .wasserstein import wasserstein_distance, wasserstein_sample_distance

__all__ = [
    "TransportPlan",
    "SinkhornResult",
    "barycenter_1d",
    "cost_matrix",
    "euclidean_cost",
    "geodesic_point_1d",
    "is_coupling",
    "lp_cost",
    "make_cost_function",
    "marginal_residual",
    "monotone_map",
    "north_west_corner",
    "project_onto_grid",
    "quantile_function",
    "random_directions",
    "sinkhorn",
    "sinkhorn_barycenter",
    "sinkhorn_log",
    "sinkhorn_unbalanced",
    "sliced_wasserstein",
    "solve_1d",
    "solve_sinkhorn",
    "solve_transport",
    "solve_transport_lp",
    "squared_euclidean_cost",
    "transport_lp",
    "transport_simplex",
    "wasserstein_1d",
    "wasserstein_distance",
    "wasserstein_sample_distance",
]
