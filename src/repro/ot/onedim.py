"""Closed-form optimal transport on the real line.

For one-dimensional marginals and any convex ground cost ``c(x, y) =
h(x - y)`` (which includes every ``|x - y|^p`` with ``p >= 1``), the optimal
Kantorovich coupling is the *monotone* coupling: mass is matched in
increasing order of the supports.  On sorted discrete supports this is the
classical north-west-corner traversal, which costs ``O(n + m)`` instead of
solving a linear programme.

This module is the workhorse behind the paper's per-feature repair plans
(Algorithm 1 solves a 1-D problem for every ``(u, s, k)``) and behind the
1-D geometric-repair baseline.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_array, as_probability_vector
from ..core.backend import get_backend
from ..exceptions import InfeasibleProblemError, ValidationError
from .coupling import TransportPlan

__all__ = [
    "north_west_corner",
    "north_west_corner_support",
    "batched_north_west_corner",
    "banded_monotone_transport",
    "solve_1d",
    "wasserstein_1d",
    "quantile_function",
    "monotone_map",
]


def north_west_corner(source_weights, target_weights, *,
                      backend=None) -> np.ndarray:
    """Greedy north-west-corner coupling of two probability vectors.

    Produces the unique monotone coupling: the plan obtained by walking the
    two cumulative distributions simultaneously.  It is optimal for 1-D OT
    with convex costs *when rows and columns are in sorted support order*.

    Returns a dense ``(n, m)`` matrix; the plan has at most ``n + m - 1``
    non-zero entries.

    ``backend`` selects the compute backend (see
    :func:`repro.core.backend.get_backend`).  The default (``None``)
    keeps the historical sequential staircase walk, bit-identical to
    every release so far; any explicit backend — including ``"numpy"``
    — routes through the vectorised merged-CDF kernel
    (:func:`batched_north_west_corner` at ``B = 1``), whose tie-handling
    round-off may differ in the last ulp.
    """
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    if backend is not None:
        nx = get_backend(backend)
        rows, cols, masses = batched_north_west_corner(
            mu[None, :], nu[None, :], backend=nx)
        flat = (nx.to_numpy(rows[0]) * nu.size + nx.to_numpy(cols[0]))
        return np.bincount(flat, weights=nx.to_numpy(masses[0]),
                           minlength=mu.size * nu.size).reshape(mu.size,
                                                                nu.size)
    rows, cols, masses = _staircase_walk(mu, nu)
    plan = np.zeros((mu.size, nu.size))
    plan[rows, cols] = masses
    return plan


def _staircase_walk(mu: np.ndarray,
                    nu: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
    """The single source of truth for the north-west-corner traversal.

    Walks the two cumulative distributions simultaneously and returns
    the visited ``(rows, cols, masses)`` triplet — at most ``n + m - 1``
    entries — from which both the dense plan and the support-only view
    are derived.
    """
    rows = []
    cols = []
    masses = []
    remaining_mu = mu.copy()
    remaining_nu = nu.copy()
    i = j = 0
    while i < mu.size and j < nu.size:
        mass = min(remaining_mu[i], remaining_nu[j])
        rows.append(i)
        cols.append(j)
        masses.append(mass)
        remaining_mu[i] -= mass
        remaining_nu[j] -= mass
        # Advance whichever side was exhausted; advance both on a tie so the
        # traversal always terminates in n + m steps.
        tol = 1e-15
        if remaining_mu[i] <= tol:
            i += 1
        if remaining_nu[j] <= tol:
            j += 1
    return (np.asarray(rows, dtype=np.intp),
            np.asarray(cols, dtype=np.intp),
            np.asarray(masses, dtype=float))


def north_west_corner_support(source_weights,
                              target_weights) -> tuple[np.ndarray,
                                                       np.ndarray]:
    """Index pairs of the north-west-corner staircase, without the matrix.

    Returns ``(rows, cols)`` index arrays such that the coupling built by
    :func:`north_west_corner` is supported on exactly these entries.  The
    traversal is ``O(n + m)`` in time *and* memory, so large-support
    callers (the multiscale solver's feasibility patch) can union the
    staircase into a sparse support set without materialising the dense
    ``(n, m)`` plan.

    >>> rows, cols = north_west_corner_support([0.5, 0.5], [0.25, 0.75])
    >>> list(zip(rows.tolist(), cols.tolist()))
    [(0, 0), (0, 1), (1, 1)]
    """
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    rows, cols, _ = _staircase_walk(mu, nu)
    return rows, cols


def batched_north_west_corner(source_weight_stack, target_weight_stack,
                              *, backend=None
                              ) -> tuple[np.ndarray, np.ndarray,
                                         np.ndarray]:
    """Monotone couplings of ``B`` weight-vector pairs in one dispatch.

    The vectorised counterpart of :func:`north_west_corner` for a stack
    of same-shape problems (Algorithm 1's design cells on a shared
    ``n_Q`` grid): instead of walking each staircase in a Python loop,
    the two cumulative distributions of every problem are merged and
    sorted **once** across the whole ``(B, n + m)`` stack — a single
    chain of NumPy array operations, which is exactly the shape an
    array-API/GPU backend can later take over unchanged.

    Parameters
    ----------
    source_weight_stack, target_weight_stack:
        ``(B, n)`` / ``(B, m)`` non-negative weight stacks; each row is
        normalised to a probability vector.
    backend:
        Compute backend spec (see
        :func:`repro.core.backend.get_backend`): ``None``/``"auto"`` for
        the bit-identical numpy reference, ``"torch"``/``"cupy"`` for
        device execution, ``"array_api_strict"`` for the CI conformance
        run.  The whole traversal — cumulative sums, the merged-CDF
        stable sort, the index arithmetic — runs as backend array
        operations; only the returned arrays are backend-native (callers
        convert at the :class:`~repro.ot.coupling.TransportPlan`
        boundary via ``backend.to_numpy``).

    Returns
    -------
    (rows, cols, masses):
        ``(B, n + m)`` index/mass arrays: problem ``b``'s monotone plan
        places ``masses[b, t]`` at ``(rows[b, t], cols[b, t])``.  Entries
        are in staircase order; tie segments carry zero mass (scatter
        with accumulation, e.g. ``np.bincount``, not plain assignment).
        Arrays are native to the selected backend (numpy for the
        default).

    Every per-row operation is independent of the batch size, so the
    result for one problem is bit-identical whether it is solved alone
    (``B = 1`` — how the serial ``"exact"`` solver now runs) or inside
    any larger batch; shuffling the batch permutes the output rows and
    changes nothing else.

    >>> rows, cols, masses = batched_north_west_corner(
    ...     [[0.5, 0.5]], [[0.25, 0.75]])
    >>> keep = masses[0] > 0
    >>> list(zip(rows[0, keep].tolist(), cols[0, keep].tolist()))
    [(0, 0), (0, 1), (1, 1)]
    >>> masses[0, keep].tolist()
    [0.25, 0.25, 0.5]
    """
    nx = get_backend(backend)
    mu = nx.asarray(source_weight_stack, dtype=nx.float64)
    nu = nx.asarray(target_weight_stack, dtype=nx.float64)
    if mu.ndim == 1:
        mu = nx.reshape(mu, (1, -1))
    if nu.ndim == 1:
        nu = nx.reshape(nu, (1, -1))
    if mu.ndim != 2 or nu.ndim != 2:
        raise ValidationError(
            "weight stacks must be 2-D (B, n)/(B, m) arrays, got shapes "
            f"{tuple(mu.shape)} and {tuple(nu.shape)}")
    if mu.shape[0] != nu.shape[0]:
        raise ValidationError(
            f"weight stacks disagree on the batch size ({mu.shape[0]} != "
            f"{nu.shape[0]})")
    for name, stack in (("source", mu), ("target", nu)):
        if not bool(nx.to_numpy(nx.all(nx.isfinite(stack)))) \
                or bool(nx.to_numpy(nx.any(stack < 0.0))):
            raise ValidationError(
                f"{name} weight stack must be finite and non-negative")
    totals_mu = nx.sum(mu, axis=1, keepdims=True)
    totals_nu = nx.sum(nu, axis=1, keepdims=True)
    if bool(nx.to_numpy(nx.any(totals_mu <= 0.0))) \
            or bool(nx.to_numpy(nx.any(totals_nu <= 0.0))):
        raise ValidationError(
            "every batched weight vector needs positive total mass")
    B = mu.shape[0]
    n, m = mu.shape[1], nu.shape[1]

    # Clamp the endpoints (cf. wasserstein_1d): cumsum round-off can land
    # at 1 ± 1e-16, which would otherwise leak a stray mass segment.
    one = nx.ones((B, 1), dtype=nx.float64)
    cdf_mu = nx.concat([nx.cumsum(mu / totals_mu, axis=1)[:, :-1], one],
                       axis=1)
    cdf_nu = nx.concat([nx.cumsum(nu / totals_nu, axis=1)[:, :-1], one],
                       axis=1)

    # Merge the two CDFs: each sorted level closes one staircase segment.
    # A stable sort with the source entries first resolves ties so that
    # tie-induced duplicate segments carry zero mass.
    merged = nx.concat([cdf_mu, cdf_nu], axis=1)
    order = nx.argsort(merged, axis=1)
    levels = nx.take_along_axis(merged, order, axis=1)
    from_mu = nx.astype(order < n, nx.int64)

    # Segment t of problem b lives in source bin #{source levels < its
    # endpoint} and target bin #{target levels < its endpoint}; with the
    # running counts that is one subtraction per side.  Clipping only
    # ever touches zero-mass tie segments at the boundary.
    count_mu = nx.cumsum(from_mu, axis=1)
    count_nu = nx.reshape(nx.arange(1, n + m + 1, dtype=nx.int64),
                          (1, -1)) - count_mu
    rows = nx.minimum(count_mu - from_mu, n - 1)
    cols = nx.minimum(count_nu - (1 - from_mu), m - 1)
    masses = levels - nx.concat(
        [nx.zeros((B, 1), dtype=nx.float64), levels[:, :-1]], axis=1)
    return rows, cols, masses


def banded_monotone_transport(source_weights, target_weights, lower, upper,
                              *, atol: float = 1e-12
                              ) -> tuple[np.ndarray, np.ndarray,
                                         np.ndarray]:
    """Monotone transport restricted to a per-row column band.

    Solves the transport problem whose support is limited to the band
    ``lower[i] <= j <= upper[i]`` (inclusive, both bound sequences
    non-decreasing — the staircase-shaped supports
    :func:`repro.ot.coupling.is_banded` certifies).  This is the
    ``restricted_engine="banded"`` kernel behind the multiscale and
    screened hybrids: index-sparse, no cost matrix, no simplex pivots —
    a north-west-corner traversal with an in-band repair step, ``O(n +
    m)`` arcs of work instead of a pivot loop over the ``O(w·n)`` band.

    The mathematical shortcut: a coupling with *both* marginals exact
    and monotone (north-west) support is unique — it is the staircase
    of the two cumulative distributions.  A monotone band therefore
    admits a feasible plan exactly when the staircase fits inside it,
    and for convex ``|x - y|^p`` costs on sorted supports that plan is
    the *unrestricted* optimum, hence optimal on the band a fortiori.
    The kernel walks the merged-CDF staircase
    (:func:`batched_north_west_corner`), then repairs round-off-scale
    stray mass — staircase arcs up to ``atol`` total mass outside the
    band are clamped to the nearest band edge of their row; anything
    heavier raises :class:`~repro.exceptions.InfeasibleProblemError`
    (the band genuinely excludes the staircase, and the caller should
    fall back to an engine that can price non-monotone arcs).

    Returns ``(rows, cols, masses)`` index arrays of the optimal plan —
    at most ``n + m - 1`` entries, every one inside the band.  The
    repair step may merge mass onto an already-emitted edge cell, so
    scatter with accumulation (``np.bincount`` /
    ``scipy.sparse.csr_array``), not plain assignment.

    >>> rows, cols, masses = banded_monotone_transport(
    ...     [0.5, 0.5], [0.25, 0.75], [0, 1], [1, 1])
    >>> list(zip(rows.tolist(), cols.tolist(), masses.tolist()))
    [(0, 0, 0.25), (0, 1, 0.25), (1, 1, 0.5)]
    """
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    lo = np.asarray(lower, dtype=np.intp).ravel()
    hi = np.asarray(upper, dtype=np.intp).ravel()
    n, m = mu.size, nu.size
    if lo.size != n or hi.size != n:
        raise ValidationError(
            f"band bounds must have one entry per source state ({n}), "
            f"got {lo.size} lower and {hi.size} upper bounds")
    if lo.min() < 0 or hi.max() >= m:
        raise ValidationError(
            f"band bounds must lie in [0, {m - 1}], got "
            f"[{int(lo.min())}, {int(hi.max())}]")
    if np.any(lo > hi):
        raise ValidationError(
            "every band row needs lower <= upper; row "
            f"{int(np.argmax(lo > hi))} violates it")
    if np.any(np.diff(lo) < 0) or np.any(np.diff(hi) < 0):
        raise ValidationError(
            "band bounds must be non-decreasing (a monotone band); use "
            "the network simplex for non-monotone supports")
    rows, cols, masses = batched_north_west_corner(mu[None, :], nu[None, :])
    rows = rows[0].astype(np.intp)
    cols = cols[0].astype(np.intp)
    masses = np.asarray(masses[0], dtype=float)
    keep = masses > 0.0
    rows, cols, masses = rows[keep], cols[keep], masses[keep]
    stray = (cols < lo[rows]) | (cols > hi[rows])
    if np.any(stray):
        stray_mass = float(masses[stray].sum())
        if stray_mass > atol:
            raise InfeasibleProblemError(
                "the band excludes the monotone staircase "
                f"({stray_mass:.3e} mass outside the band > atol "
                f"{atol:.1e}); no monotone coupling fits this support")
        cols = np.clip(cols, lo[rows], hi[rows])
    return rows, cols, masses


def solve_1d(source_support, source_weights, target_support, target_weights,
             *, p: int = 2) -> TransportPlan:
    """Exact 1-D optimal transport between weighted discrete supports.

    Thin shim over :func:`repro.ot.solve` with ``method="exact"`` (the
    monotone coupling): sorts both supports, applies
    :func:`north_west_corner`, and un-sorts the result so the returned
    plan is indexed by the *original* support order.

    Parameters
    ----------
    p:
        Exponent of the ground cost ``|x - y|^p`` used only to report the
        optimal cost; the plan itself is identical for every ``p >= 1``.
    """
    from .problem import OTProblem
    from .solve import solve

    xs = as_1d_array(source_support, name="source_support")
    ys = as_1d_array(target_support, name="target_support")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    if xs.size != mu.size:
        raise ValidationError("source support/weights length mismatch")
    if ys.size != nu.size:
        raise ValidationError("target support/weights length mismatch")
    problem = OTProblem(source_weights=mu, target_weights=nu,
                        source_support=xs, target_support=ys, p=p)
    return solve(problem, method="exact").plan


def wasserstein_1d(source_support, source_weights, target_support,
                   target_weights, *, p: int = 2) -> float:
    """``W_p`` distance between two discrete 1-D measures (closed form).

    Integrates ``|F⁻¹_µ(q) - F⁻¹_ν(q)|^p`` over the merged set of cumulative
    levels, then takes the ``1/p`` root.  Equivalent to (but faster than)
    extracting the cost from :func:`solve_1d`.
    """
    xs = as_1d_array(source_support, name="source_support")
    ys = as_1d_array(target_support, name="target_support")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)

    order_x = np.argsort(xs, kind="stable")
    order_y = np.argsort(ys, kind="stable")
    xs, mu = xs[order_x], mu[order_x]
    ys, nu = ys[order_y], nu[order_y]

    cdf_x = np.cumsum(mu)
    cdf_y = np.cumsum(nu)
    # Clamp the endpoints: cumsum round-off can land at 1 ± 1e-16, which
    # would otherwise drop (or duplicate) the final mass segment below.
    cdf_x[-1] = 1.0
    cdf_y[-1] = 1.0
    # Merged breakpoints of both quantile functions.
    levels = np.union1d(cdf_x, cdf_y)
    levels = levels[(levels > 0.0) & (levels <= 1.0)]
    widths = np.diff(np.concatenate(([0.0], levels)))

    idx_x = np.searchsorted(cdf_x, levels - 1e-12, side="left")
    idx_y = np.searchsorted(cdf_y, levels - 1e-12, side="left")
    idx_x = np.minimum(idx_x, xs.size - 1)
    idx_y = np.minimum(idx_y, ys.size - 1)

    gaps = np.abs(xs[idx_x] - ys[idx_y]) ** p
    return float(np.sum(widths * gaps) ** (1.0 / p))


def quantile_function(support, weights, levels) -> np.ndarray:
    """Generalised inverse CDF ``F⁻¹(q)`` of a discrete 1-D measure.

    ``F⁻¹(q) = inf {x : F(x) >= q}``, evaluated at each entry of ``levels``.
    """
    xs = as_1d_array(support, name="support")
    ws = as_probability_vector(weights, name="weights", normalize=True)
    qs = np.atleast_1d(np.asarray(levels, dtype=float))
    if np.any((qs < 0.0) | (qs > 1.0)):
        raise ValidationError("quantile levels must lie in [0, 1]")

    order = np.argsort(xs, kind="stable")
    xs, ws = xs[order], ws[order]
    cdf = np.cumsum(ws)
    idx = np.searchsorted(cdf, qs - 1e-12, side="left")
    idx = np.minimum(idx, xs.size - 1)
    return xs[idx]


def monotone_map(source_samples, target_samples) -> np.ndarray:
    """Empirical monotone (increasing) rearrangement between two samples.

    When both samples have the same size ``n`` this is the Monge map of the
    empirical measures: the ``i``-th smallest source point maps to the
    ``i``-th smallest target point.  For unequal sizes the map sends each
    source point to the target quantile at its own cumulative level.
    """
    xs = as_1d_array(source_samples, name="source_samples")
    ys = as_1d_array(target_samples, name="target_samples")
    n = xs.size
    # Mid-rank cumulative levels avoid the degenerate 0 and 1 endpoints.
    ranks = (np.argsort(np.argsort(xs, kind="stable"), kind="stable")
             .astype(float))
    levels = (ranks + 0.5) / n
    uniform = np.full(ys.size, 1.0 / ys.size)
    return quantile_function(ys, uniform, levels)
