"""Reference LP formulation of discrete optimal transport.

Flattens the Kantorovich problem into a standard-form linear programme and
solves it with scipy's HiGHS backend.  This solver is slower than the
dedicated :mod:`repro.ot.network_simplex` implementation but serves as the
independent *oracle* against which the hand-written solvers are validated in
the test-suite, and as a fallback for ill-conditioned instances.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .._validation import as_probability_vector
from ..exceptions import ConvergenceError, ValidationError
from .coupling import TransportPlan

__all__ = ["solve_transport_lp", "transport_lp"]


def transport_lp(cost: np.ndarray, source_weights, target_weights) -> np.ndarray:
    """Optimal plan matrix via ``scipy.optimize.linprog`` (HiGHS).

    The balanced problem has one redundant equality constraint; we drop the
    final column constraint to keep the system full-rank, which HiGHS
    appreciates.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    n, m = cost.shape
    if mu.size != n or nu.size != m:
        raise ValidationError(
            f"cost shape {cost.shape} incompatible with marginals "
            f"({mu.size}, {nu.size})")

    # Row-marginal constraints: each row of the plan sums to mu_i.
    row_blocks = sparse.kron(sparse.eye(n), np.ones((1, m)), format="csr")
    # Column-marginal constraints (last one dropped as redundant).
    col_blocks = sparse.kron(np.ones((1, n)), sparse.eye(m), format="csr")[:-1]
    a_eq = sparse.vstack([row_blocks, col_blocks], format="csr")
    b_eq = np.concatenate([mu, nu[:-1]])

    result = linprog(cost.ravel(), A_eq=a_eq, b_eq=b_eq,
                     bounds=(0.0, None), method="highs")
    if not result.success:
        raise ConvergenceError(
            f"linprog failed to solve the transport LP: {result.message}")
    plan = result.x.reshape(n, m)
    return np.clip(plan, 0.0, None)


def solve_transport_lp(cost: np.ndarray, source_weights, target_weights,
                       source_support=None,
                       target_support=None) -> TransportPlan:
    """Like :func:`transport_lp` but wrapped in a :class:`TransportPlan`."""
    matrix = transport_lp(cost, source_weights, target_weights)
    n, m = matrix.shape
    if source_support is None:
        source_support = np.arange(n, dtype=float)
    if target_support is None:
        target_support = np.arange(m, dtype=float)
    value = float(np.sum(np.asarray(cost, dtype=float) * matrix))
    return TransportPlan(matrix, source_support, target_support, value)
