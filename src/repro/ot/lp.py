"""Reference LP formulation of discrete optimal transport.

Flattens the Kantorovich problem into a standard-form linear programme and
solves it with scipy's HiGHS backend.  This solver is slower than the
dedicated :mod:`repro.ot.network_simplex` implementation but serves as the
independent *oracle* against which the hand-written solvers are validated in
the test-suite, and as a fallback for ill-conditioned instances.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .._validation import as_probability_vector
from ..exceptions import ConvergenceError, ValidationError
from .coupling import TransportPlan

__all__ = ["solve_transport_lp", "transport_lp"]


def transport_lp(cost: np.ndarray, source_weights, target_weights) -> np.ndarray:
    """Optimal plan matrix via ``scipy.optimize.linprog`` (HiGHS).

    The balanced problem has one redundant equality constraint; we drop the
    final column constraint to keep the system full-rank, which HiGHS
    appreciates.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    n, m = cost.shape
    if mu.size != n or nu.size != m:
        raise ValidationError(
            f"cost shape {cost.shape} incompatible with marginals "
            f"({mu.size}, {nu.size})")
    matrix, _ = _lp_matrix(cost, mu, nu)
    return matrix


def _lp_matrix(cost: np.ndarray, mu: np.ndarray,
               nu: np.ndarray) -> tuple[np.ndarray, int]:
    """The HiGHS solve on validated inputs; returns ``(plan, nit)``."""
    n, m = cost.shape
    # Row-marginal constraints: each row of the plan sums to mu_i.
    row_blocks = sparse.kron(sparse.eye(n), np.ones((1, m)), format="csr")
    # Column-marginal constraints (last one dropped as redundant).
    col_blocks = sparse.kron(np.ones((1, n)), sparse.eye(m), format="csr")[:-1]
    a_eq = sparse.vstack([row_blocks, col_blocks], format="csr")
    b_eq = np.concatenate([mu, nu[:-1]])
    result = _linprog_with_presolve_retry(cost.ravel(), a_eq, b_eq,
                                          what="the transport LP")
    plan = result.x.reshape(n, m)
    return np.clip(plan, 0.0, None), int(getattr(result, "nit", 0) or 0)


def _linprog_with_presolve_retry(c, a_eq, b_eq, *, what: str,
                                 presolve_retry: bool = True):
    """HiGHS solve shared by the dense and mask-restricted transport LPs.

    HiGHS presolve occasionally mis-declares large balanced transport
    problems infeasible, so an "infeasible" outcome is retried without
    presolve before giving up.  Pass ``presolve_retry=False`` when the
    problem may be *genuinely* infeasible (a user-restricted support
    whose feasibility is unknown) — there the retry would only double
    the cost of a legitimate failure.
    """
    result = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=(0.0, None),
                     method="highs")
    if result.status == 2 and presolve_retry:
        result = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=(0.0, None),
                         method="highs", options={"presolve": False})
    if not result.success:
        raise ConvergenceError(
            f"linprog failed to solve {what}: {result.message}")
    return result


def solve_transport_lp(cost: np.ndarray, source_weights, target_weights,
                       source_support=None,
                       target_support=None) -> TransportPlan:
    """Like :func:`transport_lp` but wrapped in a :class:`TransportPlan`.

    Thin shim over :func:`repro.ot.solve` with ``method="lp"``.
    """
    from .solve import solve
    return solve(cost, source_weights, target_weights, method="lp",
                 source_support=source_support,
                 target_support=target_support).plan
