"""Problem and result containers for the unified :func:`repro.ot.solve` API.

:class:`OTProblem` describes one discrete Kantorovich problem — the two
marginals plus *either* an explicit ground-cost matrix or the ingredients
to build one lazily (supports and a cost factory).  :class:`OTResult`
is the uniform outcome every registered solver returns: the coupling, its
cost value, marginal residuals, and convergence/timing diagnostics.

Together they replace the historical situation where each solver module
had its own signature and return type; see :mod:`repro.ot.solve` for the
facade and :mod:`repro.ot.registry` for the pluggable solver registry.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, replace

import numpy as np

from scipy import sparse as _sparse

from .._validation import as_probability_vector
from ..exceptions import ValidationError
from .coupling import TransportPlan
from .coupling import _inner_product as _plan_inner_product
from .cost import cost_matrix as _build_cost_matrix

__all__ = ["OTProblem", "OTBatch", "OTResult", "result_from_matrix"]

#: Ground-cost metrics of the ``|x - y|^p`` family: convex in the 1-D
#: displacement, hence solvable in closed form by the monotone coupling.
_MONOTONE_METRICS = ("sqeuclidean", "euclidean", "lp")


@dataclass(frozen=True)
class OTProblem:
    """One discrete optimal-transport problem.

    Attributes
    ----------
    source_weights, target_weights:
        Marginals ``µ`` and ``ν``; normalised to probability vectors.
    cost:
        Optional explicit ``(n, m)`` ground-cost matrix.  When omitted the
        cost is built lazily from the supports via ``cost_fn``.
    cost_fn:
        Either a metric name understood by :func:`repro.ot.cost.cost_matrix`
        (``"sqeuclidean"``, ``"euclidean"``, ``"lp"``) or a callable
        ``(source_support, target_support) -> cost``.  Defaults to the
        paper's squared-Euclidean cost.
    source_support, target_support:
        Optional support points, shape ``(n,)``/``(n, d)``.  Required when
        ``cost`` is omitted, and required for the closed-form 1-D path.
    support_mask:
        Optional boolean ``(n, m)`` mask of coupling entries.  Semantics
        are per-solver: ``"lp"`` treats it as a hard restriction (the LP
        runs on exactly these entries, unioning in an ``O(n + m)``
        feasibility patch *only* when the restricted problem is
        infeasible, reported via ``extras["mask_widened"]``), while
        ``"screened"`` and ``"multiscale"`` treat it as support to
        *include* alongside their own screened / dilated-coarse
        entries.  The monotone and dense simplex solvers reject masked
        problems.
    p:
        Exponent of the ``|x - y|^p`` family used by metric-named costs
        and by the closed-form 1-D solver.
    """

    source_weights: np.ndarray
    target_weights: np.ndarray
    cost: np.ndarray | None = None
    cost_fn: Callable | str | None = None
    source_support: np.ndarray | None = None
    target_support: np.ndarray | None = None
    support_mask: np.ndarray | None = None
    p: int = 2

    def __post_init__(self) -> None:
        mu = as_probability_vector(self.source_weights,
                                   name="source_weights", normalize=True)
        nu = as_probability_vector(self.target_weights,
                                   name="target_weights", normalize=True)
        object.__setattr__(self, "source_weights", mu)
        object.__setattr__(self, "target_weights", nu)

        if self.cost is not None:
            cost = np.asarray(self.cost, dtype=float)
            if cost.ndim != 2:
                raise ValidationError(
                    f"cost must be 2-D, got shape {cost.shape}")
            if cost.shape != (mu.size, nu.size):
                raise ValidationError(
                    f"cost shape {cost.shape} incompatible with marginals "
                    f"({mu.size}, {nu.size})")
            if not np.all(np.isfinite(cost)):
                raise ValidationError(
                    "cost matrix contains non-finite entries")
            object.__setattr__(self, "cost", cost)

        for attr, expected in (("source_support", mu.size),
                               ("target_support", nu.size)):
            support = getattr(self, attr)
            if support is None:
                continue
            arr = np.asarray(support, dtype=float)
            if arr.ndim == 1:
                arr = arr.reshape(-1, 1)
            if arr.ndim != 2 or arr.shape[0] != expected:
                raise ValidationError(
                    f"{attr} must have {expected} points, got shape "
                    f"{np.shape(support)}")
            if not np.all(np.isfinite(arr)):
                raise ValidationError(f"{attr} contains non-finite entries")
            object.__setattr__(self, attr, arr)

        if self.cost is None and (self.source_support is None
                                  or self.target_support is None):
            raise ValidationError(
                "an OTProblem needs either an explicit cost matrix or both "
                "supports (so the cost can be built from cost_fn)")

        if self.support_mask is not None:
            mask = np.asarray(self.support_mask, dtype=bool)
            if mask.shape != (mu.size, nu.size):
                raise ValidationError(
                    f"support_mask shape {mask.shape} incompatible with "
                    f"marginals ({mu.size}, {nu.size})")
            object.__setattr__(self, "support_mask", mask)

        if isinstance(self.cost_fn, str) \
                and self.cost_fn not in _MONOTONE_METRICS:
            raise ValidationError(
                f"unknown cost metric {self.cost_fn!r}; expected one of "
                f"{_MONOTONE_METRICS} or a callable")
        object.__setattr__(self, "_cost_cache", None)

    # -- geometry ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """``(n, m)`` plan shape."""
        return (self.source_weights.size, self.target_weights.size)

    @property
    def is_one_dimensional(self) -> bool:
        """True when both supports are present and one-dimensional."""
        return (self.source_support is not None
                and self.target_support is not None
                and self.source_support.shape[1] == 1
                and self.target_support.shape[1] == 1)

    @property
    def has_metric_cost(self) -> bool:
        """True when the ground cost is derived from the supports via a
        named ``|x - y|^p``-family metric (no hand-rolled cost matrix or
        callable).  Solvers that exploit support geometry — the
        closed-form monotone coupling, the multiscale coarse level —
        are only provably aligned with the cost in this regime.
        """
        return self.cost is None and not callable(self.cost_fn)

    @property
    def metric(self) -> str | None:
        """The resolved metric name for metric-family costs, else None.

        This is the single definition of the default-metric rule
        (``p == 2`` means the paper's squared-Euclidean cost), shared by
        :meth:`cost_matrix` and the sparse-support solvers' pointwise
        cost evaluation.
        """
        if not self.has_metric_cost:
            return None
        if self.cost_fn is None:
            return "sqeuclidean" if self.p == 2 else "lp"
        return self.cost_fn

    @property
    def is_monotone_solvable(self) -> bool:
        """True when the closed-form monotone coupling is provably optimal.

        Requires 1-D supports and a ground cost from the convex
        ``|x - y|^p`` family, i.e. no hand-rolled cost matrix or callable
        whose convexity cannot be verified.
        """
        if not self.is_one_dimensional or self.support_mask is not None:
            return False
        if not self.has_metric_cost:
            return False
        return self.cost_fn is None or self.cost_fn in _MONOTONE_METRICS

    # -- cost --------------------------------------------------------------

    def cost_matrix(self) -> np.ndarray:
        """The ground-cost matrix, built lazily and cached."""
        if self.cost is not None:
            return self.cost
        cached = getattr(self, "_cost_cache")
        if cached is not None:
            return cached
        if callable(self.cost_fn):
            cost = np.asarray(
                self.cost_fn(self.source_support, self.target_support),
                dtype=float)
            if cost.shape != self.shape:
                raise ValidationError(
                    f"cost_fn returned shape {cost.shape}, expected "
                    f"{self.shape}")
        else:
            cost = _build_cost_matrix(self.source_support,
                                      self.target_support,
                                      metric=self.metric, p=self.p)
        object.__setattr__(self, "_cost_cache", cost)
        return cost

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_cost(cls, cost, source_weights, target_weights, *,
                  source_support=None, target_support=None,
                  support_mask=None) -> "OTProblem":
        """Build a problem from an explicit cost matrix (legacy signature)."""
        return cls(source_weights=source_weights,
                   target_weights=target_weights, cost=cost,
                   source_support=source_support,
                   target_support=target_support,
                   support_mask=support_mask)


@dataclass(frozen=True)
class OTBatch:
    """An ordered collection of :class:`OTProblem` instances.

    This is the unit of work of :func:`repro.ot.solve.solve_many`: many
    independent Kantorovich problems — in Algorithm 1, one per
    ``(u, s, k)`` design cell — solved together.  The container itself is
    storage-light (it holds the problems, not stacked copies); the
    *stacked views* below materialise ``(B, n)`` / ``(B, m)`` arrays on
    demand for vectorised batch kernels, and are only available on
    *uniform* batches (every problem sharing one ``(n, m)`` shape) with
    1-D supports — the shared-shape fast path.

    >>> import numpy as np
    >>> cells = [OTProblem(source_weights=[0.5, 0.5],
    ...                    target_weights=[0.5, 0.5],
    ...                    source_support=[0.0, 1.0],
    ...                    target_support=[0.0, float(k)])
    ...          for k in (1, 2, 3)]
    >>> batch = OTBatch(cells)
    >>> len(batch), batch.is_uniform, batch.is_one_dimensional
    (3, True, True)
    >>> batch.target_support_stack()[:, 1]
    array([1., 2., 3.])
    """

    problems: tuple

    def __post_init__(self) -> None:
        problems = tuple(self.problems)
        for i, problem in enumerate(problems):
            if not isinstance(problem, OTProblem):
                raise ValidationError(
                    f"OTBatch entries must be OTProblem instances; entry "
                    f"{i} is {type(problem).__name__}")
        object.__setattr__(self, "problems", problems)

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.problems)

    def __iter__(self):
        return iter(self.problems)

    def __getitem__(self, index) -> "OTProblem":
        return self.problems[index]

    def subset(self, indices) -> "OTBatch":
        """A new batch holding ``problems[i]`` for each ``i`` in order."""
        return OTBatch(tuple(self.problems[i] for i in indices))

    # -- shape structure ---------------------------------------------------

    @property
    def shapes(self) -> tuple:
        """Per-problem ``(n, m)`` plan shapes."""
        return tuple(problem.shape for problem in self.problems)

    @property
    def is_uniform(self) -> bool:
        """True when every problem shares one ``(n, m)`` shape."""
        return len({problem.shape for problem in self.problems}) <= 1

    @property
    def shape(self) -> tuple:
        """The common ``(n, m)`` shape (raises on mixed-shape batches)."""
        shapes = {problem.shape for problem in self.problems}
        if len(shapes) != 1:
            raise ValidationError(
                f"batch has no common shape (found {sorted(shapes)}); "
                "check is_uniform before using the stacked fast path")
        return next(iter(shapes))

    @property
    def is_one_dimensional(self) -> bool:
        """True when every problem has 1-D source and target supports."""
        return all(problem.is_one_dimensional for problem in self.problems)

    @property
    def has_shared_grid(self) -> bool:
        """True when every problem's supports are *identical* point sets.

        Deliberately stricter than :attr:`is_uniform`: equal shapes do
        **not** imply equal grids (every design cell has its own sample
        range), so a batch kernel that wants to share per-grid work — a
        single ground-cost evaluation, one Gibbs kernel — must key on
        this, not on shape, before assuming a common grid.  Problems
        without supports never share a grid under this definition.

        >>> import numpy as np
        >>> grid = np.linspace(0.0, 1.0, 3)
        >>> w = np.full(3, 1 / 3)
        >>> same = OTBatch(tuple(
        ...     OTProblem(source_weights=w, target_weights=w,
        ...               source_support=grid, target_support=grid)
        ...     for _ in range(2)))
        >>> same.has_shared_grid
        True
        >>> shifted = OTBatch((same[0], OTProblem(
        ...     source_weights=w, target_weights=w,
        ...     source_support=grid + 1.0, target_support=grid + 1.0)))
        >>> shifted.is_uniform, shifted.has_shared_grid
        (True, False)
        """
        if not self.problems:
            return True
        first = self.problems[0]
        if first.source_support is None or first.target_support is None:
            return False
        return all(
            problem.source_support is not None
            and problem.target_support is not None
            and (problem.source_support is first.source_support
                 or np.array_equal(problem.source_support,
                                   first.source_support))
            and (problem.target_support is first.target_support
                 or np.array_equal(problem.target_support,
                                   first.target_support))
            for problem in self.problems[1:])

    # -- stacked views (the shared-shape fast path) ------------------------

    def source_weight_stack(self) -> np.ndarray:
        """``(B, n)`` stacked source marginals (uniform batches only)."""
        self.shape  # raises with the actionable message on mixed shapes
        return np.stack([problem.source_weights
                         for problem in self.problems])

    def target_weight_stack(self) -> np.ndarray:
        """``(B, m)`` stacked target marginals (uniform batches only)."""
        self.shape
        return np.stack([problem.target_weights
                         for problem in self.problems])

    def source_support_stack(self) -> np.ndarray:
        """``(B, n)`` stacked 1-D source supports."""
        return self._support_stack("source_support")

    def target_support_stack(self) -> np.ndarray:
        """``(B, m)`` stacked 1-D target supports."""
        return self._support_stack("target_support")

    def _support_stack(self, attr: str) -> np.ndarray:
        self.shape
        if not self.is_one_dimensional:
            raise ValidationError(
                f"{attr}_stack needs 1-D supports on every batch problem")
        return np.stack([getattr(problem, attr).ravel()
                         for problem in self.problems])

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_arrays(cls, source_weights, target_weights, *,
                    source_support=None, target_support=None,
                    p: int = 2, cost_fn=None) -> "OTBatch":
        """Build a uniform batch from stacked ``(B, n)`` / ``(B, m)`` arrays.

        ``source_support`` / ``target_support`` may be shared 1-D arrays
        (one grid for every problem — the common design-cell layout) or
        per-problem ``(B, n)`` / ``(B, m)`` stacks.
        """
        mu = np.atleast_2d(np.asarray(source_weights, dtype=float))
        nu = np.atleast_2d(np.asarray(target_weights, dtype=float))
        if mu.shape[0] != nu.shape[0]:
            raise ValidationError(
                f"stacked marginals disagree on the batch size "
                f"({mu.shape[0]} != {nu.shape[0]})")

        def per_problem(support, size, name):
            if support is None:
                return [None] * mu.shape[0]
            arr = np.asarray(support, dtype=float)
            if arr.ndim == 1:
                return [arr] * mu.shape[0]
            if arr.ndim == 2 and arr.shape == (mu.shape[0], size):
                return list(arr)
            raise ValidationError(
                f"{name} must be a shared (n,) grid or a (B, n) stack; "
                f"got shape {arr.shape}")

        xs = per_problem(source_support, mu.shape[1], "source_support")
        ys = per_problem(target_support, nu.shape[1], "target_support")
        return cls(tuple(
            OTProblem(source_weights=mu[b], target_weights=nu[b],
                      source_support=xs[b], target_support=ys[b],
                      cost_fn=cost_fn, p=p)
            for b in range(mu.shape[0])))


@dataclass(frozen=True)
class OTResult:
    """Uniform outcome of a :func:`repro.ot.solve` call.

    Attributes
    ----------
    plan:
        The coupling wrapped in a :class:`~repro.ot.coupling.TransportPlan`.
    value:
        Transport cost ``<C, π>`` of the returned plan.
    residual_source, residual_target:
        Max-norm violations of the row/column marginal constraints.
    converged:
        True when the solver met its own optimality/tolerance criterion.
    n_iter:
        Iterations (pivots, sweeps, ...) the solver performed.
    solver:
        Registered name of the solver that produced the plan.
    wall_time:
        Wall-clock seconds spent inside the solver.
    extras:
        Solver-specific diagnostics (``epsilon``, screening sparsity, ...).
    """

    plan: TransportPlan
    value: float
    residual_source: float
    residual_target: float
    converged: bool
    n_iter: int
    solver: str = ""
    wall_time: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def matrix(self) -> np.ndarray:
        """The raw ``(n, m)`` coupling matrix.

        Dense :class:`numpy.ndarray` for densely stored plans; a CSR
        sparse array when the solver kept the plan sparse (e.g. the
        screened hybrid below :data:`~repro.ot.coupling.
        SPARSE_DENSITY_THRESHOLD` density).  ``result.plan.toarray()``
        densifies on demand.
        """
        return self.plan.matrix

    @property
    def marginal_residual(self) -> float:
        """Max of the two marginal residuals."""
        return max(self.residual_source, self.residual_target)

    def with_timing(self, solver: str, wall_time: float) -> "OTResult":
        """Copy with the facade-assigned solver name and timing."""
        return replace(self, solver=solver, wall_time=wall_time)

    def summary(self) -> dict:
        """JSON-safe diagnostic record (stored in repair-plan metadata)."""
        record = {
            "solver": self.solver,
            "value": float(self.value),
            "residual": float(self.marginal_residual),
            "converged": bool(self.converged),
            "n_iter": int(self.n_iter),
            "wall_time": float(self.wall_time),
        }
        record.update({str(k): _json_scalar(v)
                       for k, v in self.extras.items()})
        return record


def result_from_matrix(problem: OTProblem, matrix: np.ndarray, *,
                       value=None, converged: bool | None = None,
                       n_iter: int = 1,
                       extras: dict | None = None) -> OTResult:
    """Assemble an :class:`OTResult` from a raw plan matrix.

    The single result-construction path shared by the built-in solvers
    (via :func:`repro.ot.solve`) and the registry's coercion of ad-hoc
    solver returns.  ``matrix`` may be dense or scipy-sparse (kept as
    CSR, never densified).  ``value`` defaults to ``<C, matrix>``;
    ``converged=None`` derives the flag from the marginal residuals
    (``<= 1e-6``).
    """
    if _sparse.issparse(matrix):
        matrix = _sparse.csr_array(matrix)
    else:
        matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != problem.shape:
        raise ValidationError(
            f"plan matrix has shape {matrix.shape}, problem expects "
            f"{problem.shape}")
    n, m = matrix.shape
    source = (problem.source_support if problem.source_support is not None
              else np.arange(n, dtype=float))
    target = (problem.target_support if problem.target_support is not None
              else np.arange(m, dtype=float))
    if value is None or not np.isfinite(value):
        value = _plan_inner_product(matrix, problem.cost_matrix())
    plan = TransportPlan(matrix, source, target, float(value))
    row_err = float(np.abs(plan.source_weights
                           - problem.source_weights).max())
    col_err = float(np.abs(plan.target_weights
                           - problem.target_weights).max())
    if converged is None:
        converged = max(row_err, col_err) <= 1e-6
    return OTResult(plan=plan, value=float(value), residual_source=row_err,
                    residual_target=col_err, converged=bool(converged),
                    n_iter=int(n_iter), extras=dict(extras or {}))


def _json_scalar(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)
