"""Multiscale screened OT: coarsen, solve exactly, refine the support.

The single-level ``"screened"`` hybrid prunes the product support with an
entropic (Sinkhorn) solve before running an exact restricted LP.  That
screen is itself ``O(n·m)`` per iteration, so on very large quantile
grids (``n_Q >= 2000``, the regime the repair pipeline's Figure-4 sweep
targets) the screen dominates the solve.  The multiscale solver replaces
the entropic screen with the classical coarsen-solve-refine pattern used
by POT's multiscale backends:

1. **Coarsen** — bin each 1-D support into ``ceil(n / coarsen)``
   contiguous cells with the same :class:`repro.density.grid.
   InterpolationGrid` binning Algorithm 1 uses, aggregating marginal
   mass per bin and representing each bin by its mass-weighted centre.
2. **Solve** — solve the coarse problem *exactly* through the facade
   (``"auto"``: the monotone closed form when the cost is a convex
   ``|x - y|^p`` metric; the simplex, LP or screened hybrid for
   aggregated explicit costs, by coarse size).
3. **Refine** — dilate the coarse plan's support by ``radius`` coarse
   cells (:func:`repro.ot.coupling.dilate_mask`), expand it onto the
   fine grid (:func:`repro.ot.coupling.refine_mask`), union the
   north-west-corner staircase so the restriction is always feasible,
   and solve the exact LP on that sparse support only.

Since Multiscale v2 the coarsen step is an **automatic pyramid**:
``coarsen_problem`` is applied recursively until the coarsest problem
drops below :data:`PYRAMID_LEAF_SIZE` states per marginal
(``levels="auto"``; pass an integer to pin the depth — ``levels=1`` is
the historical single-level solve, bit-identical), and the refine step
walks back up level by level, each restricted solve warm-started from
the level above through
:func:`~repro.ot.network_simplex.refine_state` basis lifts.  Per-level
diagnostics land in ``extras["pyramid"]``.

Like ``"screened"``, the returned plan is CSR-backed below the
:data:`~repro.ot.coupling.SPARSE_DENSITY_THRESHOLD` density, and a
caller-supplied ``support_mask`` is unioned in as extra support to
include.  Unlike ``"screened"``, the fine ``(n, m)`` ground-cost matrix
is never materialised for metric-family costs — the restricted solve
sees cost values at the sparse support entries only.  Past
:data:`_SPARSE_SUPPORT_LIMIT` fine states the boolean ``(n, m)``
support mask goes the same way: the refine step switches to direct
index generation (dilate the coarse support in index space, expand to
the fine bin members, union the staircase), so the largest intermediate
left is the dense coarse plan (``(n/coarsen)²`` floats) and grids of
``n_Q ~ 10^6`` fit comfortably.  The restricted solves default to
``restricted_engine="auto"``: each level's dilated support is a
contiguous monotone band for convex metric costs on sorted 1-D grids
(:func:`~repro.ot.coupling.is_banded` certifies it), in which case the
O(n + m) north-west-corner-with-repair kernel
(:func:`~repro.ot.onedim.banded_monotone_transport`) solves the level
with no cost matrix and no simplex pivots at all; non-banded supports
keep the native sparse network simplex (``"network_simplex"``; pass
``"lp"`` for the scipy oracle).

>>> import numpy as np
>>> from repro.ot import OTProblem, solve
>>> nodes = np.linspace(-3.0, 3.0, 400)
>>> mu = np.exp(-0.5 * (nodes + 1.0) ** 2)
>>> nu = np.exp(-0.5 * (nodes - 1.0) ** 2)
>>> problem = OTProblem(source_weights=mu / mu.sum(),
...                     target_weights=nu / nu.sum(),
...                     source_support=nodes, target_support=nodes,
...                     cost_fn="euclidean")
>>> result = solve(problem, method="multiscale", coarsen=8)
>>> result.solver, result.converged, result.plan.is_sparse
('multiscale', True, True)
>>> exact = solve(problem, method="lp")
>>> bool(result.value <= exact.value * 1.01)   # within 1% of the LP
True

The coarse support heuristic is only *certified* (``converged=True``)
for metric-family costs like the one above, where the support geometry
provably predicts the optimum; with a hand-rolled explicit cost the same
call still solves the restricted LP exactly but reports
``converged=False``, and ``"auto"`` routes such problems to
``"screened"`` instead.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .._validation import check_positive_int
from ..density.grid import InterpolationGrid
from ..exceptions import ValidationError
from .cost import pointwise_cost
from .coupling import SPARSE_DENSITY_THRESHOLD, dilate_mask, refine_mask
from .network_simplex import NetworkSimplexState, refine_state
from .onedim import north_west_corner_support
from .problem import OTProblem, OTResult, result_from_matrix
from .registry import register_solver
# Importing .solve here also registers the built-in solvers before
# "multiscale", keeping the registry's listing order intuitive.
from .solve import (RESTRICTED_ENGINES, _banded_certifiable,
                    _restricted_exact_entries, solve)

__all__ = ["coarsen_problem", "default_coarsen_factor",
           "PYRAMID_LEAF_SIZE"]

#: Hard floor on the coarse marginal size — coarser than this and the
#: coarse plan carries no usable geometry.
_MIN_COARSE_STATES = 2

#: ``levels="auto"`` keeps coarsening until the coarsest marginal is at
#: most this large — the "trivial size" where any exact solver finishes
#: instantly (it matches :data:`~repro.ot.solve.LP_AUTO_LIMIT`, so
#: aggregated explicit costs land on the dense LP, never the screened
#: hybrid).  With the default factor 4 a ``10^6``-state grid becomes a
#: 6-level pyramid whose per-level work is a geometric series summing
#: to ~1.33x the finest level.
PYRAMID_LEAF_SIZE = 300

#: Fine problem size (``n * m``) past which the refine step defaults to
#: direct index generation instead of a boolean ``(n, m)`` mask (10^8
#: states = a 100 MB mask; the index path carries only the O(support)
#: arc list).  Override per call with ``sparse_support=``.
_SPARSE_SUPPORT_LIMIT = 100_000_000


def default_coarsen_factor(size: int) -> int:
    """The default coarsening factor for a fine marginal of ``size``.

    The restricted fine LP dominates the multiscale solve and its cost
    grows superlinearly in the support size (which is itself linear in
    the factor: a radius-1 dilation band is ``~3·factor`` fine cells
    wide), so small factors win across the whole 500-5000 grid range
    we benchmark (``benchmarks/results/multiscale.txt``).  ``4`` keeps
    a ±6-fine-cell band — comfortable slack around the coarse plan for
    monotone-structured problems — while cutting the LP support well
    over an order of magnitude below the dense product.  Larger
    factors only pay off when the *coarse* level is the bottleneck
    (explicit cost matrices, where the coarse solve is an LP rather
    than the free monotone coupling).

    >>> default_coarsen_factor(2000)
    4
    """
    del size  # currently size-independent; kept for interface stability
    return 4


def coarsen_problem(problem: OTProblem, factor: int):
    """Build the coarse Kantorovich problem for one multiscale level.

    Bins each (1-D) support into ``ceil(size / factor)`` cells of an
    Algorithm-1 :class:`~repro.density.grid.InterpolationGrid`, sums the
    marginal mass per bin, and represents each bin by its mass-weighted
    centre (empty bins keep their geometric centre).  Returns
    ``(coarse_problem, source_bins, target_bins)`` where the bin arrays
    map each fine index to its coarse cell.

    The coarse ground cost mirrors the fine problem: metric-family costs
    and callables are re-evaluated on the coarse supports; an explicit
    fine cost matrix is aggregated by the mass-weighted mean over each
    coarse cell pair.
    """
    factor = check_positive_int(factor, name="coarsen", minimum=2)
    if not problem.is_one_dimensional:
        raise ValidationError(
            "the multiscale solver coarsens by support geometry and needs "
            "1-D source and target supports; use 'screened' for general "
            "problems")
    xs = problem.source_support.ravel()
    ys = problem.target_support.ravel()
    mu, nu = problem.source_weights, problem.target_weights

    source_bins, source_centers = _bin_support(xs, mu, factor)
    target_bins, target_centers = _bin_support(ys, nu, factor)
    n_c, m_c = source_centers.size, target_centers.size
    coarse_mu = np.bincount(source_bins, weights=mu, minlength=n_c)
    coarse_nu = np.bincount(target_bins, weights=nu, minlength=m_c)

    if problem.cost is not None:
        coarse_cost = _aggregate_cost(problem.cost, source_bins, mu, n_c,
                                      target_bins, nu, m_c)
        coarse = OTProblem(source_weights=coarse_mu,
                           target_weights=coarse_nu, cost=coarse_cost,
                           source_support=source_centers,
                           target_support=target_centers)
    else:
        coarse = OTProblem(source_weights=coarse_mu,
                           target_weights=coarse_nu,
                           cost_fn=problem.cost_fn,
                           source_support=source_centers,
                           target_support=target_centers, p=problem.p)
    return coarse, source_bins, target_bins


def _bin_support(points: np.ndarray, weights: np.ndarray,
                 factor: int) -> tuple[np.ndarray, np.ndarray]:
    """Bin 1-D ``points`` into ``ceil(size / factor)`` grid cells.

    Reuses the Algorithm-1 grid machinery: a uniform
    :class:`~repro.density.grid.InterpolationGrid` with ``n_bins + 1``
    nodes has exactly ``n_bins`` cells, and ``grid.locate`` assigns each
    point to its cell.  Returns ``(bin_index_per_point, bin_centers)``
    with the centre of each occupied bin moved to its mass-weighted mean.
    """
    n_bins = max(_MIN_COARSE_STATES, -(-points.size // factor))
    n_bins = min(n_bins, points.size)
    grid = InterpolationGrid.from_samples(points, n_bins + 1)
    bins, _ = grid.locate(points)
    centers = 0.5 * (grid.nodes[:-1] + grid.nodes[1:])
    mass = np.bincount(bins, weights=weights, minlength=n_bins)
    moment = np.bincount(bins, weights=weights * points, minlength=n_bins)
    occupied = mass > 0.0
    centers = centers.copy()
    centers[occupied] = moment[occupied] / mass[occupied]
    return bins, centers


def _aggregate_cost(cost: np.ndarray, source_bins: np.ndarray,
                    mu: np.ndarray, n_coarse: int,
                    target_bins: np.ndarray, nu: np.ndarray,
                    m_coarse: int) -> np.ndarray:
    """Mass-weighted mean of an explicit fine cost over coarse cell pairs.

    Weighting by the fine marginals makes the coarse cost the expected
    fine cost of a within-bin-uniform coupling; bins with zero marginal
    mass fall back to the unweighted mean so the coarse cost stays
    finite everywhere.
    """
    from scipy import sparse

    def _aggregator(bins, fine_weights, size):
        n_fine = bins.size
        mass = np.bincount(bins, weights=fine_weights, minlength=size)
        weights = np.where(mass[bins] > 0.0, fine_weights, 1.0)
        totals = np.bincount(bins, weights=weights, minlength=size)
        weights = weights / totals[bins]
        return sparse.csr_array(
            (weights, (bins, np.arange(n_fine))), shape=(size, n_fine))

    rows = _aggregator(source_bins, mu, n_coarse)
    cols = _aggregator(target_bins, nu, m_coarse)
    return np.asarray((rows @ cost) @ cols.T)


@register_solver(
    "multiscale",
    description="automatic coarsen-solve-refine pyramid: recursive "
                "binning down to a trivial coarsest problem, exact "
                "restricted solves refined level by level (banded "
                "monotone kernel or warm-started network simplex) "
                "returning a CSR-backed plan — the fast path for very "
                "large 1-D grids")
def _solve_multiscale(problem: OTProblem, *, coarsen: int | None = None,
                      radius: int = 1, coarse_method: str = "auto",
                      levels: int | str = "auto",
                      restricted_engine: str = "auto",
                      sparse_support: bool | None = None) -> OTResult:
    """Coarsen recursively, solve the coarsest exactly, refine upward.

    Parameters
    ----------
    coarsen:
        Fine points per coarse bin at every pyramid level; ``None``
        picks :func:`default_coarsen_factor` from the problem size.
    radius:
        Support dilation in coarse cells at each refine step: the
        restricted solve may place mass up to ``radius`` coarse cells
        away from the coarser plan's support.  ``radius=1`` is exact on
        every monotone-structured problem we benchmark; raise it if the
        returned value is visibly above an exact reference.  For costs
        *not* derived from the support geometry (explicit matrices,
        callables) the coarse support is only a heuristic — the result
        then reports ``converged=False`` and ``"auto"`` never
        dispatches here; prefer ``"screened"`` unless you know the cost
        correlates with the supports.
    coarse_method:
        Solver spec for the *coarsest* level only (default ``"auto"``:
        the closed-form monotone coupling for metric-family costs; the
        simplex/LP, by coarse size, for aggregated explicit costs).
    levels:
        Pyramid depth — the number of coarsening steps.  ``"auto"``
        (default) keeps coarsening until the coarsest marginal has at
        most :data:`PYRAMID_LEAF_SIZE` states (or binning stops
        shrinking the problem at the :data:`_MIN_COARSE_STATES` floor);
        an explicit positive integer pins the depth, and ``levels=1``
        reproduces the historical single-level solve bit for bit.
    restricted_engine:
        Exact engine for the per-level restricted solves.  ``"auto"``
        (default) uses the O(n + m) banded monotone kernel
        (:func:`~repro.ot.onedim.banded_monotone_transport`) whenever
        the level is certified — convex metric cost, sorted 1-D
        supports, and a support that
        :func:`~repro.ot.coupling.is_banded` confirms is a contiguous
        monotone band — and the native sparse arc-list network simplex
        otherwise.  ``"banded"`` requests the band kernel explicitly
        (still falling back to the simplex when the certificate fails),
        ``"network_simplex"`` forces the simplex (whose basis is then
        lifted level-to-level via
        :func:`~repro.ot.network_simplex.refine_state` warm starts),
        and ``"lp"`` keeps the scipy HiGHS oracle the other engines are
        differentially tested against.
    sparse_support:
        ``True`` refines in index space (no boolean ``(n, m)`` mask),
        ``False`` forces the dense-mask refine, ``None`` (default)
        picks the index path automatically past
        :data:`_SPARSE_SUPPORT_LIMIT` fine states when the cost is
        metric-family and no ``support_mask`` needs unioning — decided
        per level, so only the pyramid levels that need it pay the
        index-space bookkeeping.
    """
    n, m = problem.shape
    if coarsen is None:
        coarsen = default_coarsen_factor(max(n, m))
    radius = check_positive_int(radius, name="radius", minimum=0)
    if restricted_engine not in RESTRICTED_ENGINES:
        raise ValidationError(
            "restricted_engine must be one of "
            f"{RESTRICTED_ENGINES}, got {restricted_engine!r}")
    if isinstance(levels, str):
        if levels != "auto":
            raise ValidationError(
                f"levels must be a positive integer or 'auto', got "
                f"{levels!r}")
        max_levels = None
    else:
        max_levels = check_positive_int(levels, name="levels", minimum=1)

    # Descend: coarsen recursively until the leaf threshold (or the
    # requested depth, or the _MIN_COARSE_STATES floor) is reached.
    # pyramid[0] is the fine problem; binmaps[k] maps level k onto
    # level k + 1.
    pyramid = [problem]
    binmaps = []
    while True:
        coarse, source_bins, target_bins = coarsen_problem(pyramid[-1],
                                                           coarsen)
        reduced = coarse.shape != pyramid[-1].shape
        if binmaps and not reduced:
            break
        pyramid.append(coarse)
        binmaps.append((source_bins, target_bins))
        if not reduced:
            break
        if max_levels is not None:
            if len(binmaps) >= max_levels:
                break
        elif max(coarse.shape) <= PYRAMID_LEAF_SIZE:
            break

    coarsest_result = solve(pyramid[-1], method=coarse_method)

    # Ascend: one restricted solve per level, each supported on the
    # dilated refinement of the level above and (with the simplex
    # engine) warm-started from its lifted basis.
    current = coarsest_result
    diagnostics = []
    level_info = None
    for level in range(len(binmaps) - 1, -1, -1):
        fine = pyramid[level]
        source_bins, target_bins = binmaps[level]
        level_info = _refine_level(fine, current, source_bins,
                                   target_bins, radius=radius,
                                   engine=restricted_engine,
                                   sparse_support=sparse_support)
        diagnostics.append({
            "shape": fine.shape,
            "engine": level_info["engine"],
            "support_size": level_info["support_size"],
            "support_density": level_info["support_density"],
            "sparse_support": level_info["sparse_support"],
            "n_iter": level_info["n_iter"],
            "warm_started": level_info["warm_started"],
            "value": float(level_info["value"]),
        })
        level_extras = {}
        if level_info["state"] is not None:
            level_extras["state"] = level_info["state"]
        current = result_from_matrix(
            fine, level_info["matrix"], value=level_info["value"],
            converged=True, n_iter=level_info["n_iter"],
            extras=level_extras)

    extras = {"coarsen": int(coarsen), "radius": int(radius),
              "levels": len(binmaps),
              "coarse_shape": pyramid[-1].shape,
              "coarse_solver": coarsest_result.solver,
              "coarse_value": float(coarsest_result.value),
              "geometry_aligned": bool(problem.has_metric_cost),
              "restricted_engine": level_info["engine"],
              "sparse_support": level_info["sparse_support"],
              "support_size": level_info["support_size"],
              "support_density": level_info["support_density"],
              "pyramid": diagnostics}
    if level_info["state"] is not None:
        extras["state"] = level_info["state"]
        extras["warm_started"] = level_info["warm_started"]
    # The restricted solves are exact on their supports, so convergence
    # is a statement about *support quality*.  The coarse plans predict
    # the finer optimal supports only when the cost is derived from the
    # support geometry (metric family); for arbitrary explicit or
    # callable costs the result stays honest and reports
    # converged=False — the caller can raise `radius` or compare
    # against an exact reference — unless the finest mask degenerated
    # to the full product, where the restricted solve is the dense one.
    certified = problem.has_metric_cost and coarsest_result.converged
    return result_from_matrix(
        problem, level_info["matrix"], value=level_info["value"],
        converged=certified or level_info["full"],
        n_iter=level_info["n_iter"], extras=extras)


def _refine_level(problem: OTProblem, coarse_result: OTResult,
                  source_bins: np.ndarray, target_bins: np.ndarray, *,
                  radius: int, engine: str,
                  sparse_support: bool | None) -> dict:
    """One pyramid refine step: dilated support + exact restricted solve.

    ``problem`` is the finer level, ``coarse_result`` the solved level
    above it.  Returns the solved level as a dict: the plan ``matrix``
    (CSR, densified past the density threshold), the ``value``, the
    engine that actually ran, the warm-start/basis bookkeeping, and the
    support diagnostics the solver aggregates into
    ``extras["pyramid"]``.
    """
    mu, nu = problem.source_weights, problem.target_weights
    n, m = problem.shape
    if sparse_support is None:
        use_sparse = (n * m > _SPARSE_SUPPORT_LIMIT
                      and problem.has_metric_cost
                      and problem.support_mask is None)
    else:
        use_sparse = bool(sparse_support)
    if use_sparse:
        rows, cols = _sparse_refined_support(
            coarse_result, source_bins, target_bins, radius, problem)
        full = rows.size == n * m
    else:
        active = np.asarray(coarse_result.plan.toarray() > 0.0)
        dilated = dilate_mask(active, radius=radius)
        mask = refine_mask(dilated, source_bins, target_bins)
        if problem.support_mask is not None:
            # Same semantics as "screened": extra support to include.
            mask |= problem.support_mask
        # O(n + m) feasibility patch: the NW staircase couples mu, nu.
        nw_rows, nw_cols = north_west_corner_support(mu, nu)
        mask[nw_rows, nw_cols] = True
        rows, cols = np.nonzero(mask)
        full = bool(mask.all())

    if engine in ("banded", "auto") and _banded_certifiable(problem):
        # The raw refined support is a union of the dilated coarse band
        # and the staircase, which can leave per-row holes that fail
        # the band certificate and silently demote the solve to simplex
        # pivoting.  Widening to the monotone band envelope is free
        # exactness-wise (a superset still contains the optimal
        # monotone plan) and makes the certificate structural.
        enveloped = _band_envelope_support(rows, cols, n, m)
        if enveloped is not None:
            rows, cols = enveloped
            full = rows.size == n * m

    init = None
    if engine != "lp" and not _banded_certifiable(problem):
        # The level above solved its restricted problem with the
        # network simplex: lift its optimal basis onto this level's
        # grid and start pivoting from there.  Only worthwhile off the
        # monotone-certified family: there the cold staircase init IS
        # the optimal basis, and a cross-grid lift *displaces* parts of
        # it (measured at n = 10⁴: 41k recovery pivots warm vs 9 cold),
        # while for explicit/callable costs the coarse basis is the
        # only structural information available.
        coarse_state = coarse_result.extras.get("state")
        if isinstance(coarse_state, NetworkSimplexState):
            init = refine_state(coarse_state, source_bins, target_bins,
                                mu, nu)
    cost_values = _cost_entries(problem, rows, cols)
    matrix, nit, value, state, engine_used = _restricted_exact_entries(
        cost_values, rows, cols, (n, m), mu, nu,
        engine=engine, init=init, sparse_output=True,
        monotone_certified=_banded_certifiable(problem))
    if matrix.nnz / float(n * m) > SPARSE_DENSITY_THRESHOLD:
        matrix = matrix.toarray()
    return {"matrix": matrix, "value": value, "n_iter": nit,
            "state": state, "engine": engine_used,
            "warm_started": (init is not None
                             and engine_used == "network_simplex"),
            "support_size": int(rows.size),
            "support_density": float(rows.size / (n * m)),
            "sparse_support": bool(use_sparse), "full": full}


def _band_envelope_support(rows: np.ndarray, cols: np.ndarray, n: int,
                           m: int):
    """Widen lex-sorted support arcs to their monotone band envelope.

    Takes the per-row column interval hull, then forces the lower edge
    non-decreasing with a suffix minimum and the upper edge with a
    prefix maximum — the smallest superset of the support that
    :func:`~repro.ot.coupling.is_banded` certifies.  Returns the
    widened ``(rows, cols)`` (lex-sorted, duplicate-free), or ``None``
    when some row carries no arc (nothing guarantees a feasible band
    there, so the caller keeps the raw support and the simplex engine).
    """
    counts = np.bincount(rows, minlength=n)
    if rows.size == 0 or np.any(counts == 0):
        return None
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    lower = np.minimum.accumulate(cols[starts][::-1])[::-1]
    upper = np.maximum.accumulate(cols[starts + counts - 1])
    widths = upper - lower + 1
    band_rows = np.repeat(np.arange(n), widths)
    offsets = np.cumsum(widths) - widths
    band_cols = (np.arange(int(widths.sum()))
                 - np.repeat(offsets, widths)
                 + np.repeat(lower, widths))
    if band_cols.size >= n * m:
        # Degenerate geometry: the envelope is the full product; the
        # raw support is strictly cheaper to solve on.
        return None
    return band_rows, band_cols


def _sparse_refined_support(coarse_result: OTResult,
                            source_bins: np.ndarray,
                            target_bins: np.ndarray, radius: int,
                            problem: OTProblem
                            ) -> tuple[np.ndarray, np.ndarray]:
    """The refine step in index space: no boolean ``(n, m)`` mask.

    Dilates the coarse plan's support by ``radius`` cells per axis
    (clipped Chebyshev ball, matching
    :func:`~repro.ot.coupling.dilate_mask`), expands each surviving
    coarse cell pair to the cartesian product of its fine bin members,
    unions the north-west-corner staircase, and dedups.  Returns sorted
    ``(rows, cols)`` index arrays.
    """
    mu, nu = problem.source_weights, problem.target_weights
    m = nu.size
    coarse_matrix = coarse_result.plan.matrix
    if sparse.issparse(coarse_matrix):
        active_rows, active_cols = coarse_matrix.nonzero()
    else:
        active_rows, active_cols = np.nonzero(
            np.asarray(coarse_matrix) > 0.0)
    n_coarse, m_coarse = coarse_matrix.shape

    offsets = np.arange(-radius, radius + 1)
    dilated_rows = np.clip(
        active_rows[:, None, None] + offsets[None, :, None],
        0, n_coarse - 1)
    dilated_cols = np.clip(
        active_cols[:, None, None] + offsets[None, None, :],
        0, m_coarse - 1)
    dilated_rows, dilated_cols = np.broadcast_arrays(dilated_rows,
                                                    dilated_cols)
    pair_keys = np.unique(dilated_rows.ravel().astype(np.int64) * m_coarse
                          + dilated_cols.ravel())
    cell_rows = pair_keys // m_coarse
    cell_cols = pair_keys % m_coarse

    # Fine members of each coarse bin, grouped: members[start[b]:
    # start[b] + count[b]] are the fine indices binned into b.
    def _grouped(bins: np.ndarray, size: int):
        members = np.argsort(bins, kind="stable")
        counts = np.bincount(bins, minlength=size)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        return members, counts, starts

    s_members, s_counts, s_starts = _grouped(source_bins, n_coarse)
    t_members, t_counts, t_starts = _grouped(target_bins, m_coarse)

    row_counts = s_counts[cell_rows]
    col_counts = t_counts[cell_cols]
    sizes = row_counts * col_counts
    occupied = sizes > 0
    cell_rows, cell_cols = cell_rows[occupied], cell_cols[occupied]
    col_counts, sizes = col_counts[occupied], sizes[occupied]
    pair_of = np.repeat(np.arange(cell_rows.size), sizes)
    local = (np.arange(int(sizes.sum()))
             - np.repeat(np.cumsum(sizes) - sizes, sizes))
    per_pair_cols = col_counts[pair_of]
    rows = s_members[s_starts[cell_rows][pair_of] + local // per_pair_cols]
    cols = t_members[t_starts[cell_cols][pair_of] + local % per_pair_cols]

    nw_rows, nw_cols = north_west_corner_support(mu, nu)
    keys = np.unique(np.concatenate([rows, nw_rows]).astype(np.int64) * m
                     + np.concatenate([cols, nw_cols]))
    return keys // m, keys % m


def _cost_entries(problem: OTProblem, rows: np.ndarray,
                  cols: np.ndarray) -> np.ndarray:
    """Ground-cost values at the ``(rows, cols)`` support entries.

    Metric-family costs are evaluated pointwise on the supports
    (:func:`repro.ot.cost.pointwise_cost`, sharing :meth:`OTProblem.
    metric`'s name resolution with :meth:`OTProblem.cost_matrix`), so
    the dense fine cost matrix is never built; explicit and callable
    costs fall back to indexing the (cached) matrix.
    """
    metric = problem.metric
    if metric is not None:
        return pointwise_cost(problem.source_support[rows],
                              problem.target_support[cols],
                              metric=metric, p=problem.p)
    return problem.cost_matrix()[rows, cols]
