"""Multiscale screened OT: coarsen, solve exactly, refine the support.

The single-level ``"screened"`` hybrid prunes the product support with an
entropic (Sinkhorn) solve before running an exact restricted LP.  That
screen is itself ``O(n·m)`` per iteration, so on very large quantile
grids (``n_Q >= 2000``, the regime the repair pipeline's Figure-4 sweep
targets) the screen dominates the solve.  The multiscale solver replaces
the entropic screen with the classical coarsen-solve-refine pattern used
by POT's multiscale backends:

1. **Coarsen** — bin each 1-D support into ``ceil(n / coarsen)``
   contiguous cells with the same :class:`repro.density.grid.
   InterpolationGrid` binning Algorithm 1 uses, aggregating marginal
   mass per bin and representing each bin by its mass-weighted centre.
2. **Solve** — solve the coarse problem *exactly* through the facade
   (``"auto"``: the monotone closed form when the cost is a convex
   ``|x - y|^p`` metric; the simplex, LP or screened hybrid for
   aggregated explicit costs, by coarse size).
3. **Refine** — dilate the coarse plan's support by ``radius`` coarse
   cells (:func:`repro.ot.coupling.dilate_mask`), expand it onto the
   fine grid (:func:`repro.ot.coupling.refine_mask`), union the
   north-west-corner staircase so the restriction is always feasible,
   and solve the exact LP on that sparse support only.

Like ``"screened"``, the returned plan is CSR-backed below the
:data:`~repro.ot.coupling.SPARSE_DENSITY_THRESHOLD` density, and a
caller-supplied ``support_mask`` is unioned in as extra support to
include.  Unlike ``"screened"``, the fine ``(n, m)`` ground-cost matrix
is never materialised for metric-family costs — the restricted solve
sees cost values at the sparse support entries only.  Past
:data:`_SPARSE_SUPPORT_LIMIT` fine states the boolean ``(n, m)``
support mask goes the same way: the refine step switches to direct
index generation (dilate the coarse support in index space, expand to
the fine bin members, union the staircase), so the largest intermediate
left is the dense coarse plan (``(n/coarsen)²`` floats) and grids of
``n_Q ~ 10^5`` fit comfortably.  The restricted solve itself runs on
the native sparse network simplex by default
(``restricted_engine="network_simplex"``; pass ``"lp"`` for the scipy
oracle), and a stacked coarse level (``coarse_method="multiscale"``)
hands its optimal basis down through
:func:`~repro.ot.network_simplex.refine_state` to warm-start the fine
solve.

>>> import numpy as np
>>> from repro.ot import OTProblem, solve
>>> nodes = np.linspace(-3.0, 3.0, 400)
>>> mu = np.exp(-0.5 * (nodes + 1.0) ** 2)
>>> nu = np.exp(-0.5 * (nodes - 1.0) ** 2)
>>> problem = OTProblem(source_weights=mu / mu.sum(),
...                     target_weights=nu / nu.sum(),
...                     source_support=nodes, target_support=nodes,
...                     cost_fn="euclidean")
>>> result = solve(problem, method="multiscale", coarsen=8)
>>> result.solver, result.converged, result.plan.is_sparse
('multiscale', True, True)
>>> exact = solve(problem, method="lp")
>>> bool(result.value <= exact.value * 1.01)   # within 1% of the LP
True

The coarse support heuristic is only *certified* (``converged=True``)
for metric-family costs like the one above, where the support geometry
provably predicts the optimum; with a hand-rolled explicit cost the same
call still solves the restricted LP exactly but reports
``converged=False``, and ``"auto"`` routes such problems to
``"screened"`` instead.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .._validation import check_positive_int
from ..density.grid import InterpolationGrid
from ..exceptions import ValidationError
from .cost import pointwise_cost
from .coupling import SPARSE_DENSITY_THRESHOLD, dilate_mask, refine_mask
from .network_simplex import NetworkSimplexState, refine_state
from .onedim import north_west_corner_support
from .problem import OTProblem, OTResult, result_from_matrix
from .registry import register_solver
# Importing .solve here also registers the built-in solvers before
# "multiscale", keeping the registry's listing order intuitive.
from .solve import _restricted_exact_entries, solve

__all__ = ["coarsen_problem", "default_coarsen_factor"]

#: Hard floor on the coarse marginal size — coarser than this and the
#: coarse plan carries no usable geometry.
_MIN_COARSE_STATES = 2

#: Fine problem size (``n * m``) past which the refine step defaults to
#: direct index generation instead of a boolean ``(n, m)`` mask (10^8
#: states = a 100 MB mask; the index path carries only the O(support)
#: arc list).  Override per call with ``sparse_support=``.
_SPARSE_SUPPORT_LIMIT = 100_000_000


def default_coarsen_factor(size: int) -> int:
    """The default coarsening factor for a fine marginal of ``size``.

    The restricted fine LP dominates the multiscale solve and its cost
    grows superlinearly in the support size (which is itself linear in
    the factor: a radius-1 dilation band is ``~3·factor`` fine cells
    wide), so small factors win across the whole 500-5000 grid range
    we benchmark (``benchmarks/results/multiscale.txt``).  ``4`` keeps
    a ±6-fine-cell band — comfortable slack around the coarse plan for
    monotone-structured problems — while cutting the LP support well
    over an order of magnitude below the dense product.  Larger
    factors only pay off when the *coarse* level is the bottleneck
    (explicit cost matrices, where the coarse solve is an LP rather
    than the free monotone coupling).

    >>> default_coarsen_factor(2000)
    4
    """
    del size  # currently size-independent; kept for interface stability
    return 4


def coarsen_problem(problem: OTProblem, factor: int):
    """Build the coarse Kantorovich problem for one multiscale level.

    Bins each (1-D) support into ``ceil(size / factor)`` cells of an
    Algorithm-1 :class:`~repro.density.grid.InterpolationGrid`, sums the
    marginal mass per bin, and represents each bin by its mass-weighted
    centre (empty bins keep their geometric centre).  Returns
    ``(coarse_problem, source_bins, target_bins)`` where the bin arrays
    map each fine index to its coarse cell.

    The coarse ground cost mirrors the fine problem: metric-family costs
    and callables are re-evaluated on the coarse supports; an explicit
    fine cost matrix is aggregated by the mass-weighted mean over each
    coarse cell pair.
    """
    factor = check_positive_int(factor, name="coarsen", minimum=2)
    if not problem.is_one_dimensional:
        raise ValidationError(
            "the multiscale solver coarsens by support geometry and needs "
            "1-D source and target supports; use 'screened' for general "
            "problems")
    xs = problem.source_support.ravel()
    ys = problem.target_support.ravel()
    mu, nu = problem.source_weights, problem.target_weights

    source_bins, source_centers = _bin_support(xs, mu, factor)
    target_bins, target_centers = _bin_support(ys, nu, factor)
    n_c, m_c = source_centers.size, target_centers.size
    coarse_mu = np.bincount(source_bins, weights=mu, minlength=n_c)
    coarse_nu = np.bincount(target_bins, weights=nu, minlength=m_c)

    if problem.cost is not None:
        coarse_cost = _aggregate_cost(problem.cost, source_bins, mu, n_c,
                                      target_bins, nu, m_c)
        coarse = OTProblem(source_weights=coarse_mu,
                           target_weights=coarse_nu, cost=coarse_cost,
                           source_support=source_centers,
                           target_support=target_centers)
    else:
        coarse = OTProblem(source_weights=coarse_mu,
                           target_weights=coarse_nu,
                           cost_fn=problem.cost_fn,
                           source_support=source_centers,
                           target_support=target_centers, p=problem.p)
    return coarse, source_bins, target_bins


def _bin_support(points: np.ndarray, weights: np.ndarray,
                 factor: int) -> tuple[np.ndarray, np.ndarray]:
    """Bin 1-D ``points`` into ``ceil(size / factor)`` grid cells.

    Reuses the Algorithm-1 grid machinery: a uniform
    :class:`~repro.density.grid.InterpolationGrid` with ``n_bins + 1``
    nodes has exactly ``n_bins`` cells, and ``grid.locate`` assigns each
    point to its cell.  Returns ``(bin_index_per_point, bin_centers)``
    with the centre of each occupied bin moved to its mass-weighted mean.
    """
    n_bins = max(_MIN_COARSE_STATES, -(-points.size // factor))
    n_bins = min(n_bins, points.size)
    grid = InterpolationGrid.from_samples(points, n_bins + 1)
    bins, _ = grid.locate(points)
    centers = 0.5 * (grid.nodes[:-1] + grid.nodes[1:])
    mass = np.bincount(bins, weights=weights, minlength=n_bins)
    moment = np.bincount(bins, weights=weights * points, minlength=n_bins)
    occupied = mass > 0.0
    centers = centers.copy()
    centers[occupied] = moment[occupied] / mass[occupied]
    return bins, centers


def _aggregate_cost(cost: np.ndarray, source_bins: np.ndarray,
                    mu: np.ndarray, n_coarse: int,
                    target_bins: np.ndarray, nu: np.ndarray,
                    m_coarse: int) -> np.ndarray:
    """Mass-weighted mean of an explicit fine cost over coarse cell pairs.

    Weighting by the fine marginals makes the coarse cost the expected
    fine cost of a within-bin-uniform coupling; bins with zero marginal
    mass fall back to the unweighted mean so the coarse cost stays
    finite everywhere.
    """
    from scipy import sparse

    def _aggregator(bins, fine_weights, size):
        n_fine = bins.size
        mass = np.bincount(bins, weights=fine_weights, minlength=size)
        weights = np.where(mass[bins] > 0.0, fine_weights, 1.0)
        totals = np.bincount(bins, weights=weights, minlength=size)
        weights = weights / totals[bins]
        return sparse.csr_array(
            (weights, (bins, np.arange(n_fine))), shape=(size, n_fine))

    rows = _aggregator(source_bins, mu, n_coarse)
    cols = _aggregator(target_bins, nu, m_coarse)
    return np.asarray((rows @ cost) @ cols.T)


@register_solver(
    "multiscale",
    description="coarsen-solve-refine sparse hybrid: exact coarse solve "
                "on a binned grid, support dilated onto the fine grid, "
                "exact restricted LP returning a CSR-backed plan — the "
                "fast path for very large 1-D grids")
def _solve_multiscale(problem: OTProblem, *, coarsen: int | None = None,
                      radius: int = 1, coarse_method: str = "auto",
                      restricted_engine: str = "network_simplex",
                      sparse_support: bool | None = None) -> OTResult:
    """Coarsen, solve the coarse problem exactly, refine the support.

    Parameters
    ----------
    coarsen:
        Fine points per coarse bin; ``None`` picks
        :func:`default_coarsen_factor` from the problem size.
    radius:
        Support dilation in coarse cells: the fine restricted solve may
        place mass up to ``radius`` coarse cells away from the coarse
        plan's support.  ``radius=1`` is exact on every
        monotone-structured problem we benchmark; raise it if the
        returned value is visibly above an exact reference.  For costs
        *not* derived from the support geometry (explicit matrices,
        callables) the coarse support is only a heuristic — the result
        then reports ``converged=False`` and ``"auto"`` never
        dispatches here; prefer ``"screened"`` unless you know the cost
        correlates with the supports.
    coarse_method:
        Solver spec for the coarse level (default ``"auto"``: the
        closed-form monotone coupling for metric-family costs; the
        simplex/LP/screened hybrid, by coarse size, for aggregated
        explicit costs).  Pass ``"multiscale"`` explicitly to stack a
        second coarsening level for huge grids — the coarse level's
        network-simplex basis then warm-starts the fine solve through
        :func:`~repro.ot.network_simplex.refine_state`.
    restricted_engine:
        Exact engine for the fine restricted solve: the native sparse
        arc-list network simplex (default) or ``"lp"`` for the scipy
        HiGHS oracle it is differentially tested against.
    sparse_support:
        ``True`` refines in index space (no boolean ``(n, m)`` mask),
        ``False`` forces the dense-mask refine, ``None`` (default)
        picks the index path automatically past
        :data:`_SPARSE_SUPPORT_LIMIT` fine states when the cost is
        metric-family and no ``support_mask`` needs unioning.
    """
    mu, nu = problem.source_weights, problem.target_weights
    n, m = problem.shape
    if coarsen is None:
        coarsen = default_coarsen_factor(max(n, m))
    radius = check_positive_int(radius, name="radius", minimum=0)

    coarse, source_bins, target_bins = coarsen_problem(problem, coarsen)
    coarse_result = solve(coarse, method=coarse_method)

    if sparse_support is None:
        sparse_support = (n * m > _SPARSE_SUPPORT_LIMIT
                          and problem.has_metric_cost
                          and problem.support_mask is None)
    if sparse_support:
        rows, cols = _sparse_refined_support(
            coarse_result, source_bins, target_bins, radius, problem)
        full = rows.size == n * m
    else:
        active = np.asarray(coarse_result.plan.toarray() > 0.0)
        dilated = dilate_mask(active, radius=radius)
        mask = refine_mask(dilated, source_bins, target_bins)
        if problem.support_mask is not None:
            # Same semantics as "screened": extra support to include.
            mask |= problem.support_mask
        # O(n + m) feasibility patch: the NW staircase couples mu, nu.
        nw_rows, nw_cols = north_west_corner_support(mu, nu)
        mask[nw_rows, nw_cols] = True
        rows, cols = np.nonzero(mask)
        full = bool(mask.all())

    init = None
    if restricted_engine == "network_simplex":
        coarse_state = coarse_result.extras.get("state")
        if isinstance(coarse_state, NetworkSimplexState):
            # A stacked coarse level solved its own restricted problem
            # with the network simplex: lift its optimal basis onto the
            # fine grid and start pivoting from there.
            init = refine_state(coarse_state, source_bins, target_bins,
                                mu, nu)
    cost_values = _cost_entries(problem, rows, cols)
    matrix, nit, value, state = _restricted_exact_entries(
        cost_values, rows, cols, (n, m), mu, nu,
        engine=restricted_engine, init=init, sparse_output=True)
    if matrix.nnz / float(n * m) > SPARSE_DENSITY_THRESHOLD:
        matrix = matrix.toarray()

    extras = {"coarsen": int(coarsen), "radius": int(radius),
              "coarse_shape": coarse.shape,
              "coarse_solver": coarse_result.solver,
              "coarse_value": float(coarse_result.value),
              "geometry_aligned": bool(problem.has_metric_cost),
              "restricted_engine": restricted_engine,
              "sparse_support": bool(sparse_support),
              "support_size": int(rows.size),
              "support_density": float(rows.size / (n * m))}
    if state is not None:
        extras["state"] = state
        extras["warm_started"] = init is not None
    # The restricted solve is exact on its support, so convergence is a
    # statement about *support quality*.  The coarse plan predicts the
    # fine optimal support only when the cost is derived from the
    # support geometry (metric family); for arbitrary explicit or
    # callable costs the result stays honest and reports
    # converged=False — the caller can raise `radius` or compare
    # against an exact reference — unless the mask degenerated to the
    # full product, where the restricted solve is the dense one.
    certified = problem.has_metric_cost and coarse_result.converged
    return result_from_matrix(
        problem, matrix, value=value,
        converged=certified or full,
        n_iter=nit, extras=extras)


def _sparse_refined_support(coarse_result: OTResult,
                            source_bins: np.ndarray,
                            target_bins: np.ndarray, radius: int,
                            problem: OTProblem
                            ) -> tuple[np.ndarray, np.ndarray]:
    """The refine step in index space: no boolean ``(n, m)`` mask.

    Dilates the coarse plan's support by ``radius`` cells per axis
    (clipped Chebyshev ball, matching
    :func:`~repro.ot.coupling.dilate_mask`), expands each surviving
    coarse cell pair to the cartesian product of its fine bin members,
    unions the north-west-corner staircase, and dedups.  Returns sorted
    ``(rows, cols)`` index arrays.
    """
    mu, nu = problem.source_weights, problem.target_weights
    m = nu.size
    coarse_matrix = coarse_result.plan.matrix
    if sparse.issparse(coarse_matrix):
        active_rows, active_cols = coarse_matrix.nonzero()
    else:
        active_rows, active_cols = np.nonzero(
            np.asarray(coarse_matrix) > 0.0)
    n_coarse, m_coarse = coarse_matrix.shape

    offsets = np.arange(-radius, radius + 1)
    dilated_rows = np.clip(
        active_rows[:, None, None] + offsets[None, :, None],
        0, n_coarse - 1)
    dilated_cols = np.clip(
        active_cols[:, None, None] + offsets[None, None, :],
        0, m_coarse - 1)
    dilated_rows, dilated_cols = np.broadcast_arrays(dilated_rows,
                                                    dilated_cols)
    pair_keys = np.unique(dilated_rows.ravel().astype(np.int64) * m_coarse
                          + dilated_cols.ravel())
    cell_rows = pair_keys // m_coarse
    cell_cols = pair_keys % m_coarse

    # Fine members of each coarse bin, grouped: members[start[b]:
    # start[b] + count[b]] are the fine indices binned into b.
    def _grouped(bins: np.ndarray, size: int):
        members = np.argsort(bins, kind="stable")
        counts = np.bincount(bins, minlength=size)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        return members, counts, starts

    s_members, s_counts, s_starts = _grouped(source_bins, n_coarse)
    t_members, t_counts, t_starts = _grouped(target_bins, m_coarse)

    row_counts = s_counts[cell_rows]
    col_counts = t_counts[cell_cols]
    sizes = row_counts * col_counts
    occupied = sizes > 0
    cell_rows, cell_cols = cell_rows[occupied], cell_cols[occupied]
    col_counts, sizes = col_counts[occupied], sizes[occupied]
    pair_of = np.repeat(np.arange(cell_rows.size), sizes)
    local = (np.arange(int(sizes.sum()))
             - np.repeat(np.cumsum(sizes) - sizes, sizes))
    per_pair_cols = col_counts[pair_of]
    rows = s_members[s_starts[cell_rows][pair_of] + local // per_pair_cols]
    cols = t_members[t_starts[cell_cols][pair_of] + local % per_pair_cols]

    nw_rows, nw_cols = north_west_corner_support(mu, nu)
    keys = np.unique(np.concatenate([rows, nw_rows]).astype(np.int64) * m
                     + np.concatenate([cols, nw_cols]))
    return keys // m, keys % m


def _cost_entries(problem: OTProblem, rows: np.ndarray,
                  cols: np.ndarray) -> np.ndarray:
    """Ground-cost values at the ``(rows, cols)`` support entries.

    Metric-family costs are evaluated pointwise on the supports
    (:func:`repro.ot.cost.pointwise_cost`, sharing :meth:`OTProblem.
    metric`'s name resolution with :meth:`OTProblem.cost_matrix`), so
    the dense fine cost matrix is never built; explicit and callable
    costs fall back to indexing the (cached) matrix.
    """
    metric = problem.metric
    if metric is not None:
        return pointwise_cost(problem.source_support[rows],
                              problem.target_support[cols],
                              metric=metric, p=problem.p)
    return problem.cost_matrix()[rows, cols]
