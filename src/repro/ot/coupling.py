"""Transport-plan container with marginal verification.

A Kantorovich optimal transport plan is a joint distribution ``π`` over the
product of two discrete supports whose marginals equal the prescribed source
and target distributions (paper Eq. 5).  :class:`TransportPlan` wraps the
matrix together with its supports, checks the coupling constraints, and
offers the operations the repair algorithms need: conditional rows
(Eq. 15), barycentric projection (Eqs. 8-9), and transport cost.

Storage is dual-mode: the plan matrix is either a dense ``(n, m)`` array or
a CSR sparse array (:class:`scipy.sparse.csr_array`).  Screened and exact
monotone plans have ``O(n + m)`` support, so CSR storage cuts the memory
footprint roughly ``n``-fold; every operation below (conditionals,
barycentric projection, inverse-CDF sampling) has a sparse path that never
densifies.  Build sparse plans explicitly with :meth:`TransportPlan.
from_sparse` or convert with :meth:`TransportPlan.to_sparse`; solvers
auto-select CSR when the plan density falls below
:data:`SPARSE_DENSITY_THRESHOLD`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse as _sparse

from .._validation import as_1d_array, as_probability_vector
from ..exceptions import ValidationError

__all__ = ["TransportPlan", "marginal_residual", "is_coupling",
           "sample_conditional_rows", "conditional_cumulative",
           "dilate_mask", "refine_mask", "band_bounds", "is_banded",
           "SPARSE_DENSITY_THRESHOLD"]

#: Below this fraction of structural non-zeros a plan is worth storing as
#: CSR: the triplet arrays (data + indices + indptr) then undercut the
#: dense buffer by at least ~2x even counting the int64 index overhead.
SPARSE_DENSITY_THRESHOLD = 0.25


def _row_sums(matrix) -> np.ndarray:
    if _sparse.issparse(matrix):
        return np.asarray(matrix.sum(axis=1)).ravel()
    return matrix.sum(axis=1)


def _col_sums(matrix) -> np.ndarray:
    if _sparse.issparse(matrix):
        return np.asarray(matrix.sum(axis=0)).ravel()
    return matrix.sum(axis=0)


def _inner_product(matrix, cost: np.ndarray) -> float:
    """``<C, π>`` for a dense or CSR plan, without densifying."""
    if _sparse.issparse(matrix):
        row_of = np.repeat(np.arange(matrix.shape[0]),
                           np.diff(matrix.indptr))
        return float((cost[row_of, matrix.indices] * matrix.data).sum())
    return float(np.sum(cost * matrix))


def marginal_residual(matrix, source_weights: np.ndarray,
                      target_weights: np.ndarray) -> float:
    """Max-norm violation of the coupling constraints of ``matrix``
    (dense array or scipy sparse)."""
    row_err = np.abs(_row_sums(matrix) - source_weights).max()
    col_err = np.abs(_col_sums(matrix) - target_weights).max()
    return float(max(row_err, col_err))


def is_coupling(matrix, source_weights: np.ndarray,
                target_weights: np.ndarray, *, atol: float = 1e-6) -> bool:
    """True when ``matrix`` couples the two weight vectors within ``atol``."""
    if _sparse.issparse(matrix):
        if matrix.nnz and float(matrix.data.min()) < -atol:
            return False
    elif np.any(matrix < -atol):
        return False
    return marginal_residual(matrix, source_weights, target_weights) <= atol


def dilate_mask(mask, radius: int = 1) -> np.ndarray:
    """Binary dilation of a boolean matrix by a Chebyshev ``radius``.

    Every ``True`` entry spreads to its ``(2·radius + 1)²`` neighbourhood
    (clipped at the matrix edges).  This is the support-propagation step
    of the multiscale solver: an active coarse-plan cell licenses its
    whole coarse neighbourhood before the mask is refined onto the fine
    grid, so the exact fine-level optimum may deviate from the coarse
    plan by up to ``radius`` coarse cells in any direction.

    >>> import numpy as np
    >>> mask = np.zeros((3, 4), dtype=bool)
    >>> mask[1, 1] = True
    >>> dilate_mask(mask, radius=1).astype(int)
    array([[1, 1, 1, 0],
           [1, 1, 1, 0],
           [1, 1, 1, 0]])
    >>> bool(np.array_equal(dilate_mask(mask, radius=0), mask))
    True
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValidationError(
            f"mask must be 2-D, got shape {mask.shape}")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return mask.copy()
    from scipy import ndimage
    structure = np.ones((2 * radius + 1, 2 * radius + 1), dtype=bool)
    return ndimage.binary_dilation(mask, structure=structure)


def refine_mask(coarse_mask, row_bins, col_bins) -> np.ndarray:
    """Expand a coarse support mask onto the fine grid.

    ``row_bins[i]`` / ``col_bins[j]`` give the coarse bin of fine source
    point ``i`` / fine target point ``j``; fine entry ``(i, j)`` is
    allowed exactly when its coarse cell ``(row_bins[i], col_bins[j])``
    is allowed.  This is the refinement step of the multiscale solver:
    the dilated coarse support becomes the ``support_mask`` of the
    restricted fine LP.

    >>> import numpy as np
    >>> coarse = np.array([[True, False], [False, True]])
    >>> refine_mask(coarse, [0, 0, 1], [0, 1]).astype(int)
    array([[1, 0],
           [1, 0],
           [0, 1]])
    """
    coarse_mask = np.asarray(coarse_mask, dtype=bool)
    row_bins = np.asarray(row_bins, dtype=np.intp)
    col_bins = np.asarray(col_bins, dtype=np.intp)
    if coarse_mask.ndim != 2:
        raise ValidationError(
            f"coarse_mask must be 2-D, got shape {coarse_mask.shape}")
    for bins, axis_size, name in ((row_bins, coarse_mask.shape[0], "row"),
                                  (col_bins, coarse_mask.shape[1], "col")):
        if bins.ndim != 1:
            raise ValidationError(f"{name}_bins must be 1-D")
        if bins.size and (bins.min() < 0 or bins.max() >= axis_size):
            raise ValidationError(
                f"{name}_bins indices out of range for coarse_mask axis "
                f"of size {axis_size}")
    return coarse_mask[np.ix_(row_bins, col_bins)]


def _band_hull(rows, cols, shape):
    """Shared arc-list scan behind :func:`band_bounds` / :func:`is_banded`.

    Returns ``(lower, upper, counts)`` per-row arrays, or ``None`` when
    some row holds no arc (no interval hull exists there).
    """
    rows = np.asarray(rows, dtype=np.intp).ravel()
    cols = np.asarray(cols, dtype=np.intp).ravel()
    if rows.size != cols.size:
        raise ValidationError(
            f"rows and cols must be parallel arrays, got sizes "
            f"{rows.size} and {cols.size}")
    n, m = int(shape[0]), int(shape[1])
    if n <= 0 or m <= 0:
        raise ValidationError(f"shape must be positive, got {shape!r}")
    if rows.size == 0:
        return None
    if (rows.min() < 0 or rows.max() >= n
            or cols.min() < 0 or cols.max() >= m):
        raise ValidationError(
            f"arc indices out of range for shape {(n, m)}")
    keys = rows.astype(np.int64) * m + cols
    if keys.size > 1 and np.any(np.diff(keys) <= 0):
        keys = np.unique(keys)
        rows, cols = keys // m, keys % m
    counts = np.bincount(rows, minlength=n)
    if np.any(counts == 0):
        return None
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    lower = cols[starts]
    upper = cols[starts + counts - 1]
    return lower, upper, counts


def band_bounds(rows, cols, shape) -> tuple[np.ndarray, np.ndarray]:
    """Per-row column interval hull ``(lower, upper)`` of an arc list.

    ``rows`` / ``cols`` are parallel index arrays naming the allowed
    entries of an ``(n, m)`` support; entry order does not matter and
    duplicates are tolerated.  Row ``i``'s arcs all lie inside
    ``[lower[i], upper[i]]`` (inclusive).  Every row must hold at least
    one arc — the multiscale/screened supports always do, since the
    north-west-corner feasibility staircase visits every row.

    >>> import numpy as np
    >>> lo, hi = band_bounds([0, 0, 1, 1], [0, 1, 1, 2], (2, 3))
    >>> lo.tolist(), hi.tolist()
    ([0, 1], [1, 2])
    """
    hull = _band_hull(rows, cols, shape)
    if hull is None:
        raise ValidationError(
            "band_bounds needs at least one arc in every row; union a "
            "feasibility staircase (north_west_corner_support) first")
    lower, upper, _ = hull
    return lower, upper


def is_banded(rows, cols, shape) -> bool:
    """True when an arc list is exactly a monotone contiguous band.

    Certifies the structure the ``"banded"`` restricted engine needs
    (:func:`repro.ot.onedim.banded_monotone_transport`): every row's
    columns fill the contiguous interval ``[lower[i], upper[i]]`` with
    no holes, and both endpoint sequences are non-decreasing — the
    support is a staircase-shaped band.  Duplicate arcs are deduped
    before the contiguity count, and any row without arcs fails the
    certificate (no interval hull exists there).

    >>> import numpy as np
    >>> is_banded([0, 0, 1, 1], [0, 1, 1, 2], (2, 3))
    True
    >>> is_banded([0, 0, 1], [0, 2, 1], (2, 3))     # hole in row 0
    False
    >>> is_banded([0, 1], [1, 0], (2, 2))           # bounds decrease
    False
    """
    hull = _band_hull(rows, cols, shape)
    if hull is None:
        return False
    lower, upper, counts = hull
    if np.any(counts != upper - lower + 1):
        return False
    return (bool(np.all(np.diff(lower) >= 0))
            and bool(np.all(np.diff(upper) >= 0)))


def conditional_cumulative(conditionals) -> np.ndarray:
    """The zero-prefixed running sum over a CSR conditional matrix's data
    — the exact layout :func:`sample_conditional_rows` expects as its
    ``cumulative`` argument.  Hot callers compute it once per matrix and
    cache it; this helper is the single definition of that contract.
    """
    return np.concatenate([[0.0], np.cumsum(conditionals.data,
                                            dtype=float)])


def sample_conditional_rows(conditionals, rows, uniforms, *,
                            cumulative=None) -> np.ndarray:
    """Vectorised inverse-CDF draw from selected rows of a row-stochastic
    matrix (paper Eq. 15), one target state per ``(row, uniform)`` pair.

    ``conditionals`` is a dense array or CSR sparse array whose rows each
    sum to one.  The sparse path works on the CSR data directly — one
    global :func:`numpy.searchsorted` over the running row-wise cumulative
    sums — and never densifies.  ``cumulative`` optionally supplies that
    precomputed running sum (``np.concatenate([[0], np.cumsum(data)])``)
    so hot callers (Algorithm 2's batch loop) can cache it.
    """
    rows = np.asarray(rows)
    uniforms = np.asarray(uniforms, dtype=float)
    if _sparse.issparse(conditionals):
        matrix = conditionals
        if not _sparse.issparse(matrix) or matrix.format != "csr":
            matrix = _sparse.csr_array(matrix)
        lo = matrix.indptr[rows]
        hi = matrix.indptr[rows + 1]
        if np.any(hi == lo):
            raise ValidationError(
                "conditional matrix has empty rows; normalise it with "
                "TransportPlan.conditional_matrix() first")
        if cumulative is None:
            cumulative = conditional_cumulative(matrix)
        # Row r's CDF at its j-th stored entry is cum[lo+j+1] - cum[lo];
        # the sampled entry index is the count of entries with CDF < u.
        count = np.searchsorted(cumulative, cumulative[lo] + uniforms,
                                side="left") - (lo + 1)
        count = np.clip(count, 0, hi - lo - 1)
        return matrix.indices[lo + count]
    cdfs = np.cumsum(conditionals[rows], axis=1)
    cdfs[:, -1] = 1.0  # guard round-off (< 1.0 row sums)
    states = (cdfs < uniforms[:, None]).sum(axis=1)
    return np.minimum(states, conditionals.shape[1] - 1)


@dataclass(frozen=True)
class TransportPlan:
    """An optimal (or candidate) transport plan between discrete measures.

    Attributes
    ----------
    matrix:
        ``(n, m)`` joint probability matrix ``π`` — a dense
        :class:`numpy.ndarray` or a :class:`scipy.sparse.csr_array`
        (any scipy sparse input is normalised to CSR).
    source_support, target_support:
        Support points of the two marginals, shape ``(n, d)`` / ``(m, d)``;
        1-D supports are stored as ``(n, 1)``.
    cost:
        Expected transport cost ``<C, π>`` when the plan was produced by a
        solver, else ``nan``.
    """

    matrix: np.ndarray
    source_support: np.ndarray
    target_support: np.ndarray
    cost: float = float("nan")
    _atol: float = field(default=1e-6, repr=False)

    def __post_init__(self) -> None:
        if _sparse.issparse(self.matrix):
            matrix = _sparse.csr_array(self.matrix, copy=True)
            if matrix.dtype != np.float64:
                matrix = matrix.astype(float)
            if matrix.nnz and float(matrix.data.min()) < -self._atol:
                raise ValidationError("plan matrix must be non-negative")
            np.clip(matrix.data, 0.0, None, out=matrix.data)
        else:
            matrix = np.asarray(self.matrix, dtype=float)
            if matrix.ndim != 2:
                raise ValidationError(
                    f"plan matrix must be 2-D, got shape {matrix.shape}")
            if np.any(matrix < -self._atol):
                raise ValidationError("plan matrix must be non-negative")
            matrix = np.clip(matrix, 0.0, None)
        source = _as_support(self.source_support, matrix.shape[0], "source")
        target = _as_support(self.target_support, matrix.shape[1], "target")
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "source_support", source)
        object.__setattr__(self, "target_support", target)

    # -- storage -----------------------------------------------------------

    @property
    def is_sparse(self) -> bool:
        """True when the plan matrix is CSR-backed."""
        return _sparse.issparse(self.matrix)

    @property
    def nnz(self) -> int:
        """Stored non-zero entries (dense plans count exact non-zeros)."""
        if self.is_sparse:
            return int(self.matrix.nnz)
        return int(np.count_nonzero(self.matrix))

    @property
    def density(self) -> float:
        """``nnz / (n * m)`` — the fraction of the plan that carries mass."""
        n, m = self.shape
        return self.nnz / float(n * m)

    def toarray(self) -> np.ndarray:
        """The plan as a dense array (a copy when CSR-backed)."""
        if self.is_sparse:
            return self.matrix.toarray()
        return self.matrix

    def to_sparse(self) -> "TransportPlan":
        """CSR-backed copy of this plan (self when already sparse)."""
        if self.is_sparse:
            return self
        return TransportPlan(_sparse.csr_array(self.matrix),
                             self.source_support, self.target_support,
                             self.cost)

    def to_dense(self) -> "TransportPlan":
        """Densely stored copy of this plan (self when already dense)."""
        if not self.is_sparse:
            return self
        return TransportPlan(self.matrix.toarray(), self.source_support,
                             self.target_support, self.cost)

    @classmethod
    def _trusted(cls, matrix: np.ndarray, source_support: np.ndarray,
                 target_support: np.ndarray,
                 cost: float) -> "TransportPlan":
        """Wrap *pre-validated* ingredients without the ``__post_init__``
        checks or the defensive clip/copy.

        For internal hot paths only (the batched monotone kernel): the
        caller guarantees a non-negative float ``(n, m)`` matrix and
        canonical ``(n, 1)``-shaped float supports.  Field values are
        identical to what the validated constructor would store — the
        clip of a non-negative matrix is a value-preserving copy — so
        trusted and validated plans are interchangeable bitwise.
        """
        plan = cls.__new__(cls)
        object.__setattr__(plan, "matrix", matrix)
        object.__setattr__(plan, "source_support", source_support)
        object.__setattr__(plan, "target_support", target_support)
        object.__setattr__(plan, "cost", cost)
        object.__setattr__(plan, "_atol", 1e-6)
        return plan

    @classmethod
    def from_sparse(cls, matrix, source_support, target_support,
                    cost: float = float("nan"), *,
                    shape=None) -> "TransportPlan":
        """Build a CSR-backed plan from sparse ingredients.

        ``matrix`` is any scipy sparse matrix/array, or a CSR triplet
        ``(data, indices, indptr)`` — the layout :func:`repro.core.
        serialize.save_plan` persists — in which case ``shape`` is
        required.
        """
        if isinstance(matrix, tuple) and len(matrix) == 3:
            if shape is None:
                raise ValidationError(
                    "from_sparse needs an explicit shape with a "
                    "(data, indices, indptr) triplet")
            matrix = _sparse.csr_array(matrix, shape=shape)
        elif not _sparse.issparse(matrix):
            matrix = _sparse.csr_array(np.asarray(matrix, dtype=float))
        return cls(matrix, source_support, target_support, cost)

    # -- marginals ---------------------------------------------------------

    @property
    def source_weights(self) -> np.ndarray:
        """Row sums: the source marginal ``µ``."""
        return _row_sums(self.matrix)

    @property
    def target_weights(self) -> np.ndarray:
        """Column sums: the target marginal ``ν``."""
        return _col_sums(self.matrix)

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def verify(self, source_weights, target_weights, *,
               atol: float = 1e-6) -> None:
        """Raise unless this plan couples the given marginals."""
        mu = as_probability_vector(source_weights, name="source_weights",
                                   normalize=True)
        nu = as_probability_vector(target_weights, name="target_weights",
                                   normalize=True)
        if self.matrix.shape != (mu.size, nu.size):
            raise ValidationError(
                f"plan shape {self.matrix.shape} incompatible with marginals "
                f"({mu.size}, {nu.size})")
        residual = marginal_residual(self.matrix, mu, nu)
        if residual > atol:
            raise ValidationError(
                f"coupling constraints violated (residual {residual:.3e} "
                f"> atol {atol:.1e})")

    # -- operations used by the repair algorithms --------------------------

    def conditional_row(self, index: int) -> np.ndarray:
        """Normalised row ``π[index, :] / Σ_j π[index, j]`` (paper Eq. 15).

        Rows with (numerically) zero mass fall back to a point mass on the
        nearest-cost column, which keeps Algorithm 2 total: every archival
        point gets a valid conditional distribution.  Always returns a
        dense 1-D array (a single row is ``O(m)`` regardless of storage).
        """
        if self.is_sparse:
            row = self.matrix[[index], :].toarray().ravel()
        else:
            row = self.matrix[index]
        total = row.sum()
        if total <= 1e-300:
            fallback = np.zeros(self.shape[1])
            fallback[self._nearest_targets(np.array([index]))[0]] = 1.0
            return fallback
        return row / total

    def conditional_matrix(self):
        """All conditional rows stacked; rows sum to one.

        Vectorised: one division with a zero-row fallback mask (zero-mass
        rows become a point mass on their nearest target).  Returns the
        same storage as the plan — dense in, dense out; CSR in, CSR out
        (the sparse path never densifies).
        """
        totals = _row_sums(self.matrix)
        zero = totals <= 1e-300
        safe = np.where(zero, 1.0, totals)
        if not self.is_sparse:
            out = self.matrix / safe[:, None]
            if zero.any():
                rows = np.nonzero(zero)[0]
                out[rows] = 0.0
                out[rows, self._nearest_targets(rows)] = 1.0
            return out
        matrix = self.matrix
        counts = np.diff(matrix.indptr)
        data = matrix.data / np.repeat(safe, counts)
        if zero.any():
            rows = np.nonzero(zero)[0]
            row_of = np.repeat(np.arange(self.shape[0]), counts)
            data = np.where(zero[row_of], 0.0, data)
            base = _sparse.csr_array((data, matrix.indices, matrix.indptr),
                                     shape=matrix.shape)
            base.eliminate_zeros()
            point = _sparse.csr_array(
                (np.ones(rows.size), (rows, self._nearest_targets(rows))),
                shape=matrix.shape)
            return (base + point).tocsr()
        return _sparse.csr_array((data, matrix.indices, matrix.indptr),
                                 shape=matrix.shape)

    def sample_conditional(self, rows, uniforms) -> np.ndarray:
        """Inverse-CDF draw of one target state per ``(row, uniform)``
        pair — the sampler of Algorithm 2 Eq. 15, storage-agnostic."""
        return sample_conditional_rows(self.conditional_matrix(), rows,
                                       uniforms)

    def barycentric_projection(self) -> np.ndarray:
        """Conditional-mean map ``T(x_i) = E_π[Y | X = x_i]``.

        This is the deterministic "barycentric" image used by geometric
        repair variants; rows with zero mass map to their nearest target.
        CSR plans compute this as a sparse-dense product without
        densifying.
        """
        conditionals = self.conditional_matrix()
        return np.asarray(conditionals @ self.target_support)

    def expected_cost(self, cost_matrix: np.ndarray) -> float:
        """Expected transport cost ``<C, π>`` under an explicit cost."""
        cost = np.asarray(cost_matrix, dtype=float)
        if cost.shape != self.matrix.shape:
            raise ValidationError(
                f"cost shape {cost.shape} != plan shape {self.matrix.shape}")
        return _inner_product(self.matrix, cost)

    def transpose(self) -> "TransportPlan":
        """The reverse plan (target -> source); storage mode is kept."""
        return TransportPlan(self.matrix.T, self.target_support,
                             self.source_support, self.cost)

    def _nearest_targets(self, rows: np.ndarray) -> np.ndarray:
        """Index of the nearest target point for each given source row."""
        diffs = (self.source_support[rows][:, None, :]
                 - self.target_support[None, :, :])
        return np.linalg.norm(diffs, axis=2).argmin(axis=1)


def _as_support(support, expected_len: int, name: str) -> np.ndarray:
    arr = np.asarray(support, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} support must be 1-D or 2-D, got shape {arr.shape}")
    if arr.shape[0] != expected_len:
        raise ValidationError(
            f"{name} support has {arr.shape[0]} points, plan expects "
            f"{expected_len}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} support contains non-finite entries")
    return arr
