"""Transport-plan container with marginal verification.

A Kantorovich optimal transport plan is a joint distribution ``π`` over the
product of two discrete supports whose marginals equal the prescribed source
and target distributions (paper Eq. 5).  :class:`TransportPlan` wraps the
matrix together with its supports, checks the coupling constraints, and
offers the operations the repair algorithms need: conditional rows
(Eq. 15), barycentric projection (Eqs. 8-9), and transport cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_1d_array, as_probability_vector
from ..exceptions import ValidationError

__all__ = ["TransportPlan", "marginal_residual", "is_coupling"]


def marginal_residual(matrix: np.ndarray, source_weights: np.ndarray,
                      target_weights: np.ndarray) -> float:
    """Max-norm violation of the coupling constraints of ``matrix``."""
    row_err = np.abs(matrix.sum(axis=1) - source_weights).max()
    col_err = np.abs(matrix.sum(axis=0) - target_weights).max()
    return float(max(row_err, col_err))


def is_coupling(matrix: np.ndarray, source_weights: np.ndarray,
                target_weights: np.ndarray, *, atol: float = 1e-6) -> bool:
    """True when ``matrix`` couples the two weight vectors within ``atol``."""
    if np.any(matrix < -atol):
        return False
    return marginal_residual(matrix, source_weights, target_weights) <= atol


@dataclass(frozen=True)
class TransportPlan:
    """An optimal (or candidate) transport plan between discrete measures.

    Attributes
    ----------
    matrix:
        ``(n, m)`` joint probability matrix ``π``.
    source_support, target_support:
        Support points of the two marginals, shape ``(n, d)`` / ``(m, d)``;
        1-D supports are stored as ``(n, 1)``.
    cost:
        Expected transport cost ``<C, π>`` when the plan was produced by a
        solver, else ``nan``.
    """

    matrix: np.ndarray
    source_support: np.ndarray
    target_support: np.ndarray
    cost: float = float("nan")
    _atol: float = field(default=1e-6, repr=False)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValidationError(
                f"plan matrix must be 2-D, got shape {matrix.shape}")
        if np.any(matrix < -self._atol):
            raise ValidationError("plan matrix must be non-negative")
        source = _as_support(self.source_support, matrix.shape[0], "source")
        target = _as_support(self.target_support, matrix.shape[1], "target")
        object.__setattr__(self, "matrix", np.clip(matrix, 0.0, None))
        object.__setattr__(self, "source_support", source)
        object.__setattr__(self, "target_support", target)

    # -- marginals ---------------------------------------------------------

    @property
    def source_weights(self) -> np.ndarray:
        """Row sums: the source marginal ``µ``."""
        return self.matrix.sum(axis=1)

    @property
    def target_weights(self) -> np.ndarray:
        """Column sums: the target marginal ``ν``."""
        return self.matrix.sum(axis=0)

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def verify(self, source_weights, target_weights, *,
               atol: float = 1e-6) -> None:
        """Raise unless this plan couples the given marginals."""
        mu = as_probability_vector(source_weights, name="source_weights",
                                   normalize=True)
        nu = as_probability_vector(target_weights, name="target_weights",
                                   normalize=True)
        if self.matrix.shape != (mu.size, nu.size):
            raise ValidationError(
                f"plan shape {self.matrix.shape} incompatible with marginals "
                f"({mu.size}, {nu.size})")
        residual = marginal_residual(self.matrix, mu, nu)
        if residual > atol:
            raise ValidationError(
                f"coupling constraints violated (residual {residual:.3e} "
                f"> atol {atol:.1e})")

    # -- operations used by the repair algorithms --------------------------

    def conditional_row(self, index: int) -> np.ndarray:
        """Normalised row ``π[index, :] / Σ_j π[index, j]`` (paper Eq. 15).

        Rows with (numerically) zero mass fall back to a point mass on the
        nearest-cost column, which keeps Algorithm 2 total: every archival
        point gets a valid conditional distribution.
        """
        row = self.matrix[index]
        total = row.sum()
        if total <= 1e-300:
            fallback = np.zeros_like(row)
            distances = np.linalg.norm(
                self.target_support - self.source_support[index], axis=1)
            fallback[int(np.argmin(distances))] = 1.0
            return fallback
        return row / total

    def conditional_matrix(self) -> np.ndarray:
        """All conditional rows stacked; rows sum to one."""
        return np.vstack([self.conditional_row(i)
                          for i in range(self.matrix.shape[0])])

    def barycentric_projection(self) -> np.ndarray:
        """Conditional-mean map ``T(x_i) = E_π[Y | X = x_i]``.

        This is the deterministic "barycentric" image used by geometric
        repair variants; rows with zero mass map to their nearest target.
        """
        conditionals = self.conditional_matrix()
        return conditionals @ self.target_support

    def expected_cost(self, cost_matrix: np.ndarray) -> float:
        """Expected transport cost ``<C, π>`` under an explicit cost."""
        cost = np.asarray(cost_matrix, dtype=float)
        if cost.shape != self.matrix.shape:
            raise ValidationError(
                f"cost shape {cost.shape} != plan shape {self.matrix.shape}")
        return float(np.sum(cost * self.matrix))

    def transpose(self) -> "TransportPlan":
        """The reverse plan (target -> source)."""
        return TransportPlan(self.matrix.T, self.target_support,
                             self.source_support, self.cost)


def _as_support(support, expected_len: int, name: str) -> np.ndarray:
    arr = np.asarray(support, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} support must be 1-D or 2-D, got shape {arr.shape}")
    if arr.shape[0] != expected_len:
        raise ValidationError(
            f"{name} support has {arr.shape[0]} points, plan expects "
            f"{expected_len}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} support contains non-finite entries")
    return arr
