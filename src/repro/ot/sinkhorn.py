"""Entropy-regularised optimal transport (Sinkhorn-Knopp).

Solves

    min_π  <C, π> + ε Σ_ij π_ij (log π_ij - 1)
    s.t.   π 1 = µ,  πᵀ 1 = ν

by alternating Bregman projections (Sinkhorn-Knopp [33] in the paper;
Cuturi 2013 [35]).  The paper cites the ``O(n_Q² / ε²)`` complexity of an
ε-approximation as the regularised alternative to the cubic exact solver,
and we expose it both as a faster plan designer and as an ablation target
(entropic plans are blurrier, which affects repair quality).

Two numerical regimes are provided:

* the classical scaling iteration in the probability domain (fast, fine for
  moderate ``ε``), and
* a log-domain stabilised iteration that survives very small ``ε`` where the
  Gibbs kernel underflows.

Both run on a pluggable compute backend
(:func:`repro.core.backend.get_backend`): the default numpy backend is
bit-identical to the historical implementation, and ``backend="torch"``
/ ``"cupy"`` move the dense linear algebra to a device.  The *batched*
variants (:func:`batched_sinkhorn` / :func:`batched_sinkhorn_log`) run a
whole stack of same-shape problems as one ``(B, n, m)`` einsum chain
with per-problem convergence masking — the kernels behind
``solve_many(method="sinkhorn"/"sinkhorn_log")``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from .._validation import as_probability_vector, check_positive_int
from ..core.backend import get_backend
from ..exceptions import ConvergenceError, ValidationError
from .coupling import TransportPlan, marginal_residual

__all__ = ["sinkhorn", "sinkhorn_log", "batched_sinkhorn",
           "batched_sinkhorn_log", "solve_sinkhorn", "SinkhornResult"]


@dataclass(frozen=True)
class SinkhornResult:
    """Outcome of a Sinkhorn run.

    Attributes
    ----------
    plan:
        The ``(n, m)`` coupling matrix.
    iterations:
        Number of full update sweeps performed.
    residual:
        Final max-norm marginal violation.
    converged:
        True when ``residual <= tol`` within the budget.
    effective_epsilon:
        The regularisation strength actually applied to the *unscaled*
        cost (``epsilon`` times any internal cost rescaling); ``None``
        when the solver did not record it.
    scalings:
        The final probability-domain scaling vectors ``(u, v)`` when the
        probability-domain iteration produced the plan, else ``None``
        (log-domain runs, internal log-domain fallbacks).  Feeding them
        back through ``sinkhorn(..., init=(u, v))`` warm-starts a
        follow-up solve — the hook behind the ``"screened"`` solver's
        epsilon-scaling loop.
    """

    plan: np.ndarray
    iterations: int
    residual: float
    converged: bool
    effective_epsilon: float | None = None
    scalings: tuple | None = None


def sinkhorn(cost: np.ndarray, source_weights, target_weights, *,
             epsilon: float = 1e-2, max_iter: int = 10_000,
             tol: float = 1e-9, raise_on_failure: bool = True,
             init=None, backend=None) -> SinkhornResult:
    """Probability-domain Sinkhorn-Knopp iteration.

    Parameters
    ----------
    epsilon:
        Entropic regularisation strength; smaller values approximate the
        unregularised optimum more closely but need more iterations.
    tol:
        Convergence threshold on the marginal residual.
    raise_on_failure:
        When true (default) a :class:`ConvergenceError` is raised if the
        budget is exhausted; otherwise the best iterate is returned with
        ``converged=False``.
    init:
        Optional ``(u0, v0)`` scaling vectors warm-starting the
        iteration (e.g. the :attr:`SinkhornResult.scalings` of a
        previous solve at a nearby ``epsilon``); default cold start from
        all-ones.
    backend:
        Compute backend spec (:func:`repro.core.backend.get_backend`).
        The default numpy backend performs exactly the historical
        operations (``matmul``, :func:`scipy.special.logsumexp` in the
        fallback) — results are bit-identical to previous releases.
    """
    cost = _check_cost(cost)
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    _check_shapes(cost, mu, nu)
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    max_iter = check_positive_int(max_iter, name="max_iter")
    nx = get_backend(backend)

    # Rescale the cost so the kernel conditioning is resolution-independent
    # (the strength actually applied to the unscaled cost is reported as
    # ``effective_epsilon``).
    scale = max(float(np.max(cost)), 1e-300)
    effective_epsilon = epsilon * scale
    cost_d = nx.asarray(cost, dtype=nx.float64)
    mu_d = nx.asarray(mu, dtype=nx.float64)
    nu_d = nx.asarray(nu, dtype=nx.float64)
    kernel = nx.exp(-cost_d / effective_epsilon)
    u, v = _initial_scalings(nx, init, mu.size, nu.size)
    residual = np.inf
    for iteration in range(1, max_iter + 1):
        kv = nx.matmul(kernel, v)
        if bool(nx.to_numpy(nx.any(kv <= 1e-300))):
            # Kernel underflow: defer to the log-domain variant.
            return sinkhorn_log(cost, mu, nu, epsilon=epsilon * scale,
                                max_iter=max_iter, tol=tol,
                                raise_on_failure=raise_on_failure,
                                backend=nx)
        u = mu_d / kv
        ktu = nx.matmul(nx.transpose(kernel), u)
        v = nu_d / nx.maximum(ktu, 1e-300)
        if iteration % 5 == 0 or iteration == max_iter:
            plan = nx.to_numpy((u[:, None] * kernel) * v[None, :])
            residual = marginal_residual(plan, mu, nu)
            if residual <= tol:
                return SinkhornResult(plan, iteration, residual, True,
                                      effective_epsilon=effective_epsilon,
                                      scalings=(nx.to_numpy(u),
                                                nx.to_numpy(v)))
    plan = nx.to_numpy((u[:, None] * kernel) * v[None, :])
    residual = marginal_residual(plan, mu, nu)
    scalings = (nx.to_numpy(u), nx.to_numpy(v))
    if residual <= tol:
        return SinkhornResult(plan, max_iter, residual, True,
                              effective_epsilon=effective_epsilon,
                              scalings=scalings)
    if raise_on_failure:
        raise ConvergenceError(
            f"Sinkhorn did not converge (residual {residual:.3e})",
            iterations=max_iter, residual=residual)
    return SinkhornResult(plan, max_iter, residual, False,
                          effective_epsilon=effective_epsilon,
                          scalings=scalings)


def _initial_scalings(nx, init, n: int, m: int) -> tuple:
    """Validated ``(u, v)`` start vectors on the backend (ones when no
    warm start is supplied)."""
    if init is None:
        return (nx.ones((n,), dtype=nx.float64),
                nx.ones((m,), dtype=nx.float64))
    try:
        u0, v0 = init
    except (TypeError, ValueError):
        raise ValidationError(
            "init must be a (u0, v0) pair of scaling vectors") from None
    u0 = nx.asarray(u0, dtype=nx.float64)
    v0 = nx.asarray(v0, dtype=nx.float64)
    if tuple(u0.shape) != (n,) or tuple(v0.shape) != (m,):
        raise ValidationError(
            f"init scaling shapes {tuple(u0.shape)}/{tuple(v0.shape)} do "
            f"not match the marginals ({n},)/({m},)")
    return u0, v0


def sinkhorn_log(cost: np.ndarray, source_weights, target_weights, *,
                 epsilon: float = 1e-2, max_iter: int = 10_000,
                 tol: float = 1e-9, raise_on_failure: bool = True,
                 backend=None) -> SinkhornResult:
    """Log-domain stabilised Sinkhorn.

    Maintains dual potentials ``f, g`` and performs soft-min updates with
    the backend's ``logsumexp`` (:func:`scipy.special.logsumexp` on the
    default numpy backend — bit-identical to previous releases); immune
    to kernel underflow at small ``epsilon``.
    """
    cost = _check_cost(cost)
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    _check_shapes(cost, mu, nu)
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    max_iter = check_positive_int(max_iter, name="max_iter")
    nx = get_backend(backend)

    cost_d = nx.asarray(cost, dtype=nx.float64)
    log_mu = nx.log(nx.maximum(nx.asarray(mu, dtype=nx.float64), 1e-300))
    log_nu = nx.log(nx.maximum(nx.asarray(nu, dtype=nx.float64), 1e-300))
    f = nx.zeros((mu.size,), dtype=nx.float64)
    g = nx.zeros((nu.size,), dtype=nx.float64)
    residual = np.inf
    for iteration in range(1, max_iter + 1):
        # f-update: f_i = eps * (log mu_i - logsumexp_j((g_j - C_ij)/eps))
        f = epsilon * (log_mu - nx.logsumexp(
            (g[None, :] - cost_d) / epsilon, axis=1))
        g = epsilon * (log_nu - nx.logsumexp(
            (f[:, None] - cost_d) / epsilon, axis=0))
        if iteration % 5 == 0 or iteration == max_iter:
            plan = nx.to_numpy(
                nx.exp((f[:, None] + g[None, :] - cost_d) / epsilon))
            residual = marginal_residual(plan, mu, nu)
            if residual <= tol:
                return SinkhornResult(plan, iteration, residual, True,
                                      effective_epsilon=epsilon)
    plan = nx.to_numpy(nx.exp((f[:, None] + g[None, :] - cost_d) / epsilon))
    residual = marginal_residual(plan, mu, nu)
    if residual <= tol:
        return SinkhornResult(plan, max_iter, residual, True,
                              effective_epsilon=epsilon)
    if raise_on_failure:
        raise ConvergenceError(
            f"log-domain Sinkhorn did not converge (residual {residual:.3e})",
            iterations=max_iter, residual=residual)
    return SinkhornResult(plan, max_iter, residual, False,
                          effective_epsilon=epsilon)


def batched_sinkhorn(cost_stack, source_weight_stack, target_weight_stack,
                     *, epsilon: float = 1e-2, max_iter: int = 10_000,
                     tol: float = 1e-9, raise_on_failure: bool = True,
                     backend=None) -> list:
    """Probability-domain Sinkhorn over a stack of same-shape problems.

    The vectorised counterpart of :func:`sinkhorn` — the whole batch
    iterates as one ``(B, n, m)`` einsum chain on the selected backend,
    with **per-problem convergence masking**: problems are checked on the
    same five-iteration schedule as the serial solver, and each one is
    frozen (and compacted out of the working stack) the moment its own
    marginal residual meets ``tol``, so a slow cell never perturbs — or
    pays for — an already-converged one.  Problems whose Gibbs kernel
    underflows are re-solved through the log-domain engine, exactly like
    the serial fallback.

    Parameters
    ----------
    cost_stack:
        ``(B, n, m)`` ground costs (a broadcastable ``(1, n, m)`` stack
        shares one cost across the batch).
    source_weight_stack, target_weight_stack:
        ``(B, n)`` / ``(B, m)`` marginals; each row is normalised to a
        probability vector.

    Returns one :class:`SinkhornResult` per problem, in batch order.
    Each result agrees with its serial ``sinkhorn`` counterpart to
    solver precision (~1e-12; the batched contraction uses ``einsum``
    where the serial loop uses ``matmul``, so agreement is numerical,
    not bitwise).
    """
    nx = get_backend(backend)
    cost_h, mu_h, nu_h = _check_batch_problem(
        cost_stack, source_weight_stack, target_weight_stack)
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    max_iter = check_positive_int(max_iter, name="max_iter")

    B = mu_h.shape[0]
    cost = nx.asarray(cost_h, dtype=nx.float64)
    mu = nx.asarray(mu_h, dtype=nx.float64)
    nu = nx.asarray(nu_h, dtype=nx.float64)

    # Per-problem cost rescaling, exactly like the serial solver.
    scale = nx.maximum(nx.max(cost, axis=(1, 2)), 1e-300)
    eff = np.broadcast_to(epsilon * nx.to_numpy(scale), (B,))
    kernel = nx.exp(-cost / (epsilon * scale[:, None, None]))
    if kernel.shape[0] != B:
        # A shared (1, n, m) cost: materialise per-problem rows so
        # compaction can drop converged problems independently.
        kernel = nx.concat([kernel] * B, axis=0)

    u = nx.ones((B, mu_h.shape[1]), dtype=nx.float64)
    v = nx.ones((B, nu_h.shape[1]), dtype=nx.float64)
    bad = nx.asarray(np.zeros(B, dtype=bool))
    state = _BatchState(B, max_iter)
    for iteration in range(1, max_iter + 1):
        kv = nx.einsum("bij,bj->bi", kernel, v)
        # Accumulate underflow flags on-device; the serial solver checks
        # every iteration, the batch syncs only at checkpoints and the
        # flagged problems restart in the log domain either way.
        bad = nx.logical_or(bad, nx.any(kv <= 1e-300, axis=1))
        u = mu / nx.maximum(kv, 1e-300)
        ktu = nx.einsum("bij,bi->bj", kernel, u)
        v = nu / nx.maximum(ktu, 1e-300)
        if iteration % 5 == 0 or iteration == max_iter:
            plan = (u[:, :, None] * kernel) * v[:, None, :]
            keep = state.checkpoint(nx, plan, mu, nu, bad, iteration,
                                    tol, final=iteration == max_iter)
            if keep is None:
                break
            if keep is _ALL_ACTIVE:
                continue
            kernel = nx.take(kernel, keep, axis=0)
            u, v = nx.take(u, keep, axis=0), nx.take(v, keep, axis=0)
            mu, nu = nx.take(mu, keep, axis=0), nx.take(nu, keep, axis=0)
            bad = nx.take(bad, keep, axis=0)

    results = []
    for b in range(B):
        if state.underflowed[b]:
            # Same recovery as the serial solver: restart this problem in
            # the log domain at its effective (rescaled) epsilon.
            results.append(sinkhorn_log(
                cost_h[b] if cost_h.shape[0] == B else cost_h[0],
                mu_h[b], nu_h[b], epsilon=float(eff[b]),
                max_iter=max_iter, tol=tol,
                raise_on_failure=raise_on_failure, backend=nx))
            continue
        if not state.converged[b] and raise_on_failure:
            raise ConvergenceError(
                f"Sinkhorn did not converge for batch problem {b} "
                f"(residual {state.residuals[b]:.3e})",
                iterations=int(state.iterations[b]),
                residual=float(state.residuals[b]))
        results.append(SinkhornResult(
            state.plans[b], int(state.iterations[b]),
            float(state.residuals[b]), bool(state.converged[b]),
            effective_epsilon=float(eff[b])))
    return results


def batched_sinkhorn_log(cost_stack, source_weight_stack,
                         target_weight_stack, *, epsilon: float = 1e-2,
                         max_iter: int = 10_000, tol: float = 1e-9,
                         raise_on_failure: bool = True,
                         backend=None) -> list:
    """Log-domain Sinkhorn over a stack of same-shape problems.

    The vectorised counterpart of :func:`sinkhorn_log`: stacked
    soft-min updates — one max-shifted softmin over the ``(B, n, m)``
    potential/cost stack per half-sweep — with the same per-problem
    convergence masking and compaction as :func:`batched_sinkhorn`.
    Each problem's result agrees with its serial ``sinkhorn_log`` run
    to solver precision (~1e-12, with identical iteration schedules):
    the engine iterates epsilon-scaled potentials against the
    pre-divided cost, which distributes one division relative to the
    serial update (~1 ulp per sweep; the Sinkhorn contraction keeps it
    there).
    """
    nx = get_backend(backend)
    cost_h, mu_h, nu_h = _check_batch_problem(
        cost_stack, source_weight_stack, target_weight_stack)
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    max_iter = check_positive_int(max_iter, name="max_iter")

    B = mu_h.shape[0]
    # The engine iterates the epsilon-scaled potentials φ = f/ε, γ = g/ε
    # against the pre-divided cost C/ε: per half-sweep that leaves one
    # broadcast subtraction plus the stabilised soft-min — built from
    # backend primitives rather than a library logsumexp, whose
    # genericity (dtype promotion, masked/complex handling) costs more
    # than the math at this size.  Same updates as the serial solver up
    # to the distributed division (~1 ulp; the Sinkhorn map is a
    # contraction, so the difference never amplifies).
    cost_eps = nx.asarray(np.broadcast_to(cost_h, (B,) + cost_h.shape[1:]),
                          dtype=nx.float64) / epsilon
    mu = nx.asarray(mu_h, dtype=nx.float64)
    nu = nx.asarray(nu_h, dtype=nx.float64)
    log_mu = nx.log(nx.maximum(mu, 1e-300))
    log_nu = nx.log(nx.maximum(nu, 1e-300))
    phi = nx.zeros((B, mu_h.shape[1]), dtype=nx.float64)
    gamma = nx.zeros((B, nu_h.shape[1]), dtype=nx.float64)
    state = _BatchState(B, max_iter)
    no_underflow = nx.asarray(np.zeros(B, dtype=bool))
    for iteration in range(1, max_iter + 1):
        phi = log_mu - _stable_softmin(
            nx, gamma[:, None, :] - cost_eps, axis=2)
        gamma = log_nu - _stable_softmin(
            nx, phi[:, :, None] - cost_eps, axis=1)
        if iteration % 5 == 0 or iteration == max_iter:
            plan = nx.exp(phi[:, :, None] + gamma[:, None, :] - cost_eps)
            keep = state.checkpoint(nx, plan, mu, nu, no_underflow,
                                    iteration, tol,
                                    final=iteration == max_iter)
            if keep is None:
                break
            if keep is _ALL_ACTIVE:
                continue
            cost_eps = nx.take(cost_eps, keep, axis=0)
            phi = nx.take(phi, keep, axis=0)
            gamma = nx.take(gamma, keep, axis=0)
            log_mu = nx.take(log_mu, keep, axis=0)
            log_nu = nx.take(log_nu, keep, axis=0)
            mu, nu = nx.take(mu, keep, axis=0), nx.take(nu, keep, axis=0)
            no_underflow = nx.take(no_underflow, keep, axis=0)

    results = []
    for b in range(B):
        if not state.converged[b] and raise_on_failure:
            raise ConvergenceError(
                f"log-domain Sinkhorn did not converge for batch problem "
                f"{b} (residual {state.residuals[b]:.3e})",
                iterations=int(state.iterations[b]),
                residual=float(state.residuals[b]))
        results.append(SinkhornResult(
            state.plans[b], int(state.iterations[b]),
            float(state.residuals[b]), bool(state.converged[b]),
            effective_epsilon=epsilon))
    return results


def _stable_softmin(nx, arg, axis: int):
    """Max-shifted ``logsumexp`` over one axis of a finite 3-D stack,
    composed from backend primitives (the batched engines' hot loop —
    a library logsumexp's genericity dominates the math at design-cell
    sizes).  ``arg`` must be finite, which the Sinkhorn potentials and
    costs are by construction."""
    shift = nx.max(arg, axis=axis, keepdims=True)
    summed = nx.sum(nx.exp(arg - shift), axis=axis)
    out_shape = tuple(d for i, d in enumerate(arg.shape) if i != axis)
    return nx.log(summed) + nx.reshape(shift, out_shape)


class _BatchState:
    """Host-side bookkeeping of a masked batch iteration.

    Tracks, per original problem index, the frozen plan/iteration/
    residual/convergence record, and maps the compacted working stack
    back to original positions.  ``checkpoint`` freezes every problem
    that converged (or underflowed) at this check, and returns the
    backend index array of the problems that stay active — or ``None``
    when the stack is exhausted.
    """

    def __init__(self, B: int, max_iter: int) -> None:
        self.plans = [None] * B
        self.iterations = np.full(B, max_iter, dtype=int)
        self.residuals = np.full(B, np.inf)
        self.converged = np.zeros(B, dtype=bool)
        self.underflowed = np.zeros(B, dtype=bool)
        self.active = np.arange(B)

    def checkpoint(self, nx, plan, mu, nu, bad, iteration: int,
                   tol: float, *, final: bool):
        row_err = nx.max(nx.abs(nx.sum(plan, axis=2) - mu), axis=1)
        col_err = nx.max(nx.abs(nx.sum(plan, axis=1) - nu), axis=1)
        residual = np.maximum(nx.to_numpy(row_err), nx.to_numpy(col_err))
        bad_h = np.asarray(nx.to_numpy(bad), dtype=bool)
        done = (residual <= tol) & ~bad_h
        freeze = done | bad_h if not final else np.ones_like(done)
        if not freeze.any():
            return _ALL_ACTIVE
        plan_h = nx.to_numpy(plan)
        for pos in np.nonzero(freeze)[0]:
            b = self.active[pos]
            self.plans[b] = np.array(plan_h[pos])
            self.iterations[b] = iteration
            self.residuals[b] = residual[pos]
            self.converged[b] = done[pos]
            self.underflowed[b] = bad_h[pos]
        keep = ~freeze
        if not keep.any():
            return None
        self.active = self.active[keep]
        return nx.asarray(np.nonzero(keep)[0], dtype=nx.int64)


#: Sentinel: "no problem froze at this checkpoint, keep the full stack".
_ALL_ACTIVE = object()


def solve_sinkhorn(cost: np.ndarray, source_weights, target_weights,
                   source_support=None, target_support=None, *,
                   epsilon: float = 1e-2, max_iter: int = 10_000,
                   tol: float = 1e-9) -> TransportPlan:
    """Sinkhorn solve wrapped into a :class:`TransportPlan`.

    Thin shim over :func:`repro.ot.solve` with ``method="sinkhorn"``;
    raises :class:`~repro.exceptions.ConvergenceError` on a blown budget,
    matching the historical behaviour of this entry point.
    """
    from .solve import solve
    return solve(cost, source_weights, target_weights, method="sinkhorn",
                 source_support=source_support,
                 target_support=target_support, epsilon=epsilon,
                 max_iter=max_iter, tol=tol, raise_on_failure=True).plan


def _check_batch_problem(cost_stack, source_weight_stack,
                         target_weight_stack) -> tuple:
    """Validate and normalise a batched entropic problem on the host.

    Returns ``(cost, mu, nu)`` as float64 numpy arrays with shapes
    ``(B or 1, n, m)`` / ``(B, n)`` / ``(B, m)``; each weight row is
    normalised to a probability vector (matching the serial solvers'
    ``as_probability_vector(..., normalize=True)`` treatment).
    """
    cost = np.asarray(cost_stack, dtype=float)
    if cost.ndim != 3:
        raise ValidationError(
            f"cost_stack must be 3-D (B, n, m), got shape {cost.shape}")
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost stack contains non-finite entries")
    mu = np.atleast_2d(np.asarray(source_weight_stack, dtype=float))
    nu = np.atleast_2d(np.asarray(target_weight_stack, dtype=float))
    if mu.ndim != 2 or nu.ndim != 2:
        raise ValidationError(
            "weight stacks must be 2-D (B, n)/(B, m) arrays, got shapes "
            f"{mu.shape} and {nu.shape}")
    if mu.shape[0] != nu.shape[0]:
        raise ValidationError(
            f"weight stacks disagree on the batch size ({mu.shape[0]} != "
            f"{nu.shape[0]})")
    B = mu.shape[0]
    if cost.shape[0] not in (1, B) \
            or cost.shape[1:] != (mu.shape[1], nu.shape[1]):
        raise ValidationError(
            f"cost stack shape {cost.shape} incompatible with marginal "
            f"stacks ({B}, {mu.shape[1]}) / ({B}, {nu.shape[1]})")
    for name, stack in (("source", mu), ("target", nu)):
        if not np.all(np.isfinite(stack)) or np.any(stack < 0.0):
            raise ValidationError(
                f"{name} weight stack must be finite and non-negative")
        if np.any(stack.sum(axis=1) <= 0.0):
            raise ValidationError(
                "every batched weight vector needs positive total mass")
    mu = mu / mu.sum(axis=1, keepdims=True)
    nu = nu / nu.sum(axis=1, keepdims=True)
    return cost, mu, nu


def _check_cost(cost) -> np.ndarray:
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix contains non-finite entries")
    return cost


def _check_shapes(cost: np.ndarray, mu: np.ndarray, nu: np.ndarray) -> None:
    if cost.shape != (mu.size, nu.size):
        raise ValidationError(
            f"cost shape {cost.shape} incompatible with marginals "
            f"({mu.size}, {nu.size})")
