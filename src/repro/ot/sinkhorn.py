"""Entropy-regularised optimal transport (Sinkhorn-Knopp).

Solves

    min_π  <C, π> + ε Σ_ij π_ij (log π_ij - 1)
    s.t.   π 1 = µ,  πᵀ 1 = ν

by alternating Bregman projections (Sinkhorn-Knopp [33] in the paper;
Cuturi 2013 [35]).  The paper cites the ``O(n_Q² / ε²)`` complexity of an
ε-approximation as the regularised alternative to the cubic exact solver,
and we expose it both as a faster plan designer and as an ablation target
(entropic plans are blurrier, which affects repair quality).

Two numerical regimes are provided:

* the classical scaling iteration in the probability domain (fast, fine for
  moderate ``ε``), and
* a log-domain stabilised iteration that survives very small ``ε`` where the
  Gibbs kernel underflows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from .._validation import as_probability_vector, check_positive_int
from ..exceptions import ConvergenceError, ValidationError
from .coupling import TransportPlan, marginal_residual

__all__ = ["sinkhorn", "sinkhorn_log", "solve_sinkhorn", "SinkhornResult"]


@dataclass(frozen=True)
class SinkhornResult:
    """Outcome of a Sinkhorn run.

    Attributes
    ----------
    plan:
        The ``(n, m)`` coupling matrix.
    iterations:
        Number of full update sweeps performed.
    residual:
        Final max-norm marginal violation.
    converged:
        True when ``residual <= tol`` within the budget.
    effective_epsilon:
        The regularisation strength actually applied to the *unscaled*
        cost (``epsilon`` times any internal cost rescaling); ``None``
        when the solver did not record it.
    """

    plan: np.ndarray
    iterations: int
    residual: float
    converged: bool
    effective_epsilon: float | None = None


def sinkhorn(cost: np.ndarray, source_weights, target_weights, *,
             epsilon: float = 1e-2, max_iter: int = 10_000,
             tol: float = 1e-9, raise_on_failure: bool = True) -> SinkhornResult:
    """Probability-domain Sinkhorn-Knopp iteration.

    Parameters
    ----------
    epsilon:
        Entropic regularisation strength; smaller values approximate the
        unregularised optimum more closely but need more iterations.
    tol:
        Convergence threshold on the marginal residual.
    raise_on_failure:
        When true (default) a :class:`ConvergenceError` is raised if the
        budget is exhausted; otherwise the best iterate is returned with
        ``converged=False``.
    """
    cost = _check_cost(cost)
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    _check_shapes(cost, mu, nu)
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    max_iter = check_positive_int(max_iter, name="max_iter")

    # Rescale the cost so the kernel conditioning is resolution-independent
    # (the strength actually applied to the unscaled cost is reported as
    # ``effective_epsilon``).
    scale = max(float(np.max(cost)), 1e-300)
    effective_epsilon = epsilon * scale
    kernel = np.exp(-cost / effective_epsilon)
    u = np.ones_like(mu)
    v = np.ones_like(nu)
    residual = np.inf
    for iteration in range(1, max_iter + 1):
        kv = kernel @ v
        if np.any(kv <= 1e-300):
            # Kernel underflow: defer to the log-domain variant.
            return sinkhorn_log(cost, mu, nu, epsilon=epsilon * scale,
                                max_iter=max_iter, tol=tol,
                                raise_on_failure=raise_on_failure)
        u = mu / kv
        ktu = kernel.T @ u
        v = nu / np.maximum(ktu, 1e-300)
        if iteration % 5 == 0 or iteration == max_iter:
            plan = (u[:, None] * kernel) * v[None, :]
            residual = marginal_residual(plan, mu, nu)
            if residual <= tol:
                return SinkhornResult(plan, iteration, residual, True,
                                      effective_epsilon=effective_epsilon)
    plan = (u[:, None] * kernel) * v[None, :]
    residual = marginal_residual(plan, mu, nu)
    if residual <= tol:
        return SinkhornResult(plan, max_iter, residual, True,
                              effective_epsilon=effective_epsilon)
    if raise_on_failure:
        raise ConvergenceError(
            f"Sinkhorn did not converge (residual {residual:.3e})",
            iterations=max_iter, residual=residual)
    return SinkhornResult(plan, max_iter, residual, False,
                          effective_epsilon=effective_epsilon)


def sinkhorn_log(cost: np.ndarray, source_weights, target_weights, *,
                 epsilon: float = 1e-2, max_iter: int = 10_000,
                 tol: float = 1e-9,
                 raise_on_failure: bool = True) -> SinkhornResult:
    """Log-domain stabilised Sinkhorn.

    Maintains dual potentials ``f, g`` and performs soft-min updates with
    :func:`scipy.special.logsumexp`; immune to kernel underflow at small
    ``epsilon``.
    """
    cost = _check_cost(cost)
    mu = as_probability_vector(source_weights, name="source_weights",
                               normalize=True)
    nu = as_probability_vector(target_weights, name="target_weights",
                               normalize=True)
    _check_shapes(cost, mu, nu)
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    max_iter = check_positive_int(max_iter, name="max_iter")

    log_mu = np.log(np.maximum(mu, 1e-300))
    log_nu = np.log(np.maximum(nu, 1e-300))
    f = np.zeros_like(mu)
    g = np.zeros_like(nu)
    residual = np.inf
    for iteration in range(1, max_iter + 1):
        # f-update: f_i = eps * (log mu_i - logsumexp_j((g_j - C_ij)/eps))
        f = epsilon * (log_mu - logsumexp(
            (g[None, :] - cost) / epsilon, axis=1))
        g = epsilon * (log_nu - logsumexp(
            (f[:, None] - cost) / epsilon, axis=0))
        if iteration % 5 == 0 or iteration == max_iter:
            plan = np.exp((f[:, None] + g[None, :] - cost) / epsilon)
            residual = marginal_residual(plan, mu, nu)
            if residual <= tol:
                return SinkhornResult(plan, iteration, residual, True,
                                      effective_epsilon=epsilon)
    plan = np.exp((f[:, None] + g[None, :] - cost) / epsilon)
    residual = marginal_residual(plan, mu, nu)
    if residual <= tol:
        return SinkhornResult(plan, max_iter, residual, True,
                              effective_epsilon=epsilon)
    if raise_on_failure:
        raise ConvergenceError(
            f"log-domain Sinkhorn did not converge (residual {residual:.3e})",
            iterations=max_iter, residual=residual)
    return SinkhornResult(plan, max_iter, residual, False,
                          effective_epsilon=epsilon)


def solve_sinkhorn(cost: np.ndarray, source_weights, target_weights,
                   source_support=None, target_support=None, *,
                   epsilon: float = 1e-2, max_iter: int = 10_000,
                   tol: float = 1e-9) -> TransportPlan:
    """Sinkhorn solve wrapped into a :class:`TransportPlan`.

    Thin shim over :func:`repro.ot.solve` with ``method="sinkhorn"``;
    raises :class:`~repro.exceptions.ConvergenceError` on a blown budget,
    matching the historical behaviour of this entry point.
    """
    from .solve import solve
    return solve(cost, source_weights, target_weights, method="sinkhorn",
                 source_support=source_support,
                 target_support=target_support, epsilon=epsilon,
                 max_iter=max_iter, tol=tol, raise_on_failure=True).plan


def _check_cost(cost) -> np.ndarray:
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    if not np.all(np.isfinite(cost)):
        raise ValidationError("cost matrix contains non-finite entries")
    return cost


def _check_shapes(cost: np.ndarray, mu: np.ndarray, nu: np.ndarray) -> None:
    if cost.shape != (mu.size, nu.size):
        raise ValidationError(
            f"cost shape {cost.shape} incompatible with marginals "
            f"({mu.size}, {nu.size})")
