"""Pluggable solver registry for the unified :func:`repro.ot.solve` API.

Solvers are callables ``fn(problem: OTProblem, **opts) -> OTResult``
registered under a short name.  A solver may also return a bare plan
matrix (or a :class:`~repro.ot.coupling.TransportPlan`); the registry
coerces it into an ``OTResult``, deriving cost and residuals:

>>> import numpy as np
>>> from repro.ot import (register_solver, unregister_solver,
...                       available_solvers, resolve_solver, solve)
>>> @register_solver("doc-uniform", description="independent coupling")
... def doc_uniform(problem):
...     return np.outer(problem.source_weights, problem.target_weights)
>>> "doc-uniform" in available_solvers()
True
>>> result = solve(np.eye(2), [0.5, 0.5], [0.5, 0.5],
...                method="doc-uniform")
>>> result.solver, float(result.value)
('doc-uniform', 0.5)
>>> unregister_solver("doc-uniform")
>>> "doc-uniform" in available_solvers()
False

The facade resolves a *spec* — a registered name, a bare callable, or a
:class:`Solver` instance — so every consumer of the OT layer
(:func:`repro.core.design.design_repair`, the CLI, the benchmarks) can
accept user-supplied solvers without special-casing.  Typos fail fast
with the list of available names:

>>> resolve_solver("doc-uniform")  # doctest: +ELLIPSIS
Traceback (most recent call last):
    ...
repro.exceptions.ValidationError: unknown solver 'doc-uniform'; ...
"""

from __future__ import annotations

import inspect
from collections.abc import Callable
from dataclasses import dataclass, field, replace

import numpy as np
from scipy import sparse

from ..exceptions import ValidationError
from .coupling import TransportPlan

__all__ = ["Solver", "filter_opts", "register_solver",
           "register_batch_solver", "unregister_solver", "resolve_solver",
           "available_solvers", "solver_descriptions", "batch_support",
           "backend_support"]


@dataclass(frozen=True)
class Solver:
    """A named, documented OT solver.

    Attributes
    ----------
    name:
        Registry key (also reported in :attr:`OTResult.solver`).
    fn:
        ``fn(problem, **opts)`` returning an
        :class:`~repro.ot.problem.OTResult` (or a
        :class:`~repro.ot.coupling.TransportPlan` / plan matrix, which the
        registry coerces into one).
    description:
        One-line human summary shown by ``repro solvers``.
    aliases:
        Alternative registry keys resolving to this solver.
    batch_fn:
        Optional vectorised kernel ``fn(batch: OTBatch, **opts)``
        returning one result per batch problem — attached with
        :func:`register_batch_solver`.  ``solve_many`` dispatches a whole
        same-shape batch to it in one call instead of fanning per-problem
        solves over an executor.
    batch_when:
        Optional predicate ``fn(problem) -> bool`` restricting which
        problems the batch kernel accepts (e.g. the monotone kernel needs
        1-D unmasked supports); problems it rejects fall back to the
        per-problem path.
    """

    name: str
    fn: Callable
    description: str = ""
    aliases: tuple = field(default=())
    batch_fn: Callable | None = field(default=None, compare=False)
    batch_when: Callable | None = field(default=None, compare=False)

    def __call__(self, problem, **opts):
        return coerce_result(self.fn(problem, **opts), problem)

    @property
    def supports_batch(self) -> bool:
        """True when a vectorised batch kernel is registered."""
        return self.batch_fn is not None

    def can_batch(self, problem) -> bool:
        """True when ``problem`` qualifies for this solver's batch kernel."""
        if self.batch_fn is None:
            return False
        return self.batch_when is None or bool(self.batch_when(problem))

    def solve_batch(self, batch, **opts) -> list:
        """Run the batch kernel and coerce every outcome to an ``OTResult``.

        The kernel may return any sequence of per-problem outcomes the
        registry knows how to coerce (``OTResult`` / ``TransportPlan`` /
        plan matrix), one per problem, in batch order.
        """
        if self.batch_fn is None:
            raise ValidationError(
                f"solver {self.name!r} has no batch kernel; use solve() "
                "per problem or the solve_many executor fallback")
        outcomes = self.batch_fn(batch, **opts)
        outcomes = list(outcomes)
        if len(outcomes) != len(batch):
            raise ValidationError(
                f"batch kernel of {self.name!r} returned {len(outcomes)} "
                f"results for {len(batch)} problems")
        return [coerce_result(outcome, problem)
                for outcome, problem in zip(outcomes, batch)]


#: name (or alias) -> Solver.  Insertion order is the registration order.
_REGISTRY: dict[str, Solver] = {}


def register_solver(name: str, *, description: str = "",
                    aliases: tuple = (), overwrite: bool = False):
    """Decorator registering ``fn`` as the solver called ``name``.

    Parameters
    ----------
    overwrite:
        Allow re-registering an existing name (useful in tests and for
        user plugins shadowing a built-in).
    """
    if not name or not isinstance(name, str):
        raise ValidationError("solver name must be a non-empty string")

    def decorator(fn: Callable) -> Callable:
        for key in (name, *aliases):
            if key in _REGISTRY and not overwrite:
                raise ValidationError(
                    f"solver {key!r} is already registered; pass "
                    "overwrite=True to replace it")
        if overwrite:
            for key in (name, *aliases):
                shadowed = _REGISTRY.get(key)
                if shadowed is None:
                    continue
                if key == shadowed.name:
                    # Primary name shadowed: evict the whole entry so its
                    # aliases cannot keep resolving to a stale solver.
                    unregister_solver(key)
                else:
                    # Only an alias shadowed: the owning solver keeps its
                    # primary name and other aliases.
                    del _REGISTRY[key]
        solver = Solver(name=name, fn=fn, description=description,
                        aliases=tuple(aliases))
        for key in (name, *aliases):
            _REGISTRY[key] = solver
        return fn

    return decorator


def register_batch_solver(name: str, *, when: Callable | None = None):
    """Decorator attaching a vectorised batch kernel to a registered solver.

    The kernel is ``fn(batch: OTBatch, **opts)`` returning one outcome
    per problem (batch order); ``when`` optionally restricts which
    problems qualify (others take :func:`~repro.ot.solve.solve_many`'s
    per-problem fallback).  The solver keeps its name, aliases and
    description — only the batch capability is added:

    >>> from repro.ot import resolve_solver
    >>> resolve_solver("exact").supports_batch
    True
    >>> resolve_solver("simplex").supports_batch
    False
    """
    if name not in _REGISTRY:
        raise ValidationError(
            f"cannot attach a batch kernel to unknown solver {name!r}; "
            f"register it first (have {available_solvers()})")
    solver = _REGISTRY[name]

    def decorator(fn: Callable) -> Callable:
        upgraded = replace(solver, batch_fn=fn, batch_when=when)
        for key in (solver.name, *solver.aliases):
            _REGISTRY[key] = upgraded
        return fn

    return decorator


def batch_support() -> dict:
    """``name -> supports_batch`` for every registered solver.

    The docs solver table's *Batched* column is kept in sync with this
    mapping by ``tests/test_docs.py``.
    """
    return {name: _REGISTRY[name].supports_batch
            for name in available_solvers()}


def backend_support() -> dict:
    """``name -> accepts backend=`` for every registered solver.

    A solver is *backend-aware* when its signature takes a ``backend``
    keyword (or ``**kwargs``, like ``"auto"``, which forwards the knob
    to whichever backend-aware solver wins dispatch): ``solve(...,
    backend=...)`` and the design layer offer the selected compute
    backend (:func:`repro.core.backend.get_backend`) to exactly these
    solvers and silently drop it for the rest — the same signature-
    filtering convention as every other tuning knob.  The docs solver
    table's *Backend-aware* column is kept in sync with this mapping by
    ``tests/test_docs.py``.

    >>> support = backend_support()
    >>> support["exact"], support["sinkhorn_log"], support["lp"]
    (True, True, False)
    """
    return {name: bool(filter_opts(_REGISTRY[name], {"backend": None}))
            for name in available_solvers()}


def unregister_solver(name: str) -> None:
    """Remove a solver (and its aliases) from the registry."""
    solver = _REGISTRY.pop(name, None)
    if solver is None:
        return
    for key in (solver.name, *solver.aliases):
        if _REGISTRY.get(key) is solver:
            del _REGISTRY[key]


def available_solvers() -> tuple:
    """Primary names of all registered solvers, in registration order."""
    seen = []
    for key, solver in _REGISTRY.items():
        if key == solver.name and solver.name not in seen:
            seen.append(solver.name)
    return tuple(seen)


def solver_descriptions() -> dict:
    """``name -> one-line description`` for every registered solver."""
    return {name: _REGISTRY[name].description
            for name in available_solvers()}


def resolve_solver(spec) -> Solver:
    """Resolve a solver *spec* into a :class:`Solver`.

    Accepts a registered name (string), a bare callable with the solver
    signature, or a :class:`Solver` instance.
    """
    if isinstance(spec, Solver):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]
        except KeyError:
            raise ValidationError(
                f"unknown solver {spec!r}; expected one of "
                f"{available_solvers()} or a callable") from None
    if callable(spec):
        name = getattr(spec, "__name__", type(spec).__name__)
        return Solver(name=name, fn=spec,
                      description="ad-hoc callable solver")
    raise ValidationError(
        f"cannot resolve solver spec of type {type(spec).__name__}; pass "
        f"a name from {available_solvers()}, a callable, or a Solver")


def filter_opts(solver: Solver, candidates: dict) -> dict:
    """Subset of ``candidates`` the solver's signature can accept.

    Lets generic callers (Algorithm 1/joint design, ``"auto"`` dispatch)
    offer tuning knobs like ``epsilon`` without knowing which solver will
    run: entropic solvers pick them up, exact solvers never see them.  A
    solver taking ``**kwargs`` receives every candidate.

    >>> from repro.ot import resolve_solver
    >>> sorted(filter_opts(resolve_solver("multiscale"),
    ...                    {"coarsen": 4, "epsilon": 1e-2}))
    ['coarsen']
    >>> filter_opts(resolve_solver("exact"), {"epsilon": 1e-2})
    {}
    """
    try:
        params = inspect.signature(solver.fn).parameters
    except (TypeError, ValueError):  # builtins/C callables: be safe
        return {}
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in params.values()):
        return dict(candidates)
    return {key: value for key, value in candidates.items()
            if key in params}


def coerce_result(outcome, problem):
    """Normalise a solver's return value into an ``OTResult``.

    Registered built-ins return :class:`~repro.ot.problem.OTResult`
    directly; ad-hoc callables may return a
    :class:`~repro.ot.coupling.TransportPlan` or a bare plan matrix, for
    which the residuals and cost are derived here.
    """
    # Deferred import: problem.py has no dependency on the registry.
    from .problem import OTResult, result_from_matrix

    if isinstance(outcome, OTResult):
        return outcome
    if isinstance(outcome, TransportPlan):
        return result_from_matrix(problem, outcome.matrix,
                                  value=outcome.cost)
    if sparse.issparse(outcome):
        if outcome.shape != problem.shape:
            raise ValidationError(
                f"solver returned shape {outcome.shape}, expected a plan "
                f"of shape {problem.shape} (or an OTResult/TransportPlan)")
        return result_from_matrix(problem, outcome)
    matrix = np.asarray(outcome, dtype=float)
    if matrix.ndim != 2 or matrix.shape != problem.shape:
        raise ValidationError(
            f"solver returned shape {matrix.shape}, expected a plan of "
            f"shape {problem.shape} (or an OTResult/TransportPlan)")
    return result_from_matrix(problem, matrix)
