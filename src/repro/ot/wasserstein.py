"""Wasserstein distances between discrete measures.

Bundles the closed-form 1-D path (paper Eq. 6 with monotone couplings) and
the general-dimension path through the exact solvers.  Also provides the
empirical-sample convenience wrappers used throughout the experiments.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_array, as_2d_array, check_positive_int
from ..exceptions import ValidationError
from .cost import lp_cost
from .network_simplex import transport_simplex
from .onedim import wasserstein_1d

__all__ = [
    "wasserstein_distance",
    "wasserstein_sample_distance",
]


def wasserstein_distance(source_support, source_weights, target_support,
                         target_weights, *, p: int = 2,
                         method: str = "auto") -> float:
    """``W_p`` between two weighted discrete measures.

    Parameters
    ----------
    source_support, target_support:
        Support points; 1-D arrays or ``(n, d)`` matrices.
    method:
        ``"auto"`` uses the closed form for 1-D supports and the
        transportation simplex otherwise; ``"exact"`` forces the simplex;
        ``"1d"`` forces the closed form (errors on multivariate input).
    """
    p = check_positive_int(p, name="p")
    src = np.asarray(source_support, dtype=float)
    tgt = np.asarray(target_support, dtype=float)
    is_1d = (src.ndim == 1 or (src.ndim == 2 and src.shape[1] == 1)) and \
            (tgt.ndim == 1 or (tgt.ndim == 2 and tgt.shape[1] == 1))

    if method not in ("auto", "exact", "1d"):
        raise ValidationError(
            f"unknown method {method!r}; expected 'auto', 'exact' or '1d'")
    if method == "1d" and not is_1d:
        raise ValidationError("method='1d' requires one-dimensional supports")

    if is_1d and method in ("auto", "1d"):
        return wasserstein_1d(src.ravel(), source_weights, tgt.ravel(),
                              target_weights, p=p)

    xs = as_2d_array(src, name="source_support")
    ys = as_2d_array(tgt, name="target_support")
    cost = lp_cost(xs, ys, p)
    plan = transport_simplex(cost, source_weights, target_weights)
    return float(np.sum(cost * plan) ** (1.0 / p))


def wasserstein_sample_distance(source_samples, target_samples, *,
                                p: int = 2, method: str = "auto") -> float:
    """``W_p`` between the empirical measures of two samples.

    Each sample gets uniform weights ``1/n``; this is the distance that the
    geometric-repair baseline reasons about (paper Eq. 4-6).
    """
    src = np.asarray(source_samples, dtype=float)
    tgt = np.asarray(target_samples, dtype=float)
    n = src.shape[0] if src.ndim > 0 else 1
    m = tgt.shape[0] if tgt.ndim > 0 else 1
    if n == 0 or m == 0:
        raise ValidationError("samples must be non-empty")
    mu = np.full(n, 1.0 / n)
    nu = np.full(m, 1.0 / m)
    return wasserstein_distance(src, mu, tgt, nu, p=p, method=method)
