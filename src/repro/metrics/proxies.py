"""Classical fairness proxies, in marginal and ``u``-conditional form.

The paper argues (Section II-B) that the common classifier-output proxies —
disparate impact, statistical parity, disparate treatment — should be
re-read conditionally on the unprotected attribute ``U`` so that structural
unfairness (``S`` correlated with ``U``) is not confused with model
unfairness (``X`` depending on ``S`` given ``U``).  This module provides
both readings; the conditional variants follow Definitions 2.2/2.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "disparate_impact",
    "conditional_disparate_impact",
    "statistical_parity_difference",
    "conditional_statistical_parity",
    "disparate_treatment_gap",
    "equal_opportunity_difference",
    "FairnessAssessment",
    "assess_classifier",
]

#: The EEOC "four-fifths" rule threshold below which a classifier is
#: conventionally considered unfair (paper Definition 2.3 discussion).
FOUR_FIFTHS = 0.8


def _binary(values, name: str) -> np.ndarray:
    arr = np.asarray(values).astype(int).ravel()
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isin(arr, (0, 1))):
        raise ValidationError(f"{name} must be binary (0/1)")
    return arr


def _positive_rate(outcomes: np.ndarray, mask: np.ndarray) -> float:
    if not mask.any():
        return float("nan")
    return float(np.mean(outcomes[mask]))


def disparate_impact(outcomes, s_labels) -> float:
    """``Pr[ŷ=1 | s=0] / Pr[ŷ=1 | s=1]`` (marginal DI).

    Values near 1 are fair; below :data:`FOUR_FIFTHS` the EEOC rule flags
    the decision process.  Returns ``inf`` when the denominator group never
    receives a positive outcome but the numerator group does, and ``nan``
    when a group is unrepresented.
    """
    y = _binary(outcomes, "outcomes")
    s = _binary(s_labels, "s_labels")
    if y.size != s.size:
        raise ValidationError("outcomes/s_labels length mismatch")
    rate0 = _positive_rate(y, s == 0)
    rate1 = _positive_rate(y, s == 1)
    if np.isnan(rate0) or np.isnan(rate1):
        return float("nan")
    if rate1 == 0.0:
        return float("inf") if rate0 > 0.0 else 1.0
    return rate0 / rate1


def conditional_disparate_impact(outcomes, s_labels, u_labels) -> dict:
    """Per-``u`` disparate impact ``DI(g, u)`` (paper Definition 2.3)."""
    y = _binary(outcomes, "outcomes")
    s = _binary(s_labels, "s_labels")
    u = np.asarray(u_labels).astype(int).ravel()
    if not (y.size == s.size == u.size):
        raise ValidationError("outcomes/s_labels/u_labels length mismatch")
    return {int(g): disparate_impact(y[u == g], s[u == g])
            for g in np.unique(u)}


def statistical_parity_difference(outcomes, s_labels) -> float:
    """``Pr[ŷ=1 | s=0] - Pr[ŷ=1 | s=1]``; zero is parity."""
    y = _binary(outcomes, "outcomes")
    s = _binary(s_labels, "s_labels")
    if y.size != s.size:
        raise ValidationError("outcomes/s_labels length mismatch")
    return _positive_rate(y, s == 0) - _positive_rate(y, s == 1)


def conditional_statistical_parity(outcomes, s_labels, u_labels) -> dict:
    """Per-``u`` statistical-parity differences."""
    y = _binary(outcomes, "outcomes")
    s = _binary(s_labels, "s_labels")
    u = np.asarray(u_labels).astype(int).ravel()
    if not (y.size == s.size == u.size):
        raise ValidationError("outcomes/s_labels/u_labels length mismatch")
    return {int(g): statistical_parity_difference(y[u == g], s[u == g])
            for g in np.unique(u)}


def disparate_treatment_gap(outcomes, s_labels, u_labels) -> float:
    """Max deviation from ``Pr[ŷ|s,u] = Pr[ŷ|u]`` (Definition 2.2).

    Zero iff the outcome distribution is identical across ``s`` within each
    ``u`` group — the conditional notion of "treatment" fairness.
    """
    y = _binary(outcomes, "outcomes")
    s = _binary(s_labels, "s_labels")
    u = np.asarray(u_labels).astype(int).ravel()
    if not (y.size == s.size == u.size):
        raise ValidationError("outcomes/s_labels/u_labels length mismatch")
    worst = 0.0
    for g in np.unique(u):
        in_group = u == g
        base = _positive_rate(y, in_group)
        for sv in (0, 1):
            rate = _positive_rate(y, in_group & (s == sv))
            if not np.isnan(rate):
                worst = max(worst, abs(rate - base))
    return worst


def equal_opportunity_difference(outcomes, truths, s_labels) -> float:
    """True-positive-rate gap ``TPR(s=0) - TPR(s=1)``."""
    y = _binary(outcomes, "outcomes")
    t = _binary(truths, "truths")
    s = _binary(s_labels, "s_labels")
    if not (y.size == t.size == s.size):
        raise ValidationError("outcomes/truths/s_labels length mismatch")
    positives = t == 1
    tpr0 = _positive_rate(y, positives & (s == 0))
    tpr1 = _positive_rate(y, positives & (s == 1))
    return tpr0 - tpr1


@dataclass(frozen=True)
class FairnessAssessment:
    """Summary of classical proxies for one classifier on one data set."""

    disparate_impact: float
    conditional_disparate_impact: dict
    statistical_parity: float
    conditional_statistical_parity: dict
    disparate_treatment: float

    @property
    def passes_four_fifths(self) -> bool:
        """EEOC four-fifths rule on the marginal DI (both directions)."""
        di = self.disparate_impact
        if np.isnan(di) or np.isinf(di) or di <= 0.0:
            return False
        return min(di, 1.0 / di) >= FOUR_FIFTHS


def assess_classifier(outcomes, s_labels, u_labels) -> FairnessAssessment:
    """Compute every proxy at once for reporting convenience."""
    return FairnessAssessment(
        disparate_impact=disparate_impact(outcomes, s_labels),
        conditional_disparate_impact=conditional_disparate_impact(
            outcomes, s_labels, u_labels),
        statistical_parity=statistical_parity_difference(outcomes, s_labels),
        conditional_statistical_parity=conditional_statistical_parity(
            outcomes, s_labels, u_labels),
        disparate_treatment=disparate_treatment_gap(
            outcomes, s_labels, u_labels),
    )
