"""Fairness metrics: divergences, the paper's ``E`` measure, proxies."""

from .divergence import (DEFAULT_FLOOR, hellinger_distance, js_divergence,
                         kl_divergence, symmetric_kl, total_variation)
from .fairness import (EnergyReport, conditional_dependence_energy,
                       feature_dependence, group_dependence)
from .multivariate import correlation_gap, sliced_dependence
from .proxies import (FOUR_FIFTHS, FairnessAssessment, assess_classifier,
                      conditional_disparate_impact,
                      conditional_statistical_parity, disparate_impact,
                      disparate_treatment_gap, equal_opportunity_difference,
                      statistical_parity_difference)

__all__ = [
    "DEFAULT_FLOOR",
    "FOUR_FIFTHS",
    "EnergyReport",
    "FairnessAssessment",
    "assess_classifier",
    "conditional_dependence_energy",
    "conditional_disparate_impact",
    "conditional_statistical_parity",
    "correlation_gap",
    "disparate_impact",
    "disparate_treatment_gap",
    "equal_opportunity_difference",
    "feature_dependence",
    "group_dependence",
    "hellinger_distance",
    "js_divergence",
    "kl_divergence",
    "sliced_dependence",
    "statistical_parity_difference",
    "symmetric_kl",
    "total_variation",
]
