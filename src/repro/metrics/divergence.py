"""Divergences between probability mass functions.

The paper's repair-quality measure is built from the symmetrised
Kullback-Leibler divergence (Definition 2.4).  All functions here operate on
discrete pmfs (typically KDE interpolations on a shared grid, Eq. 11) and
guard the logarithms with a configurable probability floor.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_probability_vector
from ..exceptions import ValidationError

__all__ = [
    "kl_divergence",
    "symmetric_kl",
    "js_divergence",
    "hellinger_distance",
    "total_variation",
]

#: Default probability floor used to keep ``log(p/q)`` finite when a pmf has
#: (numerically) empty states.  The floor is applied before renormalisation,
#: so divergences remain finite yet can still become large when the two
#: distributions barely overlap — exactly the behaviour the paper's
#: unrepaired baselines exhibit.
DEFAULT_FLOOR = 1e-12


def _prepare(p, q, floor: float) -> tuple[np.ndarray, np.ndarray]:
    ps = as_probability_vector(p, name="p", normalize=True)
    qs = as_probability_vector(q, name="q", normalize=True)
    if ps.size != qs.size:
        raise ValidationError(
            f"pmfs must share a support ({ps.size} != {qs.size} states)")
    if floor <= 0.0 or floor >= 1.0:
        raise ValidationError(f"floor must lie in (0, 1), got {floor}")
    ps = np.maximum(ps, floor)
    qs = np.maximum(qs, floor)
    return ps / ps.sum(), qs / qs.sum()


def kl_divergence(p, q, *, floor: float = DEFAULT_FLOOR) -> float:
    """``D(p || q) = Σ_i p_i log(p_i / q_i)`` (natural log, >= 0)."""
    ps, qs = _prepare(p, q, floor)
    return float(np.sum(ps * (np.log(ps) - np.log(qs))))


def symmetric_kl(p, q, *, floor: float = DEFAULT_FLOOR) -> float:
    """Symmetrised KLD ``(D(p||q) + D(q||p)) / 2`` — paper Definition 2.4."""
    ps, qs = _prepare(p, q, floor)
    log_ratio = np.log(ps) - np.log(qs)
    return float(0.5 * np.sum((ps - qs) * log_ratio))


def js_divergence(p, q, *, floor: float = DEFAULT_FLOOR) -> float:
    """Jensen-Shannon divergence (bounded by ``log 2``)."""
    ps, qs = _prepare(p, q, floor)
    mid = 0.5 * (ps + qs)
    return float(0.5 * np.sum(ps * (np.log(ps) - np.log(mid)))
                 + 0.5 * np.sum(qs * (np.log(qs) - np.log(mid))))


def hellinger_distance(p, q, *, floor: float = DEFAULT_FLOOR) -> float:
    """Hellinger distance ``sqrt(1 - Σ sqrt(p q))`` in ``[0, 1]``."""
    ps, qs = _prepare(p, q, floor)
    affinity = float(np.sum(np.sqrt(ps * qs)))
    return float(np.sqrt(max(0.0, 1.0 - affinity)))


def total_variation(p, q) -> float:
    """Total-variation distance ``(1/2) Σ |p_i - q_i|`` in ``[0, 1]``."""
    ps = as_probability_vector(p, name="p", normalize=True)
    qs = as_probability_vector(q, name="q", normalize=True)
    if ps.size != qs.size:
        raise ValidationError(
            f"pmfs must share a support ({ps.size} != {qs.size} states)")
    return float(0.5 * np.sum(np.abs(ps - qs)))
