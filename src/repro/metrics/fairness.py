"""The paper's conditional-dependence fairness measure ``E``.

Definition 2.4 quantifies the residual ``s``-dependence of the
``u``-conditional feature distributions with a symmetrised KLD,

    E_u = ½ D(f(x|0,u) || f(x|1,u)) + ½ D(f(x|1,u) || f(x|0,u)),

and Eq. 3 aggregates over the unprotected groups, ``E = Σ_u Pr[u] E_u``.
Lower is fairer; ``E = 0`` iff the two ``s``-conditional distributions agree
for every ``u``.

Following the paper's experiments the measure is *stratified per feature*
``k``: the densities are estimated per ``(u, s, k)`` with Gaussian KDE on a
shared evaluation grid and compared with :func:`symmetric_kl`.  The report
exposes ``E_k`` per feature (Table I/II rows) and their sum (the aggregate
``E`` plotted in Figures 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_2d_array, check_positive_int
from ..density.grid import uniform_grid
from ..density.kde import interpolate_pmf
from ..exceptions import ValidationError
from .divergence import DEFAULT_FLOOR, symmetric_kl

__all__ = [
    "feature_dependence",
    "group_dependence",
    "EnergyReport",
    "conditional_dependence_energy",
]


def feature_dependence(samples0, samples1, *, n_grid: int = 100,
                       bandwidth_method: str = "silverman",
                       floor: float = DEFAULT_FLOOR) -> float:
    """Symmetrised-KLD dependence between two 1-D conditional samples.

    Estimates both densities with KDE on a shared uniform grid spanning the
    pooled sample range, then applies Definition 2.4.
    """
    xs0 = np.asarray(samples0, dtype=float).ravel()
    xs1 = np.asarray(samples1, dtype=float).ravel()
    if xs0.size == 0 or xs1.size == 0:
        raise ValidationError("both conditional samples must be non-empty")
    grid = uniform_grid(np.concatenate([xs0, xs1]), n_grid)
    pmf0 = interpolate_pmf(xs0, grid, bandwidth_method=bandwidth_method)
    pmf1 = interpolate_pmf(xs1, grid, bandwidth_method=bandwidth_method)
    return symmetric_kl(pmf0, pmf1, floor=floor)


def group_dependence(features, s_labels, *, n_grid: int = 100,
                     bandwidth_method: str = "silverman",
                     floor: float = DEFAULT_FLOOR) -> np.ndarray:
    """Per-feature dependence ``E_{u,k}`` within a single ``u`` group.

    Parameters
    ----------
    features:
        ``(n, d)`` feature block of one ``u`` group.
    s_labels:
        Binary protected labels aligned with the rows.
    """
    x = as_2d_array(features, name="features")
    s = np.asarray(s_labels).astype(int).ravel()
    if s.size != x.shape[0]:
        raise ValidationError("features/s_labels length mismatch")
    if not np.all(np.isin(s, (0, 1))):
        raise ValidationError("s_labels must be binary (0/1)")
    mask0 = s == 0
    mask1 = s == 1
    if not mask0.any() or not mask1.any():
        raise ValidationError("both protected groups must be represented")
    return np.array([
        feature_dependence(x[mask0, k], x[mask1, k], n_grid=n_grid,
                           bandwidth_method=bandwidth_method, floor=floor)
        for k in range(x.shape[1])
    ])


@dataclass(frozen=True)
class EnergyReport:
    """Full decomposition of the conditional-dependence measure.

    Attributes
    ----------
    per_group:
        Mapping ``u -> E_{u,k}`` arrays (one entry per feature).
    group_weights:
        Mapping ``u -> Pr[u]`` (empirical frequencies).
    per_feature:
        ``E_k = Σ_u Pr[u] E_{u,k}`` — the rows reported in Tables I/II.
    total:
        ``E = Σ_k E_k`` — the aggregate plotted in Figures 3/4.
    """

    per_group: dict
    group_weights: dict
    per_feature: np.ndarray = field(repr=False)
    total: float = 0.0

    def feature(self, k: int) -> float:
        """``E_k`` for feature index ``k``."""
        return float(self.per_feature[k])

    @property
    def n_features(self) -> int:
        return int(self.per_feature.size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rows = ", ".join(f"E_{k}={v:.4g}"
                         for k, v in enumerate(self.per_feature))
        return f"EnergyReport({rows}, total={self.total:.4g})"


def conditional_dependence_energy(features, s_labels, u_labels, *,
                                  n_grid: int = 100,
                                  bandwidth_method: str = "silverman",
                                  floor: float = DEFAULT_FLOOR) -> EnergyReport:
    """Estimate the paper's ``E`` measure from labelled observations.

    Parameters
    ----------
    features:
        ``(n, d)`` observation matrix ``X``.
    s_labels, u_labels:
        Binary protected / unprotected attribute vectors.
    n_grid:
        Evaluation-grid resolution for the per-feature KDEs.

    Returns
    -------
    EnergyReport
        Per-``(u, k)`` dependences, ``Pr[u]`` weights, the weighted
        per-feature ``E_k``, and the aggregate ``E``.
    """
    x = as_2d_array(features, name="features")
    s = np.asarray(s_labels).astype(int).ravel()
    u = np.asarray(u_labels).astype(int).ravel()
    if s.size != x.shape[0] or u.size != x.shape[0]:
        raise ValidationError("features/labels length mismatch")
    check_positive_int(n_grid, name="n_grid", minimum=2)

    groups = np.unique(u)
    if groups.size == 0:
        raise ValidationError("u_labels is empty")
    per_group: dict = {}
    group_weights: dict = {}
    for group in groups:
        mask = u == group
        group_weights[int(group)] = float(np.mean(mask))
        per_group[int(group)] = group_dependence(
            x[mask], s[mask], n_grid=n_grid,
            bandwidth_method=bandwidth_method, floor=floor)

    per_feature = np.zeros(x.shape[1])
    for group, energies in per_group.items():
        per_feature += group_weights[group] * energies
    return EnergyReport(per_group=per_group, group_weights=group_weights,
                        per_feature=per_feature,
                        total=float(per_feature.sum()))
