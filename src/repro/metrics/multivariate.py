"""Multivariate conditional-dependence measures.

The paper's ``E`` metric is stratified per feature, exactly like its
repair — so neither can see dependence hiding in the *joint* structure
(correlations, copulas) of the features.  Section VI flags this as an open
question.  This module provides the measuring instruments:

* :func:`sliced_dependence` — a ``Pr[u]``-weighted sliced-Wasserstein
  distance between the ``s``-conditional joint samples; zero iff the
  joints agree, sensitive to correlation differences the per-feature
  ``E`` misses.
* :func:`correlation_gap` — the max absolute difference of the
  ``s``-conditional feature-correlation matrices, per ``u``; a blunt but
  interpretable copula diagnostic.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array
from ..exceptions import ValidationError
from ..ot.sliced import sliced_wasserstein

__all__ = ["sliced_dependence", "correlation_gap"]


def sliced_dependence(features, s_labels, u_labels, *, p: int = 2,
                      n_directions: int = 64, rng=0) -> float:
    """``Σ_u Pr[u] · SW_p(X|s=0,u , X|s=1,u)`` on the joint features.

    The multivariate analogue of the paper's Eq. 3 with sliced
    Wasserstein in place of the per-feature symmetrised KLD.  ``rng``
    defaults to a fixed seed so the measure is deterministic.
    """
    x = as_2d_array(features, name="features")
    s = np.asarray(s_labels).astype(int).ravel()
    u = np.asarray(u_labels).astype(int).ravel()
    if s.size != x.shape[0] or u.size != x.shape[0]:
        raise ValidationError("features/labels length mismatch")
    total = 0.0
    for group in np.unique(u):
        mask = u == group
        xs0 = x[mask & (s == 0)]
        xs1 = x[mask & (s == 1)]
        if xs0.shape[0] == 0 or xs1.shape[0] == 0:
            raise ValidationError(
                f"group u={int(group)} lacks one protected class")
        weight = float(np.mean(mask))
        total += weight * sliced_wasserstein(
            xs0, xs1, p=p, n_directions=n_directions, rng=rng)
    return total


def correlation_gap(features, s_labels, u_labels) -> dict:
    """Per-``u`` max |corr(X | s=0, u) - corr(X | s=1, u)| entry.

    Zero when the two protected classes share their feature-correlation
    structure within every ``u`` group.  Per-feature repairs cannot reduce
    this below the data's intrinsic value — the limitation bench uses it
    as the smoking gun.
    """
    x = as_2d_array(features, name="features")
    s = np.asarray(s_labels).astype(int).ravel()
    u = np.asarray(u_labels).astype(int).ravel()
    if s.size != x.shape[0] or u.size != x.shape[0]:
        raise ValidationError("features/labels length mismatch")
    if x.shape[1] < 2:
        raise ValidationError(
            "correlation_gap needs at least two features")
    gaps = {}
    for group in np.unique(u):
        mask = u == group
        xs0 = x[mask & (s == 0)]
        xs1 = x[mask & (s == 1)]
        if xs0.shape[0] < 3 or xs1.shape[0] < 3:
            raise ValidationError(
                f"group u={int(group)} needs >= 3 rows per class for a "
                "correlation estimate")
        corr0 = _safe_corr(xs0)
        corr1 = _safe_corr(xs1)
        gaps[int(group)] = float(np.max(np.abs(corr0 - corr1)))
    return gaps


def _safe_corr(block: np.ndarray) -> np.ndarray:
    """Correlation matrix with zero-variance columns mapped to zero."""
    stds = block.std(axis=0)
    safe = stds > 1e-12
    corr = np.zeros((block.shape[1], block.shape[1]))
    if safe.sum() >= 2:
        sub = np.corrcoef(block[:, safe], rowvar=False)
        corr[np.ix_(safe, safe)] = np.atleast_2d(sub)
    np.fill_diagonal(corr, 0.0)  # the diagonal carries no copula signal
    return corr
