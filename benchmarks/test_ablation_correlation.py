"""Ablation: per-feature vs joint repair on copula-hidden unfairness.

The paper's per-feature stratification "neglect[s] the intra-feature
correlation structure" (Section VI).  This bench constructs data whose
``s``-dependence lives *only* in the correlation (identical marginals,
opposite sign of the feature correlation per protected class) and
contrasts:

* the per-feature distributional repair (paper) — blind to it, and
* the joint product-grid repair (this library's extension) — removes it,

measured by the sliced-Wasserstein dependence and the correlation gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.joint import JointDistributionalRepairer
from repro.core.repair import DistributionalRepairer
from repro.data.simulated import GaussianMixtureSpec
from repro.metrics.multivariate import correlation_gap, sliced_dependence


@pytest.fixture(scope="module")
def copula_split():
    rho = 0.8
    spec = GaussianMixtureSpec(
        means={(u, s): [0.0, 0.0] for u in (0, 1) for s in (0, 1)},
        p_u0=0.5, p_s0_given_u={0: 0.4, 1: 0.4},
        covariances={(0, 0): [[1, rho], [rho, 1]],
                     (1, 0): [[1, rho], [rho, 1]],
                     (0, 1): [[1, -rho], [-rho, 1]],
                     (1, 1): [[1, -rho], [-rho, 1]]})
    return spec.sample(5000, rng=2024).split(n_research=1500, rng=2024)


def test_correlation_blindness_contrast(benchmark, copula_split):
    def contrast():
        per_feature = DistributionalRepairer(n_states=30, rng=1)
        pf_repaired = per_feature.fit(copula_split.research).transform(
            copula_split.archive)
        joint = JointDistributionalRepairer(n_states=12, rng=1)
        jt_repaired = joint.fit(copula_split.research).transform(
            copula_split.archive)
        out = {}
        for name, ds in (("unrepaired", copula_split.archive),
                         ("per-feature", pf_repaired),
                         ("joint", jt_repaired)):
            out[name] = {
                "sliced_w": sliced_dependence(ds.features, ds.s, ds.u,
                                              rng=0, n_directions=64),
                "corr_gap": max(correlation_gap(ds.features, ds.s,
                                                ds.u).values()),
            }
        return out

    results = benchmark.pedantic(contrast, rounds=1, iterations=1)
    print("\ncorrelation ablation:")
    for name, stats in results.items():
        print(f"  {name:12s} slicedW={stats['sliced_w']:.4f} "
              f"corr_gap={stats['corr_gap']:.4f}")

    # Per-feature repair leaves the copula dependence essentially intact.
    assert (results["per-feature"]["corr_gap"]
            > 0.8 * results["unrepaired"]["corr_gap"])
    # The joint repair removes most of it.
    assert (results["joint"]["corr_gap"]
            < 0.3 * results["unrepaired"]["corr_gap"])
    assert (results["joint"]["sliced_w"]
            < 0.5 * results["unrepaired"]["sliced_w"])


def test_per_feature_repair_cost(benchmark, copula_split):
    repairer = DistributionalRepairer(n_states=30, rng=1)
    repairer.fit(copula_split.research)
    benchmark(repairer.transform, copula_split.archive, rng=2)


def test_joint_repair_cost(benchmark, copula_split):
    repairer = JointDistributionalRepairer(n_states=12, rng=1)
    repairer.fit(copula_split.research)
    benchmark.pedantic(repairer.transform, args=(copula_split.archive,),
                       kwargs={"rng": 2}, rounds=3, iterations=1)


def test_joint_design_cost(benchmark, copula_split):
    repairer = JointDistributionalRepairer(n_states=12, rng=1)
    benchmark.pedantic(repairer.fit, args=(copula_split.research,),
                       rounds=3, iterations=1)
