"""Benchmark: the ``"multiscale"`` solver vs the ``"screened"`` hybrid.

The multiscale solver replaces the screened hybrid's ``O(n·m)``-per-
iteration entropic screen with a coarsen-solve-refine pyramid: bin the
quantile grid, solve the coarse problem exactly (the free monotone
coupling on metric costs), dilate the coarse plan's support onto the
fine grid, and solve the exact LP restricted to that sparse support.

This harness runs both solvers head-to-head on a real design-cell
problem lifted to ``n_Q ∈ {500, 2000, 5000}`` grids.  Expectations:

* at every size the two values agree to solver precision (both end in
  an exact restricted LP whose support contains the optimal basis);
* at ``n_Q = 500`` the multiscale value is within 1% of the dense
  exact LP (in practice: equal to ~1e-9 relative);
* from ``n_Q = 2000`` — the ``MULTISCALE_AUTO_LIMIT`` regime where
  ``method="auto"`` starts preferring it — multiscale is strictly
  faster than screened, because the screen itself dominates screened's
  wall time while the multiscale coarse level stays ``O(n_Q)``.

The v2 pyramid section then scales the same design cell to
``n_Q ∈ {10⁴, 10⁵, 10⁶}`` and compares three configurations:

* the **v2 automatic pyramid with the banded kernel** (the defaults:
  ``levels="auto"``, ``restricted_engine="auto"`` → banded on this
  certified-monotone cell),
* the **v2 pyramid on the network simplex** (pivot-based restricted
  solves, still multi-level), and
* the **single-level baseline** (``levels=1`` +
  ``restricted_engine="network_simplex"``): the pre-pyramid solver.
  Its coarse level is ``n_Q / 4`` states solved via the *dense*
  closed form, which is the bottleneck at ``10⁵`` (a 5 GB plan) and a
  466 GiB allocation error at ``10⁶`` — the pyramid exists precisely
  because one coarsening step stops being "small" at paper scale.

Exactness at every size is checked against the closed-form 1-D
Wasserstein value (the cell is monotone-solvable, so the unrestricted
optimum is known even where no LP fits in memory).  A coarsen-factor
sweep justifies ``default_coarsen_factor`` and the committed
``MULTISCALE_AUTO_LIMIT``; everything is persisted to
``results/multiscale.txt`` and machine-readable
``results/BENCH_multiscale.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.density.grid import InterpolationGrid
from repro.density.kde import interpolate_pmf
from repro.ot import OTProblem, default_coarsen_factor, solve
from repro.ot.barycenter import barycenter_1d
from repro.ot.onedim import wasserstein_1d
from repro.ot.solve import MULTISCALE_AUTO_LIMIT, auto_method

from _results import RESULTS_DIR, save_result

GRID_SIZES = (500, 2000, 5000)
#: Sizes in the multiscale auto-dispatch regime, where the benchmark
#: asserts a strict wall-time win over the screened hybrid.
LARGE_SIZES = tuple(n for n in GRID_SIZES if n >= MULTISCALE_AUTO_LIMIT)
#: Paper-scale sizes for the v2 pyramid / banded-kernel comparison.
PYRAMID_SIZES = (10_000, 100_000, 1_000_000)
#: Sizes where the single-level (pre-pyramid) baseline still fits in
#: memory: its coarse level is solved by the dense closed form, whose
#: ``(n_Q/4)²`` plan is ~5 GB at 10⁵ and an impossible 466 GiB at 10⁶.
BASELINE_SIZES = (10_000, 100_000)
#: Coarsen factors swept to justify ``default_coarsen_factor``.
COARSEN_FACTORS = (2, 4, 8, 16)
COARSEN_SWEEP_SIZE = 20_000


def design_cell_problem(split, n_states: int) -> OTProblem:
    """The (u=0, k=0, s=0) design problem on an ``n_states`` grid."""
    group = split.research.group(0)
    samples = {s: group.features[group.s == s, 0] for s in (0, 1)}
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, n_states)
    marginals = {s: interpolate_pmf(values, grid.nodes)
                 for s, values in samples.items()}
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=0.5)
    return OTProblem(source_weights=marginals[0], target_weights=target,
                     source_support=grid.nodes, target_support=grid.nodes)


@pytest.fixture(scope="module")
def comparisons(paper_scale_split):
    """``n_Q -> (multiscale, screened)`` result pairs for every size."""
    results = {}
    for n_states in GRID_SIZES:
        problem = design_cell_problem(paper_scale_split, n_states)
        multiscale = solve(problem, method="multiscale")
        screened = solve(problem, method="screened")
        results[n_states] = (multiscale, screened)
    return results


@pytest.fixture(scope="module")
def lp_reference(paper_scale_split):
    """Dense exact LP at the smallest size only (cubic-class beyond it)."""
    problem = design_cell_problem(paper_scale_split, GRID_SIZES[0])
    return solve(problem, method="lp")


def test_multiscale_within_one_percent_of_exact_lp(comparisons,
                                                   lp_reference):
    multiscale, _ = comparisons[GRID_SIZES[0]]
    assert multiscale.value <= lp_reference.value * 1.01
    # In practice the restricted LP recovers the exact optimum.
    assert multiscale.value == pytest.approx(lp_reference.value, rel=1e-6)
    assert multiscale.marginal_residual <= 1e-8


def test_multiscale_agrees_with_screened_everywhere(comparisons):
    for n_states, (multiscale, screened) in comparisons.items():
        assert multiscale.value == pytest.approx(
            screened.value, rel=1e-4), n_states
        # HiGHS primal feasibility degrades mildly with LP size; 1e-6
        # still certifies a valid coupling at every benchmarked n_Q.
        assert multiscale.marginal_residual <= 1e-6, n_states
        assert multiscale.converged, n_states


def test_multiscale_returns_sparse_plans(comparisons):
    for n_states, (multiscale, _) in comparisons.items():
        assert multiscale.plan.is_sparse, n_states
        assert multiscale.extras["support_density"] < 0.15, n_states


def test_multiscale_beats_screened_at_large_sizes(comparisons):
    assert LARGE_SIZES, "benchmark must cover the auto-dispatch regime"
    for n_states in LARGE_SIZES:
        multiscale, screened = comparisons[n_states]
        # Typical margin is 2-6x; assert a conservative 1.3x so the
        # benchmark stays robust on slow or loaded machines.
        assert multiscale.wall_time * 1.3 < screened.wall_time, (
            f"n_Q={n_states}: multiscale {multiscale.wall_time:.2f}s vs "
            f"screened {screened.wall_time:.2f}s")


def test_auto_prefers_multiscale_on_the_design_grid(paper_scale_split):
    problem = design_cell_problem(paper_scale_split, LARGE_SIZES[0])
    # The design problem itself is monotone-solvable (metric cost), so
    # auto picks the closed form; masking it breaks the monotone claim
    # while keeping the metric cost, which is multiscale's regime.  An
    # arbitrary explicit cost must keep routing to screened.
    assert auto_method(problem) == "exact"
    n = max(problem.shape)
    masked = OTProblem(source_weights=problem.source_weights,
                       target_weights=problem.target_weights,
                       source_support=problem.source_support,
                       target_support=problem.target_support,
                       support_mask=np.eye(n, dtype=bool))
    assert auto_method(masked) == "multiscale"
    explicit = OTProblem(source_weights=problem.source_weights,
                         target_weights=problem.target_weights,
                         source_support=problem.source_support,
                         target_support=problem.target_support,
                         cost=problem.cost_matrix())
    assert auto_method(explicit) == "screened"


def _timed(problem, **opts):
    start = time.perf_counter()
    result = solve(problem, method="multiscale", **opts)
    return result, time.perf_counter() - start


def _closed_form_value(problem) -> float:
    """The unrestricted optimum: ``W₂²`` of the (metric, 1-D) cell."""
    return wasserstein_1d(problem.source_support.ravel(),
                          problem.source_weights,
                          problem.target_support.ravel(),
                          problem.target_weights, p=2) ** 2


@pytest.fixture(scope="module")
def pyramid_scaling(paper_scale_split):
    """``n_Q -> {oracle, banded, simplex, baseline}`` at paper scale."""
    table = {}
    for n_states in PYRAMID_SIZES:
        problem = design_cell_problem(paper_scale_split, n_states)
        entry = {"oracle": _closed_form_value(problem)}
        entry["banded"] = _timed(problem)
        entry["simplex"] = _timed(problem,
                                  restricted_engine="network_simplex")
        if n_states in BASELINE_SIZES:
            entry["baseline"] = _timed(
                problem, levels=1, restricted_engine="network_simplex")
        table[n_states] = entry
    return table


@pytest.fixture(scope="module")
def coarsen_sweep(paper_scale_split):
    """``factor -> (result, seconds)`` for the v2 defaults at 2·10⁴."""
    problem = design_cell_problem(paper_scale_split, COARSEN_SWEEP_SIZE)
    return {factor: _timed(problem, coarsen=factor)
            for factor in COARSEN_FACTORS}


def test_banded_kernel_runs_the_certified_pyramid(pyramid_scaling):
    for n_states, entry in pyramid_scaling.items():
        result, _ = entry["banded"]
        assert result.extras["restricted_engine"] == "banded", n_states
        assert result.extras["levels"] >= 2, n_states
        assert result.plan.is_sparse, n_states
        assert all(info["engine"] == "banded"
                   for info in result.extras["pyramid"])


def test_pyramid_matches_closed_form_at_every_scale(pyramid_scaling):
    """The acceptance bar: ≤ 1e-9 relative against the exact optimum —
    including the 10⁶-state cell no LP or simplex baseline can touch."""
    for n_states, entry in pyramid_scaling.items():
        oracle = entry["oracle"]
        for config in ("banded", "simplex", "baseline"):
            if config not in entry:
                continue
            result, _ = entry[config]
            assert result.value == pytest.approx(oracle, rel=1e-9), (
                f"{config} off the closed form at n_Q={n_states}")
            assert result.marginal_residual <= 1e-9, (config, n_states)


def test_banded_beats_single_level_baseline(pyramid_scaling):
    """The headline speedup: automatic pyramid + banded kernel vs the
    pre-pyramid single-level solver (measured 15x at 10⁵; at 10⁶ the
    baseline cannot run at all — see ``BASELINE_SIZES``)."""
    for n_states in BASELINE_SIZES:
        entry = pyramid_scaling[n_states]
        _, banded_s = entry["banded"]
        _, baseline_s = entry["baseline"]
        # 10⁴ sits near the crossover (both sub-second); assert the
        # decisive margin where the dense coarse solve dominates.
        if n_states >= 100_000:
            assert banded_s * 4.0 < baseline_s, (
                f"n_Q={n_states}: banded {banded_s:.2f}s vs "
                f"baseline {baseline_s:.2f}s")


def test_banded_beats_simplex_pyramid_at_the_top_size(pyramid_scaling):
    """The kernel-vs-kernel margin, support construction held equal:
    index arithmetic vs pivot machinery on the same banded support
    (measured ~2.6x at 10⁶)."""
    top = PYRAMID_SIZES[-1]
    _, banded_s = pyramid_scaling[top]["banded"]
    _, simplex_s = pyramid_scaling[top]["simplex"]
    assert banded_s * 1.5 < simplex_s, (
        f"banded {banded_s:.2f}s vs simplex {simplex_s:.2f}s")


def test_default_coarsen_factor_is_on_the_sweep_plateau(coarsen_sweep):
    """``default_coarsen_factor`` must stay within 1.5x of the best
    swept factor's wall time (they all reach the exact value — the
    factor only moves work between levels of the pyramid)."""
    values = {f: result.value for f, (result, _) in coarsen_sweep.items()}
    assert max(values.values()) == pytest.approx(
        min(values.values()), rel=1e-9)
    seconds = {f: s for f, (_, s) in coarsen_sweep.items()}
    default = default_coarsen_factor(COARSEN_SWEEP_SIZE)
    assert default in seconds
    assert seconds[default] <= 1.5 * min(seconds.values()), seconds


def test_record_results(comparisons, lp_reference, pyramid_scaling,
                        coarsen_sweep):
    lines = [
        "Multiscale coarsen-solve-refine vs screened Sinkhorn hybrid — "
        "one (u=0, k=0, s=0) design problem per grid size",
        f"  dense lp reference at n_Q = {GRID_SIZES[0]}: value "
        f"{lp_reference.value:.8f}  wall {lp_reference.wall_time:.2f}s",
        "",
    ]
    for n_states, (multiscale, screened) in comparisons.items():
        speedup = screened.wall_time / max(multiscale.wall_time, 1e-12)
        lines += [
            f"n_Q = {n_states}",
            f"  screened   : value {screened.value:.8f}  wall "
            f"{screened.wall_time:6.2f}s  support density "
            f"{screened.extras['support_density']:.4f}",
            f"  multiscale : value {multiscale.value:.8f}  wall "
            f"{multiscale.wall_time:6.2f}s  support density "
            f"{multiscale.extras['support_density']:.4f}  "
            f"(coarsen={multiscale.extras['coarsen']}, "
            f"radius={multiscale.extras['radius']}, coarse solver "
            f"{multiscale.extras['coarse_solver']})",
            f"  speedup    : {speedup:.1f}x",
            "",
        ]

    lines += [
        "v2 automatic pyramid at paper scale — banded kernel vs simplex "
        "pyramid vs single-level baseline (levels=1, network_simplex)",
        "  exactness oracle: closed-form 1-D W2² (the cell is "
        "monotone-solvable)",
        f"  baseline beyond n_Q = {BASELINE_SIZES[-1]}: infeasible — its "
        "dense coarse solve needs a (n_Q/4)² plan (466 GiB at 10^6)",
        "",
    ]
    payload_pyramid = {}
    for n_states, entry in pyramid_scaling.items():
        oracle = entry["oracle"]
        lines.append(f"n_Q = {n_states}  (closed form {oracle:.9e})")
        row = {"oracle_value": oracle}
        for config in ("banded", "simplex", "baseline"):
            if config not in entry:
                lines.append("  baseline : infeasible (dense coarse "
                             "solve exceeds memory)")
                row["baseline"] = None
                continue
            result, seconds = entry[config]
            lines.append(
                f"  {config:8s} : wall {seconds:7.2f}s  value "
                f"{result.value:.9e}  levels={result.extras['levels']}  "
                f"engine={result.extras['restricted_engine']}  "
                f"support={result.extras['support_size']}")
            row[config] = {
                "seconds": round(seconds, 4),
                "value": result.value,
                "levels": result.extras["levels"],
                "engine": result.extras["restricted_engine"],
                "support_size": result.extras["support_size"],
            }
        if entry.get("baseline"):
            row["speedup_vs_baseline"] = round(
                entry["baseline"][1] / max(entry["banded"][1], 1e-12), 2)
            lines.append(
                f"  speedup  : {row['speedup_vs_baseline']:.1f}x banded "
                "vs single-level baseline")
        payload_pyramid[str(n_states)] = row
        lines.append("")

    lines += [
        f"coarsen-factor sweep at n_Q = {COARSEN_SWEEP_SIZE} (v2 "
        "defaults; all factors reach the exact value)",
    ]
    payload_sweep = {}
    for factor, (result, seconds) in sorted(coarsen_sweep.items()):
        marker = " <- default" if factor == default_coarsen_factor(
            COARSEN_SWEEP_SIZE) else ""
        lines.append(
            f"  coarsen={factor:2d} : wall {seconds:6.2f}s  "
            f"levels={result.extras['levels']}  "
            f"support={result.extras['support_size']}{marker}")
        payload_sweep[str(factor)] = {
            "seconds": round(seconds, 4),
            "levels": result.extras["levels"],
            "support_size": result.extras["support_size"],
        }
    lines += [
        "",
        f"constants: MULTISCALE_AUTO_LIMIT={MULTISCALE_AUTO_LIMIT} "
        f"default_coarsen_factor={default_coarsen_factor(2000)} "
        "(pinned by tests/ot/test_multiscale.py::TestTuningPins)",
    ]

    save_result("multiscale", "\n".join(lines).rstrip())
    payload = {
        "screened_comparison": {
            str(n): {
                "screened_seconds": round(screened.wall_time, 4),
                "multiscale_seconds": round(multiscale.wall_time, 4),
                "speedup": round(screened.wall_time
                                 / max(multiscale.wall_time, 1e-12), 3),
                "value": multiscale.value,
            }
            for n, (multiscale, screened) in comparisons.items()
        },
        "pyramid_scaling": payload_pyramid,
        "coarsen_sweep": payload_sweep,
        "constants": {
            "MULTISCALE_AUTO_LIMIT": MULTISCALE_AUTO_LIMIT,
            "default_coarsen_factor": default_coarsen_factor(2000),
        },
    }
    (RESULTS_DIR / "BENCH_multiscale.json").write_text(
        json.dumps(payload, indent=2) + "\n")
