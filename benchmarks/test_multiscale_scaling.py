"""Benchmark: the ``"multiscale"`` solver vs the ``"screened"`` hybrid.

The multiscale solver replaces the screened hybrid's ``O(n·m)``-per-
iteration entropic screen with a coarsen-solve-refine pyramid: bin the
quantile grid, solve the coarse problem exactly (the free monotone
coupling on metric costs), dilate the coarse plan's support onto the
fine grid, and solve the exact LP restricted to that sparse support.

This harness runs both solvers head-to-head on a real design-cell
problem lifted to ``n_Q ∈ {500, 2000, 5000}`` grids.  Expectations:

* at every size the two values agree to solver precision (both end in
  an exact restricted LP whose support contains the optimal basis);
* at ``n_Q = 500`` the multiscale value is within 1% of the dense
  exact LP (in practice: equal to ~1e-9 relative);
* from ``n_Q = 2000`` — the ``MULTISCALE_AUTO_LIMIT`` regime where
  ``method="auto"`` starts preferring it — multiscale is strictly
  faster than screened, because the screen itself dominates screened's
  wall time while the multiscale coarse level stays ``O(n_Q)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.density.grid import InterpolationGrid
from repro.density.kde import interpolate_pmf
from repro.ot import OTProblem, solve
from repro.ot.barycenter import barycenter_1d
from repro.ot.solve import MULTISCALE_AUTO_LIMIT, auto_method

GRID_SIZES = (500, 2000, 5000)
#: Sizes in the multiscale auto-dispatch regime, where the benchmark
#: asserts a strict wall-time win over the screened hybrid.
LARGE_SIZES = tuple(n for n in GRID_SIZES if n >= MULTISCALE_AUTO_LIMIT)


def design_cell_problem(split, n_states: int) -> OTProblem:
    """The (u=0, k=0, s=0) design problem on an ``n_states`` grid."""
    group = split.research.group(0)
    samples = {s: group.features[group.s == s, 0] for s in (0, 1)}
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, n_states)
    marginals = {s: interpolate_pmf(values, grid.nodes)
                 for s, values in samples.items()}
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=0.5)
    return OTProblem(source_weights=marginals[0], target_weights=target,
                     source_support=grid.nodes, target_support=grid.nodes)


@pytest.fixture(scope="module")
def comparisons(paper_scale_split):
    """``n_Q -> (multiscale, screened)`` result pairs for every size."""
    results = {}
    for n_states in GRID_SIZES:
        problem = design_cell_problem(paper_scale_split, n_states)
        multiscale = solve(problem, method="multiscale")
        screened = solve(problem, method="screened")
        results[n_states] = (multiscale, screened)
    return results


@pytest.fixture(scope="module")
def lp_reference(paper_scale_split):
    """Dense exact LP at the smallest size only (cubic-class beyond it)."""
    problem = design_cell_problem(paper_scale_split, GRID_SIZES[0])
    return solve(problem, method="lp")


def test_multiscale_within_one_percent_of_exact_lp(comparisons,
                                                   lp_reference):
    multiscale, _ = comparisons[GRID_SIZES[0]]
    assert multiscale.value <= lp_reference.value * 1.01
    # In practice the restricted LP recovers the exact optimum.
    assert multiscale.value == pytest.approx(lp_reference.value, rel=1e-6)
    assert multiscale.marginal_residual <= 1e-8


def test_multiscale_agrees_with_screened_everywhere(comparisons):
    for n_states, (multiscale, screened) in comparisons.items():
        assert multiscale.value == pytest.approx(
            screened.value, rel=1e-4), n_states
        # HiGHS primal feasibility degrades mildly with LP size; 1e-6
        # still certifies a valid coupling at every benchmarked n_Q.
        assert multiscale.marginal_residual <= 1e-6, n_states
        assert multiscale.converged, n_states


def test_multiscale_returns_sparse_plans(comparisons):
    for n_states, (multiscale, _) in comparisons.items():
        assert multiscale.plan.is_sparse, n_states
        assert multiscale.extras["support_density"] < 0.15, n_states


def test_multiscale_beats_screened_at_large_sizes(comparisons):
    assert LARGE_SIZES, "benchmark must cover the auto-dispatch regime"
    for n_states in LARGE_SIZES:
        multiscale, screened = comparisons[n_states]
        # Typical margin is 2-6x; assert a conservative 1.3x so the
        # benchmark stays robust on slow or loaded machines.
        assert multiscale.wall_time * 1.3 < screened.wall_time, (
            f"n_Q={n_states}: multiscale {multiscale.wall_time:.2f}s vs "
            f"screened {screened.wall_time:.2f}s")


def test_auto_prefers_multiscale_on_the_design_grid(paper_scale_split):
    problem = design_cell_problem(paper_scale_split, LARGE_SIZES[0])
    # The design problem itself is monotone-solvable (metric cost), so
    # auto picks the closed form; masking it breaks the monotone claim
    # while keeping the metric cost, which is multiscale's regime.  An
    # arbitrary explicit cost must keep routing to screened.
    assert auto_method(problem) == "exact"
    n = max(problem.shape)
    masked = OTProblem(source_weights=problem.source_weights,
                       target_weights=problem.target_weights,
                       source_support=problem.source_support,
                       target_support=problem.target_support,
                       support_mask=np.eye(n, dtype=bool))
    assert auto_method(masked) == "multiscale"
    explicit = OTProblem(source_weights=problem.source_weights,
                         target_weights=problem.target_weights,
                         source_support=problem.source_support,
                         target_support=problem.target_support,
                         cost=problem.cost_matrix())
    assert auto_method(explicit) == "screened"


def test_record_results(comparisons, lp_reference):
    from _results import save_result

    lines = [
        "Multiscale coarsen-solve-refine vs screened Sinkhorn hybrid — "
        "one (u=0, k=0, s=0) design problem per grid size",
        f"  dense lp reference at n_Q = {GRID_SIZES[0]}: value "
        f"{lp_reference.value:.8f}  wall {lp_reference.wall_time:.2f}s",
        "",
    ]
    for n_states, (multiscale, screened) in comparisons.items():
        speedup = screened.wall_time / max(multiscale.wall_time, 1e-12)
        lines += [
            f"n_Q = {n_states}",
            f"  screened   : value {screened.value:.8f}  wall "
            f"{screened.wall_time:6.2f}s  support density "
            f"{screened.extras['support_density']:.4f}",
            f"  multiscale : value {multiscale.value:.8f}  wall "
            f"{multiscale.wall_time:6.2f}s  support density "
            f"{multiscale.extras['support_density']:.4f}  "
            f"(coarsen={multiscale.extras['coarsen']}, "
            f"radius={multiscale.extras['radius']}, coarse solver "
            f"{multiscale.extras['coarse_solver']})",
            f"  speedup    : {speedup:.1f}x",
            "",
        ]
    save_result("multiscale", "\n".join(lines).rstrip())
