"""Ablation: plan-solver choice (DESIGN.md §6.2).

The paper quotes ``O(n_Q³ log n_Q)`` for exact unregularised OT and
``O(n_Q²/ε²)`` for Sinkhorn.  On the shared 1-D grids of Algorithm 1 the
monotone coupling gives the exact plan in ``O(n_Q)`` — this ablation
measures all three and checks that the repair *quality* is unaffected by
the (much cheaper) exact 1-D path while entropic blurring costs a little
quality at large ``ε``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.repair import DistributionalRepairer
from repro.metrics.fairness import conditional_dependence_energy
from repro.ot.cost import squared_euclidean_cost
from repro.ot.network_simplex import transport_simplex
from repro.ot.onedim import solve_1d
from repro.ot.sinkhorn import sinkhorn


@pytest.fixture(scope="module")
def grid_problem(bench_rng):
    n_q = 50
    nodes = np.linspace(-3.0, 3.0, n_q)
    mu = np.exp(-0.5 * (nodes + 1.0) ** 2)
    nu = np.exp(-0.5 * (nodes - 1.0) ** 2)
    return nodes, mu / mu.sum(), nu / nu.sum()


def test_solver_exact_1d(benchmark, grid_problem):
    nodes, mu, nu = grid_problem
    benchmark(solve_1d, nodes, mu, nodes, nu)


def test_solver_simplex(benchmark, grid_problem):
    nodes, mu, nu = grid_problem
    cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                  nodes.reshape(-1, 1))
    benchmark.pedantic(transport_simplex, args=(cost, mu, nu), rounds=3,
                       iterations=1)


def test_solver_sinkhorn(benchmark, grid_problem):
    nodes, mu, nu = grid_problem
    cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                  nodes.reshape(-1, 1))
    benchmark(sinkhorn, cost, mu, nu, epsilon=5e-3, tol=1e-8,
              raise_on_failure=False)


def test_solver_choice_preserves_repair_quality(benchmark,
                                                paper_scale_split):
    """Repair E must be solver-independent for exact paths and close for
    the entropic one."""
    def sweep():
        energies = {}
        for solver in ("exact", "sinkhorn"):
            repairer = DistributionalRepairer(n_states=50, solver=solver,
                                              epsilon=1e-3, rng=1)
            repairer.fit(paper_scale_split.research)
            repaired = repairer.transform(paper_scale_split.archive,
                                          rng=2)
            energies[solver] = conditional_dependence_energy(
                repaired.features, repaired.s, repaired.u).total
        return energies

    energies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nsolver ablation E: {energies}")
    assert energies["sinkhorn"] < 3.0 * energies["exact"] + 0.05


def test_entropic_blurring_trades_damage_for_independence(
        benchmark, paper_scale_split):
    """Large ε blurs the plan toward the independent coupling.

    In the extreme, every point is repaired by a fresh draw from the
    barycentre — conditional independence becomes *perfect* (tiny E), but
    the repaired features retain no information about the originals: the
    feature-space damage explodes.  This is the ε-facet of the
    repair/damage trade-off (paper Section VI).
    """
    from repro.core.partial import repair_damage

    def sweep():
        results = {}
        for epsilon in (1e-3, 0.5):
            repairer = DistributionalRepairer(
                n_states=50, solver="sinkhorn", epsilon=epsilon, rng=1)
            repairer.fit(paper_scale_split.research)
            repaired = repairer.transform(paper_scale_split.archive,
                                          rng=2)
            energy = conditional_dependence_energy(
                repaired.features, repaired.s, repaired.u).total
            damage = repair_damage(paper_scale_split.archive,
                                   repaired)["total_rms"]
            results[epsilon] = (energy, damage)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nepsilon ablation (E, damage): {results}")
    # Blur may help E (independent coupling is perfectly fair) but must
    # cost substantially more damage than the near-exact plan.
    assert results[0.5][1] > 1.2 * results[1e-3][1]
