"""Benchmark: sparse plan archives and the parallel Algorithm-1 design.

Two claims from the sparse-plans work are measured here:

1. **Archive shrink.** A screened design at ``n_Q = 500`` produces plans
   with ``O(n_Q)`` support; storing them CSR (plan-format v2) instead of
   as dense ``(n_Q, n_Q)`` matrices shrinks the saved archive roughly
   ``n_Q``-fold — the assertion below requires >= 10x against the
   v1-layout dense storage of the very same design.
2. **Design-time speedup.** The ``(u, k)`` cells of Algorithm 1 are
   independent, so ``design_repair(n_jobs=2)`` fans them over a process
   pool.  On a many-feature dataset (12 cells of screened solves) the
   wall-clock win must be visible despite process start-up, and the
   parallel plans must be bit-identical to the serial ones.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.plan import FeaturePlan, RepairPlan
from repro.core.repair import repair_dataset
from repro.core.serialize import save_plan, load_plan
from repro.data.simulated import GaussianMixtureSpec

N_STATES = 500


def _densified(plan: RepairPlan) -> RepairPlan:
    """The same RepairPlan with every transport stored densely (the
    v1-era layout)."""
    cells = {}
    for key, feature_plan in plan.feature_plans.items():
        cells[key] = FeaturePlan(
            grid=feature_plan.grid, marginals=feature_plan.marginals,
            barycenter=feature_plan.barycenter,
            transports={s: t.to_dense()
                        for s, t in feature_plan.transports.items()},
            diagnostics=feature_plan.diagnostics)
    return RepairPlan(feature_plans=cells, n_features=plan.n_features,
                      t=plan.t, metadata=plan.metadata)


@pytest.fixture(scope="module")
def screened_plan(paper_scale_split):
    return design_repair(paper_scale_split.research, N_STATES,
                         solver="screened")


@pytest.fixture(scope="module")
def archive_sizes(screened_plan, tmp_path_factory):
    """Paths for the same design under three storage policies.

    The >=10x claim compares the *storage formats* (dense O(n_Q^2) bytes
    vs CSR O(n_Q)) under the v2 default compression policy (none).  The
    v1 writer always deflated, and deflate compresses a mostly-zero dense
    matrix very well — so the as-shipped v1 file is also written and
    reported for transparency; against it the honest win is v2+compress
    (smaller AND no O(n_Q^2) inflate on the load hot path).
    """
    out = tmp_path_factory.mktemp("plans")
    dense = _densified(screened_plan)
    return {
        "v2_sparse": save_plan(screened_plan, out / "v2_sparse.npz"),
        "v2_sparse_deflate": save_plan(screened_plan,
                                       out / "v2_sparse_deflate.npz",
                                       compress=True),
        "v2_sparse_f32": save_plan(screened_plan,
                                   out / "v2_sparse_f32.npz",
                                   dtype="float32"),
        "v2_sparse_i64": save_plan(screened_plan,
                                   out / "v2_sparse_i64.npz",
                                   index_dtype="int64"),
        "v1_dense": save_plan(dense, out / "v1_dense.npz"),
        "v1_dense_deflate": save_plan(dense, out / "v1_dense_deflate.npz",
                                      compress=True),
    }


@pytest.fixture(scope="module")
def many_feature_split(bench_rng):
    """Six correlated features -> 12 screened design cells."""
    d = 6
    shift = np.linspace(1.0, 0.2, d)
    spec = GaussianMixtureSpec(
        means={(0, 0): -shift, (0, 1): np.zeros(d),
               (1, 0): shift, (1, 1): np.zeros(d)},
        p_u0=0.5, p_s0_given_u={0: 0.3, 1: 0.1})
    return spec.sample(3000, rng=bench_rng).split(n_research=600,
                                                  rng=bench_rng)


@pytest.fixture(scope="module")
def design_timings(many_feature_split):
    timings = {}
    plans = {}
    for n_jobs in (1, 2):
        start = time.perf_counter()
        plans[n_jobs] = design_repair(many_feature_split.research, 300,
                                      solver="screened", n_jobs=n_jobs)
        timings[n_jobs] = time.perf_counter() - start
    return timings, plans


def test_sparse_archive_at_least_10x_smaller(screened_plan, archive_sizes):
    # Sanity: the screened design really is CSR-backed end-to-end.
    densities = [t.density for fp in screened_plan.feature_plans.values()
                 for t in fp.transports.values()]
    assert all(fp.transports[s].is_sparse
               for fp in screened_plan.feature_plans.values()
               for s in fp.s_values)
    assert max(densities) < 0.05
    ratio = (archive_sizes["v1_dense"].stat().st_size
             / archive_sizes["v2_sparse"].stat().st_size)
    assert ratio >= 10.0, (
        f"v2 sparse archive only {ratio:.1f}x smaller than dense")
    # Against the deflated-dense v1 file actually shipped, sparse must
    # still win when deflated itself.
    assert (archive_sizes["v2_sparse_deflate"].stat().st_size
            < archive_sizes["v1_dense_deflate"].stat().st_size)


def test_float32_archive_smaller_and_tolerant(screened_plan,
                                              archive_sizes):
    """The quantised satellite: float32 plan data on top of CSR storage
    shrinks the archive further, and the loaded (up-converted) plans
    match the float64 originals to float32 resolution."""
    assert (archive_sizes["v2_sparse_f32"].stat().st_size
            < archive_sizes["v2_sparse"].stat().st_size)
    reloaded = load_plan(archive_sizes["v2_sparse_f32"])
    for key, feature_plan in screened_plan.feature_plans.items():
        for s in feature_plan.s_values:
            got = reloaded.feature_plans[key].transports[s]
            expected = feature_plan.transports[s]
            assert got.matrix.data.dtype == np.float64  # up-converted
            np.testing.assert_allclose(got.toarray(), expected.toarray(),
                                       rtol=1e-6, atol=1e-9)


def test_int32_indices_shrink_archive(screened_plan, archive_sizes):
    """The index-width satellite: CSR index arrays default to int32
    whenever the matrices fit (they always do at design scale), halving
    the index bytes; forcing int64 restores the old layout and a
    strictly larger file, while both load to identical plans."""
    assert (archive_sizes["v2_sparse"].stat().st_size
            < archive_sizes["v2_sparse_i64"].stat().st_size)
    with np.load(archive_sizes["v2_sparse"]) as archive:
        widths = {archive[key].dtype.name for key in archive.files
                  if key.endswith(("_indices", "_indptr"))}
    assert widths == {"int32"}
    narrow = load_plan(archive_sizes["v2_sparse"])
    wide = load_plan(archive_sizes["v2_sparse_i64"])
    for key, feature_plan in screened_plan.feature_plans.items():
        for s in feature_plan.s_values:
            np.testing.assert_array_equal(
                narrow.feature_plans[key].transports[s].toarray(),
                wide.feature_plans[key].transports[s].toarray())


def test_sparse_archive_round_trips(screened_plan, archive_sizes,
                                    paper_scale_split):
    sparse_path = archive_sizes["v2_sparse"]
    dense_path = archive_sizes["v1_dense"]
    from_sparse = load_plan(sparse_path)
    from_dense = load_plan(dense_path)
    archive = paper_scale_split.archive.take(np.arange(1000))
    a = repair_dataset(archive, from_sparse, rng=np.random.default_rng(1))
    b = repair_dataset(archive, from_dense, rng=np.random.default_rng(1))
    c = repair_dataset(archive, screened_plan,
                       rng=np.random.default_rng(1))
    np.testing.assert_allclose(a.features, c.features)
    np.testing.assert_allclose(b.features, c.features)


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel speedup needs >= 2 CPU cores")
def test_parallel_design_is_faster(design_timings):
    timings, _ = design_timings
    # Two workers over 12 independent screened cells; require a modest
    # 1.25x so the bench stays robust on loaded machines.
    assert timings[2] * 1.25 < timings[1], (
        f"n_jobs=2 took {timings[2]:.2f}s vs serial {timings[1]:.2f}s")


def test_parallel_design_matches_serial(design_timings):
    _, plans = design_timings
    for key, expected in plans[1].feature_plans.items():
        got = plans[2].feature_plans[key]
        for s in (0, 1):
            np.testing.assert_array_equal(got.transports[s].toarray(),
                                          expected.transports[s].toarray())


def test_record_results(screened_plan, archive_sizes, design_timings):
    from _results import save_result

    sizes = {name: path.stat().st_size
             for name, path in archive_sizes.items()}
    timings, plans = design_timings
    n_plans = sum(len(fp.transports)
                  for fp in screened_plan.feature_plans.values())
    nnz = sum(fp.transports[s].nnz
              for fp in screened_plan.feature_plans.values()
              for s in fp.s_values)
    lines = [
        f"Plan archives — screened design, n_Q = {N_STATES}, "
        f"{n_plans} transport plans ({nnz} stored non-zeros total)",
        f"  v1-layout dense, plain    : {sizes['v1_dense']:>12,} bytes",
        f"  v1-layout dense, deflated : "
        f"{sizes['v1_dense_deflate']:>12,} bytes  (as v1 shipped)",
        f"  v2 CSR sparse, plain      : {sizes['v2_sparse']:>12,} bytes  "
        f"(v2 default)",
        f"  v2 CSR sparse, deflated   : "
        f"{sizes['v2_sparse_deflate']:>12,} bytes  (--compress)",
        f"  v2 CSR sparse, float32    : "
        f"{sizes['v2_sparse_f32']:>12,} bytes  (--plan-dtype float32; "
        "plan data quantised, loaders up-convert, ~1e-7 round-trip)",
        f"  v2 CSR sparse, int64 idx  : "
        f"{sizes['v2_sparse_i64']:>12,} bytes  (--index-dtype int64; "
        "int32 indices are the default whenever the matrices fit)",
        f"  storage shrink (dense vs sparse, plain)    : "
        f"{sizes['v1_dense'] / sizes['v2_sparse']:.1f}x",
        f"  storage shrink (dense vs sparse, deflated) : "
        f"{sizes['v1_dense_deflate'] / sizes['v2_sparse_deflate']:.2f}x",
        f"  archive shrink from float32 plan data      : "
        f"{sizes['v2_sparse'] / sizes['v2_sparse_f32']:.2f}x",
        f"  archive shrink from int32 CSR indices      : "
        f"{sizes['v2_sparse_i64'] / sizes['v2_sparse']:.2f}x",
        "  (deflate hides the dense format's O(n_Q^2) zeros on disk but "
        "not in RAM or load time)",
        "",
        "Parallel Algorithm-1 design — 6 features x 2 groups "
        f"(12 screened cells), n_Q = 300, {os.cpu_count()} core(s)",
        f"  serial (n_jobs=1) : {timings[1]:.2f}s",
        f"  n_jobs=2          : {timings[2]:.2f}s "
        f"({timings[1] / timings[2]:.2f}x speedup, plans bit-identical)",
    ]
    save_result("sparse_plans", "\n".join(lines))
