"""Benchmark + regeneration of Figure 3 (E vs research-set size).

Prints the three series of the figure and benchmarks how the design cost
scales with ``n_R`` (it should be mild: the KDE interpolation is
``O(n_R · n_Q)`` and the plan solve is independent of ``n_R``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.data.simulated import simulate_paper_data
from repro.experiments.fig3 import Fig3Config, run_fig3


def test_fig3_regenerated(benchmark):
    """Regenerate the Figure 3 series (timed once); assert its shape."""
    config = Fig3Config(research_sizes=(25, 50, 100, 200, 300, 500, 750),
                        n_repeats=5, seed=2024)
    r = benchmark.pedantic(run_fig3, args=(config,), rounds=1,
                           iterations=1)
    text = (r.render() + "\nRepaired-archive E within 50% of final by "
            f"nR = {r.converged_by()}")
    from _results import save_result
    save_result("fig3", text)
    print()
    print(text)
    # Repaired values sit far below the unrepaired reference for all but
    # possibly the smallest research sizes.
    assert np.all(r.repaired_archive[2:] < r.unrepaired[2:] / 2.0)
    # Convergence: by nR = 500 (10% of nA) the archive E is within 50% of
    # the final sweep value — the paper's headline claim.
    assert r.converged_by(rtol=0.5) <= 500
    # Off-sample repair remains harder than on-sample at convergence.
    assert r.repaired_archive[-1] > r.repaired_research[-1]


@pytest.mark.parametrize("n_research", [50, 200, 750])
def test_design_scaling_in_research_size(benchmark, n_research):
    split = simulate_paper_data(n_research=n_research, n_archive=100,
                                rng=7)
    benchmark(design_repair, split.research, 50)
