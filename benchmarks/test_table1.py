"""Benchmark + regeneration of Table I (simulated repair comparison).

Prints the full Monte-Carlo table (the paper's Table I layout) once, and
benchmarks the two pieces whose cost the paper discusses: the Algorithm-1
design at ``n_Q = 50`` and the Algorithm-2 off-sample repair of the 5,000
archival points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.geometric import GeometricRepairer
from repro.core.repair import DistributionalRepairer, repair_dataset
from repro.experiments.table1 import Table1Config, run_table1


def test_table1_regenerated(benchmark):
    """Regenerate Table I (timed once) and assert the paper's orderings."""
    r = benchmark.pedantic(
        run_table1, args=(Table1Config(n_repeats=10, seed=2024),),
        rounds=1, iterations=1)
    from _results import save_result
    save_result("table1", r.render())
    print()
    print(r.render())
    # Repair quenches dependence by at least an order of magnitude on the
    # research data, and strongly on the archive.
    assert np.all(r.distributional_research.mean
                  < r.unrepaired_research.mean / 10.0)
    assert np.all(r.distributional_archive.mean
                  < r.unrepaired_archive.mean / 3.0)
    # The on-sample geometric repair is the tightest, as in the paper.
    assert np.all(r.geometric_research.mean
                  <= r.distributional_research.mean * 1.2)
    # Off-sample repair is the harder regime.
    assert np.all(r.distributional_archive.mean
                  > r.distributional_research.mean)


def test_design_cost_nq50(benchmark, paper_scale_split):
    """Algorithm 1 at the paper's settings (nR=500, nQ=50, d=2)."""
    benchmark(design_repair, paper_scale_split.research, 50)


def test_offsample_repair_cost(benchmark, paper_scale_split):
    """Algorithm 2 over the full 5,000-point archive."""
    plan = design_repair(paper_scale_split.research, 50)
    rng = np.random.default_rng(0)
    benchmark(repair_dataset, paper_scale_split.archive, plan, rng=rng)


def test_geometric_repair_cost(benchmark, paper_scale_split):
    """The on-sample geometric baseline on the research set."""
    repairer = GeometricRepairer()
    benchmark(repairer.fit_transform, paper_scale_split.research)


def test_end_to_end_trial_cost(benchmark, paper_scale_split):
    """One full fit + on/off-sample repair cycle."""
    def trial():
        repairer = DistributionalRepairer(n_states=50, rng=1)
        repairer.fit(paper_scale_split.research)
        repairer.transform(paper_scale_split.research)
        repairer.transform(paper_scale_split.archive)

    benchmark(trial)
