"""Solver scaling in the grid resolution (the complexity table of §IV-A1).

The paper's computational argument rests on the plan support being the
interpolated grid ``Q`` (size ``n_Q``) rather than the data (size ``n``):
exact unregularised OT scales cubically in its support, Sinkhorn
quadratically, and the 1-D monotone solver linearly.  These benches make
the scaling measurable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ot import OTProblem, solve
from repro.ot.cost import squared_euclidean_cost
from repro.ot.network_simplex import transport_simplex
from repro.ot.onedim import solve_1d
from repro.ot.sinkhorn import sinkhorn


def _problem(n_q: int):
    nodes = np.linspace(-3.0, 3.0, n_q)
    mu = np.exp(-0.5 * (nodes + 1.0) ** 2)
    nu = np.exp(-0.5 * (nodes - 1.0) ** 2)
    return nodes, mu / mu.sum(), nu / nu.sum()


@pytest.mark.parametrize("n_q", [25, 50, 100, 250])
def test_exact_1d_scaling(benchmark, n_q):
    nodes, mu, nu = _problem(n_q)
    benchmark(solve_1d, nodes, mu, nodes, nu)


@pytest.mark.parametrize("n_q", [25, 50, 100])
def test_sinkhorn_scaling(benchmark, n_q):
    nodes, mu, nu = _problem(n_q)
    cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                  nodes.reshape(-1, 1))
    benchmark.pedantic(sinkhorn, args=(cost, mu, nu),
                       kwargs={"epsilon": 1e-2, "tol": 1e-8,
                               "raise_on_failure": False},
                       rounds=3, iterations=1)


@pytest.mark.parametrize("n_q", [15, 30, 60])
def test_simplex_scaling(benchmark, n_q):
    nodes, mu, nu = _problem(n_q)
    cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                  nodes.reshape(-1, 1))
    benchmark.pedantic(transport_simplex, args=(cost, mu, nu), rounds=3,
                       iterations=1)


@pytest.mark.parametrize("n_q", [100, 250, 500])
def test_screened_hybrid_scaling(benchmark, n_q):
    """The sparse hybrid stays near-linear where the dense exact solvers
    blow up cubically; see test_screened_hybrid.py for the head-to-head."""
    nodes, mu, nu = _problem(n_q)
    problem = OTProblem(source_weights=mu, target_weights=nu,
                        source_support=nodes, target_support=nodes)
    benchmark.pedantic(solve, args=(problem,),
                       kwargs={"method": "screened"}, rounds=3,
                       iterations=1)
