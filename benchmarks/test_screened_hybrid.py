"""Benchmark: the ``"screened"`` hybrid vs the dense exact solver.

The screened solver runs a cheap entropic (Sinkhorn) solve, keeps the
top-``k`` plan entries per row and column as a sparse support, and
solves the exact LP restricted to that support.  On the paper-scale
design problems lifted to an ``n_Q = 500`` grid this recovers the dense
LP's optimal value to solver precision while cutting wall time by well
over an order of magnitude — the library's first measurably-faster
large-``n_Q`` path.

The second half checks end-to-end repair quality: a
``DistributionalRepairer(solver="screened")`` at 500 states must
reproduce the Table-1-level ``E`` reduction of the exact monotone
design within tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.repair import DistributionalRepairer
from repro.density.grid import InterpolationGrid
from repro.density.kde import interpolate_pmf
from repro.metrics.fairness import conditional_dependence_energy
from repro.ot import OTProblem, solve
from repro.ot.barycenter import barycenter_1d

N_STATES = 500


@pytest.fixture(scope="module")
def design_cell_problem(paper_scale_split):
    """One real (u=0, k=0, s=0) design problem on a 500-state grid."""
    group = paper_scale_split.research.group(0)
    samples = {s: group.features[group.s == s, 0] for s in (0, 1)}
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, N_STATES)
    marginals = {s: interpolate_pmf(values, grid.nodes)
                 for s, values in samples.items()}
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=0.5)
    return OTProblem(source_weights=marginals[0], target_weights=target,
                     source_support=grid.nodes, target_support=grid.nodes)


@pytest.fixture(scope="module")
def solver_comparison(design_cell_problem):
    screened = solve(design_cell_problem, method="screened")
    dense = solve(design_cell_problem, method="lp")
    return screened, dense


@pytest.fixture(scope="module")
def repair_comparison(paper_scale_split):
    split = paper_scale_split
    energies = {}
    fit_seconds = {}
    for solver in ("exact", "screened"):
        repairer = DistributionalRepairer(n_states=N_STATES, solver=solver,
                                          rng=0)
        repairer.fit(split.research)
        fit_seconds[solver] = repairer.plan.metadata["ot_wall_time"]
        repaired = repairer.transform(split.archive, rng=1)
        energies[solver] = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
    before = conditional_dependence_energy(
        split.archive.features, split.archive.s, split.archive.u).total
    return before, energies, fit_seconds


def test_screened_matches_dense_exact_value(solver_comparison):
    screened, dense = solver_comparison
    assert screened.value == pytest.approx(dense.value, rel=1e-6)
    assert screened.marginal_residual <= 1e-8
    assert dense.marginal_residual <= 1e-8
    assert screened.converged and dense.converged
    # The whole point of screening: a tiny fraction of the dense support.
    assert screened.extras["support_density"] < 0.15


def test_screened_beats_dense_exact_wall_time(solver_comparison):
    screened, dense = solver_comparison
    # Typical margin is 50-100x; assert a conservative 3x so the bench
    # stays robust on slow/loaded machines.
    assert screened.wall_time * 3.0 < dense.wall_time, (
        f"screened {screened.wall_time:.2f}s vs dense {dense.wall_time:.2f}s")


def test_screened_repair_reaches_table1_reduction(repair_comparison):
    before, energies, _ = repair_comparison
    # Table-1-level behaviour: the archival repair must collapse E by an
    # order of magnitude, and the screened design must match the exact
    # monotone design's quality within 10%.
    assert energies["screened"] < before / 5.0
    assert energies["screened"] == pytest.approx(energies["exact"],
                                                 rel=0.10)


def test_record_results(solver_comparison, repair_comparison):
    from _results import save_result

    screened, dense = solver_comparison
    before, energies, fit_seconds = repair_comparison
    speedup = dense.wall_time / max(screened.wall_time, 1e-12)
    lines = [
        f"Screened hybrid vs dense exact LP — one (u=0, k=0, s=0) design "
        f"problem, n_Q = {N_STATES}",
        f"  dense lp : value {dense.value:.8f}  residual "
        f"{dense.marginal_residual:.2e}  wall {dense.wall_time:.2f}s",
        f"  screened : value {screened.value:.8f}  residual "
        f"{screened.marginal_residual:.2e}  wall {screened.wall_time:.2f}s"
        f"  (k={screened.extras['k']}, support density "
        f"{screened.extras['support_density']:.4f})",
        f"  speedup  : {speedup:.1f}x",
        "",
        f"End-to-end archival repair (nR=500, nA=5000, n_Q={N_STATES})",
        f"  E before           : {before:.5f}",
        f"  E after (exact)    : {energies['exact']:.5f}  "
        f"(design OT time {fit_seconds['exact']:.2f}s)",
        f"  E after (screened) : {energies['screened']:.5f}  "
        f"(design OT time {fit_seconds['screened']:.2f}s)",
    ]
    save_result("screened_hybrid", "\n".join(lines))
