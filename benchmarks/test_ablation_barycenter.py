"""Ablation: barycentre construction (DESIGN.md §6.3).

Compares the closed-form quantile-averaged 1-D barycentre (the library's
default inside Algorithm 1) against the entropic fixed-support barycentre
(iterative Bregman projections) in both cost and the W2 geometry of the
resulting target.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ot.barycenter import barycenter_1d, sinkhorn_barycenter
from repro.ot.cost import squared_euclidean_cost
from repro.ot.onedim import wasserstein_1d


@pytest.fixture(scope="module")
def marginals_on_grid():
    nodes = np.linspace(-4.0, 4.0, 60)
    mu = np.exp(-0.5 * (nodes + 1.5) ** 2)
    nu = np.exp(-0.5 * ((nodes - 1.5) / 0.8) ** 2)
    return nodes, mu / mu.sum(), nu / nu.sum()


def test_quantile_barycenter_cost(benchmark, marginals_on_grid):
    nodes, mu, nu = marginals_on_grid
    benchmark(barycenter_1d, nodes, mu, nodes, nu, nodes)


def test_bregman_barycenter_cost(benchmark, marginals_on_grid):
    nodes, mu, nu = marginals_on_grid
    cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                  nodes.reshape(-1, 1))
    benchmark.pedantic(sinkhorn_barycenter, args=(cost, [mu, nu]),
                       kwargs={"epsilon": 0.01}, rounds=3, iterations=1)


def test_constructions_agree_geometrically(benchmark, marginals_on_grid):
    """Both constructions should produce near-equidistant targets."""
    nodes, mu, nu = marginals_on_grid
    cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                  nodes.reshape(-1, 1))

    def build_both():
        return (barycenter_1d(nodes, mu, nodes, nu, nodes),
                sinkhorn_barycenter(cost, [mu, nu], epsilon=0.01))

    quantile_bary, bregman_bary = benchmark.pedantic(build_both, rounds=1,
                                                     iterations=1)

    gap = wasserstein_1d(nodes, quantile_bary, nodes, bregman_bary, p=2)
    spread = wasserstein_1d(nodes, mu, nodes, nu, p=2)
    print(f"\nbarycentre gap W2={gap:.4f} vs marginal spread "
          f"W2={spread:.4f}")
    # The two targets are close relative to the distance they bridge.
    assert gap < 0.25 * spread

    d0 = wasserstein_1d(nodes, mu, nodes, quantile_bary, p=2)
    d1 = wasserstein_1d(nodes, nu, nodes, quantile_bary, p=2)
    assert d0 == pytest.approx(d1, rel=0.2, abs=0.05)
