"""Benchmark: the ``repro serve`` tier (latency, throughput, batching).

Three claims from the serving work are measured here:

1. **Serving latency/throughput.** A real ``repro serve`` process (the
   CLI entry, forked workers, HTTP in between) is booted at two worker
   counts and driven by a threaded load generator; per-request p50/p99
   latency and sustained rows/sec are recorded for both.  A smoke
   variant of the same loop (in-process server, 1k requests) asserts a
   p99 bound and zero errors — that one is what CI's serve job runs.
2. **Micro-batching.** Merging concurrent requests into one vectorised
   dispatch per distinct ``(u, s, k)`` cell must measurably beat the
   one-request-per-solve baseline on the same work (measured at the
   service layer, where the win lives — HTTP framing would swamp it).
3. **The pre-validated fast path.** ``prepare_feature_repair`` hoists
   per-call validation and CDF setup out of the serving loop;
   re-applying a prepared cell must beat calling
   ``repair_feature_values`` afresh each time.

Results land in ``benchmarks/results/serve.txt`` and
``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.repair import (prepare_feature_repair, repair_dataset,
                               repair_feature_values)
from repro.core.serialize import save_plan
from repro.data.dataset import FairnessDataset
from repro.serve import BackgroundServer, RepairService
from repro.serve.client import get_json, post_json, repair_payload
from repro.serve.service import RepairRequest

RESULTS_DIR = Path(__file__).parent / "results"

N_STATES = 120
WORKER_COUNTS = (1, 2)
N_REQUESTS = 400          # per worker count, via the live HTTP path
N_CLIENTS = 8
ROWS_PER_REQUEST = 50
SMOKE_REQUESTS = 1000
SMOKE_P99_MS = 250.0      # generous: CI machines are noisy


@pytest.fixture(scope="module")
def designed(paper_scale_split):
    plan = design_repair(paper_scale_split.research, N_STATES,
                         solver="screened")
    return plan, paper_scale_split.archive


@pytest.fixture(scope="module")
def plan_archive(designed, tmp_path_factory):
    plan, _ = designed
    out = tmp_path_factory.mktemp("serve")
    return save_plan(plan, out / "plan.npz")


def _request_payloads(archive, n_requests, rng):
    """Seeded payloads drawing ``ROWS_PER_REQUEST``-row slices."""
    payloads = []
    for i in range(n_requests):
        rows = rng.integers(0, len(archive), size=ROWS_PER_REQUEST)
        subset = FairnessDataset(archive.features[rows], archive.s[rows],
                                 archive.u[rows])
        payloads.append(repair_payload(subset, seed=i))
    return payloads


def _drive(url, payloads, n_clients):
    """Fire ``payloads`` at ``url`` from ``n_clients`` threads.

    Returns (per-request latencies in seconds, wall seconds, errors).
    """
    latencies = []
    errors = []
    lock = threading.Lock()
    cursor = iter(range(len(payloads)))

    def client():
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            start = time.perf_counter()
            try:
                post_json(url + "/repair", payloads[i])
            except Exception as exc:
                with lock:
                    errors.append(exc)
                continue
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    wall_start = time.perf_counter()
    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, time.perf_counter() - wall_start, errors


def _percentile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


@pytest.fixture(scope="module")
def http_runs(plan_archive, designed):
    """Boot the real CLI server at each worker count and load-test it."""
    _, archive = designed
    rng = np.random.default_rng(2024)
    payloads = _request_payloads(archive, N_REQUESTS, rng)
    runs = {}
    for workers in WORKER_COUNTS:
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--plan",
             str(plan_archive), "--workers", str(workers), "--port",
             str(port)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        url = f"http://127.0.0.1:{port}"
        try:
            deadline = time.time() + 30
            while True:
                try:
                    get_json(url + "/healthz", timeout=1.0)
                    break
                except Exception:
                    if process.poll() is not None:
                        raise RuntimeError(
                            "server died during boot:\n"
                            + process.stdout.read())
                    if time.time() > deadline:
                        raise RuntimeError("server never became healthy")
                    time.sleep(0.1)
            _drive(url, payloads[:40], N_CLIENTS)  # warm caches/workers
            latencies, wall, errors = _drive(url, payloads, N_CLIENTS)
            runs[workers] = {
                "latencies": latencies, "wall_s": wall,
                "errors": len(errors),
                "rows_per_s": len(latencies) * ROWS_PER_REQUEST / wall,
            }
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
    return runs


@pytest.fixture(scope="module")
def batching_timings(designed):
    """The same request set, merged vs one-request-per-solve."""
    plan, archive = designed
    rng = np.random.default_rng(7)
    requests = []
    for i in range(64):
        rows = rng.integers(0, len(archive), size=ROWS_PER_REQUEST)
        requests.append(RepairRequest(
            FairnessDataset(archive.features[rows], archive.s[rows],
                            archive.u[rows]),
            np.random.default_rng(i)))

    def run(grouped: bool) -> float:
        service = RepairService(plan)
        service.repair_many(requests[:4])  # warm the cell cache
        start = time.perf_counter()
        for _ in range(5):
            if grouped:
                service.repair_many(requests)
            else:
                for request in requests:
                    service.repair_many([request])
        return (time.perf_counter() - start) / 5

    return {"batched_s": run(True), "sequential_s": run(False),
            "n_requests": len(requests)}


@pytest.fixture(scope="module")
def prepared_timings(designed):
    """``repair_feature_values`` vs a prepared kernel, single-row calls.

    The slow path already caches its row-CDF tables on the FeaturePlan,
    so on large vectors the two are nearly tied; the serving tier's
    pain point is *small* requests, where per-call validation, mode
    checks and cache lookups dominate.  Measured at one row per call —
    the single-client online-repair worst case.
    """
    plan, archive = designed
    (u, k), feature_plan = next(iter(plan.feature_plans.items()))
    chunks = [archive.features[i:i + 1, k] for i in range(2000)]
    # Warm the FeaturePlan's own CDF cache so the comparison is purely
    # per-call overhead, not first-touch setup.
    repair_feature_values(chunks[0], feature_plan, 0,
                          rng=np.random.default_rng(0))
    prepared = prepare_feature_repair(feature_plan, 0)

    def median_of(run, reps=7):
        timings = []
        for _ in range(reps):
            generator = np.random.default_rng(1)
            start = time.perf_counter()
            run(generator)
            timings.append(time.perf_counter() - start)
        return sorted(timings)[reps // 2]

    slow = median_of(lambda generator: [
        repair_feature_values(chunk, feature_plan, 0, rng=generator)
        for chunk in chunks])
    fast = median_of(lambda generator: [
        prepared(chunk, generator) for chunk in chunks])
    return {"slow_s": slow, "fast_s": fast, "n_chunks": len(chunks)}


def test_smoke_1k_requests_p99_bounded(designed):
    """CI's serve job: in-process server, 1k requests, p99 bound, zero
    errors, every response bit-identical to the offline repair."""
    plan, archive = designed
    rng = np.random.default_rng(11)
    payloads = _request_payloads(archive, SMOKE_REQUESTS, rng)
    service = RepairService(plan)
    with BackgroundServer(service, max_batch=32, max_wait=0.002) as bg:
        _drive(bg.url, payloads[:50], N_CLIENTS)  # warm-up
        latencies, _, errors = _drive(bg.url, payloads, N_CLIENTS)
        # Spot-check bit-identity through the full HTTP + batching path.
        probe = payloads[123]
        response = post_json(bg.url + "/repair", probe)
        reference = repair_dataset(
            FairnessDataset(np.asarray(probe["features"]),
                            np.asarray(probe["s"]),
                            np.asarray(probe["u"])),
            plan, rng=np.random.default_rng(probe["seed"]))
        stats = get_json(bg.url + "/stats")
    assert not errors
    assert len(latencies) == SMOKE_REQUESTS
    np.testing.assert_array_equal(np.asarray(response["features"]),
                                  reference.features)
    p99_ms = _percentile(latencies, 0.99) * 1e3
    assert p99_ms < SMOKE_P99_MS, f"p99 {p99_ms:.1f}ms over budget"
    assert stats["service"]["errors"] == 0


def test_http_runs_complete_without_errors(http_runs):
    for workers, run in http_runs.items():
        assert run["errors"] == 0, f"{workers}-worker run had errors"
        assert len(run["latencies"]) == N_REQUESTS


def test_microbatching_beats_sequential_dispatch(batching_timings):
    speedup = (batching_timings["sequential_s"]
               / batching_timings["batched_s"])
    assert speedup > 1.2, (
        f"merged dispatch only {speedup:.2f}x the per-request loop")


def test_prepared_path_beats_revalidating(prepared_timings):
    # The slow path already caches its CDF tables, so what's hoisted is
    # per-call validation + lookup overhead (~1.2x at one row per call,
    # measured stable); require a margin below that so loaded CI boxes
    # don't flake while a regression to parity still fails.
    speedup = prepared_timings["slow_s"] / prepared_timings["fast_s"]
    assert speedup > 1.08, (
        f"prepared kernel only {speedup:.2f}x repair_feature_values")


def test_record_results(http_runs, batching_timings, prepared_timings):
    from _results import save_result

    lines = [
        f"repro serve — screened plan, n_Q = {N_STATES}, "
        f"{ROWS_PER_REQUEST} rows/request, {N_CLIENTS} concurrent "
        f"clients, {N_REQUESTS} requests per run, "
        f"{os.cpu_count()} core(s)",
    ]
    payload_runs = {}
    for workers, run in sorted(http_runs.items()):
        p50 = _percentile(run["latencies"], 0.50) * 1e3
        p99 = _percentile(run["latencies"], 0.99) * 1e3
        lines.append(
            f"  workers={workers}: p50 {p50:7.2f}ms   p99 {p99:7.2f}ms   "
            f"{run['rows_per_s']:,.0f} rows/s   errors {run['errors']}")
    if (os.cpu_count() or 1) < max(WORKER_COUNTS):
        lines.append(
            "  (worker scaling needs as many cores as workers; on this "
            "box extra workers only add fork + page-cache sharing, not "
            "throughput)")
        payload_runs[str(workers)] = {
            "p50_ms": p50, "p99_ms": p99,
            "rows_per_s": run["rows_per_s"],
            "errors": run["errors"], "n_requests": N_REQUESTS,
        }
    batch_speedup = (batching_timings["sequential_s"]
                     / batching_timings["batched_s"])
    prepared_speedup = (prepared_timings["slow_s"]
                        / prepared_timings["fast_s"])
    lines += [
        "",
        f"Micro-batching — {batching_timings['n_requests']} requests of "
        f"{ROWS_PER_REQUEST} rows, service layer",
        f"  one-request-per-solve : {batching_timings['sequential_s']*1e3:8.2f}ms",
        f"  merged dispatches     : {batching_timings['batched_s']*1e3:8.2f}ms"
        f"  ({batch_speedup:.2f}x; responses bit-identical)",
        "",
        f"Pre-validated repair kernel — {prepared_timings['n_chunks']} "
        "single-row calls on one warm (u, s, k) cell (median of 7)",
        f"  repair_feature_values each call : "
        f"{prepared_timings['slow_s']*1e3:8.2f}ms",
        f"  prepared kernel re-applied      : "
        f"{prepared_timings['fast_s']*1e3:8.2f}ms  "
        f"({prepared_speedup:.2f}x)",
        "",
        "  All serve responses are bit-identical to the offline",
        "  repair_dataset path (seeded requests; JSON floats round-trip",
        "  via repr).  /stats on each worker reports its own cache,",
        "  batcher and latency accounting.",
    ]
    save_result("serve", "\n".join(lines))
    payload = {
        "n_states": N_STATES,
        "rows_per_request": ROWS_PER_REQUEST,
        "n_clients": N_CLIENTS,
        "runs": payload_runs,
        "microbatch_speedup": batch_speedup,
        "prepared_speedup": prepared_speedup,
    }
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
