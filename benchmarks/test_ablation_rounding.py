"""Ablation: Algorithm-2 randomisation (DESIGN.md §6.1).

The paper argues for two sources of randomness — the Bernoulli trial on
the within-cell offset τ and the multinomial draw from the selected plan
row — to avoid the deterministic mass splitting of the geometric repair.
This ablation compares the four combinations of rounding × output mode on
repair quality and cost.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.repair import DistributionalRepairer
from repro.metrics.fairness import conditional_dependence_energy


MODES = list(itertools.product(("stochastic", "nearest"),
                               ("sample", "barycentric")))


def _mode_energies(paper_scale_split):
    energies = {}
    for rounding, output in MODES:
        repairer = DistributionalRepairer(n_states=50, rounding=rounding,
                                          output=output, rng=1)
        repairer.fit(paper_scale_split.research)
        repaired = repairer.transform(paper_scale_split.archive, rng=2)
        energies[(rounding, output)] = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
    return energies


def test_all_modes_repair_effectively(benchmark, paper_scale_split):
    energies = benchmark.pedantic(_mode_energies,
                                  args=(paper_scale_split,), rounds=1,
                                  iterations=1)
    print(f"\nrounding/output ablation E: {energies}")
    before = conditional_dependence_energy(
        paper_scale_split.archive.features, paper_scale_split.archive.s,
        paper_scale_split.archive.u).total
    for mode, energy in energies.items():
        assert energy < before / 2.0, f"mode {mode} failed to repair"
    # The paper's stochastic/sample combination should not be meaningfully
    # worse than any deterministic variant.
    paper_energy = energies[("stochastic", "sample")]
    best = min(energies.values())
    assert paper_energy < 2.0 * best + 0.05


@pytest.mark.parametrize("rounding,output", MODES)
def test_mode_cost(benchmark, paper_scale_split, rounding, output):
    repairer = DistributionalRepairer(n_states=50, rounding=rounding,
                                      output=output, rng=1)
    repairer.fit(paper_scale_split.research)
    benchmark(repairer.transform, paper_scale_split.archive, rng=2)
