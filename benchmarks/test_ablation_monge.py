"""Ablation: stochastic Kantorovich repair vs deterministic Monge maps.

Section VI of the paper anticipates that the ``n_Q → ∞`` Monge-map limit
"could improve the individual fairness of the approach".  This bench makes
that concrete on the paper's simulated setting:

* *group fairness* (the ``E`` metric) — both repairs perform comparably;
* *individual fairness* — the Monge repair maps identical inputs to
  identical outputs (zero within-clone spread), whereas Algorithm 2's two
  randomisation stages split them;
* *cost* — the Monge maps are tabulated functions, cheaper to apply.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.monge import MongeRepairer
from repro.core.repair import DistributionalRepairer
from repro.data.dataset import FairnessDataset
from repro.metrics.fairness import conditional_dependence_energy


def _clone_spread(repairer_transform, template: FairnessDataset,
                  n_clones: int = 200) -> float:
    """Mean spread of repaired values across identical inputs."""
    probe = np.tile(template.features[:1], (n_clones, 1))
    clones = FairnessDataset(probe,
                             np.full(n_clones, int(template.s[0])),
                             np.full(n_clones, int(template.u[0])))
    repaired = repairer_transform(clones)
    return float(repaired.features.std(axis=0).mean())


def test_group_vs_individual_fairness(benchmark, paper_scale_split):
    def contrast():
        monge = MongeRepairer().fit(paper_scale_split.research)
        stochastic = DistributionalRepairer(n_states=50, rng=1).fit(
            paper_scale_split.research)

        results = {}
        for name, transform in (
                ("monge", monge.transform),
                ("kantorovich", lambda d: stochastic.transform(d, rng=2))):
            repaired = transform(paper_scale_split.archive)
            results[name] = {
                "E": conditional_dependence_energy(
                    repaired.features, repaired.s, repaired.u).total,
                "clone_spread": _clone_spread(
                    transform, paper_scale_split.archive),
            }
        return results

    results = benchmark.pedantic(contrast, rounds=1, iterations=1)
    print("\nmonge ablation:")
    for name, stats in results.items():
        print(f"  {name:12s} E={stats['E']:.4f} "
              f"clone_spread={stats['clone_spread']:.4f}")
    # Group fairness comparable (same order of magnitude).
    assert results["monge"]["E"] < 5.0 * results["kantorovich"]["E"] + 0.05
    # Individual fairness: Monge is exactly deterministic on clones,
    # the stochastic repair demonstrably is not.
    assert results["monge"]["clone_spread"] == pytest.approx(0.0,
                                                             abs=1e-12)
    assert results["kantorovich"]["clone_spread"] > 0.05


def test_monge_fit_cost(benchmark, paper_scale_split):
    benchmark(lambda: MongeRepairer().fit(paper_scale_split.research))


def test_monge_apply_cost(benchmark, paper_scale_split):
    repairer = MongeRepairer().fit(paper_scale_split.research)
    benchmark(repairer.transform, paper_scale_split.archive)
