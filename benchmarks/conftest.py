"""Shared fixtures for the benchmark harness.

Each ``test_table*.py`` / ``test_fig*.py`` file regenerates one table or
figure of the paper: a module-scoped fixture runs the experiment driver
once and prints the same rows/series the paper reports, while the
``benchmark``-marked tests time the constituent operations at paper-scale
parameters.

Run with::

    pytest benchmarks/ --benchmark-only

Everything under ``benchmarks/`` carries the ``slow`` marker so CI can
deselect it with ``-m "not slow"`` while a plain local ``pytest`` run
still executes the full harness.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest


def pytest_collection_modifyitems(items):
    # This hook sees the whole session's items; only mark ours.
    bench_dir = str(Path(__file__).parent)
    for item in items:
        if str(item.fspath).startswith(bench_dir):
            item.add_marker(pytest.mark.slow)

from repro.data.adult import synthesize_adult
from repro.data.simulated import simulate_paper_data



@pytest.fixture(scope="session")
def paper_scale_split():
    """The paper's simulated sizes: nR = 500, nA = 5000."""
    return simulate_paper_data(n_research=500, n_archive=5000, rng=2024)


@pytest.fixture(scope="session")
def adult_scale_split():
    """The paper's Adult sizes: nR = 10,000 of 45,222 total."""
    data = synthesize_adult(45_222, rng=2024)
    return data.split(n_research=10_000, rng=2024)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(99)
