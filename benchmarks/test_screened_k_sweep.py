"""Benchmark: tuning the screened solver's default top-``k``.

The screened hybrid's only accuracy knob is ``k``, the number of plan
entries kept per row/column after the entropic screen.  This sweep
measures its effect in the two regimes the solver actually sees, and
the committed table in ``benchmarks/results/screened_k_sweep.txt`` is
the evidence behind ``repro.ot.default_screen_k``:

* **The library workload** (metric 1-D design cells — the repair
  pipeline's problems): the screen's support always unions the NW
  staircase, which *is* the optimal basis for convex metric costs on
  sorted supports, so the error sits at solver precision for every
  ``k`` while the support density grows linearly with it.  Accuracy
  argues for no particular ``k``; support economy argues for a small
  one.
* **The adversarial regime** (a scrambled target grid, where the
  staircase is actively misleading and the annealed screen does all
  the work): the error falls steeply with ``k`` — catastrophic at
  ``k = 3``, sub-0.1% by the default, diminishing returns beyond it
  while the density keeps growing linearly.

``default_screen_k(n, m) = max(5, ceil(log2(max(n, m))) + 8)`` is the
elbow of the second curve: large enough to clear the steep region at
every measured size (with the log2 term tracking how the required
``k`` grows with the grid), small enough to keep the restricted
support in the few-percent density range that makes the hybrid fast.
``tests/ot/test_solve.py::TestDefaultScreenK`` pins the same elbow at
one small size on every tier-1 run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.density.grid import InterpolationGrid
from repro.density.kde import interpolate_pmf
from repro.ot import OTProblem, default_screen_k, solve
from repro.ot.barycenter import barycenter_1d

from _results import save_result

GRID_SIZES = (300, 600)
K_SWEEP = (3, 5, 8, 12, 17, 24, 32, 48)
#: HiGHS's own accuracy on the dense oracle: restricted solves may land
#: this far on *either* side of it.
ORACLE_TOL = 5e-8


def design_cell_problem(split, n_states: int) -> OTProblem:
    """The (u=0, k=0, s=0) design problem on an ``n_states`` grid."""
    group = split.research.group(0)
    samples = {s: group.features[group.s == s, 0] for s in (0, 1)}
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, n_states)
    marginals = {s: interpolate_pmf(values, grid.nodes)
                 for s, values in samples.items()}
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=0.5)
    return OTProblem(source_weights=marginals[0], target_weights=target,
                     source_support=grid.nodes, target_support=grid.nodes)


def scrambled_grid_problem(n_states: int) -> OTProblem:
    """Metric cost on a *permuted* target grid: the index-space
    staircase is far from optimal, so the screen earns its keep."""
    rng = np.random.default_rng(7)
    xs = np.sort(rng.normal(size=n_states))
    ys = rng.permutation(np.sort(rng.normal(size=n_states)) + 0.4)
    return OTProblem(
        source_weights=rng.dirichlet(np.ones(n_states) * 2.0),
        target_weights=rng.dirichlet(np.ones(n_states) * 2.0),
        source_support=xs, target_support=ys)


def _sweep_rows(problem, oracle_value, **screen_opts):
    rows = []
    for k in K_SWEEP:
        result = solve(problem, method="screened", k=k, **screen_opts)
        rel_err = (result.value - oracle_value) / oracle_value
        rows.append((k, rel_err, result.extras["support_density"]))
    return rows


@pytest.fixture(scope="module")
def sweep(paper_scale_split):
    """``regime -> n_Q -> (oracle_value, rows)`` for both regimes."""
    table = {"workload": {}, "adversarial": {}}
    for n_states in GRID_SIZES:
        workload = design_cell_problem(paper_scale_split, n_states)
        oracle = solve(workload, method="lp")
        table["workload"][n_states] = (
            oracle.value, _sweep_rows(workload, oracle.value))
        adversarial = scrambled_grid_problem(n_states)
        oracle = solve(adversarial, method="lp")
        # The adversarial probe needs the sharp annealed screen: at the
        # workload default epsilon the entropic plan is too blurred for
        # *any* k to rank entries usefully.
        table["adversarial"][n_states] = (
            oracle.value, _sweep_rows(adversarial, oracle.value,
                                      epsilon=1e-3, epsilon_scaling=True))
    return table


def test_workload_regime_is_flat_at_solver_precision(sweep):
    """Staircase certification: every k is exact on the design cells,
    so the default's only job there is support economy."""
    for n_states, (_, rows) in sweep["workload"].items():
        default = default_screen_k(n_states, n_states)
        for k, rel_err, density in rows:
            assert abs(rel_err) <= ORACLE_TOL, (
                f"workload n_Q={n_states}, k={k}: {rel_err:.3e}")
        density_at_default = next(
            density for k, _, density in rows if k >= default)
        assert density_at_default < 0.12


def test_adversarial_regime_has_an_elbow_at_the_default(sweep):
    """Below the default the error is off a cliff; at the default it is
    sub-0.1%; beyond it the returns diminish while density grows."""
    for n_states, (_, rows) in sweep["adversarial"].items():
        default = default_screen_k(n_states, n_states)
        err = {k: rel_err for k, rel_err, _ in rows}
        assert err[3] > 1e-1, f"n_Q={n_states}: tiny k should be bad"
        at_default = min(rel_err for k, rel_err, _ in rows
                         if k >= default)
        assert at_default < 1e-3, (
            f"n_Q={n_states}: default k off the elbow ({at_default:.3e})")
        # The restricted solve never meaningfully beats the oracle: the
        # errors are one-sided up to HiGHS's own accuracy.
        assert all(rel_err >= -ORACLE_TOL for _, rel_err, _ in rows)
        # Diminishing returns: doubling the default's support buys less
        # than one further order of magnitude.
        beyond = min(rel_err for k, rel_err, _ in rows if k >= 2 * default)
        assert beyond <= at_default + ORACLE_TOL


def test_record_results(sweep):
    lines = ["screened top-k sweep: relative objective error vs dense LP",
             f"k sweep: {K_SWEEP}",
             "regimes: workload = metric design cell (staircase-certified),",
             "         adversarial = permuted target grid, annealed screen",
             ""]
    for regime, by_size in sweep.items():
        for n_states, (oracle_value, rows) in by_size.items():
            default = default_screen_k(n_states, n_states)
            lines.append(f"{regime}: n_Q = {n_states}  (LP oracle "
                         f"{oracle_value:.9e}, default k = {default})")
            lines.append("  k   rel_error    density")
            for k, rel_err, density in rows:
                marker = "  <- default regime" if k >= default else ""
                lines.append(f"  {k:3d}  {rel_err:10.3e}  {density:8.4f}"
                             f"{marker}")
            lines.append("")
    save_result("screened_k_sweep", "\n".join(lines))


def test_default_k_grows_logarithmically():
    """The formula the sweep supports: log2 growth with a +8 margin."""
    assert default_screen_k(300, 300) == 17
    assert default_screen_k(1200, 1200) == 19
    assert default_screen_k(100_000, 100_000) == 25
    assert default_screen_k(2, 2) == 9
