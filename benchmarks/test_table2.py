"""Benchmark + regeneration of Table II (Adult income repairs).

Prints the Table II layout (with both marginal estimators as explicit
rows) and benchmarks the paper-scale operations: design at ``n_Q = 250``
and the repair of the 35,222-point archive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.repair import repair_dataset
from repro.experiments.table2 import Table2Config, run_table2


def test_table2_regenerated(benchmark):
    """Regenerate Table II (timed once) and assert the paper's claims."""
    r = benchmark.pedantic(run_table2, args=(Table2Config(seed=2024),),
                           rounds=1, iterations=1)
    from _results import save_result
    save_result("table2", r.render())
    print()
    print(r.render())
    # (ii) the repair greatly reduces gender dependence per subgroup, on
    # research and archive alike.
    assert np.all(r.distributional_research < r.unrepaired_research)
    assert np.all(r.distributional_archive < r.unrepaired_archive)
    # Strong aggregate reductions (paper: ~4x research, ~3x archive).
    assert (r.unrepaired_research.sum()
            > 3.0 * r.distributional_research.sum())
    assert (r.unrepaired_archive.sum()
            > 3.0 * r.distributional_archive.sum())
    # Hours/week is the dominant dependence before repair (gender gap).
    assert r.unrepaired_research[1] > r.unrepaired_research[0]


def test_design_cost_nq250(benchmark, adult_scale_split):
    """Algorithm 1 at the Adult settings (nR=10k, nQ=250, d=2)."""
    benchmark.pedantic(
        design_repair, args=(adult_scale_split.research, 250),
        kwargs={"marginal_estimator": "linear"}, rounds=3, iterations=1)


def test_archive_repair_cost_35k(benchmark, adult_scale_split):
    """Algorithm 2 over the 35,222-point Adult archive."""
    plan = design_repair(adult_scale_split.research, 250,
                         marginal_estimator="linear")
    rng = np.random.default_rng(0)
    benchmark.pedantic(repair_dataset,
                       args=(adult_scale_split.archive, plan),
                       kwargs={"rng": rng}, rounds=3, iterations=1)
