"""Persistence for regenerated tables/figures (pytest captures stdout)."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Write a regenerated table/figure to ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
