"""Benchmark: the sparse network simplex as the restricted-LP engine.

The screened and multiscale solvers both end in an exact solve
restricted to a sparse support.  That solve has two engines
(``restricted_engine=``): the scipy/HiGHS LP — exact but built around
dense marginal constraint rows, so its memory footprint scales with
``support × (n + m)`` — and the native arc-list network simplex, whose
state is ``O(support + n + m)``.  This harness runs both hybrids with
both engines on a real design-cell problem lifted to
``n_Q ∈ {500, 5000, 50000, 100000}`` grids:

* at the oracle-feasible sizes (500, 5000) the native engine matches
  the scipy engine's objective to ≤ 1e-8 — same polytope, same optimum;
* at 50 000 and 100 000 states the LP engine is not attempted (HiGHS's
  constraint matrix for the restricted problem no longer fits) and the
  native engine carries the solve alone: the committed table is the
  evidence that ``n_Q = 10^5`` completes, the regime the seed could
  not reach;
* screened and multiscale agree with each other at every size (both
  are exact on supports containing the optimal staircase), which
  cross-checks the native engine against itself through two different
  support constructions.

Numbers land in ``benchmarks/results/network_simplex.txt`` and
machine-readable in ``benchmarks/results/BENCH_network_simplex.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.density.grid import InterpolationGrid
from repro.density.kde import interpolate_pmf
from repro.ot import OTProblem, solve
from repro.ot.barycenter import barycenter_1d

from _results import RESULTS_DIR, save_result

GRID_SIZES = (500, 5000, 50_000, 100_000)
#: Sizes where the scipy LP restricted engine is still feasible on CI
#: memory; past these the native engine runs unopposed.
ORACLE_SIZES = (500, 5000)


def design_cell_problem(split, n_states: int) -> OTProblem:
    """The (u=0, k=0, s=0) design problem on an ``n_states`` grid."""
    group = split.research.group(0)
    samples = {s: group.features[group.s == s, 0] for s in (0, 1)}
    combined = np.concatenate([samples[0], samples[1]])
    grid = InterpolationGrid.from_samples(combined, n_states)
    marginals = {s: interpolate_pmf(values, grid.nodes)
                 for s, values in samples.items()}
    target = barycenter_1d(grid.nodes, marginals[0], grid.nodes,
                           marginals[1], grid.nodes, t=0.5)
    return OTProblem(source_weights=marginals[0], target_weights=target,
                     source_support=grid.nodes, target_support=grid.nodes)


def _timed(problem, method, engine):
    start = time.perf_counter()
    result = solve(problem, method=method, restricted_engine=engine)
    seconds = time.perf_counter() - start
    return result, seconds


@pytest.fixture(scope="module")
def sweep(paper_scale_split):
    """``n_Q -> {(method, engine): (result, seconds)}`` for every size."""
    table = {}
    for n_states in GRID_SIZES:
        problem = design_cell_problem(paper_scale_split, n_states)
        runs = {}
        for method in ("screened", "multiscale"):
            runs[(method, "network_simplex")] = _timed(
                problem, method, "network_simplex")
            if n_states in ORACLE_SIZES:
                runs[(method, "lp")] = _timed(problem, method, "lp")
        table[n_states] = runs
    return table


def test_native_engine_matches_lp_oracle(sweep):
    """At oracle-feasible sizes both engines reach the same optimum.

    The oracle itself gets fuzzy with size: HiGHS returns solutions
    with marginal residuals up to ~1e-7 on the larger restricted
    problems (measured: 7e-8 at n_Q = 5000), and misplaced mass shifts
    the reported objective by the same order — so the agreement budget
    grows with the *oracle's* own infeasibility, while the native
    engine's flows come from exact tree solves and stay feasible to
    ~1e-16 throughout.
    """
    for n_states in ORACLE_SIZES:
        runs = sweep[n_states]
        for method in ("screened", "multiscale"):
            native, _ = runs[(method, "network_simplex")]
            oracle, _ = runs[(method, "lp")]
            budget = 1e-8 + 10.0 * oracle.marginal_residual
            assert native.value == pytest.approx(oracle.value, abs=budget), (
                f"{method} engines disagree at n_Q={n_states}")
            # The native engine never trails a *feasible* oracle: any
            # deficit is the oracle's own constraint violation.
            assert native.value <= oracle.value + 1e-8 \
                + 10.0 * oracle.marginal_residual
            assert native.marginal_residual <= 1e-12
            assert native.marginal_residual <= max(oracle.marginal_residual,
                                                   1e-12)


def test_top_sizes_complete_on_the_native_engine(sweep):
    """The acceptance criterion: n_Q = 10^5 completes, exactly."""
    for n_states in GRID_SIZES:
        screened, _ = sweep[n_states][("screened", "network_simplex")]
        multiscale, _ = sweep[n_states][("multiscale", "network_simplex")]
        assert screened.converged and multiscale.converged
        # Two independent support constructions, one optimum.
        assert screened.value == pytest.approx(multiscale.value, abs=1e-8)
        assert screened.marginal_residual <= 1e-9
        assert multiscale.marginal_residual <= 1e-9
    # The big sizes really took the dense-free paths.
    big = sweep[GRID_SIZES[-1]]
    assert big[("screened", "network_simplex")][0] \
        .extras["screen_method"] == "band"
    assert big[("multiscale", "network_simplex")][0] \
        .extras["sparse_support"] is True


def test_direct_solver_matches_lp(paper_scale_split):
    """The registered ``network_simplex`` solver itself, full product."""
    problem = design_cell_problem(paper_scale_split, 300)
    native = solve(problem, method="network_simplex")
    oracle = solve(problem, method="lp")
    assert native.value == pytest.approx(oracle.value, abs=1e-9)
    assert native.extras["pivots"] >= 0


def test_record_results(sweep):
    lines = ["restricted-engine scaling: network simplex vs scipy LP",
             f"grid sizes: {GRID_SIZES}; LP attempted at {ORACLE_SIZES} "
             "(memory-infeasible beyond)", ""]
    payload = {}
    for n_states, runs in sweep.items():
        lines.append(f"n_Q = {n_states}")
        entry = {}
        for (method, engine), (result, seconds) in sorted(runs.items()):
            support = result.extras.get("support_size")
            lines.append(
                f"  {method:10s} engine={engine:15s} {seconds:8.2f}s  "
                f"value={result.value:.9e}  support={support}  "
                f"marg_resid={result.marginal_residual:.1e}")
            entry[f"{method}/{engine}"] = {
                "seconds": round(seconds, 4),
                "value": result.value,
                "support_size": support,
                "marginal_residual": result.marginal_residual,
                "converged": bool(result.converged),
            }
        for method in ("screened", "multiscale"):
            if (method, "lp") in runs:
                native_s = runs[(method, "network_simplex")][1]
                lp_s = runs[(method, "lp")][1]
                entry[f"{method}/speedup_vs_lp"] = round(
                    lp_s / native_s, 3) if native_s > 0 else None
        payload[str(n_states)] = entry
        lines.append("")
    save_result("network_simplex", "\n".join(lines))
    (RESULTS_DIR / "BENCH_network_simplex.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    assert (Path(RESULTS_DIR) / "network_simplex.txt").exists()
