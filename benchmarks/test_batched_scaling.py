"""Benchmark: the batched execution engine vs the per-cell solve loop.

Algorithm 1 is embarrassingly batchable — every ``(u, s, k)`` design
cell is an independent 1-D OT problem on a shared quantile grid.  This
harness builds a ``N_CELLS``-cell same-grid batch (the acceptance shape:
>= 64 cells, 1-D metric costs) and measures cells/second through four
paths:

* ``serial``  — the historical per-cell ``solve()`` loop;
* ``batched`` — one ``solve_many`` call hitting the vectorised monotone
  batch kernel (a single NumPy dispatch for the whole batch);
* ``thread`` / ``process`` — ``solve_many``'s executor fallback fanning
  the same per-cell solves over the pool strategies (measured via an
  ad-hoc callable solver, which has no batch kernel by construction).

Expectations: the batched path is **>= 3x** faster than the serial
per-cell loop (the PR's acceptance criterion; typical wins are 4-6x at
design-realistic grid sizes, where per-cell Python/facade overhead —
not array arithmetic — dominates the serial loop), and every path
returns bit-identical plans and values.  A small ``n_Q`` sweep records
how the win shrinks as dense-plan memory traffic takes over at very
large grids (the multiscale/CSR regime).  Results land in
``benchmarks/results/batched.txt`` and
``benchmarks/results/BENCH_batched.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.executor import ProcessExecutor, ThreadExecutor
from repro.density.grid import InterpolationGrid
from repro.density.kde import interpolate_pmf
from repro.ot import OTProblem, solve, solve_many
from repro.ot.solve import _solve_exact

N_CELLS = 96
#: The library's default design resolution (``design_repair(n_states=50)``)
#: — the regime the batched engine is built for.
N_STATES = 50
N_WORKERS = 4
#: Conservative acceptance floor; the committed results record the
#: actual measured margin.
MIN_BATCHED_SPEEDUP = 3.0


#: Grid sizes for the serial-vs-batched sweep recorded alongside the
#: headline numbers (50 is the library's default ``n_states``).
SWEEP_STATES = (50, 96, 256)


def exact_per_cell(problem):
    """The monotone solver as an anonymous callable: no batch kernel, so
    solve_many must take the executor fallback for it."""
    return _solve_exact(problem)


def build_cells(rng, n_cells: int, n_states: int):
    """``n_cells`` design-style problems on one shared ``n_states`` grid."""
    anchor = rng.normal(size=4 * n_states)
    grid = InterpolationGrid.from_samples(anchor, n_states)
    problems = []
    for _ in range(n_cells):
        shift = rng.uniform(-0.5, 0.5)
        source = interpolate_pmf(
            rng.normal(shift, 1.0, size=300), grid.nodes)
        target = interpolate_pmf(
            rng.normal(-shift, 1.0, size=300), grid.nodes)
        problems.append(OTProblem(source_weights=source,
                                  target_weights=target,
                                  source_support=grid.nodes,
                                  target_support=grid.nodes))
    return problems


@pytest.fixture(scope="module")
def cell_batch(bench_rng):
    return build_cells(bench_rng, N_CELLS, N_STATES)


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs; returns (seconds, out)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


@pytest.fixture(scope="module")
def measurements(cell_batch):
    """name -> (seconds, results) for the four execution paths."""
    paths = {
        "serial": lambda: [solve(problem, method="exact")
                           for problem in cell_batch],
        "batched": lambda: solve_many(cell_batch, method="exact"),
        "thread": lambda: solve_many(cell_batch, method=exact_per_cell,
                                     executor=ThreadExecutor(N_WORKERS)),
        "process": lambda: solve_many(cell_batch, method=exact_per_cell,
                                      executor=ProcessExecutor(N_WORKERS)),
    }
    for fn in paths.values():
        fn()  # warm every path (imports, pools, allocator) before timing
    return {name: best_of(3, fn) for name, fn in paths.items()}


def test_all_paths_bit_identical(measurements):
    _, reference = measurements["serial"]
    for name in ("batched", "thread", "process"):
        _, results = measurements[name]
        for got, expected in zip(results, reference):
            np.testing.assert_array_equal(got.plan.matrix,
                                          expected.plan.matrix), name
            assert got.value == expected.value, name


def test_batched_beats_serial_by_3x(measurements):
    serial, _ = measurements["serial"]
    batched, _ = measurements["batched"]
    assert batched * MIN_BATCHED_SPEEDUP < serial, (
        f"batched path only {serial / batched:.1f}x faster than the "
        f"serial per-cell loop (need >= {MIN_BATCHED_SPEEDUP}x)")


def test_batched_results_flagged(measurements):
    _, results = measurements["batched"]
    assert all(result.extras.get("batched") for result in results)
    assert all(result.extras["batch_size"] == N_CELLS
               for result in results)


@pytest.fixture(scope="module")
def sweep(bench_rng):
    """``n_Q -> (serial_seconds, batched_seconds)`` at 64 cells."""
    timings = {}
    for n_states in SWEEP_STATES:
        problems = build_cells(bench_rng, 64, n_states)
        serial, _ = best_of(3, lambda: [solve(problem, method="exact")
                                        for problem in problems])
        batched, _ = best_of(3, lambda: solve_many(problems,
                                                   method="exact"))
        timings[n_states] = (serial, batched)
    return timings


def test_record_results(measurements, sweep):
    from _results import RESULTS_DIR, save_result

    cells_per_sec = {name: N_CELLS / seconds
                     for name, (seconds, _) in measurements.items()}
    serial, _ = measurements["serial"]
    batched, _ = measurements["batched"]
    lines = [
        "Batched execution engine — one shared-grid design batch "
        f"({N_CELLS} cells, n_Q = {N_STATES}, 1-D metric cost), "
        "best of 3 runs",
        "",
    ]
    for name, (seconds, _) in measurements.items():
        suffix = ""
        if name in ("thread", "process"):
            suffix = (f"  ({N_WORKERS} workers, executor fallback on an "
                      "ad-hoc kernel-less solver)")
        lines.append(f"  {name:<8}: {seconds * 1e3:8.2f} ms   "
                     f"{cells_per_sec[name]:10.0f} cells/s{suffix}")
    lines += [
        "",
        f"  batched vs serial per-cell loop: {serial / batched:.1f}x "
        f"(acceptance floor {MIN_BATCHED_SPEEDUP}x)",
        "  all four paths bit-identical (plans and values).",
        "",
        "  grid-size sweep (64 cells; the win is per-cell overhead, so",
        "  it shrinks as dense-plan memory traffic dominates at large",
        "  n_Q — the regime already served by multiscale + CSR plans):",
    ]
    for n_states, (sweep_serial, sweep_batched) in sweep.items():
        lines.append(f"    n_Q = {n_states:4d}: serial "
                     f"{sweep_serial * 1e3:7.2f} ms   batched "
                     f"{sweep_batched * 1e3:7.2f} ms   "
                     f"({sweep_serial / sweep_batched:.1f}x)")
    save_result("batched", "\n".join(lines))

    payload = {
        "n_cells": N_CELLS,
        "n_states": N_STATES,
        "n_workers": N_WORKERS,
        "wall_seconds": {name: seconds
                         for name, (seconds, _) in measurements.items()},
        "cells_per_sec": cells_per_sec,
        "speedup_batched_vs_serial": serial / batched,
        "sweep": {str(n_states): {"serial_seconds": sweep_serial,
                                  "batched_seconds": sweep_batched,
                                  "speedup": sweep_serial / sweep_batched}
                  for n_states, (sweep_serial, sweep_batched)
                  in sweep.items()},
    }
    (RESULTS_DIR / "BENCH_batched.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
