"""Benchmark + regeneration of Figure 4 (E vs grid resolution nQ).

Prints the figure's series and benchmarks how the design cost scales with
``n_Q`` for the three solvers — the compression argument of Section V-A2b:
exact unregularised OT is cubic in ``n_Q``, Sinkhorn quadratic, and the
1-D monotone solver linear, so small ``n_Q`` (the figure shows ~30
suffices) is what makes the method cheap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.experiments.fig4 import Fig4Config, run_fig4


def test_fig4_regenerated(benchmark):
    """Regenerate the Figure 4 series (timed once); assert its shape."""
    r = benchmark.pedantic(run_fig4, args=(Fig4Config(n_repeats=5,
                                                      seed=2024),),
                           rounds=1, iterations=1)
    text = (r.render()
            + f"\nE within 25% of final by nQ = {r.convergence_threshold()}")
    from _results import save_result
    save_result("fig4", text)
    print()
    print(text)
    # The coarsest grids are clearly worse than the finest.
    assert r.composite_energy[0] > 2.0 * r.composite_energy[-1]
    # Performance has converged by nQ around the paper's ~30 threshold.
    assert r.convergence_threshold(rtol=0.5) <= 30
    # Beyond the threshold the curve is flat: last three values within a
    # factor of two of each other.
    tail = r.composite_energy[-3:]
    assert tail.max() < 2.5 * tail.min()


@pytest.mark.parametrize("n_states", [10, 50, 250])
def test_design_scaling_in_resolution(benchmark, paper_scale_split,
                                      n_states):
    benchmark(design_repair, paper_scale_split.research, n_states)
