"""Benchmark: the batched entropic kernels vs the per-cell solve loop.

The compute-backend PR's acceptance shape: a ``N_CELLS``-cell same-shape
design batch (the ``test_batched_scaling`` fixture geometry, default
``n_Q = 50``) solved entropically through two paths per solver:

* ``percell`` — the historical per-cell ``solve(method=...)`` loop
  (serial scipy-logsumexp / matmul iterations);
* ``batched`` — one ``solve_many(..., backend="numpy")`` call hitting
  the stacked ``(B, n, m)`` kernel with per-problem convergence masking
  (`repro.ot.sinkhorn.batched_sinkhorn` / ``batched_sinkhorn_log``).

Expectations: the batched ``sinkhorn_log`` path is **>= 3x** the
per-cell loop (the acceptance criterion — the log-domain kernel is the
expensive one, two full logsumexp sweeps per iteration, so it is where
per-cell Python/scipy overhead hurts most), every batched result agrees
with its per-cell counterpart within 1e-12 with identical iteration
counts, and the probability-domain kernel is recorded alongside (its
design-cell iteration counts are tiny, so the fixed batch setup bounds
its win).  Results land in ``benchmarks/results/backend.txt`` and
``benchmarks/results/BENCH_backend.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.ot import solve, solve_many

from test_batched_scaling import build_cells

N_CELLS = 96
N_STATES = 50
EPSILON = 5e-2
TOL = 1e-8
#: Conservative acceptance floor for the log-domain kernel; the
#: committed results record the actual measured margin.
MIN_BATCHED_SPEEDUP = 3.0

METHODS = ("sinkhorn_log", "sinkhorn")


@pytest.fixture(scope="module")
def cell_batch(bench_rng):
    return build_cells(bench_rng, N_CELLS, N_STATES)


def best_of(repeats, fn):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


@pytest.fixture(scope="module")
def measurements(cell_batch):
    """method -> {path -> (seconds, results)} for both entropic solvers."""
    timings = {}
    for method in METHODS:
        paths = {
            "percell": lambda m=method: [
                solve(problem, method=m, epsilon=EPSILON, tol=TOL)
                for problem in cell_batch],
            "batched": lambda m=method: solve_many(
                cell_batch, method=m, backend="numpy", epsilon=EPSILON,
                tol=TOL),
        }
        for fn in paths.values():
            fn()  # warm the path (imports, allocator) before timing
        repeats = 3 if method == "sinkhorn" else 2
        timings[method] = {name: best_of(repeats, fn)
                           for name, fn in paths.items()}
    return timings


def test_batched_matches_per_cell_within_tolerance(measurements):
    for method in METHODS:
        _, reference = measurements[method]["percell"]
        _, results = measurements[method]["batched"]
        for got, expected in zip(results, reference):
            np.testing.assert_allclose(got.plan.matrix,
                                       expected.plan.matrix,
                                       rtol=0.0, atol=1e-12,
                                       err_msg=method)
            assert got.n_iter == expected.n_iter, method
            assert got.extras["batched"] is True, method


def test_batched_sinkhorn_log_beats_per_cell_by_3x(measurements):
    percell, _ = measurements["sinkhorn_log"]["percell"]
    batched, _ = measurements["sinkhorn_log"]["batched"]
    assert batched * MIN_BATCHED_SPEEDUP < percell, (
        f"batched sinkhorn_log only {percell / batched:.1f}x the "
        f"per-cell loop (need >= {MIN_BATCHED_SPEEDUP}x)")


def test_record_results(measurements):
    from _results import RESULTS_DIR, save_result

    lines = [
        "Batched entropic kernels on the numpy backend — one "
        f"shared-grid design batch ({N_CELLS} cells, n_Q = {N_STATES}, "
        f"epsilon = {EPSILON}, tol = {TOL})",
        "",
    ]
    payload = {
        "n_cells": N_CELLS,
        "n_states": N_STATES,
        "epsilon": EPSILON,
        "tol": TOL,
        "backend": "numpy",
        "methods": {},
    }
    for method in METHODS:
        percell, _ = measurements[method]["percell"]
        batched, _ = measurements[method]["batched"]
        speedup = percell / batched
        lines.append(
            f"  {method:<12}: per-cell {percell * 1e3:9.1f} ms   "
            f"batched {batched * 1e3:9.1f} ms   ({speedup:.1f}x)")
        payload["methods"][method] = {
            "percell_seconds": percell,
            "batched_seconds": batched,
            "speedup": speedup,
        }
    lines += [
        "",
        f"  acceptance: batched sinkhorn_log >= {MIN_BATCHED_SPEEDUP}x "
        "the per-cell loop",
        "  batched == per-cell within 1e-12 (plans), identical",
        "  iteration counts (per-problem convergence masking).",
        "  The probability-domain kernel converges in O(10) iterations",
        "  on design cells, so its fixed batch setup bounds the win;",
        "  the log-domain kernel (hundreds of logsumexp sweeps) is",
        "  where the stacked dispatch pays off.",
    ]
    save_result("backend", "\n".join(lines))
    (RESULTS_DIR / "BENCH_backend.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
