"""Ablation: streaming chunk size for archival torrents (DESIGN.md §6.4).

The off-sample repair is applied batch-by-batch; this measures throughput
as a function of the chunk size, and verifies that chunking changes
nothing statistically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.repair import DistributionalRepairer
from repro.data.streaming import ArchiveStream
from repro.metrics.fairness import conditional_dependence_energy


@pytest.fixture(scope="module")
def fitted_repairer(paper_scale_split):
    repairer = DistributionalRepairer(n_states=50, rng=1)
    repairer.fit(paper_scale_split.research)
    return repairer


@pytest.mark.parametrize("batch_size", [64, 512, 5000])
def test_stream_throughput(benchmark, fitted_repairer, paper_scale_split,
                           batch_size):
    def run():
        stream = ArchiveStream(paper_scale_split.archive,
                               batch_size=batch_size)
        for _ in fitted_repairer.transform_stream(stream, rng=3):
            pass

    benchmark(run)


def test_chunking_statistically_neutral(benchmark, fitted_repairer,
                                        paper_scale_split):
    def sweep():
        energies = {}
        for batch_size in (64, 5000):
            stream = ArchiveStream(paper_scale_split.archive,
                                   batch_size=batch_size)
            batches = list(fitted_repairer.transform_stream(stream,
                                                            rng=3))
            features = np.vstack([b.features for b in batches])
            s = np.concatenate([b.s for b in batches])
            u = np.concatenate([b.u for b in batches])
            energies[batch_size] = conditional_dependence_energy(
                features, s, u).total
        return energies

    energies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nchunk-size ablation E: {energies}")
    assert energies[64] == pytest.approx(energies[5000], rel=0.5,
                                         abs=0.05)
