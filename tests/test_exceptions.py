"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (ConvergenceError, DataError,
                              InfeasibleProblemError, NotFittedError,
                              ReproError, SchemaError, ValidationError)


def test_all_errors_derive_from_repro_error():
    for exc_type in (ValidationError, NotFittedError, ConvergenceError,
                     InfeasibleProblemError, DataError, SchemaError):
        assert issubclass(exc_type, ReproError)


def test_validation_error_is_value_error():
    assert issubclass(ValidationError, ValueError)


def test_not_fitted_is_runtime_error():
    assert issubclass(NotFittedError, RuntimeError)


def test_schema_error_is_data_error():
    assert issubclass(SchemaError, DataError)


def test_convergence_error_carries_diagnostics():
    err = ConvergenceError("no convergence", iterations=10, residual=0.5)
    assert err.iterations == 10
    assert err.residual == 0.5
    assert "no convergence" in str(err)


def test_convergence_error_defaults():
    err = ConvergenceError("plain")
    assert err.iterations is None
    assert err.residual is None


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise SchemaError("bad schema")
