"""Tests for the ASCII reporting helpers."""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import (banner, format_mean_std,
                                         format_series, format_table)


class TestFormatMeanStd:
    def test_with_std(self):
        assert format_mean_std(1.23456, 0.1) == "1.235 ± 0.1"

    def test_without_std(self):
        assert format_mean_std(2.5) == "2.5"

    def test_nan_std_suppressed(self):
        assert format_mean_std(2.5, float("nan")) == "2.5"

    def test_digits(self):
        assert format_mean_std(1.23456, digits=2) == "1.2"


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title_prepended(self):
        text = format_table(["x"], [["1"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a much longer cell"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to equal width

    def test_non_string_cells_coerced(self):
        text = format_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestFormatSeries:
    def test_series_rows(self):
        text = format_series([1, 2], [0.5, 0.25], x_name="nQ",
                             y_name="E")
        assert "nQ" in text and "E" in text
        assert "0.5" in text and "0.25" in text

    def test_series_title(self):
        text = format_series([1], [1.0], title="Figure X")
        assert text.startswith("Figure X")


class TestBanner:
    def test_banner_shape(self):
        text = banner("Hello")
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0] == lines[2] == "=" * 8
        assert lines[1] == "Hello"

    def test_banner_grows_with_text(self):
        text = banner("A much longer headline")
        lines = text.splitlines()
        assert len(lines[0]) == len("A much longer headline")
