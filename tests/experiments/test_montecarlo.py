"""Tests for the Monte-Carlo harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.montecarlo import run_monte_carlo


class TestRunMonteCarlo:
    def test_summary_shapes(self):
        summary = run_monte_carlo(
            lambda g: np.array([g.random(), g.random()]), 10, rng=0)
        assert summary.mean.shape == (2,)
        assert summary.std.shape == (2,)
        assert summary.samples.shape == (10, 2)
        assert summary.n_repeats == 10

    def test_deterministic_given_seed(self):
        trial = lambda g: np.array([g.normal()])
        a = run_monte_carlo(trial, 5, rng=42)
        b = run_monte_carlo(trial, 5, rng=42)
        np.testing.assert_allclose(a.samples, b.samples)

    def test_independent_children(self):
        # Different repetitions must see different randomness.
        summary = run_monte_carlo(lambda g: np.array([g.random()]), 20,
                                  rng=1)
        assert np.unique(summary.samples).size == 20

    def test_scalar_helper(self):
        summary = run_monte_carlo(lambda g: np.array([1.0]), 4, rng=0)
        mean, std = summary.scalar()
        assert mean == pytest.approx(1.0)
        assert std == pytest.approx(0.0)

    def test_mean_converges(self):
        summary = run_monte_carlo(lambda g: np.array([g.normal(3.0)]),
                                  400, rng=7)
        assert summary.mean[0] == pytest.approx(3.0, abs=0.2)

    def test_single_repeat_zero_std(self):
        summary = run_monte_carlo(lambda g: np.array([g.random()]), 1,
                                  rng=0)
        assert summary.std[0] == 0.0

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValidationError):
            run_monte_carlo(lambda g: np.array([0.0]), 0)

    def test_scalar_trial_output_promoted(self):
        summary = run_monte_carlo(lambda g: 2.5, 3, rng=0)
        assert summary.samples.shape == (3, 1)
