"""Smoke + shape tests for the table/figure experiment drivers.

These use deliberately small configurations; the full-size runs live in
``benchmarks/``.  What is asserted here is the *shape* of the paper's
results: orderings, reductions and convergence, not absolute values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2


@pytest.fixture(scope="module")
def table1_result():
    config = Table1Config(n_research=200, n_archive=1000, n_states=30,
                          n_repeats=3, seed=7)
    return run_table1(config)


class TestTable1:
    def test_repair_reduces_energy_research(self, table1_result):
        r = table1_result
        assert np.all(r.distributional_research.mean
                      < r.unrepaired_research.mean / 3.0)

    def test_repair_reduces_energy_archive(self, table1_result):
        r = table1_result
        assert np.all(r.distributional_archive.mean
                      < r.unrepaired_archive.mean / 2.0)

    def test_archive_harder_than_research(self, table1_result):
        # Off-sample repair is the more stressful regime (paper V-A1).
        r = table1_result
        assert np.all(r.distributional_archive.mean
                      >= r.distributional_research.mean)

    def test_geometric_best_on_sample(self, table1_result):
        # On simulated Gaussians the geometric repair edges out ours on
        # the research data (paper Table I).
        r = table1_result
        assert np.all(r.geometric_research.mean
                      <= r.distributional_research.mean * 1.5)

    def test_render_contains_all_rows(self, table1_result):
        text = table1_result.render()
        assert "None" in text
        assert "Distributional (ours)" in text
        assert "Geometric [10]" in text
        assert "±" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        config = Table2Config(n_research=3000, n_total=9000, n_states=120,
                              seed=3)
        return run_table2(config)

    def test_linear_repair_reduces_both_features(self, result):
        assert np.all(result.distributional_research
                      < result.unrepaired_research)
        assert np.all(result.distributional_archive
                      < result.unrepaired_archive)

    def test_hours_more_dependent_than_age(self, result):
        # Feature order is (age, hours); hours carries the gender gap.
        assert (result.unrepaired_research[1]
                > result.unrepaired_research[0])

    def test_geometric_reported_on_research_only(self, result):
        rows = result.rows()
        geometric_row = [r for r in rows if r[0].startswith("Geometric")][0]
        assert geometric_row[-1] == "-" and geometric_row[-2] == "-"

    def test_render(self, result):
        text = result.render()
        assert "Adult" in text
        assert "synthetic" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig3Config(research_sizes=(40, 120, 360),
                            n_archive=1200, n_states=30, n_repeats=3,
                            seed=5)
        return run_fig3(config)

    def test_series_lengths(self, result):
        assert result.research_sizes.shape == (3,)
        assert result.repaired_archive.shape == (3,)

    def test_repair_beats_unrepaired_beyond_smallest(self, result):
        # At the very smallest nR some (u, s) subgroups hold only 2-3
        # research points and the KDE design can misfire — the paper's
        # convergence claim is about the trend, so assert from the second
        # size onward.
        assert np.all(result.repaired_archive[1:] < result.unrepaired[1:])

    def test_archive_energy_improves_with_more_research_data(self, result):
        # The paper's convergence claim: larger nR helps (allowing noise).
        assert result.repaired_archive[-1] <= result.repaired_archive[0]

    def test_converged_by_returns_size(self, result):
        assert result.converged_by() in result.research_sizes

    def test_render(self, result):
        assert "nR" in result.render()


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig4Config(resolutions=(5, 15, 30, 45),
                            n_research=300, n_archive=1200, n_repeats=3,
                            seed=11)
        return run_fig4(config)

    def test_series_lengths(self, result):
        assert result.resolutions.shape == (4,)
        assert result.composite_energy.shape == (4,)

    def test_coarse_grid_worse_than_fine(self, result):
        # nQ = 5 cannot represent the marginals; E must be clearly higher
        # than at the finest resolution.
        assert result.composite_energy[0] > result.composite_energy[-1]

    def test_convergence_threshold_in_range(self, result):
        assert result.convergence_threshold() in result.resolutions

    def test_render(self, result):
        assert "nQ" in result.render()
