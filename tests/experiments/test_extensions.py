"""Tests for the extension-study drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.extensions import (copula_biased_spec,
                                          run_correlation_study,
                                          run_monge_study, run_tradeoff)


class TestTradeoff:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tradeoff(n_research=300, n_archive=1500,
                            amounts=(0.0, 0.5, 1.0), seed=3)

    def test_damage_monotone(self, result):
        assert result.is_monotone_damage()

    def test_endpoints(self, result):
        assert result.damages[0] == pytest.approx(0.0)
        assert result.energies[-1] < result.energies[0]

    def test_render(self, result):
        text = result.render()
        assert "lambda" in text and "damage" in text


class TestCorrelationStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_correlation_study(n_total=3000, n_research=1200,
                                     seed=3)

    def test_unrepaired_has_copula_bias(self, result):
        assert result.corr_gaps["unrepaired"] > 1.0
        assert result.sliced["unrepaired"] > 0.3

    def test_per_feature_repair_blind(self, result):
        assert (result.corr_gaps["per-feature"]
                > 0.7 * result.corr_gaps["unrepaired"])

    def test_joint_repair_removes_copula_bias(self, result):
        assert (result.corr_gaps["joint"]
                < 0.4 * result.corr_gaps["unrepaired"])
        assert (result.sliced["joint"]
                < 0.6 * result.sliced["unrepaired"])

    def test_render(self, result):
        assert "joint" in result.render()


class TestMongeStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_monge_study(n_research=400, n_archive=2000, seed=3)

    def test_monge_is_individually_fair(self, result):
        assert result.clone_spreads["monge"] == pytest.approx(0.0,
                                                              abs=1e-12)

    def test_kantorovich_splits_clones(self, result):
        assert result.clone_spreads["kantorovich"] > 0.01

    def test_group_fairness_comparable(self, result):
        ratio = (result.energies["monge"]
                 / max(result.energies["kantorovich"], 1e-12))
        assert 0.05 < ratio < 20.0

    def test_render(self, result):
        text = result.render()
        assert "monge" in text and "kantorovich" in text


class TestCopulaSpec:
    def test_marginals_identical_by_construction(self):
        spec = copula_biased_spec(0.7)
        data = spec.sample(6000, rng=0)
        # Per-feature means/stds match across s within u.
        for u in (0, 1):
            for k in (0, 1):
                v0 = data.features[data.group_mask(u, 0), k]
                v1 = data.features[data.group_mask(u, 1), k]
                assert abs(v0.mean() - v1.mean()) < 0.15
                assert abs(v0.std() - v1.std()) < 0.15
