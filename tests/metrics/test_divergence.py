"""Tests for the divergence functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.divergence import (hellinger_distance, js_divergence,
                                      kl_divergence, symmetric_kl,
                                      total_variation)


@pytest.fixture
def p_and_q(rng):
    p = rng.dirichlet(np.ones(12))
    q = rng.dirichlet(np.ones(12))
    return p, q


class TestKl:
    def test_zero_for_identical(self, p_and_q):
        p, _ = p_and_q
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self, p_and_q):
        p, q = p_and_q
        assert kl_divergence(p, q) >= 0.0

    def test_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_known_value(self):
        p = np.array([0.75, 0.25])
        q = np.array([0.5, 0.5])
        expected = 0.75 * np.log(1.5) + 0.25 * np.log(0.5)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_floor_keeps_finite_on_disjoint(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        value = kl_divergence(p, q)
        assert np.isfinite(value) and value > 10.0

    def test_support_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="share a support"):
            kl_divergence([0.5, 0.5], [0.3, 0.3, 0.4])

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValidationError, match="floor"):
            kl_divergence([0.5, 0.5], [0.5, 0.5], floor=2.0)


class TestSymmetricKl:
    def test_symmetry(self, p_and_q):
        p, q = p_and_q
        assert symmetric_kl(p, q) == pytest.approx(symmetric_kl(q, p))

    def test_is_average_of_directed(self, p_and_q):
        p, q = p_and_q
        expected = 0.5 * (kl_divergence(p, q) + kl_divergence(q, p))
        assert symmetric_kl(p, q) == pytest.approx(expected, rel=1e-9)

    def test_zero_iff_identical(self, p_and_q):
        p, q = p_and_q
        assert symmetric_kl(p, p) == pytest.approx(0.0, abs=1e-12)
        assert symmetric_kl(p, q) > 0.0

    def test_gaussian_pmf_value(self):
        # symKL between N(0,1) and N(d,1) is d^2/2; check on a fine grid.
        grid = np.linspace(-8, 9, 4001)
        delta = 1.5
        p = np.exp(-0.5 * grid ** 2)
        q = np.exp(-0.5 * (grid - delta) ** 2)
        value = symmetric_kl(p / p.sum(), q / q.sum())
        assert value == pytest.approx(delta ** 2 / 2.0, rel=0.01)


class TestJsAndFriends:
    def test_js_bounded_by_log2(self, p_and_q):
        p, q = p_and_q
        assert 0.0 <= js_divergence(p, q) <= np.log(2.0) + 1e-12

    def test_js_max_for_disjoint(self):
        value = js_divergence([1.0, 0.0], [0.0, 1.0])
        assert value == pytest.approx(np.log(2.0), rel=1e-6)

    def test_hellinger_bounds(self, p_and_q):
        p, q = p_and_q
        assert 0.0 <= hellinger_distance(p, q) <= 1.0
        assert hellinger_distance(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_hellinger_max_for_disjoint(self):
        assert hellinger_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(
            1.0, abs=1e-4)

    def test_total_variation_half_l1(self, p_and_q):
        p, q = p_and_q
        assert total_variation(p, q) == pytest.approx(
            0.5 * np.abs(p - q).sum())

    def test_total_variation_bounds(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)
