"""Property-based tests for the metric invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.divergence import (hellinger_distance, js_divergence,
                                      kl_divergence, symmetric_kl,
                                      total_variation)


def pmfs(n: int):
    return arrays(np.float64, n,
                  elements=st.floats(1e-6, 10.0, allow_nan=False))


@given(p=pmfs(10), q=pmfs(10))
@settings(max_examples=80, deadline=None)
def test_kl_nonnegative(p, q):
    assert kl_divergence(p, q) >= -1e-12


@given(p=pmfs(10))
@settings(max_examples=50, deadline=None)
def test_kl_self_zero(p):
    assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-10)


@given(p=pmfs(8), q=pmfs(8))
@settings(max_examples=80, deadline=None)
def test_symmetric_kl_is_symmetric(p, q):
    assert symmetric_kl(p, q) == pytest.approx(symmetric_kl(q, p),
                                               rel=1e-9, abs=1e-12)


@given(p=pmfs(8), q=pmfs(8))
@settings(max_examples=80, deadline=None)
def test_js_bounded(p, q):
    assert -1e-12 <= js_divergence(p, q) <= np.log(2.0) + 1e-9


@given(p=pmfs(8), q=pmfs(8))
@settings(max_examples=80, deadline=None)
def test_hellinger_bounded_and_symmetric(p, q):
    h = hellinger_distance(p, q)
    assert -1e-12 <= h <= 1.0 + 1e-12
    assert h == pytest.approx(hellinger_distance(q, p), abs=1e-10)


@given(p=pmfs(8), q=pmfs(8))
@settings(max_examples=80, deadline=None)
def test_tv_metric_properties(p, q):
    tv = total_variation(p, q)
    assert -1e-12 <= tv <= 1.0 + 1e-12
    assert tv == pytest.approx(total_variation(q, p), abs=1e-12)
    assert total_variation(p, p) == pytest.approx(0.0, abs=1e-12)


@given(p=pmfs(8), q=pmfs(8), r=pmfs(8))
@settings(max_examples=60, deadline=None)
def test_tv_triangle_inequality(p, q, r):
    d_pq = total_variation(p, q)
    d_qr = total_variation(q, r)
    d_pr = total_variation(p, r)
    assert d_pr <= d_pq + d_qr + 1e-10


@given(p=pmfs(8), q=pmfs(8))
@settings(max_examples=60, deadline=None)
def test_pinsker_inequality(p, q):
    # KL(p||q) >= 2 TV(p, q)^2 (Pinsker); a strong cross-check of both.
    kl = kl_divergence(p, q)
    tv = total_variation(
        np.asarray(p) / np.sum(p), np.asarray(q) / np.sum(q))
    assert kl >= 2.0 * tv ** 2 - 1e-9
