"""Tests for the paper's conditional-dependence measure E."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.simulated import paper_simulation_spec
from repro.exceptions import ValidationError
from repro.metrics.fairness import (conditional_dependence_energy,
                                    feature_dependence, group_dependence)


class TestFeatureDependence:
    def test_zero_for_same_distribution(self, rng):
        xs = rng.normal(size=500)
        ys = rng.normal(size=500)
        value = feature_dependence(xs, ys)
        assert value < 0.05

    def test_grows_with_separation(self, rng):
        base = rng.normal(size=400)
        previous = 0.0
        for shift in (0.5, 1.5, 3.0):
            value = feature_dependence(base, base + shift)
            assert value > previous
            previous = value

    def test_approximates_gaussian_symkl(self, rng):
        # symKL(N(0,1), N(1,1)) = 0.5; KDE estimate should be in range.
        xs = rng.normal(0.0, 1.0, size=4000)
        ys = rng.normal(1.0, 1.0, size=4000)
        value = feature_dependence(xs, ys, n_grid=200)
        assert 0.3 < value < 0.9

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            feature_dependence(np.array([]), np.array([1.0]))

    def test_symmetry(self, rng):
        xs = rng.normal(size=100)
        ys = rng.normal(1.0, 1.0, size=150)
        assert feature_dependence(xs, ys) == pytest.approx(
            feature_dependence(ys, xs))


class TestGroupDependence:
    def test_per_feature_vector(self, rng):
        n = 300
        s = rng.integers(0, 2, size=n)
        x = np.column_stack([rng.normal(size=n) + 2.0 * s,
                             rng.normal(size=n)])
        energies = group_dependence(x, s)
        assert energies.shape == (2,)
        assert energies[0] > 5 * energies[1]

    def test_single_class_rejected(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError, match="both protected groups"):
            group_dependence(x, np.zeros(10))

    def test_nonbinary_rejected(self, rng):
        x = rng.normal(size=(4, 1))
        with pytest.raises(ValidationError, match="binary"):
            group_dependence(x, [0, 1, 2, 1])

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError, match="mismatch"):
            group_dependence(rng.normal(size=(5, 1)), [0, 1])


class TestConditionalDependenceEnergy:
    def test_report_structure(self, small_dataset):
        report = conditional_dependence_energy(
            small_dataset.features, small_dataset.s, small_dataset.u)
        assert report.n_features == 2
        assert set(report.per_group) == {0, 1}
        assert set(report.group_weights) == {0, 1}
        assert sum(report.group_weights.values()) == pytest.approx(1.0)
        assert report.total == pytest.approx(report.per_feature.sum())

    def test_weighted_aggregation(self, small_dataset):
        report = conditional_dependence_energy(
            small_dataset.features, small_dataset.s, small_dataset.u)
        manual = np.zeros(2)
        for u, energies in report.per_group.items():
            manual += report.group_weights[u] * energies
        np.testing.assert_allclose(report.per_feature, manual)

    def test_fair_data_scores_near_zero(self, rng):
        n = 2000
        u = rng.integers(0, 2, size=n)
        s = rng.integers(0, 2, size=n)
        x = rng.normal(size=(n, 2)) + u[:, None]  # depends on u only
        report = conditional_dependence_energy(x, s, u)
        assert report.total < 0.1

    def test_paper_spec_detects_unfairness(self, rng):
        spec = paper_simulation_spec()
        data = spec.sample(2000, rng=rng)
        report = conditional_dependence_energy(data.features, data.s,
                                               data.u)
        # True symKL is 0.5 per (u, feature); estimator should clearly
        # detect dependence.
        assert report.total > 0.5

    def test_feature_accessor(self, small_dataset):
        report = conditional_dependence_energy(
            small_dataset.features, small_dataset.s, small_dataset.u)
        assert report.feature(0) == pytest.approx(report.per_feature[0])

    def test_label_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError, match="mismatch"):
            conditional_dependence_energy(rng.normal(size=(5, 1)),
                                          [0, 1, 0], [0, 0, 1])
