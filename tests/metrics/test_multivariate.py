"""Tests for the multivariate dependence measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.simulated import GaussianMixtureSpec
from repro.exceptions import ValidationError
from repro.metrics.multivariate import correlation_gap, sliced_dependence


@pytest.fixture
def copula_biased_data():
    """Same marginals in both protected classes, opposite correlation."""
    rho = 0.8
    spec = GaussianMixtureSpec(
        means={(u, s): [0.0, 0.0] for u in (0, 1) for s in (0, 1)},
        p_u0=0.5, p_s0_given_u={0: 0.4, 1: 0.4},
        covariances={(0, 0): [[1, rho], [rho, 1]],
                     (1, 0): [[1, rho], [rho, 1]],
                     (0, 1): [[1, -rho], [-rho, 1]],
                     (1, 1): [[1, -rho], [-rho, 1]]})
    return spec.sample(3000, rng=0)


class TestSlicedDependence:
    def test_zero_for_fair_data(self, rng):
        n = 2000
        u = rng.integers(0, 2, n)
        s = rng.integers(0, 2, n)
        x = rng.normal(size=(n, 2)) + u[:, None]
        value = sliced_dependence(x, s, u, rng=0)
        # Finite-sample floor: empirical W between two ~500-point samples
        # of the same law is O(n^-1/2), not zero.
        assert value < 0.15

    def test_detects_copula_bias(self, copula_biased_data):
        data = copula_biased_data
        value = sliced_dependence(data.features, data.s, data.u, rng=0)
        assert value > 0.3

    def test_detects_mean_shift(self, rng):
        n = 2000
        u = rng.integers(0, 2, n)
        s = rng.integers(0, 2, n)
        x = rng.normal(size=(n, 2)) + 2.0 * s[:, None]
        value = sliced_dependence(x, s, u, rng=0)
        assert value > 1.0

    def test_deterministic(self, copula_biased_data):
        data = copula_biased_data
        a = sliced_dependence(data.features, data.s, data.u, rng=5)
        b = sliced_dependence(data.features, data.s, data.u, rng=5)
        assert a == b

    def test_missing_class_rejected(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError, match="lacks"):
            sliced_dependence(x, np.zeros(10, dtype=int),
                              np.zeros(10, dtype=int))

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError, match="mismatch"):
            sliced_dependence(rng.normal(size=(5, 2)), [0, 1], [0, 1])


class TestCorrelationGap:
    def test_zero_for_shared_copula(self, rng):
        n = 3000
        u = rng.integers(0, 2, n)
        s = rng.integers(0, 2, n)
        z = rng.normal(size=(n, 2))
        x = np.column_stack([z[:, 0], 0.7 * z[:, 0] + 0.3 * z[:, 1]])
        gaps = correlation_gap(x, s, u)
        assert all(v < 0.12 for v in gaps.values())

    def test_detects_opposite_correlation(self, copula_biased_data):
        data = copula_biased_data
        gaps = correlation_gap(data.features, data.s, data.u)
        assert all(v > 1.0 for v in gaps.values())  # +0.8 vs -0.8

    def test_needs_two_features(self, rng):
        with pytest.raises(ValidationError, match="two features"):
            correlation_gap(rng.normal(size=(10, 1)),
                            rng.integers(0, 2, 10),
                            rng.integers(0, 2, 10))

    def test_needs_minimum_rows(self, rng):
        x = rng.normal(size=(4, 2))
        with pytest.raises(ValidationError, match=">= 3 rows"):
            correlation_gap(x, [0, 0, 0, 1], [0, 0, 0, 0])

    def test_constant_feature_handled(self, rng):
        n = 200
        x = np.column_stack([np.ones(n), rng.normal(size=n)])
        gaps = correlation_gap(x, rng.integers(0, 2, n),
                               np.zeros(n, dtype=int))
        assert np.isfinite(list(gaps.values())).all()
