"""Tests for the classical fairness proxies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.proxies import (FOUR_FIFTHS, assess_classifier,
                                   conditional_disparate_impact,
                                   conditional_statistical_parity,
                                   disparate_impact, disparate_treatment_gap,
                                   equal_opportunity_difference,
                                   statistical_parity_difference)


class TestDisparateImpact:
    def test_fair_classifier_di_one(self):
        y = np.array([1, 0, 1, 0])
        s = np.array([0, 0, 1, 1])
        assert disparate_impact(y, s) == pytest.approx(1.0)

    def test_known_ratio(self):
        # Pr[y=1|s=0] = 0.25, Pr[y=1|s=1] = 0.75 -> DI = 1/3.
        y = np.array([1, 0, 0, 0, 1, 1, 1, 0])
        s = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert disparate_impact(y, s) == pytest.approx(1.0 / 3.0)

    def test_zero_denominator_inf(self):
        y = np.array([1, 1, 0, 0])
        s = np.array([0, 0, 1, 1])
        assert disparate_impact(y, s) == float("inf")

    def test_both_zero_rates_is_fair(self):
        y = np.zeros(4, dtype=int)
        s = np.array([0, 0, 1, 1])
        assert disparate_impact(y, s) == pytest.approx(1.0)

    def test_missing_group_nan(self):
        y = np.array([1, 0])
        s = np.array([1, 1])
        assert np.isnan(disparate_impact(y, s))

    def test_nonbinary_rejected(self):
        with pytest.raises(ValidationError, match="binary"):
            disparate_impact([0, 2], [0, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="mismatch"):
            disparate_impact([0, 1, 1], [0, 1])


class TestConditionalProxies:
    def test_structural_bias_invisible_conditionally(self, rng):
        # Outcome depends only on u; s correlates with u (structural).
        n = 4000
        u = rng.integers(0, 2, size=n)
        s = (rng.random(n) < (0.3 + 0.4 * u)).astype(int)
        y = (rng.random(n) < (0.2 + 0.6 * u)).astype(int)
        marginal = disparate_impact(y, s)
        conditional = conditional_disparate_impact(y, s, u)
        # Marginal DI flags the structural association ...
        assert abs(marginal - 1.0) > 0.05
        # ... but within each u group the rule is fair.
        for value in conditional.values():
            assert value == pytest.approx(1.0, abs=0.15)

    def test_conditional_statistical_parity_keys(self, rng):
        y = rng.integers(0, 2, size=100)
        s = rng.integers(0, 2, size=100)
        u = rng.integers(0, 2, size=100)
        parity = conditional_statistical_parity(y, s, u)
        assert set(parity) == {0, 1}

    def test_disparate_treatment_zero_for_fair(self):
        y = np.array([1, 1, 0, 0, 1, 1, 0, 0])
        s = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        u = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert disparate_treatment_gap(y, s, u) == pytest.approx(0.0)

    def test_disparate_treatment_detects_gap(self):
        # In u=0 the s=0 members always win, s=1 never.
        y = np.array([1, 1, 0, 0])
        s = np.array([0, 0, 1, 1])
        u = np.zeros(4, dtype=int)
        assert disparate_treatment_gap(y, s, u) == pytest.approx(0.5)


class TestEqualOpportunity:
    def test_zero_for_equal_tpr(self):
        y = np.array([1, 0, 1, 0])
        t = np.array([1, 1, 1, 1])
        s = np.array([0, 0, 1, 1])
        assert equal_opportunity_difference(y, t, s) == pytest.approx(0.0)

    def test_detects_tpr_gap(self):
        y = np.array([1, 1, 0, 0])
        t = np.array([1, 1, 1, 1])
        s = np.array([0, 0, 1, 1])
        assert equal_opportunity_difference(y, t, s) == pytest.approx(1.0)


class TestAssessment:
    def test_bundles_all_proxies(self, rng):
        y = rng.integers(0, 2, size=200)
        s = rng.integers(0, 2, size=200)
        u = rng.integers(0, 2, size=200)
        assessment = assess_classifier(y, s, u)
        assert np.isfinite(assessment.disparate_impact)
        assert set(assessment.conditional_disparate_impact) == {0, 1}
        assert np.isfinite(assessment.statistical_parity)
        assert assessment.disparate_treatment >= 0.0

    def test_four_fifths_rule(self):
        y = np.array([1, 0, 1, 0])
        s = np.array([0, 0, 1, 1])
        assessment = assess_classifier(y, s, np.zeros(4, dtype=int))
        assert assessment.passes_four_fifths

    def test_four_fifths_fails_for_biased(self):
        y = np.array([1, 1, 1, 1, 1, 0, 0, 0])
        s = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assessment = assess_classifier(y, s, np.zeros(8, dtype=int))
        assert not assessment.passes_four_fifths
        assert FOUR_FIFTHS == pytest.approx(0.8)

    def test_four_fifths_symmetric(self):
        # DI of 1.25 (favouring s=0) must also fail... 1.25 -> 1/1.25 = 0.8
        # exactly on the boundary passes; 2.0 fails.
        y = np.array([1, 1, 1, 1, 1, 1, 0, 0])
        s = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assessment = assess_classifier(y, s, np.zeros(8, dtype=int))
        assert not assessment.passes_four_fifths
