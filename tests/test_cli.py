"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import (build_parser, main, read_csv_dataset,
                       write_csv_dataset)
from repro.data.simulated import paper_simulation_spec
from repro.exceptions import DataError


@pytest.fixture
def sample_csv(tmp_path, rng):
    data = paper_simulation_spec().sample(400, rng=rng)
    path = tmp_path / "data.csv"
    write_csv_dataset(data, path)
    return path, data


class TestCsvRoundTrip:
    def test_read_back(self, sample_csv):
        path, original = sample_csv
        loaded = read_csv_dataset(path)
        assert len(loaded) == len(original)
        np.testing.assert_allclose(loaded.features, original.features,
                                   rtol=1e-9)
        np.testing.assert_array_equal(loaded.s, original.s)
        np.testing.assert_array_equal(loaded.u, original.u)
        assert loaded.feature_names == original.feature_names

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            read_csv_dataset(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError, match="empty"):
            read_csv_dataset(path)

    def test_missing_label_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x0,x1\n1.0,2.0\n")
        with pytest.raises(DataError, match="missing required column"):
            read_csv_dataset(path)

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x0,s,u\nabc,0,1\n")
        with pytest.raises(DataError, match="non-numeric"):
            read_csv_dataset(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x0,s,u\n1.0,0\n")
        with pytest.raises(DataError, match="expected 3"):
            read_csv_dataset(path)

    def test_no_feature_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("s,u\n0,1\n")
        with pytest.raises(DataError, match="no feature columns"):
            read_csv_dataset(path)


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        for argv in (["experiment", "table1"],
                     ["design", "r.csv", "p.npz"],
                     ["serve", "--plan", "p.npz"],
                     ["repair", "p.npz", "a.csv", "o.csv"],
                     ["evaluate", "d.csv"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--plan", "p.npz"])
        assert args.workers == 1
        assert args.port == 8321
        assert args.max_batch == 32
        assert not args.no_mmap

    def test_experiment_choices_enforced(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "table9"])


class TestCommands:
    def test_design_repair_evaluate_cycle(self, sample_csv, tmp_path,
                                          capsys):
        data_path, _ = sample_csv
        plan_path = tmp_path / "plan.npz"
        out_path = tmp_path / "repaired.csv"

        assert main(["design", str(data_path), str(plan_path),
                     "--n-states", "20"]) == 0
        assert plan_path.exists()
        assert "designed" in capsys.readouterr().out

        assert main(["repair", str(plan_path), str(data_path),
                     str(out_path), "--seed", "1"]) == 0
        assert out_path.exists()
        assert "repaired" in capsys.readouterr().out

        assert main(["evaluate", str(out_path)]) == 0
        output = capsys.readouterr().out
        assert "E total" in output

    def test_design_sparse_parallel_flags(self, sample_csv, tmp_path,
                                          capsys):
        data_path, _ = sample_csv
        plan_path = tmp_path / "plan.npz"
        out_path = tmp_path / "repaired.csv"
        assert main(["design", str(data_path), str(plan_path),
                     "--n-states", "20", "--sparse-plans",
                     "--n-jobs", "2"]) == 0
        assert "sparse transports" in capsys.readouterr().out
        from repro.core.serialize import load_plan
        plan = load_plan(plan_path)
        assert all(fp.transports[s].is_sparse
                   for fp in plan.feature_plans.values()
                   for s in fp.s_values)
        assert plan.metadata["n_jobs"] == 2
        assert main(["repair", str(plan_path), str(data_path),
                     str(out_path), "--seed", "1"]) == 0
        assert out_path.exists()

    def test_design_compress_flag_loads_identically(self, sample_csv,
                                                    tmp_path, capsys):
        data_path, _ = sample_csv
        plain, packed = tmp_path / "plain.npz", tmp_path / "packed.npz"
        assert main(["design", str(data_path), str(plain),
                     "--n-states", "15"]) == 0
        assert main(["design", str(data_path), str(packed),
                     "--n-states", "15", "--compress"]) == 0
        capsys.readouterr()
        from repro.core.serialize import load_plan
        a, b = load_plan(plain), load_plan(packed)
        for key in a.feature_plans:
            for s in (0, 1):
                np.testing.assert_array_equal(
                    a.feature_plans[key].transports[s].toarray(),
                    b.feature_plans[key].transports[s].toarray())

    def test_evaluate_reports_per_feature(self, sample_csv, capsys):
        data_path, _ = sample_csv
        assert main(["evaluate", str(data_path)]) == 0
        output = capsys.readouterr().out
        assert "E[x1]" in output and "E[x2]" in output

    def test_error_paths_return_nonzero(self, tmp_path, capsys):
        code = main(["evaluate", str(tmp_path / "missing.csv")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_repair_with_missing_plan_fails_cleanly(self, sample_csv,
                                                    tmp_path, capsys):
        data_path, _ = sample_csv
        code = main(["repair", str(tmp_path / "no.npz"),
                     str(data_path), str(tmp_path / "out.csv")])
        assert code == 1


class TestExperimentCommand:
    def test_fig4_small(self, capsys):
        # Smallest artefact; keep the CLI experiment path covered without
        # a heavy run.
        assert main(["experiment", "fig4", "--repeats", "1",
                     "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "converged by nQ" in output

    def test_monge_extension(self, capsys):
        assert main(["experiment", "monge", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Monge" in output

    def test_extension_choices_accepted(self):
        parser = build_parser()
        for artefact in ("tradeoff", "correlation", "monge"):
            args = parser.parse_args(["experiment", artefact])
            assert args.artefact == artefact


class TestBackendAndDtypeFlags:
    def test_design_backend_flag_recorded_in_metadata(self, sample_csv,
                                                      tmp_path, capsys):
        data_path, _ = sample_csv
        plan_path = tmp_path / "plan.npz"
        assert main(["design", str(data_path), str(plan_path),
                     "--n-states", "20", "--backend", "numpy"]) == 0
        assert "backend numpy" in capsys.readouterr().out
        from repro.core.serialize import load_plan
        assert load_plan(plan_path).metadata["backend"] == "numpy"

    def test_design_rejects_unknown_backend_before_reading_csv(
            self, tmp_path, capsys):
        assert main(["design", str(tmp_path / "absent.csv"),
                     str(tmp_path / "plan.npz"),
                     "--backend", "not-a-backend"]) == 1
        err = capsys.readouterr().err
        assert "unknown backend" in err

    def test_design_plan_dtype_float32_round_trips(self, sample_csv,
                                                   tmp_path, capsys):
        data_path, _ = sample_csv
        plan_path = tmp_path / "plan32.npz"
        out_path = tmp_path / "repaired.csv"
        assert main(["design", str(data_path), str(plan_path),
                     "--n-states", "20", "--plan-dtype", "float32"]) == 0
        import json

        import numpy as np

        with np.load(plan_path) as archive:
            header = json.loads(
                bytes(archive["__header__"]).decode("utf-8"))
        assert header["plan_dtype"] == "float32"
        assert main(["repair", str(plan_path), str(data_path),
                     str(out_path), "--seed", "1"]) == 0
        assert out_path.exists()

    def test_backends_command_lists_numpy(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        assert "numpy (default)" in output


class TestSolversCommand:
    def test_lists_registered_solvers(self, capsys):
        assert main(["solvers"]) == 0
        output = capsys.readouterr().out
        for name in ("exact", "simplex", "sinkhorn", "screened", "auto"):
            assert name in output

    def test_design_rejects_unknown_solver_with_names(self, sample_csv,
                                                      tmp_path, capsys):
        data_path, _ = sample_csv
        code = main(["design", str(data_path),
                     str(tmp_path / "plan.npz"), "--solver", "quantum"])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown solver" in err
        assert "screened" in err  # the available names are listed

    def test_design_accepts_registered_solver(self, sample_csv, tmp_path,
                                              capsys):
        data_path, _ = sample_csv
        plan_path = tmp_path / "plan.npz"
        assert main(["design", str(data_path), str(plan_path),
                     "--n-states", "12", "--solver", "lp"]) == 0
        assert plan_path.exists()

    def test_design_solver_opts_threaded_through(self, sample_csv,
                                                 tmp_path, capsys):
        from repro.core.serialize import load_plan

        data_path, _ = sample_csv
        plan_path = tmp_path / "plan.npz"
        assert main(["design", str(data_path), str(plan_path),
                     "--n-states", "64", "--solver", "multiscale",
                     "--solver-opt", "coarsen=4",
                     "--solver-opt", "radius=2"]) == 0
        plan = load_plan(plan_path)
        assert plan.metadata["solver"] == "multiscale"
        assert plan.metadata["solver_opts"] == {"coarsen": 4, "radius": 2}
        record = next(iter(plan.feature_plans.values())).diagnostics[0]
        assert record["solver"] == "multiscale"
        assert record["coarsen"] == 4
        assert record["radius"] == 2

    def test_design_solver_opt_rejects_malformed_pair(self, sample_csv,
                                                      tmp_path, capsys):
        data_path, _ = sample_csv
        code = main(["design", str(data_path), str(tmp_path / "plan.npz"),
                     "--solver-opt", "coarsen"])
        assert code == 1
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_parse_solver_opts_value_conversion(self):
        from repro.cli import _parse_solver_opts

        opts = _parse_solver_opts(["coarsen=4", "epsilon=1e-2",
                                   "coarse_method=lp",
                                   "raise_on_failure=False"])
        assert opts == {"coarsen": 4, "epsilon": 1e-2,
                        "coarse_method": "lp",
                        "raise_on_failure": False}
        assert isinstance(opts["coarsen"], int)
        assert isinstance(opts["epsilon"], float)
        assert opts["raise_on_failure"] is False


class TestServeFlags:
    def test_design_plan_shard_writes_manifest(self, sample_csv,
                                               tmp_path, capsys):
        from repro.core.serialize import load_plan

        data_path, _ = sample_csv
        out = tmp_path / "plan.npz"
        assert main(["design", str(data_path), str(out), "--n-states",
                     "16", "--plan-shard", "u"]) == 0
        manifest = tmp_path / "plan.manifest.json"
        assert manifest.exists()
        assert str(manifest) in capsys.readouterr().out
        assert load_plan(manifest).n_features >= 1

    def test_design_plan_shard_integer_count(self, sample_csv, tmp_path):
        data_path, _ = sample_csv
        assert main(["design", str(data_path),
                     str(tmp_path / "plan.npz"), "--n-states", "16",
                     "--plan-shard", "2"]) == 0
        assert (tmp_path / "plan.manifest.json").exists()

    def test_design_index_dtype_int64(self, sample_csv, tmp_path):
        data_path, _ = sample_csv
        out = tmp_path / "plan.npz"
        assert main(["design", str(data_path), str(out), "--n-states",
                     "16", "--sparse-plans", "--index-dtype",
                     "int64"]) == 0
        with np.load(out) as archive:
            index_keys = [key for key in archive.files
                          if key.endswith("_indices")]
            assert index_keys
            assert all(archive[key].dtype == np.int64
                       for key in index_keys)

    def test_serve_missing_plan_fails_cleanly(self, tmp_path, capsys):
        code = main(["serve", "--plan", str(tmp_path / "absent.npz")])
        assert code == 1
        assert "not found" in capsys.readouterr().err
