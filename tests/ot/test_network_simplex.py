"""Tests for the transportation-simplex exact solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InfeasibleProblemError, ValidationError
from repro.ot.cost import squared_euclidean_cost
from repro.ot.lp import transport_lp
from repro.ot.network_simplex import solve_transport, transport_simplex
from repro.ot.onedim import wasserstein_1d


class TestBasics:
    def test_identity_problem(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        plan = transport_simplex(cost, [0.5, 0.5], [0.5, 0.5])
        np.testing.assert_allclose(plan, np.eye(2) * 0.5, atol=1e-12)

    def test_anti_identity_problem(self):
        cost = np.array([[1.0, 0.0], [0.0, 1.0]])
        plan = transport_simplex(cost, [0.5, 0.5], [0.5, 0.5])
        np.testing.assert_allclose(plan, (1 - np.eye(2)) * 0.5, atol=1e-12)

    def test_rectangular_problem(self, rng):
        cost = rng.random((4, 7))
        mu = rng.dirichlet(np.ones(4))
        nu = rng.dirichlet(np.ones(7))
        plan = transport_simplex(cost, mu, nu)
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-9)
        np.testing.assert_allclose(plan.sum(axis=0), nu, atol=1e-9)
        assert np.all(plan >= -1e-12)

    def test_marginals_with_zeros(self):
        cost = np.arange(9.0).reshape(3, 3)
        mu = np.array([0.5, 0.0, 0.5])
        nu = np.array([0.0, 1.0, 0.0])
        plan = transport_simplex(cost, mu, nu)
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-9)
        np.testing.assert_allclose(plan.sum(axis=0), nu, atol=1e-9)

    def test_bad_cost_shape_rejected(self):
        with pytest.raises(ValidationError, match="2-D"):
            transport_simplex(np.zeros(3), [1.0], [1.0])

    def test_size_mismatch_rejected(self):
        with pytest.raises(InfeasibleProblemError, match="incompatible"):
            transport_simplex(np.zeros((2, 2)), [0.5, 0.5],
                              [0.3, 0.3, 0.4])


class TestOptimality:
    @pytest.mark.parametrize("n,m", [(3, 3), (5, 8), (10, 6), (12, 12)])
    def test_matches_linprog_oracle(self, rng, n, m):
        cost = rng.random((n, m))
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(m))
        simplex_plan = transport_simplex(cost, mu, nu)
        oracle_plan = transport_lp(cost, mu, nu)
        assert np.sum(cost * simplex_plan) == pytest.approx(
            np.sum(cost * oracle_plan), rel=1e-7, abs=1e-10)

    def test_matches_1d_closed_form(self, rng):
        xs = np.sort(rng.normal(size=9))
        ys = np.sort(rng.normal(size=9))
        mu = rng.dirichlet(np.ones(9))
        nu = rng.dirichlet(np.ones(9))
        cost = squared_euclidean_cost(xs.reshape(-1, 1), ys.reshape(-1, 1))
        plan = transport_simplex(cost, mu, nu)
        w2_sq = wasserstein_1d(xs, mu, ys, nu, p=2) ** 2
        assert np.sum(cost * plan) == pytest.approx(w2_sq, rel=1e-8)

    def test_degenerate_uniform_cost(self):
        # Any coupling is optimal; solver must terminate and be feasible.
        cost = np.ones((5, 5))
        mu = np.full(5, 0.2)
        plan = transport_simplex(cost, mu, mu)
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-9)
        assert np.sum(cost * plan) == pytest.approx(1.0)

    def test_integer_costs_with_ties(self, rng):
        cost = rng.integers(0, 3, size=(6, 6)).astype(float)
        mu = rng.dirichlet(np.ones(6))
        nu = rng.dirichlet(np.ones(6))
        plan = transport_simplex(cost, mu, nu)
        oracle = transport_lp(cost, mu, nu)
        assert np.sum(cost * plan) == pytest.approx(
            np.sum(cost * oracle), rel=1e-7, abs=1e-10)


class TestSolveTransportWrapper:
    def test_returns_transport_plan_with_cost(self, rng):
        cost = rng.random((3, 4))
        mu = rng.dirichlet(np.ones(3))
        nu = rng.dirichlet(np.ones(4))
        plan = solve_transport(cost, mu, nu)
        assert plan.shape == (3, 4)
        assert plan.cost == pytest.approx(np.sum(cost * plan.matrix))

    def test_default_integer_supports(self, rng):
        plan = solve_transport(rng.random((2, 3)), [0.5, 0.5],
                               [0.4, 0.3, 0.3])
        np.testing.assert_allclose(plan.source_support.ravel(), [0.0, 1.0])
        np.testing.assert_allclose(plan.target_support.ravel(),
                                   [0.0, 1.0, 2.0])

    def test_explicit_supports_attached(self, rng):
        xs = rng.normal(size=(3, 2))
        ys = rng.normal(size=(3, 2))
        cost = squared_euclidean_cost(xs, ys)
        plan = solve_transport(cost, np.full(3, 1 / 3), np.full(3, 1 / 3),
                               xs, ys)
        np.testing.assert_allclose(plan.source_support, xs)
