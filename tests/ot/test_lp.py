"""Tests for the scipy-linprog transport oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot.lp import solve_transport_lp, transport_lp
from repro.ot.onedim import wasserstein_1d


class TestTransportLp:
    def test_couples_marginals(self, rng):
        cost = rng.random((5, 6))
        mu = rng.dirichlet(np.ones(5))
        nu = rng.dirichlet(np.ones(6))
        plan = transport_lp(cost, mu, nu)
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-8)
        np.testing.assert_allclose(plan.sum(axis=0), nu, atol=1e-8)
        assert np.all(plan >= 0.0)

    def test_1d_value_matches_closed_form(self, rng):
        xs = rng.normal(size=7)
        ys = rng.normal(size=7)
        mu = rng.dirichlet(np.ones(7))
        nu = rng.dirichlet(np.ones(7))
        cost = np.abs(xs[:, None] - ys[None, :]) ** 2
        plan = transport_lp(cost, mu, nu)
        w2_sq = wasserstein_1d(xs, mu, ys, nu, p=2) ** 2
        assert np.sum(cost * plan) == pytest.approx(w2_sq, rel=1e-7)

    def test_point_mass(self):
        plan = transport_lp(np.array([[3.0]]), [1.0], [1.0])
        np.testing.assert_allclose(plan, [[1.0]])

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValidationError):
            transport_lp(np.zeros((2, 2)), [1.0], [0.5, 0.5])
        with pytest.raises(ValidationError, match="2-D"):
            transport_lp(np.zeros(4), [0.5, 0.5], [0.5, 0.5])


class TestWrapper:
    def test_plan_object_and_cost(self, rng):
        cost = rng.random((3, 3))
        mu = rng.dirichlet(np.ones(3))
        nu = rng.dirichlet(np.ones(3))
        plan = solve_transport_lp(cost, mu, nu)
        assert plan.cost == pytest.approx(np.sum(cost * plan.matrix))
        plan.verify(mu, nu, atol=1e-7)
