"""Tests for the TransportPlan container."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ValidationError
from repro.ot.coupling import (SPARSE_DENSITY_THRESHOLD, TransportPlan,
                               is_coupling, marginal_residual,
                               sample_conditional_rows)


@pytest.fixture
def simple_plan():
    matrix = np.array([[0.2, 0.1], [0.0, 0.7]])
    return TransportPlan(matrix, [0.0, 1.0], [0.0, 1.0])


@pytest.fixture
def banded_matrix(rng):
    """A 30x30 near-monotone plan with ~3 entries per row."""
    n = 30
    matrix = np.zeros((n, n))
    for i in range(n):
        cols = np.clip(np.arange(i - 1, i + 2), 0, n - 1)
        matrix[i, cols] = rng.random(cols.size) + 0.05
    return matrix / matrix.sum()


class TestConstruction:
    def test_marginals(self, simple_plan):
        np.testing.assert_allclose(simple_plan.source_weights, [0.3, 0.7])
        np.testing.assert_allclose(simple_plan.target_weights, [0.2, 0.8])

    def test_supports_promoted_to_2d(self, simple_plan):
        assert simple_plan.source_support.shape == (2, 1)
        assert simple_plan.target_support.shape == (2, 1)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            TransportPlan(np.array([[-0.5, 0.5], [0.5, 0.5]]),
                          [0.0, 1.0], [0.0, 1.0])

    def test_support_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="points"):
            TransportPlan(np.eye(2) / 2, [0.0, 1.0, 2.0], [0.0, 1.0])

    def test_non_2d_matrix_rejected(self):
        with pytest.raises(ValidationError, match="2-D"):
            TransportPlan(np.zeros(3), [0.0, 1.0, 2.0], [0.0])

    def test_nonfinite_support_rejected(self):
        with pytest.raises(ValidationError, match="non-finite"):
            TransportPlan(np.eye(2) / 2, [0.0, np.nan], [0.0, 1.0])


class TestVerify:
    def test_verify_accepts_true_marginals(self, simple_plan):
        simple_plan.verify([0.3, 0.7], [0.2, 0.8])

    def test_verify_rejects_wrong_marginals(self, simple_plan):
        with pytest.raises(ValidationError, match="coupling constraints"):
            simple_plan.verify([0.5, 0.5], [0.2, 0.8])

    def test_verify_rejects_wrong_shape(self, simple_plan):
        with pytest.raises(ValidationError, match="incompatible"):
            simple_plan.verify([0.3, 0.4, 0.3], [0.2, 0.8])


class TestOperations:
    def test_conditional_row_normalised(self, simple_plan):
        row = simple_plan.conditional_row(0)
        np.testing.assert_allclose(row.sum(), 1.0)
        np.testing.assert_allclose(row, [2.0 / 3.0, 1.0 / 3.0])

    def test_conditional_row_zero_mass_falls_back_to_nearest(self):
        matrix = np.array([[0.0, 0.0], [0.5, 0.5]])
        plan = TransportPlan(matrix, [0.0, 10.0], [1.0, 9.0])
        row = plan.conditional_row(0)
        np.testing.assert_allclose(row, [1.0, 0.0])  # 1.0 is nearest to 0.0

    def test_conditional_matrix_rows_sum_to_one(self, simple_plan):
        conditionals = simple_plan.conditional_matrix()
        np.testing.assert_allclose(conditionals.sum(axis=1), 1.0)

    def test_barycentric_projection(self, simple_plan):
        projected = simple_plan.barycentric_projection()
        # Row 0: (0.2 * 0 + 0.1 * 1) / 0.3; row 1: all mass on target 1.
        np.testing.assert_allclose(projected.ravel(), [1.0 / 3.0, 1.0])

    def test_expected_cost(self, simple_plan):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert simple_plan.expected_cost(cost) == pytest.approx(0.1)

    def test_expected_cost_shape_mismatch(self, simple_plan):
        with pytest.raises(ValidationError, match="cost shape"):
            simple_plan.expected_cost(np.zeros((3, 3)))

    def test_transpose_swaps_marginals(self, simple_plan):
        reverse = simple_plan.transpose()
        np.testing.assert_allclose(reverse.source_weights,
                                   simple_plan.target_weights)
        np.testing.assert_allclose(reverse.matrix, simple_plan.matrix.T)


class TestSparseStorage:
    """The CSR-backed mode must agree operation-for-operation with dense."""

    @pytest.fixture
    def pair(self, banded_matrix):
        nodes = np.linspace(0.0, 1.0, banded_matrix.shape[0])
        dense = TransportPlan(banded_matrix, nodes, nodes, 0.25)
        return dense, dense.to_sparse()

    def test_storage_flags(self, pair):
        dense, sparse_plan = pair
        assert not dense.is_sparse and sparse_plan.is_sparse
        assert sparse_plan.nnz == dense.nnz
        assert sparse_plan.density == pytest.approx(dense.density)
        assert sparse_plan.density < SPARSE_DENSITY_THRESHOLD
        assert not sparse_plan.to_dense().is_sparse
        np.testing.assert_array_equal(sparse_plan.toarray(), dense.matrix)

    def test_from_sparse_triplet(self, pair):
        dense, sparse_plan = pair
        m = sparse_plan.matrix
        rebuilt = TransportPlan.from_sparse(
            (m.data, m.indices, m.indptr), sparse_plan.source_support,
            sparse_plan.target_support, 0.25, shape=m.shape)
        assert rebuilt.is_sparse
        np.testing.assert_array_equal(rebuilt.toarray(), dense.matrix)

    def test_from_sparse_triplet_needs_shape(self, pair):
        _, sparse_plan = pair
        m = sparse_plan.matrix
        with pytest.raises(ValidationError, match="shape"):
            TransportPlan.from_sparse((m.data, m.indices, m.indptr),
                                      sparse_plan.source_support,
                                      sparse_plan.target_support)

    def test_marginals_match(self, pair):
        dense, sparse_plan = pair
        np.testing.assert_allclose(sparse_plan.source_weights,
                                   dense.source_weights)
        np.testing.assert_allclose(sparse_plan.target_weights,
                                   dense.target_weights)
        sparse_plan.verify(dense.source_weights, dense.target_weights)

    def test_conditionals_match_and_stay_sparse(self, pair):
        dense, sparse_plan = pair
        conditionals = sparse_plan.conditional_matrix()
        assert sparse.issparse(conditionals)
        np.testing.assert_allclose(np.asarray(conditionals.todense()),
                                   dense.conditional_matrix(), atol=1e-15)
        for i in (0, 7, 29):
            np.testing.assert_allclose(sparse_plan.conditional_row(i),
                                       dense.conditional_row(i))

    def test_zero_row_fallback_matches(self, rng):
        matrix = np.array([[0.0, 0.0, 0.0], [0.2, 0.3, 0.0],
                           [0.0, 0.1, 0.4]])
        nodes = np.array([0.0, 5.0, 10.0])
        dense = TransportPlan(matrix, nodes, nodes)
        sparse_plan = dense.to_sparse()
        np.testing.assert_allclose(
            np.asarray(sparse_plan.conditional_matrix().todense()),
            dense.conditional_matrix())
        # Row 0 is empty: both point-mass on the nearest target (node 0).
        np.testing.assert_allclose(dense.conditional_matrix()[0],
                                   [1.0, 0.0, 0.0])

    def test_barycentric_projection_matches(self, pair):
        dense, sparse_plan = pair
        np.testing.assert_allclose(sparse_plan.barycentric_projection(),
                                   dense.barycentric_projection(),
                                   atol=1e-15)

    def test_expected_cost_matches(self, pair, rng):
        dense, sparse_plan = pair
        cost = rng.random(dense.shape)
        assert sparse_plan.expected_cost(cost) == pytest.approx(
            dense.expected_cost(cost))

    def test_transpose_keeps_sparsity(self, pair):
        dense, sparse_plan = pair
        reverse = sparse_plan.transpose()
        assert reverse.is_sparse
        np.testing.assert_array_equal(reverse.toarray(), dense.matrix.T)

    def test_negative_sparse_entries_rejected(self):
        matrix = sparse.csr_array(np.array([[-0.5, 0.5], [0.5, 0.5]]))
        with pytest.raises(ValidationError, match="non-negative"):
            TransportPlan(matrix, [0.0, 1.0], [0.0, 1.0])

    def test_helpers_accept_sparse(self, pair):
        dense, sparse_plan = pair
        mu, nu = dense.source_weights, dense.target_weights
        assert marginal_residual(sparse_plan.matrix, mu,
                                 nu) == pytest.approx(0.0)
        assert is_coupling(sparse_plan.matrix, mu, nu)
        assert not is_coupling(sparse_plan.matrix, np.roll(mu, 1), nu)


class TestSampleConditionalRows:
    def test_sparse_matches_dense_draws(self, banded_matrix, rng):
        nodes = np.linspace(0.0, 1.0, banded_matrix.shape[0])
        dense = TransportPlan(banded_matrix, nodes, nodes)
        sparse_plan = dense.to_sparse()
        rows = rng.integers(0, 30, size=500)
        draws = rng.random(500)
        dense_states = sample_conditional_rows(
            dense.conditional_matrix(), rows, draws)
        sparse_states = sample_conditional_rows(
            sparse_plan.conditional_matrix(), rows, draws)
        np.testing.assert_array_equal(dense_states, sparse_states)
        np.testing.assert_array_equal(
            sparse_plan.sample_conditional(rows, draws), dense_states)

    def test_extreme_draws_stay_in_row_support(self, banded_matrix):
        nodes = np.linspace(0.0, 1.0, banded_matrix.shape[0])
        conditionals = TransportPlan(banded_matrix, nodes,
                                     nodes).to_sparse().conditional_matrix()
        rows = np.arange(30)
        lo_states = sample_conditional_rows(conditionals, rows,
                                            np.full(30, 1e-12))
        hi_states = sample_conditional_rows(conditionals, rows,
                                            np.ones(30) - 1e-12)
        dense_cond = np.asarray(conditionals.todense())
        for r, state in zip(rows, lo_states):
            assert dense_cond[r, state] > 0.0
        for r, state in zip(rows, hi_states):
            assert dense_cond[r, state] > 0.0

    def test_empty_rows_rejected(self):
        conditionals = sparse.csr_array(
            np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(ValidationError, match="empty rows"):
            sample_conditional_rows(conditionals, np.array([1]),
                                    np.array([0.5]))


class TestHelpers:
    def test_marginal_residual_zero_for_exact(self, simple_plan):
        assert marginal_residual(simple_plan.matrix, [0.3, 0.7],
                                 [0.2, 0.8]) == pytest.approx(0.0)

    def test_is_coupling_true(self, simple_plan):
        assert is_coupling(simple_plan.matrix, np.array([0.3, 0.7]),
                           np.array([0.2, 0.8]))

    def test_is_coupling_false_on_negative(self):
        matrix = np.array([[-0.1, 0.6], [0.3, 0.2]])
        assert not is_coupling(matrix, np.array([0.5, 0.5]),
                               np.array([0.2, 0.8]))

    def test_is_coupling_false_on_marginal_violation(self, simple_plan):
        assert not is_coupling(simple_plan.matrix, np.array([0.5, 0.5]),
                               np.array([0.2, 0.8]))
