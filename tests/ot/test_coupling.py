"""Tests for the TransportPlan container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot.coupling import TransportPlan, is_coupling, marginal_residual


@pytest.fixture
def simple_plan():
    matrix = np.array([[0.2, 0.1], [0.0, 0.7]])
    return TransportPlan(matrix, [0.0, 1.0], [0.0, 1.0])


class TestConstruction:
    def test_marginals(self, simple_plan):
        np.testing.assert_allclose(simple_plan.source_weights, [0.3, 0.7])
        np.testing.assert_allclose(simple_plan.target_weights, [0.2, 0.8])

    def test_supports_promoted_to_2d(self, simple_plan):
        assert simple_plan.source_support.shape == (2, 1)
        assert simple_plan.target_support.shape == (2, 1)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            TransportPlan(np.array([[-0.5, 0.5], [0.5, 0.5]]),
                          [0.0, 1.0], [0.0, 1.0])

    def test_support_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="points"):
            TransportPlan(np.eye(2) / 2, [0.0, 1.0, 2.0], [0.0, 1.0])

    def test_non_2d_matrix_rejected(self):
        with pytest.raises(ValidationError, match="2-D"):
            TransportPlan(np.zeros(3), [0.0, 1.0, 2.0], [0.0])

    def test_nonfinite_support_rejected(self):
        with pytest.raises(ValidationError, match="non-finite"):
            TransportPlan(np.eye(2) / 2, [0.0, np.nan], [0.0, 1.0])


class TestVerify:
    def test_verify_accepts_true_marginals(self, simple_plan):
        simple_plan.verify([0.3, 0.7], [0.2, 0.8])

    def test_verify_rejects_wrong_marginals(self, simple_plan):
        with pytest.raises(ValidationError, match="coupling constraints"):
            simple_plan.verify([0.5, 0.5], [0.2, 0.8])

    def test_verify_rejects_wrong_shape(self, simple_plan):
        with pytest.raises(ValidationError, match="incompatible"):
            simple_plan.verify([0.3, 0.4, 0.3], [0.2, 0.8])


class TestOperations:
    def test_conditional_row_normalised(self, simple_plan):
        row = simple_plan.conditional_row(0)
        np.testing.assert_allclose(row.sum(), 1.0)
        np.testing.assert_allclose(row, [2.0 / 3.0, 1.0 / 3.0])

    def test_conditional_row_zero_mass_falls_back_to_nearest(self):
        matrix = np.array([[0.0, 0.0], [0.5, 0.5]])
        plan = TransportPlan(matrix, [0.0, 10.0], [1.0, 9.0])
        row = plan.conditional_row(0)
        np.testing.assert_allclose(row, [1.0, 0.0])  # 1.0 is nearest to 0.0

    def test_conditional_matrix_rows_sum_to_one(self, simple_plan):
        conditionals = simple_plan.conditional_matrix()
        np.testing.assert_allclose(conditionals.sum(axis=1), 1.0)

    def test_barycentric_projection(self, simple_plan):
        projected = simple_plan.barycentric_projection()
        # Row 0: (0.2 * 0 + 0.1 * 1) / 0.3; row 1: all mass on target 1.
        np.testing.assert_allclose(projected.ravel(), [1.0 / 3.0, 1.0])

    def test_expected_cost(self, simple_plan):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert simple_plan.expected_cost(cost) == pytest.approx(0.1)

    def test_expected_cost_shape_mismatch(self, simple_plan):
        with pytest.raises(ValidationError, match="cost shape"):
            simple_plan.expected_cost(np.zeros((3, 3)))

    def test_transpose_swaps_marginals(self, simple_plan):
        reverse = simple_plan.transpose()
        np.testing.assert_allclose(reverse.source_weights,
                                   simple_plan.target_weights)
        np.testing.assert_allclose(reverse.matrix, simple_plan.matrix.T)


class TestHelpers:
    def test_marginal_residual_zero_for_exact(self, simple_plan):
        assert marginal_residual(simple_plan.matrix, [0.3, 0.7],
                                 [0.2, 0.8]) == pytest.approx(0.0)

    def test_is_coupling_true(self, simple_plan):
        assert is_coupling(simple_plan.matrix, np.array([0.3, 0.7]),
                           np.array([0.2, 0.8]))

    def test_is_coupling_false_on_negative(self):
        matrix = np.array([[-0.1, 0.6], [0.3, 0.2]])
        assert not is_coupling(matrix, np.array([0.5, 0.5]),
                               np.array([0.2, 0.8]))

    def test_is_coupling_false_on_marginal_violation(self, simple_plan):
        assert not is_coupling(simple_plan.matrix, np.array([0.5, 0.5]),
                               np.array([0.2, 0.8]))
