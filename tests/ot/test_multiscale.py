"""Tests for the multiscale coarsen-solve-refine solver.

Covers the four layers of the tentpole: the coarsening step (grid
binning, marginal aggregation, cost handling), the support-mask helpers,
the registered ``"multiscale"`` solver's contract (near-LP value, CSR
plan, mask semantics, validation), and the auto-dispatch rule for very
large 1-D problems.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot import (OTProblem, auto_method, available_solvers,
                      coarsen_problem, default_coarsen_factor, dilate_mask,
                      north_west_corner, north_west_corner_support,
                      refine_mask, solve)
from repro.ot.solve import MULTISCALE_AUTO_LIMIT


def gaussian_grid_problem(n, *, explicit_cost=False, support_mask=None):
    """A smooth two-bump/one-bump pair on a shared uniform grid."""
    nodes = np.linspace(-3.0, 3.0, n)
    mu = (np.exp(-0.5 * (nodes + 1.0) ** 2)
          + 0.3 * np.exp(-2.0 * (nodes - 0.5) ** 2))
    nu = np.exp(-0.5 * (nodes - 1.0) ** 2)
    mu /= mu.sum()
    nu /= nu.sum()
    kwargs = dict(source_weights=mu, target_weights=nu,
                  source_support=nodes, target_support=nodes,
                  support_mask=support_mask)
    if explicit_cost:
        kwargs["cost"] = np.square(nodes[:, None] - nodes[None, :])
    return OTProblem(**kwargs)


class TestMaskHelpers:
    def test_dilate_spreads_to_neighbourhood(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        out = dilate_mask(mask, radius=1)
        assert out[1:4, 1:4].all()
        assert out.sum() == 9

    def test_dilate_clips_at_edges(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = True
        out = dilate_mask(mask, radius=2)
        assert out.all()  # radius 2 from a corner covers a 3x3 matrix

    def test_dilate_radius_zero_is_copy(self):
        mask = np.eye(4, dtype=bool)
        out = dilate_mask(mask, radius=0)
        assert np.array_equal(out, mask)
        assert out is not mask

    def test_dilate_validates(self):
        with pytest.raises(ValidationError, match="2-D"):
            dilate_mask(np.zeros(3, dtype=bool))
        with pytest.raises(ValidationError, match="radius"):
            dilate_mask(np.zeros((2, 2), dtype=bool), radius=-1)

    def test_refine_expands_by_bins(self):
        coarse = np.array([[True, False], [False, True]])
        fine = refine_mask(coarse, [0, 0, 1, 1], [0, 1])
        expected = np.array([[True, False], [True, False],
                             [False, True], [False, True]])
        assert np.array_equal(fine, expected)

    def test_refine_validates_bin_range(self):
        coarse = np.zeros((2, 2), dtype=bool)
        with pytest.raises(ValidationError, match="out of range"):
            refine_mask(coarse, [0, 2], [0])

    def test_nw_support_matches_dense_nw_plan(self, rng):
        mu = rng.dirichlet(np.ones(9))
        nu = rng.dirichlet(np.ones(13))
        rows, cols = north_west_corner_support(mu, nu)
        dense = north_west_corner(mu, nu)
        mask = np.zeros(dense.shape, dtype=bool)
        mask[rows, cols] = True
        # Every mass-carrying entry of the dense staircase is covered.
        assert mask[dense > 0.0].all()
        # And the staircase stays O(n + m).
        assert rows.size <= mu.size + nu.size


class TestCoarsening:
    def test_coarse_marginals_conserve_mass(self):
        problem = gaussian_grid_problem(160)
        coarse, source_bins, target_bins = coarsen_problem(problem, 8)
        assert coarse.shape == (20, 20)
        assert coarse.source_weights.sum() == pytest.approx(1.0)
        assert source_bins.shape == (160,)
        assert source_bins.min() == 0 and source_bins.max() == 19
        # Bin centres are mass-weighted means, so they stay in range.
        assert coarse.source_support.min() >= -3.0
        assert coarse.source_support.max() <= 3.0

    def test_explicit_cost_is_aggregated(self):
        problem = gaussian_grid_problem(64, explicit_cost=True)
        coarse, _, _ = coarsen_problem(problem, 4)
        assert coarse.cost is not None
        assert coarse.cost.shape == (16, 16)
        # Aggregated squared-distance cost keeps the diagonal cheapest.
        assert np.all(np.argmin(coarse.cost, axis=1)
                      == np.arange(16))

    def test_metric_cost_passes_through(self):
        problem = gaussian_grid_problem(64)
        coarse, _, _ = coarsen_problem(problem, 4)
        assert coarse.cost is None
        assert coarse.is_monotone_solvable

    def test_needs_one_dimensional_supports(self, rng):
        problem = OTProblem(source_weights=[0.5, 0.5],
                            target_weights=[0.5, 0.5],
                            cost=rng.random((2, 2)))
        with pytest.raises(ValidationError, match="1-D"):
            coarsen_problem(problem, 2)

    def test_factor_validated(self):
        problem = gaussian_grid_problem(16)
        with pytest.raises(ValidationError, match="coarsen"):
            coarsen_problem(problem, 1)

    def test_default_factor(self):
        assert default_coarsen_factor(500) == 4
        assert default_coarsen_factor(5000) == 4


class TestMultiscaleSolver:
    def test_registered(self):
        assert "multiscale" in available_solvers()

    def test_matches_lp_oracle_within_one_percent(self):
        problem = gaussian_grid_problem(300)
        multiscale = solve(problem, method="multiscale")
        lp = solve(problem, method="lp")
        # The acceptance bound is 1%; in practice the restricted LP is
        # exact to solver precision on monotone-structured problems.
        assert multiscale.value <= lp.value * 1.01
        assert multiscale.value == pytest.approx(lp.value, rel=1e-6)
        assert multiscale.marginal_residual <= 1e-8
        assert multiscale.converged

    def test_returns_csr_plan_with_sparse_support(self):
        problem = gaussian_grid_problem(300)
        result = solve(problem, method="multiscale")
        assert result.plan.is_sparse
        assert result.extras["support_density"] < 0.25
        assert result.extras["coarse_solver"] == "exact"
        assert result.extras["coarsen"] == default_coarsen_factor(300)

    def test_explicit_cost_path(self):
        problem = gaussian_grid_problem(120, explicit_cost=True)
        lp = solve(problem, method="lp")
        result = solve(problem, method="multiscale", coarsen=4)
        assert result.value == pytest.approx(lp.value, rel=1e-6)
        # Explicit cost disables the monotone shortcut at the coarse
        # level; dispatch picks an exact general solver instead.
        assert result.extras["coarse_solver"] in ("simplex", "lp")

    def test_support_mask_unioned_in(self):
        n = 80
        mask = np.zeros((n, n), dtype=bool)
        mask[0, :] = True
        problem = gaussian_grid_problem(n, support_mask=mask)
        result = solve(problem, method="multiscale", coarsen=4)
        unmasked = solve(gaussian_grid_problem(n), method="multiscale",
                         coarsen=4)
        assert result.extras["support_size"] \
            >= unmasked.extras["support_size"]
        assert result.marginal_residual <= 1e-8

    def test_radius_zero_still_feasible(self):
        problem = gaussian_grid_problem(100)
        result = solve(problem, method="multiscale", radius=0)
        assert result.marginal_residual <= 1e-8

    def test_wider_radius_never_worse(self):
        problem = gaussian_grid_problem(150)
        narrow = solve(problem, method="multiscale", radius=1)
        wide = solve(problem, method="multiscale", radius=3)
        assert wide.value <= narrow.value + 1e-12
        assert wide.extras["support_size"] > narrow.extras["support_size"]

    def test_rejects_problems_without_supports(self, rng):
        problem = OTProblem(source_weights=[0.5, 0.5],
                            target_weights=[0.5, 0.5],
                            cost=rng.random((2, 2)))
        with pytest.raises(ValidationError, match="1-D"):
            solve(problem, method="multiscale")

    def test_value_reported_without_densifying_cost(self):
        # The value shortcut must agree with the recomputed <C, plan>.
        problem = gaussian_grid_problem(200)
        result = solve(problem, method="multiscale")
        recomputed = result.plan.expected_cost(problem.cost_matrix())
        assert result.value == pytest.approx(recomputed, abs=1e-12)


class TestAutoDispatch:
    """Auto picks multiscale only for large 1-D *metric-cost* problems —
    in practice masked ones, since unmasked metric 1-D problems are
    monotone-solvable and dispatch to the closed form first."""

    @staticmethod
    def _large_1d(n, **kwargs):
        nodes = np.linspace(0.0, 1.0, n)
        weights = np.full(n, 1.0 / n)
        return OTProblem(source_weights=weights, target_weights=weights,
                         source_support=nodes, target_support=nodes,
                         **kwargs)

    def test_masked_large_metric_goes_multiscale(self):
        n = MULTISCALE_AUTO_LIMIT
        problem = self._large_1d(n, support_mask=np.eye(n, dtype=bool))
        assert auto_method(problem) == "multiscale"

    def test_large_explicit_cost_stays_screened(self):
        # The coarse support heuristic is only geometry-certified for
        # metric costs; an arbitrary explicit cost — even with 1-D
        # supports — must keep routing to the screened hybrid, whose
        # Sinkhorn screen works on the true cost.
        n = MULTISCALE_AUTO_LIMIT
        problem = self._large_1d(n, cost=np.zeros((n, n)))
        assert auto_method(problem) == "screened"

    def test_large_without_supports_stays_screened(self):
        n = MULTISCALE_AUTO_LIMIT
        problem = OTProblem(source_weights=np.full(n, 1.0 / n),
                            target_weights=np.full(n, 1.0 / n),
                            cost=np.zeros((n, n)))
        assert auto_method(problem) == "screened"

    def test_monotone_still_wins_at_any_size(self):
        problem = self._large_1d(MULTISCALE_AUTO_LIMIT)
        assert auto_method(problem) == "exact"

    def test_explicit_cost_reports_unconverged(self):
        # Exact restricted LP, but the support heuristic is uncertified
        # off the metric family: the result must not claim convergence.
        problem = gaussian_grid_problem(120, explicit_cost=True)
        result = solve(problem, method="multiscale", coarsen=4)
        assert not result.converged
        assert result.extras["geometry_aligned"] is False
        metric = solve(gaussian_grid_problem(120), method="multiscale",
                       coarsen=4)
        assert metric.converged
        assert metric.extras["geometry_aligned"] is True


class TestDesignIntegration:
    def test_design_feature_plan_with_multiscale(self, rng):
        samples = {0: rng.normal(-0.5, 1.0, size=120),
                   1: rng.normal(0.5, 1.2, size=140)}
        from repro.core.design import design_feature_plan
        plan = design_feature_plan(samples, 96, solver="multiscale",
                                   solver_opts={"coarsen": 4, "radius": 2})
        for s in (0, 1):
            assert plan.diagnostics[s]["solver"] == "multiscale"
            assert plan.diagnostics[s]["coarsen"] == 4
            assert plan.diagnostics[s]["radius"] == 2
            plan.transports[s].verify(plan.marginals[s], plan.barycenter)

    def test_solver_opts_filtered_for_other_solvers(self, rng):
        # Multiscale-only knobs offered alongside the exact solver are
        # dropped by signature filtering, not crash-inducing.
        samples = {0: rng.normal(size=60), 1: rng.normal(size=60)}
        from repro.core.design import design_feature_plan
        plan = design_feature_plan(samples, 32, solver="exact",
                                   solver_opts={"coarsen": 4})
        assert plan.diagnostics[0]["solver"] == "exact"

    def test_design_repair_records_solver_opts(self):
        from repro.core.design import design_repair
        from repro.data.simulated import simulate_paper_data
        split = simulate_paper_data(n_research=80, n_archive=80, rng=5)
        plan = design_repair(split.research, 48, solver="multiscale",
                             solver_opts={"coarsen": 6})
        assert plan.metadata["solver"] == "multiscale"
        assert plan.metadata["solver_opts"] == {"coarsen": 6}


class TestRestrictedEngine:
    """The restricted solve's two engines (native network simplex vs the
    scipy LP oracle) and the index-sparse refine path must be
    interchangeable on the observable contract."""

    def test_engines_agree_on_value_and_plan(self):
        problem = gaussian_grid_problem(150)
        native = solve(problem, method="multiscale", coarsen=5,
                       restricted_engine="network_simplex")
        oracle = solve(problem, method="multiscale", coarsen=5,
                       restricted_engine="lp")
        assert native.extras["restricted_engine"] == "network_simplex"
        assert oracle.extras["restricted_engine"] == "lp"
        assert native.value == pytest.approx(oracle.value, abs=1e-9)
        assert np.allclose(native.plan.toarray(), oracle.plan.toarray(),
                           atol=1e-9)

    def test_engine_validated(self):
        problem = gaussian_grid_problem(80)
        with pytest.raises(ValidationError, match="restricted_engine"):
            solve(problem, method="multiscale",
                  restricted_engine="simplex")

    def test_sparse_support_path_matches_dense_mask_path(self):
        # Forcing the index-sparse refine at a size where the dense-mask
        # path also runs: both must restrict to the same support and
        # reach the same optimum.
        problem = gaussian_grid_problem(140)
        sparse_path = solve(problem, method="multiscale", coarsen=4,
                            sparse_support=True)
        dense_path = solve(problem, method="multiscale", coarsen=4,
                           sparse_support=False)
        assert sparse_path.extras["sparse_support"] is True
        assert dense_path.extras["sparse_support"] is False
        assert sparse_path.value == pytest.approx(dense_path.value,
                                                  abs=1e-11)
        assert np.allclose(sparse_path.plan.toarray(),
                           dense_path.plan.toarray(), atol=1e-9)

    def test_pyramid_levels_warm_start_the_fine_solve(self):
        # With two pyramid levels the intermediate restricted solve
        # leaves a NetworkSimplexState in its extras; the finest level
        # must lift that basis via refine_state and report the warm
        # start in its per-level diagnostics.  Basis lifts only apply
        # off the monotone-certified family (an explicit cost here) —
        # on certified problems the cold staircase basis is already
        # optimal and the lift is deliberately skipped.
        problem = gaussian_grid_problem(240, explicit_cost=True)
        stacked = solve(problem, method="multiscale", coarsen=4,
                        levels=2, restricted_engine="network_simplex")
        assert stacked.extras["levels"] == 2
        pyramid = stacked.extras["pyramid"]
        assert [info["warm_started"] for info in pyramid] == [False, True]
        assert stacked.extras["warm_started"] is True
        from repro.ot import NetworkSimplexState
        assert isinstance(stacked.extras["state"], NetworkSimplexState)
        cold = solve(problem, method="multiscale", coarsen=4, levels=1,
                     restricted_engine="network_simplex")
        assert stacked.value == pytest.approx(cold.value, abs=1e-9)

    def test_certified_pyramid_skips_the_basis_lift(self):
        # Metric cost + sorted supports: the staircase init is optimal,
        # so no level reports a warm start even on the simplex engine.
        result = solve(gaussian_grid_problem(240), method="multiscale",
                       coarsen=4, levels=2,
                       restricted_engine="network_simplex")
        assert all(info["warm_started"] is False
                   for info in result.extras["pyramid"])

    def test_lp_engine_reports_no_state(self):
        result = solve(gaussian_grid_problem(90), method="multiscale",
                       coarsen=4, restricted_engine="lp")
        assert "state" not in result.extras
        assert "warm_started" not in result.extras

    def test_banded_engine_matches_simplex_and_lp(self):
        problem = gaussian_grid_problem(150)
        banded = solve(problem, method="multiscale", coarsen=5,
                       restricted_engine="banded")
        native = solve(problem, method="multiscale", coarsen=5,
                       restricted_engine="network_simplex")
        oracle = solve(problem, method="multiscale", coarsen=5,
                       restricted_engine="lp")
        assert banded.extras["restricted_engine"] == "banded"
        assert banded.value == pytest.approx(native.value, abs=1e-9)
        assert banded.value == pytest.approx(oracle.value, abs=1e-9)
        assert np.allclose(banded.plan.toarray(), native.plan.toarray(),
                           atol=1e-9)
        assert banded.marginal_residual <= 1e-9

    def test_auto_engine_selects_banded_on_metric_cells(self):
        # Sorted supports + metric cost certify monotone optimality, so
        # the default engine="auto" must route the refine to the banded
        # kernel (no simplex pivots) and report it.
        result = solve(gaussian_grid_problem(200), method="multiscale")
        assert result.extras["restricted_engine"] == "banded"
        assert "state" not in result.extras

    def test_auto_engine_keeps_simplex_off_the_metric_family(self):
        # An explicit cost matrix voids the monotone certificate: auto
        # must stay on the exact simplex engine.
        result = solve(gaussian_grid_problem(120, explicit_cost=True),
                       method="multiscale", coarsen=4)
        assert result.extras["restricted_engine"] == "network_simplex"

    def test_banded_engine_falls_back_without_certificate(self):
        # Asking for "banded" outright on an uncertified problem is not
        # an error — the dispatcher silently falls back to the simplex
        # and reports the engine that actually ran.
        result = solve(gaussian_grid_problem(100, explicit_cost=True),
                       method="multiscale", coarsen=4,
                       restricted_engine="banded")
        assert result.extras["restricted_engine"] == "network_simplex"
        lp = solve(gaussian_grid_problem(100, explicit_cost=True),
                   method="lp")
        assert result.value == pytest.approx(lp.value, rel=1e-6)


class TestPyramid:
    """The automatic multi-level pyramid: depth control, per-level
    diagnostics, and equivalence with the historical single-level
    solve at ``levels=1``."""

    def test_auto_depth_coarsens_below_leaf_size(self):
        from repro.ot.multiscale import PYRAMID_LEAF_SIZE

        problem = gaussian_grid_problem(2400)
        result = solve(problem, method="multiscale", coarsen=4)
        assert result.extras["levels"] >= 2
        assert max(result.extras["coarse_shape"]) <= PYRAMID_LEAF_SIZE
        assert result.extras["coarse_solver"] == "exact"
        assert result.converged

    def test_pyramid_diagnostics_per_level(self):
        result = solve(gaussian_grid_problem(1600), method="multiscale",
                       coarsen=4)
        pyramid = result.extras["pyramid"]
        assert len(pyramid) == result.extras["levels"]
        # Levels are reported coarse-to-fine and end at the full shape.
        shapes = [info["shape"] for info in pyramid]
        assert shapes[-1] == (1600, 1600)
        assert all(s_prev < s_next for (s_prev, _), (s_next, _)
                   in zip(shapes, shapes[1:]))
        for info in pyramid:
            assert info["engine"] in ("network_simplex", "lp", "banded")
            assert 0.0 < info["support_density"] <= 1.0
            assert info["support_size"] > 0
        # The finest level's engine is what the result reports.
        assert result.extras["restricted_engine"] == pyramid[-1]["engine"]

    def test_levels_one_matches_historical_single_level(self):
        # levels=1 must reproduce the pre-pyramid solver exactly: one
        # coarsening, one restricted solve on the dilated support.
        problem = gaussian_grid_problem(300)
        pinned = solve(problem, method="multiscale", coarsen=4, levels=1,
                       restricted_engine="network_simplex")
        assert pinned.extras["levels"] == 1
        assert pinned.extras["coarse_shape"] == (75, 75)
        auto = solve(problem, method="multiscale", coarsen=4,
                     restricted_engine="network_simplex")
        assert pinned.value == pytest.approx(auto.value, abs=1e-9)

    def test_deeper_pyramids_agree_with_exact_oracle(self):
        # The problem is monotone-solvable, so the closed-form solver
        # is a free exactness oracle at any size.
        problem = gaussian_grid_problem(900)
        oracle = solve(problem, method="exact")
        for levels in (1, 2, 3):
            result = solve(problem, method="multiscale", coarsen=4,
                           levels=levels)
            assert result.extras["levels"] == levels
            assert result.value == pytest.approx(oracle.value,
                                                 rel=1e-9), levels
            assert result.marginal_residual <= 1e-8

    def test_levels_validated(self):
        problem = gaussian_grid_problem(80)
        with pytest.raises(ValidationError, match="levels"):
            solve(problem, method="multiscale", levels=0)
        with pytest.raises(ValidationError, match="levels"):
            solve(problem, method="multiscale", levels="deep")

    def test_depth_capped_when_reduction_stalls(self):
        # A tiny problem cannot coarsen below the minimum coarse size;
        # the pyramid must stop instead of stacking no-op levels.
        result = solve(gaussian_grid_problem(24), method="multiscale",
                       coarsen=4, levels=6)
        assert result.extras["levels"] < 6
        assert result.marginal_residual <= 1e-8


class TestTuningPins:
    """Pins for the v2-tuned dispatch constants, measured by
    ``benchmarks/test_multiscale_scaling.py`` (committed tables in
    ``benchmarks/results/multiscale.txt`` / ``BENCH_multiscale.json``).
    The banded pyramid keeps per-level work linear, so small factors
    and an early handoff from the LP remain optimal; a silent formula
    change must fail here, next to the sweep that justifies it."""

    def test_auto_limit_pinned_to_sweep(self):
        assert MULTISCALE_AUTO_LIMIT == 2000

    def test_default_coarsen_factor_pinned_to_sweep(self):
        for n in (500, 2000, 10_000, 1_000_000):
            assert default_coarsen_factor(n) == 4
