"""Tests for the batched execution engine of the OT layer.

Covers the four contract areas of the batched redesign: the
:class:`OTBatch` container, the registry's batch-kernel extension, the
vectorised monotone kernel, and — the load-bearing guarantee —
``solve_many`` being bit-identical to the per-problem ``solve()`` loop
for every registered solver, over shuffled, mixed-shape batches and
every executor strategy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.executor import resolve_executor
from repro.exceptions import ValidationError
from repro.ot import (OTBatch, OTProblem, available_solvers,
                      batch_support, batched_north_west_corner,
                      north_west_corner, register_batch_solver,
                      register_solver, resolve_solver, solve, solve_many,
                      unregister_solver)

#: Result extras added by the batched dispatch; everything else must be
#: identical between solve_many and the per-problem solve() loop.
BATCH_EXTRAS = ("batched", "batch_size")

#: Solvers whose batch kernel matches the per-cell loop to solver
#: precision rather than bitwise: the stacked Sinkhorn engines contract
#: with einsum where the serial loop uses matmul, so agreement is
#: numerical (<= 1e-12), with identical iteration schedules.
ENTROPIC_BATCHED = ("sinkhorn", "sinkhorn_log")


def design_cells(rng, sizes=(18, 18, 18, 18, 24, 24)):
    """Design-style 1-D cells: shared sorted grid per size, KDE-ish pmfs."""
    problems = []
    for n in sizes:
        nodes = np.sort(rng.normal(size=n))
        mu = rng.dirichlet(np.ones(n) * 2.0)
        nu = rng.dirichlet(np.ones(n) * 2.0)
        problems.append(OTProblem(source_weights=mu, target_weights=nu,
                                  source_support=nodes,
                                  target_support=nodes))
    order = rng.permutation(len(problems))
    return [problems[i] for i in order]


def assert_result_pairs_identical(many, serial, *, atol: float = 0.0):
    """Agreement modulo wall time and the batch-extras keys.

    ``atol=0`` (default) demands bitwise identity; the entropic batch
    kernels pass their documented ``atol=1e-12`` instead (values and
    plans within tolerance, everything discrete still exactly equal).
    """
    assert len(many) == len(serial)
    for got, expected in zip(many, serial):
        assert got.solver == expected.solver
        assert got.converged == expected.converged
        assert got.n_iter == expected.n_iter
        assert got.plan.is_sparse == expected.plan.is_sparse
        if atol == 0.0:
            assert got.value == expected.value
            assert got.residual_source == expected.residual_source
            assert got.residual_target == expected.residual_target
        else:
            assert got.value == pytest.approx(expected.value, abs=atol)
            assert got.residual_source == pytest.approx(
                expected.residual_source, abs=atol)
            assert got.residual_target == pytest.approx(
                expected.residual_target, abs=atol)
        if got.plan.is_sparse:
            np.testing.assert_array_equal(got.plan.matrix.indices,
                                          expected.plan.matrix.indices)
            np.testing.assert_array_equal(got.plan.matrix.indptr,
                                          expected.plan.matrix.indptr)
            np.testing.assert_allclose(got.plan.matrix.data,
                                       expected.plan.matrix.data,
                                       rtol=0.0, atol=atol)
        else:
            np.testing.assert_allclose(got.plan.matrix,
                                       expected.plan.matrix,
                                       rtol=0.0, atol=atol)
        stripped = {key: value for key, value in got.extras.items()
                    if key not in BATCH_EXTRAS}
        assert stripped == expected.extras


class TestOTBatch:
    def test_container_protocol(self, rng):
        problems = design_cells(rng)
        batch = OTBatch(problems)
        assert len(batch) == len(problems)
        assert list(batch) == list(problems)
        assert batch[0] is problems[0]
        sub = batch.subset([2, 0])
        assert list(sub) == [problems[2], problems[0]]

    def test_shape_structure(self, rng):
        batch = OTBatch(design_cells(rng, sizes=(10, 10, 10)))
        assert batch.is_uniform
        assert batch.shape == (10, 10)
        mixed = OTBatch(design_cells(rng, sizes=(10, 12)))
        assert not mixed.is_uniform
        with pytest.raises(ValidationError, match="no common shape"):
            mixed.shape
        with pytest.raises(ValidationError, match="no common shape"):
            mixed.source_weight_stack()

    def test_stacked_views_roundtrip(self, rng):
        problems = design_cells(rng, sizes=(9, 9, 9, 9))
        batch = OTBatch(problems)
        mu = batch.source_weight_stack()
        xs = batch.source_support_stack()
        assert mu.shape == (4, 9) and xs.shape == (4, 9)
        for b, problem in enumerate(problems):
            np.testing.assert_array_equal(mu[b], problem.source_weights)
            np.testing.assert_array_equal(xs[b],
                                          problem.source_support.ravel())

    def test_from_arrays_shared_and_stacked_grids(self, rng):
        mu = rng.dirichlet(np.ones(6), size=3)
        nu = rng.dirichlet(np.ones(6), size=3)
        grid = np.linspace(0.0, 1.0, 6)
        shared = OTBatch.from_arrays(mu, nu, source_support=grid,
                                     target_support=grid)
        assert len(shared) == 3 and shared.is_one_dimensional
        grids = np.tile(grid, (3, 1))
        stacked = OTBatch.from_arrays(mu, nu, source_support=grids,
                                      target_support=grids)
        np.testing.assert_array_equal(stacked.source_support_stack(),
                                      shared.source_support_stack())

    def test_rejects_non_problems(self):
        with pytest.raises(ValidationError, match="OTProblem"):
            OTBatch((np.eye(2),))

    def test_has_shared_grid_keys_on_grids_not_shapes(self, rng):
        """Equal shapes must NOT count as a shared grid — every design
        cell has its own sample range, and a kernel sharing per-grid
        work (one cost matrix) on shape evidence alone would silently
        solve the wrong problems."""
        same_shape = OTBatch(design_cells(rng, sizes=(10, 10, 10)))
        assert same_shape.is_uniform
        assert not same_shape.has_shared_grid  # distinct random grids
        grid = np.linspace(0.0, 1.0, 10)
        weights = rng.dirichlet(np.ones(10), size=4)
        shared = OTBatch(tuple(
            OTProblem(source_weights=weights[b],
                      target_weights=weights[(b + 1) % 4],
                      source_support=grid, target_support=grid)
            for b in range(4)))
        assert shared.has_shared_grid
        # Equal values on distinct array objects still share.
        copied = OTBatch((shared[0], OTProblem(
            source_weights=weights[2], target_weights=weights[3],
            source_support=grid.copy(), target_support=grid.copy())))
        assert copied.has_shared_grid

    def test_has_shared_grid_needs_supports(self, rng):
        explicit = OTBatch(tuple(
            OTProblem(source_weights=rng.dirichlet(np.ones(5)),
                      target_weights=rng.dirichlet(np.ones(5)),
                      cost=np.abs(rng.normal(size=(5, 5))))
            for _ in range(2)))
        assert not explicit.has_shared_grid

    def test_from_arrays_batch_size_mismatch(self, rng):
        with pytest.raises(ValidationError, match="batch size"):
            OTBatch.from_arrays(rng.dirichlet(np.ones(4), size=3),
                                rng.dirichlet(np.ones(4), size=2),
                                source_support=np.arange(4.0),
                                target_support=np.arange(4.0))


class TestRegistryBatchExtension:
    def test_builtin_batch_support(self):
        support = batch_support()
        for name in ("exact", "sinkhorn", "sinkhorn_log"):
            assert support[name] is True, name
        for name in ("simplex", "lp", "screened", "multiscale"):
            assert support[name] is False, name

    def test_aliases_share_the_kernel(self):
        assert resolve_solver("monotone").supports_batch
        assert resolve_solver("1d").supports_batch

    def test_register_batch_solver_round_trip(self, rng):
        @register_solver("test-batch", description="outer product")
        def outer(problem):
            return np.outer(problem.source_weights,
                            problem.target_weights)

        try:
            assert not resolve_solver("test-batch").supports_batch

            @register_batch_solver("test-batch")
            def outer_batch(batch):
                return [np.outer(p.source_weights, p.target_weights)
                        for p in batch]

            solver = resolve_solver("test-batch")
            assert solver.supports_batch
            problems = design_cells(rng, sizes=(8, 8))
            results = solve_many(problems, method="test-batch")
            for problem, result in zip(problems, results):
                assert result.extras["batched"] is True
                np.testing.assert_array_equal(
                    result.plan.matrix,
                    np.outer(problem.source_weights,
                             problem.target_weights))
        finally:
            unregister_solver("test-batch")

    def test_batch_kernel_needs_registered_solver(self):
        with pytest.raises(ValidationError, match="unknown solver"):
            register_batch_solver("no-such-solver")(lambda batch: [])

    def test_wrong_result_count_rejected(self, rng):
        register_solver("test-short", description="drops results")(
            lambda problem: np.outer(problem.source_weights,
                                     problem.target_weights))
        register_batch_solver("test-short")(lambda batch: [])
        try:
            with pytest.raises(ValidationError, match="returned 0 results"):
                solve_many(design_cells(rng, sizes=(8, 8)),
                           method="test-short")
        finally:
            unregister_solver("test-short")


class TestBatchedMonotoneKernel:
    def test_matches_staircase_walk_plan(self, rng):
        mu = rng.dirichlet(np.ones(9), size=5)
        nu = rng.dirichlet(np.ones(7), size=5)
        rows, cols, masses = batched_north_west_corner(mu, nu)
        for b in range(5):
            plan = np.zeros((9, 7))
            np.add.at(plan, (rows[b], cols[b]), masses[b])
            np.testing.assert_allclose(plan, north_west_corner(mu[b],
                                                               nu[b]),
                                       atol=1e-12)

    def test_batch_composition_invariance(self, rng):
        """A problem's staircase is bitwise independent of its batchmates."""
        mu = rng.dirichlet(np.ones(11), size=6)
        nu = rng.dirichlet(np.ones(8), size=6)
        rows, cols, masses = batched_north_west_corner(mu, nu)
        for b in range(6):
            r1, c1, m1 = batched_north_west_corner(mu[b:b + 1],
                                                   nu[b:b + 1])
            np.testing.assert_array_equal(rows[b], r1[0])
            np.testing.assert_array_equal(cols[b], c1[0])
            np.testing.assert_array_equal(masses[b], m1[0])

    def test_validation(self):
        with pytest.raises(ValidationError, match="batch size"):
            batched_north_west_corner(np.ones((2, 3)), np.ones((3, 3)))
        with pytest.raises(ValidationError, match="non-negative"):
            batched_north_west_corner(np.array([[0.5, -0.5]]),
                                      np.array([[1.0]]))
        with pytest.raises(ValidationError, match="positive total mass"):
            batched_north_west_corner(np.array([[0.0, 0.0]]),
                                      np.array([[1.0]]))


class TestSolveManyEquivalence:
    """The acceptance guarantee: solve_many over a shuffled cell batch is
    bit-identical to the per-cell solve() loop for every registered
    solver (batch kernel and executor fallback alike)."""

    @pytest.mark.parametrize("method", sorted(available_solvers()))
    def test_matches_per_cell_loop(self, rng, method):
        problems = design_cells(rng)
        serial = [solve(problem, method=method) for problem in problems]
        many = solve_many(problems, method=method)
        atol = 1e-12 if method in ENTROPIC_BATCHED else 0.0
        assert_result_pairs_identical(many, serial, atol=atol)

    def test_exact_cells_ran_through_the_batch_kernel(self, rng):
        problems = design_cells(rng)
        many = solve_many(problems, method="exact")
        for result in many:
            assert result.extras["batched"] is True
        sizes = {result.plan.shape[0]: result.extras["batch_size"]
                 for result in many}
        # One vectorised dispatch per shared shape.
        assert sizes == {18: 4, 24: 2}

    def test_auto_groups_and_dispatches_like_solve(self, rng):
        problems = design_cells(rng, sizes=(16, 16, 20))
        # A masked problem forces auto off the monotone path.
        base = problems[0]
        masked = OTProblem(
            source_weights=base.source_weights,
            target_weights=base.target_weights,
            source_support=base.source_support,
            target_support=base.target_support,
            support_mask=np.eye(base.shape[0], dtype=bool))
        mixed = problems + [masked]
        serial = [solve(problem, method="auto") for problem in mixed]
        many = solve_many(mixed, method="auto")
        assert_result_pairs_identical(many, serial)
        assert {result.solver for result in many} == {"exact", "lp"}

    def test_empty_batch(self):
        assert solve_many([]) == []

    def test_opts_reach_explicit_solvers_verbatim(self, rng):
        problems = design_cells(rng, sizes=(12, 12))
        many = solve_many(problems, method="sinkhorn", epsilon=5e-2)
        serial = [solve(problem, method="sinkhorn", epsilon=5e-2)
                  for problem in problems]
        assert_result_pairs_identical(many, serial, atol=1e-12)
        assert all(result.extras["epsilon"] == 5e-2 for result in many)
        with pytest.raises(TypeError):
            solve_many(problems, method="simplex", epsilon=1.0)

    def test_auto_filters_opts_once_per_group(self, rng, monkeypatch):
        """No per-cell inspect.signature: option filtering happens once
        per dispatch group, however many cells the batch holds."""
        import repro.ot.registry as registry

        calls = []
        real_signature = registry.inspect.signature

        def counting_signature(fn):
            calls.append(fn)
            return real_signature(fn)

        monkeypatch.setattr(registry.inspect, "signature",
                            counting_signature)
        problems = design_cells(rng, sizes=(10,) * 8)
        solve_many(problems, method="auto", epsilon=1e-2)
        assert len(calls) == 1  # one group ("exact"), one filter pass

    def test_invalid_executor_rejected(self, rng):
        with pytest.raises(ValidationError, match="map"):
            solve_many(design_cells(rng, sizes=(8,)), method="lp",
                       executor=object())


class TestExecutorMatrix:
    """serial / thread / process fallbacks all reproduce the serial loop."""

    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_fallback_matches_serial(self, rng, strategy):
        problems = design_cells(rng, sizes=(14, 14, 18, 18))
        serial = [solve(problem, method="lp") for problem in problems]
        engine = resolve_executor(strategy, n_jobs=2)
        many = solve_many(problems, method="lp", executor=engine)
        assert_result_pairs_identical(many, serial)

    def test_executor_name_strings_resolve(self, rng):
        problems = design_cells(rng, sizes=(10, 10))
        many = solve_many(problems, method="lp", executor="thread")
        serial = [solve(problem, method="lp") for problem in problems]
        assert_result_pairs_identical(many, serial)

    def test_raw_concurrent_futures_pool_accepted(self, rng):
        from concurrent.futures import ThreadPoolExecutor

        problems = design_cells(rng, sizes=(10, 10))
        with ThreadPoolExecutor(max_workers=2) as pool:
            many = solve_many(problems, method="lp", executor=pool)
        serial = [solve(problem, method="lp") for problem in problems]
        assert_result_pairs_identical(many, serial)


class TestSinkhornBatchKernels:
    """The entropic batch kernels: stacked (B, n, m) iterations with
    per-problem convergence masking, within 1e-12 of the per-cell loop."""

    @pytest.mark.parametrize("method", ENTROPIC_BATCHED)
    def test_batched_within_1e12_of_per_cell(self, rng, method):
        problems = design_cells(rng, sizes=(14, 14, 14, 20, 20))
        serial = [solve(problem, method=method, epsilon=5e-2, tol=1e-10)
                  for problem in problems]
        many = solve_many(problems, method=method, epsilon=5e-2,
                          tol=1e-10)
        assert_result_pairs_identical(many, serial, atol=1e-12)
        for result in many:
            assert result.extras["batched"] is True

    @pytest.mark.parametrize("method", ENTROPIC_BATCHED)
    def test_shuffle_property(self, rng, method):
        """Shuffling the batch permutes the results and changes nothing
        else — convergence masking and compaction are order-free."""
        problems = design_cells(rng, sizes=(12,) * 6)
        baseline = solve_many(problems, method=method, epsilon=5e-2,
                              tol=1e-10)
        order = rng.permutation(len(problems))
        shuffled = solve_many([problems[i] for i in order], method=method,
                              epsilon=5e-2, tol=1e-10)
        for position, original in enumerate(order):
            got, expected = shuffled[position], baseline[original]
            np.testing.assert_allclose(got.plan.matrix,
                                       expected.plan.matrix,
                                       rtol=0.0, atol=1e-12)
            assert got.n_iter == expected.n_iter
            assert got.converged == expected.converged

    def test_per_problem_masking_freezes_each_cell_at_its_own_iteration(
            self, rng):
        """Cells converge at different iteration counts inside one
        batched dispatch — the masking must freeze each at its own
        checkpoint, exactly like its lone per-cell run."""
        problems = design_cells(rng, sizes=(16,) * 8)
        many = solve_many(problems, method="sinkhorn_log", epsilon=5e-2,
                          tol=1e-10)
        iters = {result.n_iter for result in many}
        assert len(iters) > 1, "fixture too easy: all cells converged " \
                               "at the same checkpoint"
        for problem, result in zip(problems, many):
            lone = solve(problem, method="sinkhorn_log", epsilon=5e-2,
                         tol=1e-10)
            assert result.n_iter == lone.n_iter

    def test_equal_shape_different_grid_regression(self, rng):
        """The shared-grid fix: equal-shape cells on *different* grids
        must each be solved against their own cost matrix.  A kernel
        keying the shared-cost fast path on shapes (the old uniform-
        shape detection) would solve every cell on cell 0's grid and
        produce plans that match nothing below."""
        n = 12
        problems = []
        for shift in (0.0, 2.5, -1.0, 7.0):
            nodes = np.sort(rng.normal(size=n)) + shift
            problems.append(OTProblem(
                source_weights=rng.dirichlet(np.ones(n) * 2.0),
                target_weights=rng.dirichlet(np.ones(n) * 2.0),
                source_support=nodes,
                target_support=nodes * 1.5))
        batch = OTBatch(tuple(problems))
        assert batch.is_uniform and not batch.has_shared_grid
        for method in ENTROPIC_BATCHED:
            serial = [solve(problem, method=method, epsilon=5e-2,
                            tol=1e-10) for problem in problems]
            many = solve_many(problems, method=method, epsilon=5e-2,
                              tol=1e-10)
            assert_result_pairs_identical(many, serial, atol=1e-12)

    def test_shared_grid_fast_path_matches_per_problem_stack(self, rng):
        """When every cell provably shares one grid and cost recipe the
        kernel may evaluate the cost once — and must still match the
        per-cell loop."""
        n = 15
        grid = np.sort(rng.normal(size=n))
        problems = [OTProblem(
            source_weights=rng.dirichlet(np.ones(n) * 2.0),
            target_weights=rng.dirichlet(np.ones(n) * 2.0),
            source_support=grid, target_support=grid)
            for _ in range(5)]
        assert OTBatch(tuple(problems)).has_shared_grid
        for method in ENTROPIC_BATCHED:
            serial = [solve(problem, method=method, epsilon=5e-2,
                            tol=1e-10) for problem in problems]
            many = solve_many(problems, method=method, epsilon=5e-2,
                              tol=1e-10)
            assert_result_pairs_identical(many, serial, atol=1e-12)


class TestBackendThreading:
    """backend= flows through solve/solve_many to the aware solvers and
    is dropped (with fail-fast name validation) for the rest."""

    def test_solve_many_backend_numpy_matches_default(self, rng):
        problems = design_cells(rng, sizes=(10, 10, 14))
        default = solve_many(problems, method="exact")
        explicit = solve_many(problems, method="exact", backend="numpy")
        for got, expected in zip(explicit, default):
            np.testing.assert_array_equal(got.plan.matrix,
                                          expected.plan.matrix)
            assert got.value == expected.value
            assert got.extras == expected.extras

    def test_auto_offers_backend_to_dispatch_targets(self, rng):
        problems = design_cells(rng, sizes=(10, 10))
        results = solve_many(problems, method="auto", backend="numpy")
        assert all(result.solver == "exact" for result in results)
        serial = [solve(problem, method="auto") for problem in problems]
        assert_result_pairs_identical(results, serial)

    def test_backend_dropped_for_unaware_solvers(self, rng):
        problems = design_cells(rng, sizes=(8, 8))
        results = solve_many(problems, method="lp", backend="numpy")
        serial = [solve(problem, method="lp") for problem in problems]
        assert_result_pairs_identical(results, serial)

    def test_unknown_backend_fails_fast(self, rng):
        problems = design_cells(rng, sizes=(8,))
        with pytest.raises(ValidationError, match="unknown backend"):
            solve_many(problems, method="exact", backend="no-such-device")
        with pytest.raises(ValidationError, match="unknown backend"):
            solve(problems[0], method="lp", backend="no-such-device")

    def test_backend_support_introspection(self):
        from repro.ot import backend_support

        support = backend_support()
        for name in ("exact", "sinkhorn", "sinkhorn_log", "auto"):
            assert support[name] is True, name
        for name in ("simplex", "lp", "screened", "multiscale"):
            assert support[name] is False, name


# -- property-based: batch invariance of the exact solver ---------------------


@given(mu=arrays(np.float64, (4, 6),
                 elements=st.floats(0.05, 10.0, allow_nan=False)),
       nu=arrays(np.float64, (4, 6),
                 elements=st.floats(0.05, 10.0, allow_nan=False)),
       seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_solve_many_bitwise_matches_solve_loop(mu, nu, seed):
    rng = np.random.default_rng(seed)
    grid = np.sort(rng.normal(size=6))
    problems = [OTProblem(source_weights=mu[b], target_weights=nu[b],
                          source_support=grid, target_support=grid)
                for b in range(4)]
    order = rng.permutation(4)
    shuffled = [problems[i] for i in order]
    serial = [solve(problem, method="exact") for problem in shuffled]
    many = solve_many(shuffled, method="exact")
    assert_result_pairs_identical(many, serial)


# -- the restricted-engine hybrids under batching -----------------------------


class TestRestrictedEngineBatch:
    """screened/multiscale run their restricted solve on the native
    network simplex by default; the scipy-LP engine stays available as
    the oracle and both must agree — per cell and under solve_many."""

    @staticmethod
    def _grid_cells(rng, sizes=(60, 60, 80)):
        problems = []
        for n in sizes:
            nodes = np.linspace(-2.5, 2.5, n)
            mu = rng.dirichlet(np.ones(n) * 2.0)
            nu = rng.dirichlet(np.ones(n) * 2.0)
            problems.append(OTProblem(source_weights=mu, target_weights=nu,
                                      source_support=nodes,
                                      target_support=nodes))
        return problems

    @pytest.mark.parametrize("method", ["screened", "multiscale"])
    def test_engines_agree_on_objective(self, rng, method):
        for problem in self._grid_cells(rng):
            native = solve(problem, method=method,
                           restricted_engine="network_simplex")
            oracle = solve(problem, method=method,
                           restricted_engine="lp")
            assert native.extras["restricted_engine"] == "network_simplex"
            assert oracle.extras["restricted_engine"] == "lp"
            assert native.value == pytest.approx(oracle.value, abs=1e-9)
            assert native.marginal_residual <= 1e-9

    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_solve_many_bit_identical_across_executors(self, rng, strategy):
        """The new engine's results — including the NetworkSimplexState
        riding in extras — survive every executor bit-identically."""
        from repro.core.executor import resolve_executor

        problems = self._grid_cells(rng, sizes=(40, 40, 50))
        serial = [solve(problem, method="screened",
                        restricted_engine="network_simplex")
                  for problem in problems]
        engine = resolve_executor(strategy, n_jobs=2)
        many = solve_many(problems, method="screened",
                          restricted_engine="network_simplex",
                          executor=engine)
        assert_result_pairs_identical(many, serial)
        for result in many:
            assert result.extras["restricted_engine"] == "network_simplex"

    def test_solve_many_network_simplex_solver(self, rng):
        problems = self._grid_cells(rng, sizes=(30, 30))
        serial = [solve(problem, method="network_simplex")
                  for problem in problems]
        many = solve_many(problems, method="network_simplex")
        assert_result_pairs_identical(many, serial)
