"""Tests for unbalanced entropic OT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.ot.cost import squared_euclidean_cost
from repro.ot.sinkhorn import sinkhorn
from repro.ot.unbalanced import sinkhorn_unbalanced


@pytest.fixture
def problem(rng):
    xs = rng.normal(size=(6, 1))
    ys = rng.normal(size=(8, 1))
    cost = squared_euclidean_cost(xs, ys)
    mu = rng.dirichlet(np.ones(6))
    nu = rng.dirichlet(np.ones(8))
    return cost, mu, nu


class TestUnbalancedSinkhorn:
    def test_converges(self, problem):
        cost, mu, nu = problem
        result = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05,
                                     marginal_relaxation=1.0)
        assert result.converged
        assert np.all(result.plan >= 0.0)

    def test_large_relaxation_recovers_balanced(self, problem):
        # The exponent approaches 1 as λ grows, so convergence slows;
        # λ = 50 with a modest tolerance is close enough to compare.
        cost, mu, nu = problem
        relaxed = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05,
                                      marginal_relaxation=50.0,
                                      max_iter=200_000, tol=1e-10)
        balanced = sinkhorn(cost, mu, nu, epsilon=0.05, tol=1e-12,
                            max_iter=200_000)
        np.testing.assert_allclose(relaxed.plan, balanced.plan, atol=2e-2)
        # And the marginals are nearly matched.
        assert np.abs(relaxed.plan.sum(axis=1) - mu).max() < 0.02

    def test_small_relaxation_sheds_marginal_mismatch(self, problem):
        cost, mu, nu = problem
        loose = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05,
                                    marginal_relaxation=0.01)
        tight = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05,
                                    marginal_relaxation=100.0,
                                    max_iter=100_000)
        loose_residual = np.abs(loose.plan.sum(axis=1) - mu).max()
        tight_residual = np.abs(tight.plan.sum(axis=1) - mu).max()
        assert loose_residual > tight_residual

    def test_relaxation_softens_outlier_influence(self, rng):
        # An isolated far-away source atom: balanced OT must ship its
        # mass at huge cost; unbalanced OT shrinks it instead.
        xs = np.concatenate([rng.normal(size=5), [50.0]]).reshape(-1, 1)
        ys = rng.normal(size=(6, 1))
        cost = squared_euclidean_cost(xs, ys)
        mu = np.full(6, 1.0 / 6.0)
        nu = np.full(6, 1.0 / 6.0)
        loose = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.1,
                                    marginal_relaxation=0.05)
        outlier_mass = loose.plan[5].sum()
        assert outlier_mass < 0.5 * mu[5]

    def test_failure_modes(self, problem):
        cost, mu, nu = problem
        with pytest.raises(ValidationError, match="epsilon"):
            sinkhorn_unbalanced(cost, mu, nu, epsilon=0.0)
        with pytest.raises(ValidationError, match="marginal_relaxation"):
            sinkhorn_unbalanced(cost, mu, nu, marginal_relaxation=0.0)
        with pytest.raises(ValidationError, match="incompatible"):
            sinkhorn_unbalanced(cost, mu[:-1], nu)

    def test_effective_epsilon_recorded(self, problem):
        cost, mu, nu = problem
        result = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05)
        assert result.effective_epsilon == pytest.approx(
            0.05 * float(cost.max()))

    def test_scale_cost_none_applies_epsilon_verbatim(self, problem):
        cost, mu, nu = problem
        result = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.3,
                                     scale_cost="none")
        assert result.effective_epsilon == pytest.approx(0.3)

    def test_explicit_scale_matches_default_when_equal_to_max(self,
                                                              problem):
        cost, mu, nu = problem
        default = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05)
        explicit = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05,
                                       scale_cost=float(cost.max()))
        np.testing.assert_allclose(explicit.plan, default.plan)
        assert explicit.effective_epsilon == pytest.approx(
            default.effective_epsilon)

    def test_scale_cost_none_equals_prescaled_epsilon(self, problem):
        # Disabling the rescale and passing sigma*epsilon yourself must
        # build the same kernel; the exponent keeps the raw lambda:eps
        # ratio, so compare via matching relaxation too.
        cost, mu, nu = problem
        sigma = float(cost.max())
        scaled = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05,
                                     marginal_relaxation=1.0)
        manual = sinkhorn_unbalanced(cost / sigma, mu, nu, epsilon=0.05,
                                     marginal_relaxation=1.0,
                                     scale_cost="none")
        np.testing.assert_allclose(scaled.plan, manual.plan, atol=1e-12)

    def test_invalid_scale_cost_rejected(self, problem):
        cost, mu, nu = problem
        with pytest.raises(ValidationError, match="scale_cost"):
            sinkhorn_unbalanced(cost, mu, nu, scale_cost="median")
        with pytest.raises(ValidationError, match="scale_cost"):
            sinkhorn_unbalanced(cost, mu, nu, scale_cost=-2.0)

    def test_budget_exhaustion(self, problem):
        cost, mu, nu = problem
        with pytest.raises(ConvergenceError):
            sinkhorn_unbalanced(cost, mu, nu, epsilon=1e-4, max_iter=2,
                                tol=1e-15)
        result = sinkhorn_unbalanced(cost, mu, nu, epsilon=1e-4,
                                     max_iter=2, tol=1e-15,
                                     raise_on_failure=False)
        assert not result.converged
