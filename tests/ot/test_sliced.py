"""Tests for the sliced Wasserstein distance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot.sliced import random_directions, sliced_wasserstein


class TestRandomDirections:
    def test_unit_norm(self, rng):
        dirs = random_directions(50, 4, rng=rng)
        np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0,
                                   atol=1e-12)

    def test_shape(self, rng):
        assert random_directions(7, 3, rng=rng).shape == (7, 3)

    def test_deterministic_with_seed(self):
        a = random_directions(5, 2, rng=3)
        b = random_directions(5, 2, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_roughly_isotropic(self):
        dirs = random_directions(20_000, 2, rng=0)
        mean = dirs.mean(axis=0)
        assert np.linalg.norm(mean) < 0.02

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            random_directions(0, 2)
        with pytest.raises(ValidationError):
            random_directions(3, 0)


class TestSlicedWasserstein:
    def test_zero_for_identical(self, rng):
        xs = rng.normal(size=(100, 3))
        assert sliced_wasserstein(xs, xs, rng=0) == pytest.approx(
            0.0, abs=1e-10)

    def test_translation_lower_bound(self, rng):
        # SW2 of a translate equals |shift| * E|<theta, e>| ... it is
        # bounded above by the true W2 (= |shift|) and is positive.
        xs = rng.normal(size=(300, 2))
        shift = np.array([3.0, 0.0])
        sw = sliced_wasserstein(xs, xs + shift, rng=0,
                                n_directions=256)
        assert 0.5 * 3.0 / np.sqrt(2) < sw <= 3.0 + 1e-9

    def test_detects_correlation_difference(self, rng):
        # Same marginals, opposite correlation: per-feature views agree,
        # sliced W must not.
        n = 2000
        z = rng.normal(size=(n, 2))
        rho = 0.9
        pos = np.column_stack([z[:, 0],
                               rho * z[:, 0]
                               + np.sqrt(1 - rho ** 2) * z[:, 1]])
        neg = np.column_stack([pos[:, 0], -pos[:, 1]])
        sw = sliced_wasserstein(pos, neg, rng=0, n_directions=128)
        assert sw > 0.3

    def test_symmetry(self, rng):
        xs = rng.normal(size=(40, 2))
        ys = rng.normal(1.0, 1.0, size=(60, 2))
        assert sliced_wasserstein(xs, ys, rng=7) == pytest.approx(
            sliced_wasserstein(ys, xs, rng=7), rel=1e-9)

    def test_more_directions_reduce_variance(self, rng):
        xs = rng.normal(size=(200, 3))
        ys = rng.normal(0.5, 1.0, size=(200, 3))
        few = [sliced_wasserstein(xs, ys, n_directions=4, rng=seed)
               for seed in range(12)]
        many = [sliced_wasserstein(xs, ys, n_directions=128, rng=seed)
                for seed in range(12)]
        assert np.std(many) < np.std(few)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError, match="dimension"):
            sliced_wasserstein(rng.normal(size=(5, 2)),
                               rng.normal(size=(5, 3)))

    def test_p1_variant(self, rng):
        xs = rng.normal(size=(100, 2))
        sw1 = sliced_wasserstein(xs, xs + 1.0, p=1, rng=0)
        assert sw1 > 0.0
