"""Tests for the Wasserstein distance front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot.wasserstein import (wasserstein_distance,
                                  wasserstein_sample_distance)


class TestWassersteinDistance:
    def test_1d_auto_matches_forced_1d(self, rng):
        xs, ys = rng.normal(size=6), rng.normal(size=9)
        mu = rng.dirichlet(np.ones(6))
        nu = rng.dirichlet(np.ones(9))
        auto = wasserstein_distance(xs, mu, ys, nu, method="auto")
        forced = wasserstein_distance(xs, mu, ys, nu, method="1d")
        assert auto == pytest.approx(forced)

    def test_1d_closed_form_matches_exact_solver(self, rng):
        xs, ys = rng.normal(size=7), rng.normal(size=7)
        mu = rng.dirichlet(np.ones(7))
        nu = rng.dirichlet(np.ones(7))
        fast = wasserstein_distance(xs, mu, ys, nu, method="1d")
        exact = wasserstein_distance(xs.reshape(-1, 1), mu,
                                     ys.reshape(-1, 1), nu, method="exact")
        assert fast == pytest.approx(exact, rel=1e-7)

    def test_multivariate_translation(self):
        xs = np.array([[0.0, 0.0], [1.0, 0.0]])
        shift = np.array([3.0, 4.0])  # length 5
        mu = np.array([0.5, 0.5])
        dist = wasserstein_distance(xs, mu, xs + shift, mu, p=2)
        assert dist == pytest.approx(5.0, rel=1e-9)

    def test_method_1d_rejects_multivariate(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            wasserstein_distance(np.zeros((2, 2)), [0.5, 0.5],
                                 np.zeros((2, 2)), [0.5, 0.5],
                                 method="1d")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown method"):
            wasserstein_distance([0.0], [1.0], [1.0], [1.0],
                                 method="magic")

    def test_p1_distance(self):
        dist = wasserstein_distance([0.0], [1.0], [2.0], [1.0], p=1)
        assert dist == pytest.approx(2.0)


class TestSampleDistance:
    def test_identical_samples_zero(self, rng):
        xs = rng.normal(size=15)
        assert wasserstein_sample_distance(xs, xs) == pytest.approx(
            0.0, abs=1e-10)

    def test_translation_recovered(self, rng):
        xs = rng.normal(size=50)
        dist = wasserstein_sample_distance(xs, xs + 2.0, p=2)
        assert dist == pytest.approx(2.0, rel=1e-9)

    def test_unequal_sizes_allowed(self, rng):
        xs = rng.normal(size=10)
        ys = rng.normal(size=17)
        dist = wasserstein_sample_distance(xs, ys)
        assert np.isfinite(dist) and dist >= 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            wasserstein_sample_distance(np.array([]), np.array([1.0]))
